"""Per-tenant QoS recovered from shard reports.

A shard run configured with the plan's ``boundaries`` as
``SimConfig.qos_streams`` produces a ``report.streams`` section whose
stream *i* is exactly tenant ``plan.tenant_ids[i]`` (the composer gave
each tenant slice *i* of the shard's LBA space).  This module folds
those per-stream :class:`~repro.metrics.sketch.LogHistogram` sketches
back into per-tenant QoS rows — throughput and tail latency — without
touching the simulator again, which is what lets a *cached* shard
report answer a fleet QoS request byte-identically.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Sequence

from ..errors import ReproError
from ..metrics.report import SimulationReport
from ..metrics.sketch import LogHistogram
from .workload import ShardPlan


@dataclass(frozen=True)
class TenantQos:
    """One tenant's service quality over a fleet run."""

    tenant_id: int
    shard_id: int
    requests: int
    reads: int
    writes: int
    trims: int
    mean_ms: float
    p50_ms: float
    p99_ms: float
    p999_ms: float
    #: requests per second over the shard's replay span
    throughput_rps: float

    def to_dict(self) -> dict:
        """Plain-dict form for JSON serve responses."""
        return asdict(self)


def _tenant_row(
    plan: ShardPlan,
    stream_idx: int,
    tenant_id: int,
    doc: dict | None,
    span_ms: float,
) -> TenantQos:
    if doc is None:
        # tenant issued requests but none were logged in its stream —
        # only possible for a zero-request stream, report it as idle
        return TenantQos(
            tenant_id, plan.shard_id, 0, 0, 0, 0, 0.0, 0.0, 0.0, 0.0, 0.0
        )
    hist = LogHistogram.from_dict(doc["hist"])
    q = hist.quantiles((0.5, 0.99, 0.999))
    rps = (
        doc["requests"] / (span_ms / 1000.0) if span_ms > 0 else 0.0
    )
    return TenantQos(
        tenant_id=tenant_id,
        shard_id=plan.shard_id,
        requests=doc["requests"],
        reads=doc["reads"],
        writes=doc["writes"],
        trims=doc["trims"],
        mean_ms=hist.mean,
        p50_ms=q["p50"],
        p99_ms=q["p99"],
        p999_ms=q["p99.9"],
        throughput_rps=rps,
    )


def aggregate_qos(
    plans: Sequence[ShardPlan],
    reports: Sequence[SimulationReport | None],
) -> dict[int, TenantQos]:
    """Fold shard reports into ``{tenant_id: TenantQos}``.

    ``plans`` and ``reports`` are parallel (spec order); a None report
    (failed shard, ``on_error="continue"``) simply contributes no
    tenants.  A non-None report missing its ``streams`` section means
    the shard was run without the plan's ``qos_streams`` — a caller
    bug, raised loudly.
    """
    if len(plans) != len(reports):
        raise ReproError(
            f"{len(plans)} shard plans but {len(reports)} reports"
        )
    out: dict[int, TenantQos] = {}
    for plan, report in zip(plans, reports):
        if report is None or not plan.tenant_ids:
            continue
        if report.streams is None:
            raise ReproError(
                f"shard {plan.shard_id} report has no streams section; "
                "was the run configured with the plan's qos_streams?"
            )
        streams = report.streams["streams"]
        span_ms = plan.trace.duration_ms()
        for i, tenant_id in enumerate(plan.tenant_ids):
            out[tenant_id] = _tenant_row(
                plan, i, tenant_id, streams.get(str(i)), span_ms
            )
    return out


def fleet_summary(qos: dict[int, TenantQos]) -> dict:
    """Fleet-level rollup of the per-tenant rows: totals plus the
    worst-tenant tails (the number an operator alarms on)."""
    if not qos:
        return {
            "tenants": 0,
            "requests": 0,
            "worst_p99_ms": 0.0,
            "worst_p999_ms": 0.0,
            "worst_p99_tenant": None,
            "mean_ms": 0.0,
        }
    rows = list(qos.values())
    total = sum(r.requests for r in rows)
    worst = max(rows, key=lambda r: r.p99_ms)
    mean = (
        sum(r.mean_ms * r.requests for r in rows) / total if total else 0.0
    )
    return {
        "tenants": len(rows),
        "requests": total,
        "worst_p99_ms": worst.p99_ms,
        "worst_p999_ms": max(r.p999_ms for r in rows),
        "worst_p99_tenant": worst.tenant_id,
        "mean_ms": mean,
    }
