"""Fleet-scale serving layer: N sharded devices, multi-tenant streams.

The single-device simulator answers "how does one SSD behave under one
trace".  This package models the level above it — the deployment a
storage service actually runs: a *fleet* of independent device shards,
each replaying the merged streams of many tenants whose popularity is
Zipf-skewed, with per-tenant QoS recovered from each shard's per-stream
latency sketches (``SimConfig.qos_streams``).  Because every shard is
an ordinary :class:`~repro.experiments.parallel.RunSpec`, fleet runs
fan out through the hardened :func:`~repro.experiments.parallel.execute_runs`
and repeated requests are answered straight from the content-hash
:class:`~repro.experiments.parallel.ResultStore` — the property the
``repro serve`` loop (:mod:`repro.fleet.service`) is built on.

Modules:

* :mod:`repro.fleet.config` — :class:`FleetConfig`, the fleet shape.
* :mod:`repro.fleet.workload` — the multi-tenant composer: Zipf
  popularity, deterministic shard routing, per-shard merged traces.
* :mod:`repro.fleet.qos` — per-tenant QoS aggregation over the shard
  reports' stream sketches.
* :mod:`repro.fleet.service` — the request handler + asyncio HTTP
  server behind ``repro serve``.
"""

from .config import FleetConfig
from .qos import TenantQos, aggregate_qos, fleet_summary
from .service import FleetService, serve_forever, start_server_thread
from .workload import ShardPlan, compose_shards, shard_of, tenant_weights

__all__ = [
    "FleetConfig",
    "ShardPlan",
    "TenantQos",
    "FleetService",
    "aggregate_qos",
    "compose_shards",
    "fleet_summary",
    "serve_forever",
    "shard_of",
    "start_server_thread",
    "tenant_weights",
]
