"""Fleet shape: how many shards, how many tenants, how they map.

:class:`FleetConfig` is deliberately JSON-first — it round-trips
through :meth:`to_dict`/:meth:`from_dict` because it arrives over the
wire in ``repro serve`` requests.  The per-tenant traffic knobs
default to the paper's Table 2 LUN1 row (write ratio 0.615, across
ratio 0.247, mean write 8.9 KiB), so an empty request body already
exercises the workload the reproduction is calibrated against.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..config import SCHEMES
from ..errors import ConfigError

#: recognised shard routing functions (see :func:`repro.fleet.workload.shard_of`)
SHARD_BY = ("tenant", "lba")


@dataclass(frozen=True)
class FleetConfig:
    """Shape of one simulated fleet."""

    #: independent device shards (each one simulator run)
    shards: int = 4
    #: total tenants across the fleet
    tenants: int = 64
    #: routing: "tenant" hashes the tenant id (stable blake2b, NOT
    #: Python's per-process-randomised ``hash``); "lba" bands tenants
    #: into contiguous shard ranges (range-partitioned layout)
    shard_by: str = "tenant"
    #: mean requests per tenant before Zipf popularity scaling
    requests_per_tenant: int = 200
    #: Zipf exponent of tenant popularity (larger = more skewed);
    #: tenant of popularity rank r issues ~``1/r**zipf_s`` of traffic
    zipf_s: float = 1.1
    #: base seed; every tenant derives its own stream seed from it
    seed: int = 42
    #: FTL scheme every shard runs
    scheme: str = "across"
    # -- per-tenant traffic mix (defaults: Table 2, LUN1) ---------------
    write_ratio: float = 0.615
    across_ratio: float = 0.247
    mean_write_kb: float = 8.9
    #: mean request interarrival per tenant stream (ms)
    interarrival_ms: float = 7.0
    #: sectors of logical space per tenant slice; 0 = divide the
    #: shard's logical space evenly among its tenants
    tenant_sectors: int = 0

    def validate(self) -> None:
        """Raise :class:`ConfigError` on any out-of-range knob."""
        if self.shards < 1:
            raise ConfigError("shards must be >= 1")
        if self.tenants < 1:
            raise ConfigError("tenants must be >= 1")
        if self.shard_by not in SHARD_BY:
            raise ConfigError(
                f"shard_by must be one of {SHARD_BY}, got {self.shard_by!r}"
            )
        if self.requests_per_tenant < 1:
            raise ConfigError("requests_per_tenant must be >= 1")
        if self.zipf_s <= 0:
            raise ConfigError("zipf_s must be positive")
        if self.scheme not in SCHEMES:
            raise ConfigError(
                f"unknown scheme {self.scheme!r}; choose from {SCHEMES}"
            )
        for nm in ("write_ratio", "across_ratio"):
            v = getattr(self, nm)
            if not (0.0 <= v <= 1.0):
                raise ConfigError(f"{nm} must be in [0, 1], got {v}")
        if self.mean_write_kb <= 0:
            raise ConfigError("mean_write_kb must be positive")
        if self.interarrival_ms <= 0:
            raise ConfigError("interarrival_ms must be positive")
        if self.tenant_sectors < 0:
            raise ConfigError("tenant_sectors must be non-negative")

    # -- JSON round trip -------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-dict form, inverse of :meth:`from_dict`."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "FleetConfig":
        """Build from a (possibly partial) JSON object; unknown keys
        raise so a typo in a serve request fails loudly instead of
        silently running the default fleet."""
        known = {f.name for f in dataclasses.fields(cls)}
        extra = set(d) - known
        if extra:
            raise ConfigError(
                f"unknown FleetConfig field(s): {sorted(extra)}"
            )
        cfg = cls(**d)
        cfg.validate()
        return cfg
