"""Multi-tenant workload composition: tenants → shards → traces.

Three deterministic steps, all pure functions of the
:class:`~repro.fleet.config.FleetConfig`:

1. **Popularity** (:func:`tenant_weights`): tenant request volume
   follows a Zipf law over a seeded random popularity ranking, so
   tenant 0 is not always the hottest but the same config always
   produces the same ranking.
2. **Routing** (:func:`shard_of`): ``shard_by="tenant"`` hashes the
   tenant id with ``blake2b`` — *not* Python's ``hash``, which is
   randomised per process and would route tenants differently on every
   run; ``shard_by="lba"`` bands tenants into contiguous shard ranges.
3. **Composition** (:func:`compose_shards`): each shard's tenants get
   equal page-aligned slices of the shard's logical space, one
   calibrated synthetic stream each (seeded per tenant), offsets
   shifted into their slice, and the streams merged by arrival time.
   The slice boundaries double as the shard run's
   ``SimConfig.qos_streams``, which is how per-tenant QoS falls out of
   a single shard report (:mod:`repro.fleet.qos`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..config import SSDConfig
from ..errors import ConfigError
from ..traces.model import Trace
from ..traces.synthetic import SyntheticSpec, generate_trace
from ..units import sectors_per_page
from .config import FleetConfig


def tenant_weights(cfg: FleetConfig) -> np.ndarray:
    """Normalised per-tenant traffic weights (sum = 1).

    Weight of popularity rank ``r`` (1-based) is ``1 / r**zipf_s``;
    which tenant holds which rank is a seeded permutation so the hot
    tenants land on different shards for different seeds.
    """
    ranks = np.arange(1, cfg.tenants + 1, dtype=np.float64)
    w = ranks ** -cfg.zipf_s
    w /= w.sum()
    rng = np.random.default_rng(cfg.seed)
    perm = rng.permutation(cfg.tenants)
    out = np.empty(cfg.tenants)
    out[perm] = w
    return out


def tenant_requests(cfg: FleetConfig) -> np.ndarray:
    """Request count per tenant: ``requests_per_tenant`` is the fleet
    mean, scaled by the Zipf weight; every tenant issues at least one
    request so no stream vanishes."""
    total = cfg.requests_per_tenant * cfg.tenants
    counts = np.maximum(1, np.rint(tenant_weights(cfg) * total))
    return counts.astype(np.int64)


def shard_of(tenant_id: int, cfg: FleetConfig) -> int:
    """Deterministic shard for ``tenant_id`` (stable across processes,
    platforms and sessions)."""
    if not 0 <= tenant_id < cfg.tenants:
        raise ConfigError(
            f"tenant_id {tenant_id} outside [0, {cfg.tenants})"
        )
    if cfg.shard_by == "lba":
        # contiguous banding: tenants [0..t/s) on shard 0, etc.
        return tenant_id * cfg.shards // cfg.tenants
    digest = hashlib.blake2b(
        f"tenant-{tenant_id}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") % cfg.shards


@dataclass(frozen=True)
class ShardPlan:
    """One shard's composed workload plus the tenant→stream mapping."""

    shard_id: int
    #: tenants on this shard, in stream-index order: tenant
    #: ``tenant_ids[i]`` owns LBA slice ``[i*slice, (i+1)*slice)`` and
    #: therefore QoS stream ``i`` of the shard report
    tenant_ids: tuple[int, ...]
    trace: Trace
    #: ``SimConfig.qos_streams`` boundaries for this shard's run
    boundaries: tuple[int, ...]
    #: sectors per tenant slice
    slice_sectors: int


def _tenant_spec(
    cfg: FleetConfig, tenant_id: int, requests: int, slice_sectors: int
) -> SyntheticSpec:
    return SyntheticSpec(
        name=f"tenant{tenant_id:05d}",
        requests=int(requests),
        write_ratio=cfg.write_ratio,
        across_ratio=cfg.across_ratio,
        mean_write_kb=cfg.mean_write_kb,
        footprint_sectors=slice_sectors,
        # distinct, deterministic stream per (fleet seed, tenant)
        seed=cfg.seed * 1_000_003 + tenant_id + 1,
        interarrival_ms=cfg.interarrival_ms,
    )


def compose_shards(
    cfg: FleetConfig, ssd_cfg: SSDConfig
) -> list[ShardPlan]:
    """Compose every shard's merged multi-tenant trace.

    Within a shard, tenants (sorted by id) get equal page-aligned
    contiguous slices of the logical space; each tenant's calibrated
    synthetic stream is generated *inside its slice* and the streams
    are merged by arrival time.  Deterministic end to end: same config
    → same routing → same traces → same run keys, which is what makes
    fleet requests cacheable in the ResultStore.
    """
    cfg.validate()
    counts = tenant_requests(cfg)
    members: dict[int, list[int]] = {s: [] for s in range(cfg.shards)}
    for t in range(cfg.tenants):
        members[shard_of(t, cfg)].append(t)

    spp = sectors_per_page(ssd_cfg.page_size_bytes)
    plans: list[ShardPlan] = []
    for sid in range(cfg.shards):
        tenants = sorted(members[sid])
        if not tenants:
            plans.append(ShardPlan(
                shard_id=sid,
                tenant_ids=(),
                trace=Trace.from_lists(f"fleet-s{sid:03d}", []),
                boundaries=(),
                slice_sectors=0,
            ))
            continue
        auto = ssd_cfg.logical_sectors // len(tenants)
        slice_sectors = (
            min(cfg.tenant_sectors, auto) if cfg.tenant_sectors else auto
        )
        slice_sectors -= slice_sectors % spp  # page-aligned slices
        if slice_sectors < spp:
            raise ConfigError(
                f"shard {sid}: {len(tenants)} tenants do not fit in "
                f"{ssd_cfg.logical_sectors} logical sectors (slice "
                f"smaller than one page)"
            )
        streams = []
        for i, t in enumerate(tenants):
            spec = _tenant_spec(cfg, t, counts[t], slice_sectors)
            trace = generate_trace(spec)
            streams.append(Trace(
                trace.name,
                trace.times,
                trace.ops,
                trace.offsets + i * slice_sectors,
                trace.sizes,
            ))
        merged = Trace.interleave(
            streams, name=f"fleet-s{sid:03d}", partitioned=False
        )
        # one boundary per tenant slice end: with n tenants that makes
        # streams 0..n-1 the tenants and stream n the (empty) remainder
        # of the logical space — so even a one-tenant shard gets a
        # non-None report.streams section
        boundaries = tuple(
            slice_sectors * (i + 1) for i in range(len(tenants))
        )
        plans.append(ShardPlan(
            shard_id=sid,
            tenant_ids=tuple(tenants),
            trace=merged,
            boundaries=boundaries,
            slice_sectors=slice_sectors,
        ))
    return plans
