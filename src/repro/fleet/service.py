"""The ``repro serve`` request handler and its asyncio HTTP server.

The service is two layers:

* :class:`FleetService` — pure request handling: a JSON payload in, a
  JSON-serialisable response out.  Sweep and fleet requests are turned
  into :class:`~repro.experiments.parallel.RunSpec` batches and fanned
  out through the hardened
  :func:`~repro.experiments.parallel.execute_runs` with
  ``on_error="continue"`` (a poisoned spec is reported per-label, the
  siblings still land), backed by one shared
  :class:`~repro.experiments.parallel.ResultStore` — so a repeated
  request re-simulates nothing (``executed=0, cached=N``) and returns
  a byte-identical ``digest``.
* :func:`serve_forever` / :func:`start_server_thread` — a minimal
  hand-rolled HTTP/1.1 loop over :func:`asyncio.start_server` (the
  toolchain has no HTTP framework and the stdlib server is threaded).
  Simulation work is pushed off the event loop into a thread pool, so
  health checks stay responsive while a sweep runs.

Wire protocol (all bodies JSON):

* ``GET /healthz`` → ``{"ok": true}``
* ``GET /stats`` → service + store counters
* ``GET /metrics`` → the same counters as Prometheus text
* ``POST /simulate`` → dispatch on the payload's ``kind``:

  * ``{"kind": "sweep", "schemes": [...], "workload": {...},
    "device": "tiny|bench|table1", "sim": {...}}`` — one run per
    scheme over one calibrated synthetic workload.
  * ``{"kind": "fleet", "fleet": {...FleetConfig...}, "device": ...,
    "sim": {...}}`` — one run per shard, per-tenant QoS aggregated
    from the shard stream sketches.
"""

from __future__ import annotations

import asyncio
import dataclasses
import hashlib
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Optional

from ..config import SimConfig, SSDConfig, SCHEMES
from ..errors import ConfigError, ReproError
from ..experiments.parallel import ResultStore, RunSpec, execute_runs
from ..traces.synthetic import SyntheticSpec, generate_trace
from .config import FleetConfig
from .qos import aggregate_qos, fleet_summary
from .workload import compose_shards

#: SimConfig knobs a request may set; anything else is rejected so a
#: typo cannot silently run a default simulation under a wrong key
_SIM_KEYS = (
    "aged_used",
    "aged_valid",
    "aging_style",
    "seed",
    "queue_depth",
    "qos_streams",
)

#: workload knobs a sweep request may set (SyntheticSpec subset)
_WORKLOAD_KEYS = (
    "name",
    "requests",
    "write_ratio",
    "across_ratio",
    "mean_write_kb",
    "seed",
    "interarrival_ms",
    "footprint_fraction",
)


def _request_error(msg: str) -> dict:
    return {"ok": False, "error": msg}


def _sim_cfg_from(doc: dict | None) -> SimConfig:
    doc = dict(doc or {})
    extra = set(doc) - set(_SIM_KEYS)
    if extra:
        raise ConfigError(f"unknown sim field(s): {sorted(extra)}")
    if "qos_streams" in doc:
        doc["qos_streams"] = tuple(int(b) for b in doc["qos_streams"])
    cfg = SimConfig(**doc)
    cfg.validate()
    return cfg


def _canonical_digest(doc: Any) -> str:
    """Stable content hash of a JSON-serialisable response section."""
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass
class ServiceStats:
    """Monotonic service counters (guarded by the service lock)."""

    requests_total: int = 0
    sweeps_total: int = 0
    fleets_total: int = 0
    errors_total: int = 0
    runs_executed_total: int = 0
    runs_cached_total: int = 0
    runs_failed_total: int = 0


class FleetService:
    """JSON request handler over one shared ResultStore."""

    def __init__(
        self,
        store: ResultStore,
        *,
        device: SSDConfig | None = None,
        jobs: int = 1,
    ):
        self.store = store
        #: device used when a request names no preset
        self.device = device if device is not None else SSDConfig.tiny()
        self.jobs = jobs
        self._lock = threading.Lock()
        self._stats = ServiceStats()

    # -- accounting ------------------------------------------------------
    def _count(self, **deltas: int) -> None:
        with self._lock:
            for k, v in deltas.items():
                setattr(self._stats, k, getattr(self._stats, k) + v)

    def stats(self) -> dict:
        """Service counters plus the underlying store's."""
        with self._lock:
            svc = dataclasses.asdict(self._stats)
        return {"service": svc, "store": self.store.stats()}

    # -- request plumbing ------------------------------------------------
    def _device_for(self, payload: dict) -> SSDConfig:
        name = payload.get("device")
        if name is None:
            return self.device
        return SSDConfig.preset(name)

    def handle_request(self, payload: dict) -> dict:
        """Dispatch one decoded JSON request; never raises — every
        failure comes back as ``{"ok": false, "error": ...}`` so one
        bad request cannot kill the serve loop."""
        self._count(requests_total=1)
        try:
            if not isinstance(payload, dict):
                raise ConfigError("request body must be a JSON object")
            kind = payload.get("kind")
            if kind == "sweep":
                return self._handle_sweep(payload)
            if kind == "fleet":
                return self._handle_fleet(payload)
            raise ConfigError(
                f"unknown request kind {kind!r}; expected 'sweep' or 'fleet'"
            )
        except (ReproError, TypeError, ValueError) as exc:
            self._count(errors_total=1)
            return _request_error(f"{type(exc).__name__}: {exc}")

    def _execute(self, specs: list[RunSpec]):
        out = execute_runs(
            specs,
            jobs=self.jobs,
            store=self.store,
            on_error="continue",
        )
        self._count(
            runs_executed_total=out.executed,
            runs_cached_total=out.cached,
            runs_failed_total=len(out.failures),
        )
        return out

    # -- sweep requests --------------------------------------------------
    def _handle_sweep(self, payload: dict) -> dict:
        self._count(sweeps_total=1)
        cfg = self._device_for(payload)
        sim_cfg = _sim_cfg_from(payload.get("sim"))
        schemes = payload.get("schemes", list(SCHEMES))
        for s in schemes:
            if s not in SCHEMES:
                raise ConfigError(
                    f"unknown scheme {s!r}; choose from {SCHEMES}"
                )
        wl = dict(payload.get("workload") or {})
        extra = set(wl) - set(_WORKLOAD_KEYS)
        if extra:
            raise ConfigError(f"unknown workload field(s): {sorted(extra)}")
        frac = float(wl.pop("footprint_fraction", 0.5))
        if not (0.0 < frac <= 1.0):
            raise ConfigError("footprint_fraction must be in (0, 1]")
        spec = SyntheticSpec(
            name=wl.pop("name", "serve"),
            requests=int(wl.pop("requests", 2000)),
            write_ratio=float(wl.pop("write_ratio", 0.615)),
            across_ratio=float(wl.pop("across_ratio", 0.247)),
            mean_write_kb=float(wl.pop("mean_write_kb", 8.9)),
            footprint_sectors=int(cfg.logical_sectors * frac),
            **wl,
        )
        spec.validate()
        trace = generate_trace(spec)
        specs = [
            RunSpec.make(scheme, trace, cfg, sim_cfg) for scheme in schemes
        ]
        out = self._execute(specs)
        results = {
            s.label: (r.to_dict() if r is not None else None)
            for s, r in zip(specs, out.reports)
        }
        return {
            "ok": out.ok,
            "kind": "sweep",
            "executed": out.executed,
            "cached": out.cached,
            "failures": [
                {"label": label, "error": f"{type(e).__name__}: {e}"}
                for label, e in out.failures
            ],
            "digest": _canonical_digest(results),
            "results": results,
        }

    # -- fleet requests --------------------------------------------------
    def _handle_fleet(self, payload: dict) -> dict:
        self._count(fleets_total=1)
        cfg = self._device_for(payload)
        sim_doc = dict(payload.get("sim") or {})
        if "qos_streams" in sim_doc:
            raise ConfigError(
                "fleet requests derive qos_streams from the shard plan; "
                "do not set it in 'sim'"
            )
        fleet = FleetConfig.from_dict(dict(payload.get("fleet") or {}))
        plans = compose_shards(fleet, cfg)
        specs = []
        for plan in plans:
            sim_cfg = _sim_cfg_from(
                {**sim_doc, "qos_streams": plan.boundaries}
                if plan.boundaries
                else sim_doc
            )
            specs.append(RunSpec.make(fleet.scheme, plan.trace, cfg, sim_cfg))
        out = self._execute(specs)
        qos = aggregate_qos(plans, out.reports)
        tenants = {
            str(tid): row.to_dict() for tid, row in sorted(qos.items())
        }
        shards = [
            {
                "shard_id": plan.shard_id,
                "tenants": len(plan.tenant_ids),
                "requests": len(plan.trace),
                "ok": report is not None,
            }
            for plan, report in zip(plans, out.reports)
        ]
        summary = fleet_summary(qos)
        return {
            "ok": out.ok,
            "kind": "fleet",
            "executed": out.executed,
            "cached": out.cached,
            "failures": [
                {"label": label, "error": f"{type(e).__name__}: {e}"}
                for label, e in out.failures
            ],
            "digest": _canonical_digest({"tenants": tenants,
                                         "summary": summary}),
            "summary": summary,
            "shards": shards,
            "tenants": tenants,
        }


# ----------------------------------------------------------------------
# the HTTP layer
# ----------------------------------------------------------------------
_MAX_BODY = 8 * 1024 * 1024  # refuse absurd request bodies


def _http_response(
    status: int, body: bytes, content_type: str = "application/json"
) -> bytes:
    reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
              405: "Method Not Allowed", 413: "Payload Too Large"}
    head = (
        f"HTTP/1.1 {status} {reason.get(status, 'Error')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n\r\n"
    )
    return head.encode() + body


def _json_response(status: int, doc: Any) -> bytes:
    return _http_response(
        status, json.dumps(doc, sort_keys=True).encode() + b"\n"
    )


async def _read_request(reader: asyncio.StreamReader):
    """Parse one request: (method, path, body) or None on a bad/empty
    stream."""
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    parts = line.decode("latin-1").split()
    if len(parts) < 2:
        return None
    method, path = parts[0].upper(), parts[1]
    length = 0
    while True:
        hdr = await reader.readline()
        if hdr in (b"\r\n", b"\n", b""):
            break
        name, _, value = hdr.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            try:
                length = int(value.strip())
            except ValueError:
                return None
    if length > _MAX_BODY:
        return method, path, None  # signal 413
    body = await reader.readexactly(length) if length else b""
    return method, path, body


def make_http_handler(service: FleetService, pool: ThreadPoolExecutor):
    """The ``asyncio.start_server`` connection callback: one request
    per connection (Connection: close), simulation work runs in
    ``pool`` so the loop keeps answering health checks."""

    async def handle(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            req = await _read_request(reader)
            if req is None:
                return
            method, path, body = req
            if body is None:
                writer.write(_json_response(
                    413, _request_error("request body too large")
                ))
                return
            if method == "GET" and path == "/healthz":
                writer.write(_json_response(200, {"ok": True}))
            elif method == "GET" and path == "/stats":
                writer.write(_json_response(200, service.stats()))
            elif method == "GET" and path == "/metrics":
                from ..obs.export import stats_prometheus_text

                text = stats_prometheus_text(service.stats())
                writer.write(_http_response(
                    200, text.encode(), "text/plain; version=0.0.4"
                ))
            elif method == "POST" and path in ("/", "/simulate"):
                try:
                    payload = json.loads(body or b"null")
                except ValueError:
                    writer.write(_json_response(
                        400, _request_error("request body is not JSON")
                    ))
                    return
                loop = asyncio.get_running_loop()
                doc = await loop.run_in_executor(
                    pool, service.handle_request, payload
                )
                writer.write(_json_response(200 if doc.get("ok") else 400,
                                            doc))
            elif method in ("GET", "POST"):
                writer.write(_json_response(
                    404, _request_error(f"no such route {path}")
                ))
            else:
                writer.write(_json_response(
                    405, _request_error(f"method {method} not allowed")
                ))
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    return handle


async def serve_forever(
    service: FleetService,
    host: str = "127.0.0.1",
    port: int = 8765,
    *,
    ready: Optional[threading.Event] = None,
    bound: Optional[list] = None,
) -> None:
    """Run the server until cancelled.  ``ready``/``bound`` let a
    launcher (CLI, tests) learn the bound address — with ``port=0`` the
    OS picks a free one."""
    pool = ThreadPoolExecutor(
        max_workers=4, thread_name_prefix="repro-serve"
    )
    server = await asyncio.start_server(
        make_http_handler(service, pool), host, port
    )
    try:
        addr = server.sockets[0].getsockname()
        if bound is not None:
            bound.append((addr[0], addr[1]))
        if ready is not None:
            ready.set()
        async with server:
            await server.serve_forever()
    finally:
        pool.shutdown(wait=False, cancel_futures=True)


class ServerHandle:
    """A running server in a background thread (tests, smoke checks)."""

    def __init__(self, host: str, port: int, thread: threading.Thread,
                 loop: asyncio.AbstractEventLoop, task: "asyncio.Task"):
        self.host = host
        self.port = port
        self._thread = thread
        self._loop = loop
        self._task = task

    def stop(self, timeout: float = 5.0) -> None:
        """Cancel the serve task and join the server thread."""
        self._loop.call_soon_threadsafe(self._task.cancel)
        self._thread.join(timeout)


def start_server_thread(
    service: FleetService, host: str = "127.0.0.1", port: int = 0
) -> ServerHandle:
    """Start :func:`serve_forever` on a fresh event loop in a daemon
    thread and return once the socket is bound."""
    ready = threading.Event()
    bound: list = []
    box: dict = {}

    def run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        task = loop.create_task(
            serve_forever(service, host, port, ready=ready, bound=bound)
        )
        box["loop"] = loop
        box["task"] = task
        try:
            loop.run_until_complete(task)
        except asyncio.CancelledError:
            pass
        finally:
            loop.close()

    thread = threading.Thread(
        target=run, name="repro-serve", daemon=True
    )
    thread.start()
    if not ready.wait(timeout=10.0):
        raise ReproError("serve thread failed to bind within 10 s")
    bhost, bport = bound[0]
    return ServerHandle(bhost, bport, thread, box["loop"], box["task"])
