"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands
-----------
``characterize``
    Table 2 / Fig. 13 metrics for trace files (SYSTOR'17 or MSR) or the
    built-in synthetic presets.
``run``
    Simulate one trace under one scheme and print the full report.
``compare``
    Run all three schemes on the same trace and print the normalised
    comparison (the Fig. 9/10/11 view).
``figures``
    Regenerate paper figures by name (or ``all``), writing the rendered
    tables to an output directory.
``check``
    Correctness harness (:mod:`repro.check`): differential replay of a
    trace across all schemes with invariant sweeps on (point run), a
    seeded ``--fuzz N`` campaign over random synthetic workloads, or a
    ``--replay`` of a dumped counterexample.
``profile``
    Latency attribution over the pinned bench-gate scenarios: per-phase
    breakdown tables, a Fig. 4-style stacked-bar SVG, optional phase
    Chrome traces and an optional cProfile wall-clock harness.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .config import SCHEMES, SimConfig, SSDConfig
from .experiments.runner import ExperimentContext, run_trace
from .metrics.report import normalize, render_table
from .traces.model import Trace
from .traces.msr import load_msr
from .traces.stats import characterize
from .traces.systor import load_systor
from .units import KIB


def _load_trace(args, cfg: SSDConfig) -> Trace:
    if getattr(args, "workload", None):
        from .traces.workload_spec import WorkloadSpec, compile_workload

        spec = WorkloadSpec.from_json(Path(args.workload).read_text())
        return compile_workload(spec, int(cfg.logical_sectors * 0.9))
    if args.trace:
        loaders = {
            "msr": load_msr,
            "systor": load_systor,
        }
        if args.format == "blktrace":
            from .traces.blktrace import load_blktrace

            trace = load_blktrace(args.trace)
        else:
            trace = loaders[args.format](args.trace)
        return trace.clamped_to(int(cfg.logical_sectors * 0.9))
    from .experiments.workloads import lun_specs
    from .traces.synthetic import generate_trace

    specs = {s.name: s for s in lun_specs(cfg, scale=args.scale)}
    if args.lun not in specs:
        raise SystemExit(f"unknown lun preset {args.lun!r}; have {sorted(specs)}")
    return generate_trace(specs[args.lun])


def _device(args) -> SSDConfig:
    cfg = SSDConfig.paper_table1() if args.full_device else SSDConfig.bench_default()
    if args.page_size:
        cfg = cfg.with_page_size(args.page_size * KIB)
    return cfg


def _sim_cfg(args) -> SimConfig:
    cfg = SimConfig(
        aged_used=args.aged_used,
        aged_valid=args.aged_valid,
        progress=getattr(args, "progress", False),
        queue_depth=getattr(args, "queue_depth", None),
    )
    if getattr(args, "event_frontend", False):
        cfg = cfg.replace_frontend(enabled=True)
    return cfg


def _store(args):
    """The persistent ResultStore named by ``--store`` (or None)."""
    if not getattr(args, "store", None):
        return None
    from .experiments.parallel import ResultStore

    return ResultStore(args.store)


def _add_fault_sweep(p: argparse.ArgumentParser) -> None:
    """Shared fault-intensity sweep axis (``faults`` and ``endure``)."""
    p.add_argument("--levels", type=float, nargs="+",
                   default=[0.0, 0.5, 1.0, 2.0],
                   help="intensity multipliers on the stress preset "
                        "(0 = injection off)")
    p.add_argument("--fault-seed", type=int, default=7,
                   help="fault-injection RNG seed")


def _fault_axis(args):
    """(base FaultConfig, levels) from the shared sweep arguments."""
    from .config import FaultConfig

    return FaultConfig.stress(seed=args.fault_seed), list(args.levels)


def _add_parallel(p: argparse.ArgumentParser) -> None:
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes for independent runs "
                        "(default 1 = in-process)")
    p.add_argument("--store",
                   help="directory of the persistent result store; "
                        "completed runs are reused across invocations")


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--trace", help="trace file (SYSTOR'17 by default)")
    p.add_argument("--workload",
                   help="fio-style JSON workload spec (instead of a trace)")
    p.add_argument("--format", choices=("systor", "msr", "blktrace"),
                   default="systor")
    p.add_argument("--lun", default="lun1",
                   help="synthetic preset when no --trace given")
    p.add_argument("--scale", type=float, default=0.01,
                   help="request-count scale for synthetic presets")
    p.add_argument("--page-size", type=int, choices=(4, 8, 16),
                   help="flash page size in KiB (default 8)")
    p.add_argument("--full-device", action="store_true",
                   help="use the full Table 1 geometry (slow)")
    p.add_argument("--aged-used", type=float, default=0.90)
    p.add_argument("--aged-valid", type=float, default=0.398)
    p.add_argument("--progress", action="store_true",
                   help="print a throttled progress line to stderr")
    p.add_argument("--queue-depth", type=int, metavar="N",
                   help="host NCQ depth (default: unlimited)")
    p.add_argument("--event-frontend", action="store_true",
                   help="replay through the event-driven frontend "
                        "(hazard-aware NCQ with per-chip schedulers) "
                        "instead of the sequential loop")


def cmd_characterize(args) -> int:
    """``repro characterize``: Table 2 metrics for traces."""
    traces = []
    if args.files:
        loader = load_msr if args.format == "msr" else load_systor
        traces = [loader(f) for f in args.files]
    else:
        cfg = SSDConfig.bench_default()
        from .experiments.workloads import lun_traces

        traces = lun_traces(cfg, scale=args.scale)
    rows = {}
    for t in traces:
        st = characterize(t, args.page_size_kib * KIB)
        rows[t.name] = [
            st.requests,
            f"{st.write_ratio:.1%}",
            f"{st.mean_write_kb:.1f}KB",
            f"{st.unaligned_ratio:.1%}",
            f"{st.across_ratio:.1%}",
        ]
    print(render_table(
        f"trace characterisation ({args.page_size_kib} KiB pages)",
        ["requests", "write R", "write SZ", "unaligned", "across R"],
        rows,
    ))
    return 0


def cmd_run(args) -> int:
    """``repro run``: simulate one scheme on one trace."""
    cfg = _device(args)
    trace = _load_trace(args, cfg)
    rep = run_trace(args.scheme, trace, cfg, _sim_cfg(args))
    print(cfg.summary())
    print(f"\n{rep.scheme} on {rep.trace_name}: {rep.requests} requests "
          f"in {rep.wall_seconds:.1f}s wall time")
    rows = {
        "latency": [
            f"read {rep.mean_read_ms:.3f} ms",
            f"write {rep.mean_write_ms:.3f} ms",
            f"total {rep.total_io_ms / 1000:.2f} s",
        ],
        "flash ops": [
            f"reads {rep.counters.total_reads}",
            f"writes {rep.counters.total_writes}",
            f"erases {rep.erase_count}",
        ],
        "map share": [
            f"W {rep.counters.map_write_share():.2%}",
            f"R {rep.counters.map_read_share():.2%}",
            f"DRAM {rep.counters.dram_accesses}",
        ],
        "health": [
            f"cache hits {rep.cache_hits}",
            f"GC stalls {rep.gc_stalls}",
            "",
        ],
    }
    print(render_table("results", ["", "", ""], rows))
    for k in sorted(rep.extra):
        print(f"  {k}: {rep.extra[k]}")
    return 0


def cmd_trace(args) -> int:
    """``repro trace``: replay a workload with full observability on and
    dump the artifacts (Chrome trace, span JSONL, Prometheus snapshot,
    counter/series JSON) to ``--out``."""
    from .flash.service import FlashService
    from .ftl import make_ftl
    from .sim.engine import Simulator

    cfg = _device(args)
    trace = _load_trace(args, cfg)
    sim_cfg = _sim_cfg(args).replace_observability(
        enabled=True,
        trace=True,
        sample_interval_ms=args.sample_interval_ms,
    )
    service = FlashService(cfg)
    ftl = make_ftl(args.scheme, service)
    sim = Simulator(ftl, sim_cfg)
    rep = sim.run(trace)
    paths = sim.obs.write_artifacts(args.out, rep.counters, rep.extra)
    print(f"{rep.scheme} on {rep.trace_name}: {rep.requests} requests, "
          f"{sim.obs.bus.events_emitted} events, "
          f"{len(sim.obs.recorder)} spans "
          f"in {rep.wall_seconds:.1f}s wall time")
    hist = sim.obs.recorder.path_histogram()
    if hist:
        print("FTL paths: " + ", ".join(
            f"{k}={v}" for k, v in sorted(hist.items())
        ))
    for kind, path in paths.items():
        print(f"  {kind}: {path}")
    print("open the Chrome trace at https://ui.perfetto.dev "
          "or chrome://tracing")
    return 0


def cmd_profile(args) -> int:
    """``repro profile``: where does each request's latency go?

    Replays the pinned bench-gate scenarios (or a ``--scenario``
    subset) with latency attribution on and writes, under ``--out``:

    * ``breakdown.txt`` — per-scenario tables of mean ms per request
      split by attribution phase and request class;
    * ``profile.svg`` — the paper's Fig. 4 view: one stacked bar per
      scenario, one segment per phase;
    * ``attribution-<scenario>.json`` — the full attribution summary
      (sketches included) for downstream analysis;
    * with ``--trace``, ``trace-<scenario>.json`` — a Chrome trace
      whose request slices carry per-phase sub-slices;
    * with ``--cprofile``, ``cprofile-<scenario>.pstats`` plus a
      ``cprofile.txt`` top-function report (wall-clock harness).
    """
    import cProfile
    import io
    import pstats

    from .experiments.benchgate import scenarios
    from .experiments.charts import stacked_bar_svg
    from .flash.service import FlashService
    from .ftl import make_ftl
    from .obs.attribution import AttributionRecorder, PHASES
    from .sim.engine import Simulator

    available = {sc.name: sc for sc in scenarios()}
    names = args.scenario or list(available)
    unknown = [n for n in names if n not in available]
    if unknown:
        raise SystemExit(
            f"unknown scenario(s) {unknown}; have {sorted(available)}"
        )
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    tables: list[str] = []
    per_scenario_phase: dict[str, dict[str, float]] = {}
    cprofile_reports: list[str] = []
    for name in names:
        sc = available[name]
        cfg = sc.make_cfg()
        trace = sc.make_trace(cfg)
        sim_cfg = sc.make_sim_cfg().replace_observability(
            enabled=True, attribution=True, trace=args.trace
        )
        service = FlashService(cfg)
        ftl = make_ftl(sc.scheme, service)
        sim = Simulator(ftl, sim_cfg)
        if args.cprofile:
            prof = cProfile.Profile()
            prof.enable()
            rep = sim.run(trace)
            prof.disable()
            pstats_path = out / f"cprofile-{name}.pstats"
            prof.dump_stats(pstats_path)
            buf = io.StringIO()
            stats = pstats.Stats(prof, stream=buf)
            stats.sort_stats("cumulative").print_stats(args.top)
            cprofile_reports.append(
                f"== {name} ({rep.requests} requests, "
                f"{rep.wall_seconds:.2f}s wall) ==\n{buf.getvalue()}"
            )
            print(f"  cprofile: {pstats_path}")
        else:
            rep = sim.run(trace)
        summary = rep.attribution or {}
        with open(out / f"attribution-{name}.json", "w") as fh:
            json.dump(summary, fh, indent=1, sort_keys=True)
        if args.trace and sim.obs is not None and sim.obs.recorder is not None:
            trace_path = out / f"trace-{name}.json"
            sim.obs.recorder.write_chrome(trace_path)
            print(f"  chrome trace: {trace_path}")

        means = AttributionRecorder.mean_phase_breakdown(summary)
        requests = summary.get("requests", {})
        phases = [
            p for p in PHASES
            if any(cls.get(p, 0.0) > 0 for cls in means.values())
        ]
        rows = {
            f"{cls} (n={requests.get(cls, 0)})": [
                means[cls].get(p, 0.0) for p in phases
            ]
            for cls in sorted(means)
        }
        table = render_table(
            f"{name} ({sc.scheme}): mean ms/request by phase",
            phases,
            rows,
        )
        tables.append(table)
        print(table)
        print()

        totals = summary.get("phase_ms", {})
        n_total = sum(requests.values()) or 1
        per_scenario_phase[name] = {
            p: sum(cls.get(p, 0.0) for cls in totals.values()) / n_total
            for p in PHASES
        }

    breakdown_path = out / "breakdown.txt"
    breakdown_path.write_text("\n\n".join(tables) + "\n")
    print(f"wrote {breakdown_path}")

    shown = [
        p for p in PHASES
        if any(d.get(p, 0.0) > 0 for d in per_scenario_phase.values())
    ]
    svg = stacked_bar_svg(
        names,
        {p: [per_scenario_phase[n].get(p, 0.0) for n in names] for p in shown},
        title="Mean request latency by attribution phase (ms)",
    )
    svg_path = out / "profile.svg"
    svg_path.write_text(svg)
    print(f"wrote {svg_path}")
    if cprofile_reports:
        cp_path = out / "cprofile.txt"
        cp_path.write_text("\n".join(cprofile_reports))
        print(f"wrote {cp_path}")
    return 0


def cmd_compare(args) -> int:
    """``repro compare``: all three schemes on one trace.

    The three runs are independent, so ``--jobs 3`` fans them out and
    ``--store`` reuses any of them finished by an earlier invocation.
    """
    from .experiments.parallel import RunSpec, execute_runs

    cfg = _device(args)
    trace = _load_trace(args, cfg)
    sim_cfg = _sim_cfg(args)
    specs = [RunSpec.make(s, trace, cfg, sim_cfg) for s in SCHEMES]
    outcome = execute_runs(
        specs,
        jobs=args.jobs,
        store=_store(args),
        progress=getattr(args, "progress", False),
    )
    reports = dict(zip(SCHEMES, outcome.reports))
    io = normalize({s: r.total_io_ms for s, r in reports.items()})
    er = normalize({s: float(max(1, r.erase_count)) for s, r in reports.items()})
    rows = {
        s: [
            reports[s].mean_read_ms,
            reports[s].mean_write_ms,
            io[s],
            er[s],
            reports[s].counters.total_writes,
        ]
        for s in SCHEMES
    }
    print(render_table(
        f"{trace.name}: scheme comparison (io/erases normalised to FTL)",
        ["read ms", "write ms", "norm io", "norm erases", "flash writes"],
        rows,
    ))
    return 0


def cmd_faults(args) -> int:
    """``repro faults``: reliability sweep over fault-injection intensity.

    Runs the same trace and scheme at several intensities of the
    :meth:`~repro.config.FaultConfig.stress` preset (0 = injection off)
    and tabulates the reliability counters next to the latency impact.
    The runs are independent, so ``--jobs``/``--store`` apply as for
    ``compare``; see ``docs/reliability.md`` for the model.
    """
    from dataclasses import replace as _dc_replace

    from .experiments.parallel import RunSpec, execute_runs

    cfg = _device(args)
    trace = _load_trace(args, cfg)
    base, levels = _fault_axis(args)
    sim = _sim_cfg(args)
    specs = [
        RunSpec.make(
            args.scheme, trace, cfg,
            _dc_replace(sim, faults=base.scaled(lvl)),
        )
        for lvl in levels
    ]
    outcome = execute_runs(
        specs,
        jobs=args.jobs,
        store=_store(args),
        progress=getattr(args, "progress", False),
    )
    rows = {}
    for lvl, rep in zip(levels, outcome.reports):
        c = rep.counters
        rows[f"x{lvl:g}"] = [
            c.read_retries,
            c.uncorrectable_reads,
            c.program_fails,
            c.erase_fails,
            c.bad_blocks,
            c.fault_relocations,
            rep.mean_read_ms,
            rep.mean_write_ms,
        ]
    print(render_table(
        f"{trace.name} / {args.scheme}: fault-intensity sweep "
        f"(stress preset, seed {args.fault_seed})",
        ["retries", "uncorr", "pgm fail", "ers fail", "bad blk",
         "reloc", "read ms", "write ms"],
        rows,
    ))
    return 0


def cmd_endure(args) -> int:
    """``repro endure``: GC-policy endurance zoo.

    Sweeps the GC policy zoo against the shared fault-intensity axis
    (same ``--levels``/``--fault-seed`` wiring as ``repro faults``) and
    scores every cell on write amplification, wear variance and tail
    latency.  Cells are independent runs, so ``--jobs``/``--store``
    fan-out and memoisation apply; see ``docs/gc_policies.md``.
    """
    from .config import GC_POLICIES
    from .experiments.endurance import ROW_HEADERS, run_endurance

    cfg = _device(args)
    trace = _load_trace(args, cfg)
    if args.policies:
        policies = tuple(
            p for ps in args.policies for p in ps.split(",") if p
        )
        for pol in policies:
            if pol not in GC_POLICIES:
                raise SystemExit(
                    f"unknown GC policy {pol!r}; have {GC_POLICIES}"
                )
    else:
        policies = GC_POLICIES
    base, levels = _fault_axis(args)
    res = run_endurance(
        trace,
        cfg,
        _sim_cfg(args),
        scheme=args.scheme,
        policies=policies,
        fault_levels=levels,
        fault_seed=args.fault_seed,
        fault_base=base,
        jobs=args.jobs,
        store=_store(args),
        progress=getattr(args, "progress", False),
    )
    print(render_table(
        f"{trace.name} / {args.scheme}: endurance zoo "
        f"(policy x fault level, stress seed {args.fault_seed})",
        ROW_HEADERS,
        res.rows(),
    ))
    return 0


def cmd_check(args) -> int:
    """``repro check``: differential replay & invariant checking.

    Three modes: ``--replay <file>`` re-runs a dumped counterexample;
    ``--fuzz N`` runs a seeded campaign of random synthetic workloads
    on a tiny geometry; otherwise the selected trace is replayed once
    across the requested schemes on the bench device.  Exit code 0
    means every comparison agreed and every invariant sweep passed.
    """
    from .check import differential_replay, replay_counterexample, run_fuzz
    from .check.shrink import dump_counterexample

    schemes = tuple(args.schemes) if args.schemes else SCHEMES
    policies: tuple = ()
    if getattr(args, "gc_policies", None):
        from .config import GC_POLICIES

        if args.gc_policies.strip() == "all":
            policies = tuple(p for p in GC_POLICIES if p != "greedy")
        else:
            policies = tuple(
                p for p in args.gc_policies.split(",") if p.strip()
            )
            for pol in policies:
                if pol not in GC_POLICIES:
                    raise SystemExit(
                        f"unknown GC policy {pol!r}; have {GC_POLICIES}"
                    )

    if args.replay:
        res = replay_counterexample(args.replay)
        print(res.summary())
        return 0 if res.ok else 1

    if args.fuzz:
        out = run_fuzz(
            args.fuzz,
            seed=args.seed,
            schemes=schemes,
            every=args.every,
            requests=args.requests,
            out_dir=args.out,
            attribution=args.attribution,
            frontend=args.frontend,
            batch=args.batch,
            policies=policies,
            log=print,
        )
        print(
            f"fuzz: {out.cases} case(s), {len(out.failures)} failing, "
            f"{len(out.artifacts)} counterexample(s) dumped"
        )
        return 0 if out.ok else 1

    cfg = _device(args)
    trace = _load_trace(args, cfg)
    qd_sweep: tuple = ()
    if args.qd_sweep:
        try:
            qd_sweep = tuple(
                int(q) for q in args.qd_sweep.split(",") if q.strip()
            )
        except ValueError:
            raise SystemExit(
                f"--qd-sweep expects comma-separated integers, "
                f"got {args.qd_sweep!r}"
            )
    res = differential_replay(
        trace,
        cfg,
        _sim_cfg(args),
        schemes=schemes,
        every=args.every,
        compare_cache=not args.skip_cache,
        compare_jobs=not args.skip_jobs,
        attribution=args.attribution,
        frontend=args.frontend,
        qd_sweep=qd_sweep,
        batch=args.batch,
        policies=policies,
    )
    print(res.summary())
    if not res.ok and args.out:
        path = dump_counterexample(
            Path(args.out) / f"counterexample-{trace.name}.json",
            trace=trace,
            cfg=cfg,
            sim_cfg=_sim_cfg(args),
            failures=res.failures,
            schemes=schemes,
        )
        print(f"counterexample: {path}")
    return 0 if res.ok else 1


#: figures built from the lun1-lun6 x scheme sweep at the default page
#: size — the points :func:`_prewarm_ctx` fans out before rendering
_SWEEP_FIGURES = frozenset(
    {"fig4", "fig8", "fig9", "fig10", "fig11", "fig12"}
)


def _prewarm_ctx(ctx: ExperimentContext, names) -> None:
    """Fan out every simulation the requested figures need, one batch.

    Figure functions call ``ctx.run`` point by point; prewarming first
    lets ``--jobs N`` parallelise the whole session (and primes the
    persistent store in one pass).
    """
    if ctx.jobs <= 1 and ctx.store is None:
        return
    from .experiments.figures import PAGE_SIZES

    pages = set()
    if _SWEEP_FIGURES & set(names):
        pages.add(ctx.cfg.page_size_bytes)
    if "fig14" in names:
        pages.update(PAGE_SIZES)
    if pages:
        ctx.prewarm(page_sizes=sorted(pages))


def cmd_figures(args) -> int:
    """``repro figures``: regenerate paper figures by name."""
    from .experiments import figures as F

    names = args.names or ["all"]
    if names == ["all"]:
        names = list(F.ALL_FIGURES)
    unknown = [n for n in names if n not in F.ALL_FIGURES]
    if unknown:
        raise SystemExit(f"unknown figures {unknown}; have {sorted(F.ALL_FIGURES)}")
    ctx = ExperimentContext(
        cfg=SSDConfig.paper_table1() if args.full_device else SSDConfig.bench_default(),
        sim_cfg=SimConfig(aged_used=args.aged_used, aged_valid=args.aged_valid),
        scale=args.scale,
        jobs=args.jobs,
        store=_store(args),
    )
    _prewarm_ctx(ctx, names)
    out = Path(args.out) if args.out else None
    if out:
        out.mkdir(parents=True, exist_ok=True)
    for name in names:
        result = F.ALL_FIGURES[name](ctx)
        print(result.rendered)
        print()
        if out:
            (out / f"{name}.txt").write_text(result.rendered + "\n")
    return 0


def cmd_summary(args) -> int:
    """``repro summary``: generate the paper-vs-measured markdown."""
    from .experiments.summary import render_experiments_md

    ctx = ExperimentContext(
        cfg=SSDConfig.paper_table1() if args.full_device else SSDConfig.bench_default(),
        sim_cfg=SimConfig(
            aged_used=args.aged_used,
            aged_valid=args.aged_valid,
            aging_style="vdi",
        ),
        scale=args.scale,
        jobs=args.jobs,
        store=_store(args),
    )
    from .experiments.figures import ALL_FIGURES

    _prewarm_ctx(ctx, args.names or list(ALL_FIGURES))
    md = render_experiments_md(ctx, figures=args.names or None)
    if args.out:
        Path(args.out).write_text(md + "\n")
        print(f"wrote {args.out}")
    else:
        print(md)
    return 0


def cmd_lint(args) -> int:
    """``repro lint``: sanity-check trace files before simulating."""
    from .traces.lint import has_errors, lint_trace

    loaders = {"systor": load_systor, "msr": load_msr}
    if args.format == "blktrace":
        from .traces.blktrace import load_blktrace as loader
    else:
        loader = loaders[args.format]
    cfg = SSDConfig.bench_default()
    worst = 0
    for path in args.files:
        trace = loader(path)
        print(f"{path}: {len(trace)} requests")
        findings = lint_trace(
            trace,
            logical_sectors=cfg.logical_sectors if args.check_range else None,
            page_size_bytes=args.page_size_kib * KIB,
        )
        for f in findings:
            print(f"  {f}")
        if has_errors(findings):
            worst = 1
    return worst


def cmd_bench(args) -> int:
    """``repro bench``: run the pinned benchmark-gate scenario set.

    Writes ``BENCH_<rev>.json`` and, with ``--check``, compares output
    digests and normalized throughput against the committed baseline
    (see :mod:`repro.experiments.benchgate`).
    """
    from .experiments import benchgate

    argv: list[str] = ["--baseline", args.baseline]
    if args.out:
        argv += ["--out", args.out]
    if args.check:
        argv.append("--check")
    if args.batch:
        argv.append("--batch")
    return benchgate.main(argv)


def cmd_serve(args) -> int:
    """``repro serve``: the fleet-scale simulation service.

    Binds a local HTTP endpoint (see :mod:`repro.fleet.service` for the
    request schema) backed by a shared ResultStore, so repeated sweep
    and fleet requests are answered from cache without re-simulating.
    ``--once FILE`` handles a single JSON request from a file (or ``-``
    for stdin) and prints the response instead of serving — the same
    code path, usable from CI without managing a daemon.
    """
    import asyncio
    import json as _json

    from .experiments.parallel import ResultStore
    from .fleet.service import FleetService, serve_forever

    store = ResultStore(args.store)
    service = FleetService(
        store, device=SSDConfig.preset(args.device), jobs=args.jobs
    )
    if args.once:
        if args.once == "-":
            payload = _json.load(sys.stdin)
        else:
            payload = _json.loads(Path(args.once).read_text())
        doc = service.handle_request(payload)
        print(_json.dumps(doc, indent=1, sort_keys=True))
        return 0 if doc.get("ok") else 1

    bound: list = []

    async def run() -> None:
        import threading

        ready = threading.Event()
        task = asyncio.ensure_future(serve_forever(
            service, args.host, args.port, ready=ready, bound=bound
        ))
        while not ready.is_set():
            await asyncio.sleep(0.01)
        host, port = bound[0]
        print(f"repro serve listening on http://{host}:{port} "
              f"(store: {store.root}, device: {args.device}, "
              f"jobs: {args.jobs})", file=sys.stderr)
        await task

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("repro serve: shut down", file=sys.stderr)
    return 0


def cmd_report(args) -> int:
    """``repro report``: render the figure charts as an HTML report."""
    from .experiments.charts import render_report_html

    ctx = ExperimentContext(
        cfg=SSDConfig.paper_table1() if args.full_device else SSDConfig.bench_default(),
        sim_cfg=SimConfig(
            aged_used=args.aged_used,
            aged_valid=args.aged_valid,
            aging_style="vdi",
        ),
        scale=args.scale,
        jobs=args.jobs,
        store=_store(args),
    )
    from .experiments.figures import ALL_FIGURES

    _prewarm_ctx(ctx, list(ALL_FIGURES))
    html = render_report_html(ctx)
    out = Path(args.out)
    out.write_text(html)
    print(f"wrote {out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    ap = argparse.ArgumentParser(
        prog="repro",
        description="Across-FTL reproduction (ICPP 2023) command line",
    )
    sub = ap.add_subparsers(dest="command", required=True)

    p = sub.add_parser("characterize", help="Table 2 metrics for traces")
    p.add_argument("files", nargs="*")
    p.add_argument("--format", choices=("systor", "msr"), default="systor")
    p.add_argument("--scale", type=float, default=0.01)
    p.add_argument("--page-size-kib", type=int, default=8)
    p.set_defaults(func=cmd_characterize)

    p = sub.add_parser("run", help="simulate one scheme on one trace")
    p.add_argument("--scheme", choices=SCHEMES, default="across")
    _add_common(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("compare", help="all three schemes on one trace")
    _add_common(p)
    _add_parallel(p)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser(
        "trace",
        help="replay with tracing on and dump observability artifacts",
    )
    p.add_argument("--scheme", choices=SCHEMES, default="across")
    _add_common(p)
    p.add_argument("--out", default="obs-out",
                   help="artifact output directory")
    p.add_argument("--sample-interval-ms", type=float, default=10.0,
                   help="sampler tick in simulated ms (0 disables)")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "profile",
        help="latency attribution over the pinned bench scenarios",
    )
    p.add_argument("--scenario", action="append", metavar="NAME",
                   help="bench-gate scenario to profile (repeatable; "
                        "default: all five)")
    p.add_argument("--out", default="profile-out",
                   help="artifact output directory")
    p.add_argument("--trace", action="store_true",
                   help="also write per-scenario Chrome traces with "
                        "phase sub-slices")
    p.add_argument("--cprofile", action="store_true",
                   help="wrap each run in cProfile and dump .pstats + "
                        "a top-function report")
    p.add_argument("--top", type=int, default=25,
                   help="functions shown in the cProfile report")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("figures", help="regenerate paper figures")
    p.add_argument("names", nargs="*", help="figure ids (fig2..fig14, table2) or 'all'")
    p.add_argument("--scale", type=float, default=0.03)
    p.add_argument("--out", help="directory for rendered outputs")
    p.add_argument("--full-device", action="store_true")
    p.add_argument("--aged-used", type=float, default=0.90)
    p.add_argument("--aged-valid", type=float, default=0.398)
    _add_parallel(p)
    p.set_defaults(func=cmd_figures)

    p = sub.add_parser("summary", help="paper-vs-measured markdown")
    p.add_argument("names", nargs="*", help="figure subset (default: all)")
    p.add_argument("--scale", type=float, default=0.03)
    p.add_argument("--out", help="output markdown path")
    p.add_argument("--full-device", action="store_true")
    p.add_argument("--aged-used", type=float, default=0.90)
    p.add_argument("--aged-valid", type=float, default=0.398)
    _add_parallel(p)
    p.set_defaults(func=cmd_summary)

    p = sub.add_parser("report", help="HTML chart report of the figures")
    p.add_argument("--out", default="report.html")
    p.add_argument("--scale", type=float, default=0.03)
    p.add_argument("--full-device", action="store_true")
    p.add_argument("--aged-used", type=float, default=0.90)
    p.add_argument("--aged-valid", type=float, default=0.398)
    _add_parallel(p)
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "faults",
        help="reliability sweep under scaled fault injection",
    )
    p.add_argument("--scheme", choices=SCHEMES, default="across")
    _add_common(p)
    _add_fault_sweep(p)
    _add_parallel(p)
    p.set_defaults(func=cmd_faults)

    p = sub.add_parser(
        "endure",
        help="GC-policy endurance zoo (policy x fault-intensity sweep)",
    )
    p.add_argument("--scheme", choices=SCHEMES, default="across")
    p.add_argument("--gc-policies", dest="policies", action="append",
                   metavar="P1[,P2,...]",
                   help="GC policies to sweep (repeatable or "
                        "comma-separated; default: the full zoo)")
    _add_common(p)
    _add_fault_sweep(p)
    _add_parallel(p)
    p.set_defaults(func=cmd_endure)

    p = sub.add_parser(
        "bench",
        help="run the pinned benchmark scenarios and gate on a baseline",
    )
    p.add_argument("--baseline", default="BENCH_baseline.json",
                   help="committed baseline JSON to compare against")
    p.add_argument("--out", default=None,
                   help="output JSON path (default: BENCH_<git rev>.json)")
    p.add_argument("--check", action="store_true",
                   help="exit nonzero on output drift or >15%% "
                        "normalized-throughput regression vs the baseline")
    p.add_argument("--batch", action="store_true",
                   help="run the scenarios through the batch execution "
                        "layer (digests must match the scalar baseline)")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "check",
        help="differential replay & invariant checking (repro.check)",
    )
    p.add_argument("--fuzz", type=int, metavar="N",
                   help="run N seeded random-workload fuzz cases on a "
                        "tiny geometry instead of a point run")
    p.add_argument("--seed", type=int, default=2023,
                   help="base seed of the fuzz campaign")
    p.add_argument("--requests", type=int, default=400,
                   help="requests per fuzz case")
    p.add_argument("--scheme", dest="schemes", action="append",
                   choices=SCHEMES,
                   help="scheme(s) to check (repeatable; default: all)")
    p.add_argument("--every", type=int, default=256,
                   help="invariant-sweep cadence in requests")
    p.add_argument("--out", default="check-out",
                   help="directory for counterexample dumps")
    p.add_argument("--replay", metavar="FILE",
                   help="re-run a dumped counterexample JSON and exit")
    p.add_argument("--skip-cache", action="store_true",
                   help="skip the cache-on vs cache-off comparison")
    p.add_argument("--skip-jobs", action="store_true",
                   help="skip the --jobs 1 vs --jobs N comparison")
    p.add_argument("--attribution", action="store_true",
                   help="run every leg with latency attribution on, "
                        "arming the per-request phase-conservation "
                        "invariant")
    p.add_argument("--frontend", action="store_true",
                   help="also replay each scheme through the "
                        "event-driven frontend (hazard-aware NCQ) and "
                        "compare its oracle read digest against the "
                        "sequential leg")
    p.add_argument("--batch", action="store_true",
                   help="also replay each scheme through the batch "
                        "execution layer (vectorised kernels) and "
                        "compare its oracle read digest against the "
                        "scalar leg; with --frontend a combined "
                        "batch+frontend leg runs too")
    p.add_argument("--qd-sweep", metavar="Q1,Q2,...",
                   help="with --frontend: additionally replay at each "
                        "listed host queue depth (point runs only), "
                        "e.g. 1,8,32")
    p.add_argument("--gc-policies", dest="gc_policies",
                   metavar="P1[,P2,...]",
                   help="also replay each scheme under the listed GC "
                        "policies ('all' = the whole zoo) and compare "
                        "oracle read digests against the default-policy "
                        "leg")
    _add_common(p)
    p.set_defaults(func=cmd_check)

    p = sub.add_parser(
        "serve",
        help="HTTP simulation service over a shared result store",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8765,
                   help="TCP port (0 = OS-assigned)")
    p.add_argument("--store", default="serve-store",
                   help="ResultStore directory answering repeat requests")
    p.add_argument("--device", choices=SSDConfig.PRESETS, default="bench",
                   help="device preset for requests that name none")
    p.add_argument("--jobs", type=int, default=1,
                   help="process-pool width for cache-missing runs")
    p.add_argument("--once", metavar="FILE",
                   help="handle one JSON request from FILE ('-' = stdin), "
                        "print the response and exit")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("lint", help="sanity-check trace files")
    p.add_argument("files", nargs="+")
    p.add_argument("--format", choices=("systor", "msr", "blktrace"),
                   default="systor")
    p.add_argument("--page-size-kib", type=int, default=8)
    p.add_argument("--check-range", action="store_true",
                   help="also check offsets against the bench device")
    p.set_defaults(func=cmd_lint)
    return ap


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
