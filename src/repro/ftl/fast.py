"""FAST: fully-associative hybrid log-block FTL (library extension).

The successor to BAST in the hybrid-mapping lineage: instead of one
log block *per* logical block (which thrashes when many blocks see a
few updates each), FAST shares a small pool of log blocks among **all**
logical blocks — any update appends to the current shared log block,
and a page-level map tracks the newest copies inside the log pool.

The price moves to reclamation: retiring the oldest log block forces a
*full merge of every logical block with a page in it* (the infamous
FAST merge storm).  Sequentially-filled logical blocks still get the
cheap switch merge via a dedicated sequential-log path (modelled here
as: a merge whose victim block holds a complete 0..N-1 run promotes it
directly — inherited from the shared merge machinery).

Like BAST, this scheme is not part of the paper's comparison set; it
exists to situate Across-FTL historically and passes the same
sector-version oracle.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

import numpy as np

from ..errors import ConfigError, MappingError, OutOfSpaceError
from ..metrics.counters import OpKind
from ..units import split_extent
from .base import BaseFTL, iter_bits, mask_range
from .meta import DataPageMeta


class FASTFTL(BaseFTL):
    """Fully-associative log-block FTL with block-level data mapping."""

    name = "fast"
    uses_generic_gc = False
    BLOCK_ENTRY_BYTES = 4
    LOG_ENTRY_BYTES = 8

    def __init__(self, service, *, log_blocks: int = 8, **kw):
        super().__init__(service, **kw)
        if log_blocks < 2:
            raise ConfigError("need at least 2 log blocks")
        self.ppb = self.geom.pages_per_block
        self.num_lbns = -(-self.logical_pages // self.ppb)
        #: logical block -> physical data block (-1 = none yet)
        self.block_map = np.full(self.num_lbns, -1, dtype=np.int64)
        #: lpn -> ppn of the newest copy living in the log pool
        self.log_map: dict[int, int] = {}
        #: retirement-ordered log blocks: block -> set of lbns inside
        self.log_blocks: OrderedDict[int, set[int]] = OrderedDict()
        self.max_logs = log_blocks
        self._open_log: int | None = None
        self._plane_cursor = 0
        self.full_merges = 0
        self.log_retirements = 0

    # ------------------------------------------------------------------
    def _alloc_block(self) -> int:
        arr = self.service.array
        n = self.geom.num_planes
        for i in range(n):
            plane = (self._plane_cursor + i) % n
            if arr.free_block_count(plane) > 0:
                self._plane_cursor = (plane + 1) % n
                return arr.pop_free_block(plane)
        raise OutOfSpaceError("no free block for FAST")

    def _ppn_of(self, lpn: int) -> int | None:
        """Newest copy: log pool first, then the data block slot."""
        ppn = self.log_map.get(lpn)
        if ppn is not None:
            return ppn
        lbn, off = divmod(lpn, self.ppb)
        pbn = int(self.block_map[lbn])
        if pbn >= 0:
            cand = pbn * self.ppb + off
            if self.service.array.is_valid(cand):
                return cand
        return None

    # ------------------------------------------------------------------
    # merges
    # ------------------------------------------------------------------
    def _merge_lbn(self, lbn: int, now: float) -> None:
        """Rebuild one logical block's data block from its newest pages
        (wherever they live), then drop its log-pool entries."""
        arr = self.service.array
        old_pbn = int(self.block_map[lbn])
        kind = self._kind(OpKind.GC)
        base_lpn = lbn * self.ppb
        srcs = [self._ppn_of(base_lpn + off) for off in range(self.ppb)]
        live = [off for off, s in enumerate(srcs) if s is not None]
        if not live:
            self.block_map[lbn] = -1
        else:
            new_pbn = self._alloc_block()
            for off in range(live[-1] + 1):
                src = srcs[off]
                dst = new_pbn * self.ppb + off
                if src is None:
                    # pad the hole so programming stays sequential
                    pad = DataPageMeta(base_lpn + off, 0, None)
                    self.service.program_page(
                        dst, pad, now, kind, timed=self.timed
                    )
                    self.service.invalidate(dst)
                    continue
                self.service.read_page(src, now, kind, timed=self.timed)
                meta = arr.meta(src)
                self.service.program_page(dst, meta, now, kind, timed=self.timed)
                arr.invalidate(src)
                self.log_map.pop(base_lpn + off, None)
            self.block_map[lbn] = new_pbn
        if old_pbn >= 0:
            for ppn in list(arr.valid_ppns(old_pbn)):
                arr.invalidate(ppn)
            self.service.erase_block(old_pbn, now, aging=self.aging)
        self.full_merges += 1

    def _retire_oldest_log(self, now: float) -> None:
        """The FAST merge storm: merging every logical block that has a
        page in the oldest log block, then erasing it."""
        attr = self.service.attr
        if attr is not None:
            # the merge storm is reclamation, not request service:
            # background for latency attribution like generic GC
            attr.suspend()
            try:
                self._retire_oldest_log_inner(now)
            finally:
                attr.resume()
        else:
            self._retire_oldest_log_inner(now)

    def _retire_oldest_log_inner(self, now: float) -> None:
        block, lbns = self.log_blocks.popitem(last=False)
        if self._open_log == block:
            self._open_log = None
        for lbn in sorted(lbns):
            # merge only lbns whose newest copies still live in this
            # block (later writes may have superseded them elsewhere)
            if any(
                self.log_map.get(lbn * self.ppb + off, -1) // self.ppb == block
                for off in range(self.ppb)
            ):
                self._merge_lbn(lbn, now)
        arr = self.service.array
        for ppn in list(arr.valid_ppns(block)):
            # anything still valid here belongs to log_map entries of
            # merged-away lbns; merging removed them, so this only
            # fires for stale safety — invalidate defensively
            meta = arr.meta(ppn)
            self.log_map.pop(meta.lpn, None)
            arr.invalidate(ppn)
        self.service.erase_block(block, now, aging=self.aging)
        self.log_retirements += 1

    def _log_slot(self, now: float) -> int:
        """Next free page in the shared log pool (opening/retiring log
        blocks as needed); returns the PPN to program."""
        arr = self.service.array
        if self._open_log is not None and arr.block_full(self._open_log):
            self._open_log = None
        if self._open_log is None:
            while len(self.log_blocks) >= self.max_logs:
                self._retire_oldest_log(now)
            self._open_log = self._alloc_block()
            self.log_blocks[self._open_log] = set()
        return self._open_log * self.ppb + int(arr.write_ptr[self._open_log])

    # ------------------------------------------------------------------
    # host API
    # ------------------------------------------------------------------
    def write(
        self, offset: int, size: int, now: float, stamps: Optional[dict] = None
    ) -> float:
        """Append every touched page's newest image to the shared log."""
        finish = now
        for lpn, rel_lo, count in split_extent(offset, size, self.spp):
            t = self._write_page(lpn, rel_lo, rel_lo + count, now, stamps)
            finish = max(finish, t)
        return finish

    def _write_page(
        self, lpn: int, rel_lo: int, rel_hi: int, now: float, stamps
    ) -> float:
        self.counters.count_dram()
        new_mask = mask_range(rel_lo, rel_hi)
        old_mask = self._pmt_mask[lpn]
        retained = old_mask & ~new_mask
        finish = now
        payload: Optional[dict] = {} if self.track_payload else None
        ppn = self._log_slot(now)  # may retire logs & relocate old copies
        old_ppn = self._ppn_of(lpn)
        if retained and old_ppn is not None:
            attr = self.service.attr
            if attr is not None:
                attr.read_label = "update_read"
            finish = self.service.read_page(
                old_ppn, now, self._kind(OpKind.DATA), timed=self.timed
            )
            if attr is not None:
                attr.read_label = None
            if not self.aging:
                self.counters.update_reads += 1
            if payload is not None:
                old_meta = self.service.array.meta(old_ppn)
                if old_meta.payload:
                    base = lpn * self.spp
                    for bit in iter_bits(retained):
                        sec = base + bit
                        if sec in old_meta.payload:
                            payload[sec] = old_meta.payload[sec]
        if payload is not None and stamps:
            base = lpn * self.spp
            for bit in iter_bits(new_mask):
                sec = base + bit
                if sec in stamps:
                    payload[sec] = stamps[sec]

        meta = DataPageMeta(lpn, old_mask | new_mask, payload)
        t = self.service.program_page(
            ppn, meta, finish, self._kind(OpKind.DATA), timed=self.timed
        )
        finish = max(finish, t)
        if old_ppn is not None:
            self.service.invalidate(old_ppn)
        self.log_map[lpn] = ppn
        self.log_blocks[self._open_log].add(lpn // self.ppb)
        self._pmt_mask[lpn] = old_mask | new_mask
        return finish

    # ------------------------------------------------------------------
    def read(
        self, offset: int, size: int, now: float
    ) -> tuple[float, Optional[dict]]:
        """Read each page's newest copy (log pool first)."""
        finish = now
        found: Optional[dict] = {} if self.track_payload else None
        for lpn, rel_lo, count in split_extent(offset, size, self.spp):
            self.counters.count_dram()
            present = self._pmt_mask[lpn] & mask_range(
                rel_lo, rel_lo + count
            )
            if not present:
                continue
            ppn = self._ppn_of(lpn)
            if ppn is None:
                continue
            t = self.service.read_page(
                ppn, now, self._kind(OpKind.DATA), timed=self.timed
            )
            finish = max(finish, t)
            if found is not None:
                base = lpn * self.spp
                self._read_stamps_from(
                    ppn, [base + bit for bit in iter_bits(present)], found
                )
        return finish, found

    # ------------------------------------------------------------------
    def trim(self, offset: int, size: int, now: float) -> float:
        """Drop data; log/data space reclaims lazily at merges."""
        for lpn, rel_lo, count in split_extent(offset, size, self.spp):
            mask = mask_range(rel_lo, rel_lo + count)
            remaining = self._pmt_mask[lpn] & ~mask
            self._pmt_mask[lpn] = remaining
            if remaining == 0:
                ppn = self._ppn_of(lpn)
                if ppn is not None:
                    self.service.invalidate(ppn)
                    self.log_map.pop(lpn, None)
        self.counters.count_dram()
        return now + self.cfg.timing.cache_access_ms

    # ------------------------------------------------------------------
    def mapping_table_bytes(self) -> int:
        """Block table plus the page-level map of the (small) log pool."""
        mapped = int((self.block_map >= 0).sum())
        return (
            mapped * self.BLOCK_ENTRY_BYTES
            + len(self.log_map) * self.LOG_ENTRY_BYTES
        )

    def rebuild_from_flash(self) -> int:
        """Not supported: the OOB model does not tag log vs data blocks."""
        raise MappingError("rebuild_from_flash is not supported for fast")

    def stats(self) -> dict:
        """Merge-storm statistics for the report."""
        s = super().stats()
        s.update(
            fast_full_merges=self.full_merges,
            fast_log_retirements=self.log_retirements,
            fast_log_entries=len(self.log_map),
        )
        return s

    def check_invariants(self) -> None:
        """FAST-specific consistency (the base PMT is unused here)."""
        for lpn, ppn in self.log_map.items():
            if not self.service.array.is_valid(ppn):
                raise MappingError(f"log map: LPN {lpn} -> invalid PPN {ppn}")
            if self.service.array.meta(ppn).lpn != lpn:
                raise MappingError(f"log page {ppn} holds foreign LPN")
            if ppn // self.ppb not in self.log_blocks:
                raise MappingError(
                    f"LPN {lpn} maps into a non-log block {ppn // self.ppb}"
                )