"""Dynamic page allocation with optional write-stream separation.

SSDsim-style dynamic allocation: logical pages have no fixed home; each
write takes the next free page of a per-plane *active block*, and
consecutive allocations round-robin across planes so a multi-page
request stripes over channels/chips and its sub-requests overlap
(paper §2.1, [16]).

GC migrations allocate in the victim's own plane (`allocate_in_plane`)
so collection never steals bandwidth or free space from other planes.
With ``hot_cold_separation`` enabled, migrated (cold) pages also fill
*separate* active blocks from fresh user (hot) data — the classic
stream separation that keeps blocks from mixing lifetimes and lowers
write amplification (exercised by ``bench_ablation_streams``).
"""

from __future__ import annotations

from ..errors import OutOfSpaceError
from ..flash.service import FlashService

#: allocation streams
STREAM_USER = 0
STREAM_GC = 1


class WriteAllocator:
    """Round-robin active-block allocator over all planes."""

    def __init__(self, service: FlashService, *, separate_streams: bool = False):
        self.service = service
        self.geom = service.geom
        #: when False, STREAM_GC shares the user stream's active blocks
        self.separate_streams = separate_streams
        n_streams = 2 if separate_streams else 1
        #: active (filling) block per [stream][plane]
        self._active: list[list[int | None]] = [
            [None] * self.geom.num_planes for _ in range(n_streams)
        ]
        self._cursor = 0
        # channel-first striping: consecutive allocations visit a
        # different chip each time so a multi-page request's
        # sub-requests overlap (SSDsim dynamic allocation)
        chips = self.geom.num_chips
        per_chip = self.geom.planes_per_chip
        self._plane_order = [
            (j % chips) * per_chip + (j // chips)
            for j in range(self.geom.num_planes)
        ]
        # hot-path binds: one allocation per flash program
        self._array = service.array
        self._ppb = self.geom.pages_per_block

    def _stream(self, stream: int) -> int:
        return stream if self.separate_streams else STREAM_USER

    # ------------------------------------------------------------------
    def active_blocks(self) -> set[int]:
        """Blocks currently open for writing (GC must not pick these)."""
        return {
            b for per_plane in self._active for b in per_plane if b is not None
        }

    def is_active(self, block: int) -> bool:
        """True when ``block`` is open for writing on any stream."""
        plane = self.geom.plane_of_block(block)
        return any(per_plane[plane] == block for per_plane in self._active)

    def active_in_plane(self, plane: int) -> list[int]:
        """Active block ids of ``plane`` across all streams."""
        return [
            per_plane[plane]
            for per_plane in self._active
            if per_plane[plane] is not None
        ]

    # ------------------------------------------------------------------
    def allocate_in_plane(
        self, plane: int, stream: int = STREAM_USER
    ) -> int | None:
        """Next free PPN in ``plane``, or None if the plane is exhausted."""
        arr = self._array
        ppb = self._ppb
        wp = arr._write_ptr
        active = self._active[stream if self.separate_streams else STREAM_USER]
        block = active[plane]
        if block is not None:
            p = wp[block]
            if p < ppb:
                return block * ppb + p
            active[plane] = None
        if not arr._free_blocks[plane]:
            return None
        block = arr.pop_free_block(plane)
        active[plane] = block
        return block * ppb + wp[block]

    def allocate(self, stream: int = STREAM_USER) -> int:
        """Next free PPN anywhere, preferring round-robin plane order.

        Raises :class:`OutOfSpaceError` when every plane is exhausted —
        by then GC has already failed to reclaim anything.
        """
        order = self._plane_order
        n = len(order)
        cursor = self._cursor
        # common case: the round-robin plane has room
        ppn = self.allocate_in_plane(order[cursor], stream)
        if ppn is not None:
            self._cursor = (cursor + 1) % n
            return ppn
        for i in range(1, n):
            idx = (cursor + i) % n
            ppn = self.allocate_in_plane(order[idx], stream)
            if ppn is not None:
                self._cursor = (idx + 1) % n
                return ppn
        raise OutOfSpaceError("no free page in any plane")

    def next_plane(self) -> int:
        """The plane the next :meth:`allocate` call will try first."""
        return self._plane_order[self._cursor]
