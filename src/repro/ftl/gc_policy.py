"""Pluggable garbage-collection policies (the policy zoo).

:class:`~repro.ftl.gc.GarbageCollector` owns the *mechanism* — trigger
fast path, retirement draining, the restore loop, relocation plumbing —
and delegates every *decision* to a :class:`GcPolicy` strategy object:

* **victim selection** (:meth:`GcPolicy.select_victim`) over the
  candidate arrays the collector already computed;
* **trigger threshold** (:meth:`GcPolicy.trigger_threshold`) — how
  early collection starts relative to ``SSDConfig.gc_threshold``;
* **relocation budget** (:meth:`GcPolicy.relocation_budget`) — how many
  valid pages one GC invocation may migrate before yielding back to
  host traffic (``None`` = unbounded, the classic stop-the-world
  collection);
* **wear levelling** (:meth:`GcPolicy.wear_level`) — an optional
  post-collection hook for policies that move cold data around.

The registry (:func:`make_policy`) maps the
:data:`~repro.config.GC_POLICIES` names to classes:

========================  ============================================
name                      behaviour
========================  ============================================
``greedy``                fewest valid pages (paper / SSDsim default)
``cost_benefit``          (1-u)/(2u) * age score; cold blocks win
``wear_aware``            greedy + penalty on already-worn blocks
``windowed_greedy``       greedy among the ``gc_window`` oldest blocks
``preemptive``            bounded ``gc_slice_pages``-page slices from
                          ``gc_preempt_threshold`` down, full GC only
                          when the plane turns urgent (1807.09313)
``hot_cold``              greedy + hot/cold write-stream separation
``dual_pool``             greedy + dual-pool wear levelling via
                          ``gc_wear_gap``-triggered cold migration
========================  ============================================

The ``greedy`` policy reproduces the pre-refactor collector bit for
bit: same victims, same counters, same report digests (enforced by the
golden-hotpath fixture and the BENCH baseline).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..config import GC_POLICIES, SSDConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .gc import GarbageCollector

__all__ = [
    "GC_POLICIES",
    "GcPolicy",
    "GreedyPolicy",
    "CostBenefitPolicy",
    "WearAwarePolicy",
    "WindowedGreedyPolicy",
    "PreemptivePolicy",
    "HotColdPolicy",
    "DualPoolPolicy",
    "make_policy",
]


class GcPolicy:
    """Strategy interface the :class:`GarbageCollector` delegates to.

    A policy is constructed from the device config (its knobs) and
    bound to its collector with :meth:`bind` before use; the collector
    reference gives access to the flash service, allocator and wear
    state without duplicating any of it here.
    """

    #: registry name (matches :data:`repro.config.GC_POLICIES`)
    name: str = "base"
    #: request hot/cold write-stream separation in the allocator
    #: (user and GC traffic fill distinct active blocks)
    separate_streams: bool = False
    #: collect in bounded slices (partial GC) instead of running the
    #: full restore loop on every trigger
    partial: bool = False

    def __init__(self, cfg: SSDConfig):
        self.cfg = cfg
        self.gc: "GarbageCollector | None" = None

    def bind(self, gc: "GarbageCollector") -> None:
        """Attach the owning collector (called once from its init)."""
        self.gc = gc

    # -- scheduling ----------------------------------------------------
    def trigger_threshold(self, threshold: float) -> float:
        """Effective free-block fraction below which GC engages; the
        default keeps the configured ``gc_threshold``."""
        return threshold

    def relocation_budget(self) -> int | None:
        """Valid pages one GC invocation may relocate (``None`` =
        unbounded)."""
        return None

    # -- victim selection ----------------------------------------------
    def select_victim(
        self, plane: int, lo: int, valid: np.ndarray, eligible: np.ndarray
    ) -> int:
        """Pick a victim among ``eligible`` blocks (at least one is
        eligible; the collector handled the empty case)."""
        raise NotImplementedError

    # -- wear levelling ------------------------------------------------
    def wear_level(self, plane: int, now: float, timed: bool) -> float | None:
        """Optional post-collection wear-levelling step; returns the
        finish time of any migration performed, or ``None``."""
        return None


class GreedyPolicy(GcPolicy):
    """Fewest valid pages — the paper's (and SSDsim's) default.

    This is the pre-refactor behaviour verbatim; runs with this policy
    are bit-identical to the monolithic collector they replaced.
    """

    name = "greedy"

    def select_victim(self, plane, lo, valid, eligible):
        """Eligible block with the fewest valid pages (lowest index
        wins ties, matching the original collector)."""
        costs = np.where(eligible, valid, np.iinfo(valid.dtype).max)
        return lo + int(np.argmin(costs))


class CostBenefitPolicy(GcPolicy):
    """Classic cost-benefit: maximise ``(1-u)/(2u) * age``.

    ``age`` is the time (in block-modification sequence numbers) since
    the block last changed, so cold blocks win ties — hot data gets
    time to invalidate itself before being migrated.
    """

    name = "cost_benefit"

    def select_victim(self, plane, lo, valid, eligible):
        """Eligible block maximising the cost-benefit score."""
        gc = self.gc
        geom = gc.service.geom
        arr = gc.service.array
        hi = lo + geom.blocks_per_plane
        ppb = geom.pages_per_block
        u = valid / ppb
        age = (arr.mod_seq - arr.last_mod[lo:hi]).astype(np.float64) + 1.0
        benefit = (1.0 - u) / (2.0 * u + 1e-9) * age
        benefit = np.where(eligible, benefit, -np.inf)
        return lo + int(np.argmax(benefit))


class WearAwarePolicy(GcPolicy):
    """Greedy score plus a penalty on blocks worn past the plane mean,
    trading some write amplification for evener wear."""

    name = "wear_aware"

    def select_victim(self, plane, lo, valid, eligible):
        """Eligible block minimising valid pages + wear penalty."""
        gc = self.gc
        geom = gc.service.geom
        arr = gc.service.array
        hi = lo + geom.blocks_per_plane
        wear = arr.erase_count[lo:hi].astype(np.float64)
        mean_wear = wear.mean()
        score = valid + gc.wear_weight * np.maximum(0.0, wear - mean_wear)
        score = np.where(eligible, score, np.inf)
        return lo + int(np.argmin(score))


class WindowedGreedyPolicy(GcPolicy):
    """Greedy restricted to the ``gc_window`` least-recently-modified
    sealed blocks — a cheap cost-benefit approximation: the window
    screens out hot blocks (young ``last_mod``), greedy then minimises
    migration cost within it."""

    name = "windowed_greedy"

    def __init__(self, cfg: SSDConfig):
        super().__init__(cfg)
        self.window = cfg.gc_window

    def select_victim(self, plane, lo, valid, eligible):
        """Greedy pick restricted to the window's oldest blocks."""
        gc = self.gc
        arr = gc.service.array
        hi = lo + gc.service.geom.blocks_per_plane
        idx = np.nonzero(eligible)[0]
        if idx.size > self.window:
            # stable sort: equal ages resolve to the lower block index,
            # keeping victim choice deterministic across runs
            order = np.argsort(arr.last_mod[lo:hi][idx], kind="stable")
            idx = idx[order[: self.window]]
        return lo + int(idx[np.argmin(valid[idx])])


class PreemptivePolicy(GcPolicy):
    """Preemptive/partial GC with request-aware deferral (1807.09313).

    Collection starts early — when the plane's free fraction drops
    below ``gc_preempt_threshold`` — but each invocation (which runs
    between host requests, right after a page program) relocates at
    most ``gc_slice_pages`` valid pages of the current victim before
    deferring the remainder.  Pages the host invalidates between slices
    never need migration at all, which is where the WAF saving comes
    from.  Once the plane falls below the classic ``gc_threshold`` the
    collector abandons slicing and runs the full restore loop, so
    allocation can never starve behind a polite policy.
    """

    name = "preemptive"
    partial = True

    def __init__(self, cfg: SSDConfig):
        super().__init__(cfg)
        self.soft_threshold = cfg.gc_preempt_threshold
        self.slice_pages = cfg.gc_slice_pages

    def trigger_threshold(self, threshold: float) -> float:
        """Engage early, at the preemption (soft) threshold."""
        return max(threshold, self.soft_threshold)

    def relocation_budget(self) -> int | None:
        """At most ``gc_slice_pages`` migrations per invocation."""
        return self.slice_pages

    def select_victim(self, plane, lo, valid, eligible):
        """Greedy pick (slicing, not selection, is what differs)."""
        costs = np.where(eligible, valid, np.iinfo(valid.dtype).max)
        return lo + int(np.argmin(costs))


class HotColdPolicy(GcPolicy):
    """Greedy victim selection with hot/cold write-stream separation:
    GC-migrated (cold, survived at least one collection) pages fill
    different active blocks than fresh user writes, so blocks stop
    mixing lifetimes (Dayan & Bonnet, arXiv 1504.01666)."""

    name = "hot_cold"
    separate_streams = True

    def select_victim(self, plane, lo, valid, eligible):
        """Greedy pick (stream separation is what differs)."""
        costs = np.where(eligible, valid, np.iinfo(valid.dtype).max)
        return lo + int(np.argmin(costs))


class DualPoolPolicy(GcPolicy):
    """Greedy victim selection plus dual-pool wear levelling.

    Blocks split implicitly into a hot pool (high erase count) and a
    cold pool (low erase count, pinned by long-lived data).  After each
    collection pass the policy checks the plane's erase-count gap;
    when ``max - min`` over sealed blocks reaches ``gc_wear_gap`` it
    migrates the coldest sealed block's valid pages out and erases it,
    returning the under-worn block to circulation (one block per GC
    invocation, so the levelling cost stays bounded).
    """

    name = "dual_pool"

    def __init__(self, cfg: SSDConfig):
        super().__init__(cfg)
        self.wear_gap = cfg.gc_wear_gap

    def select_victim(self, plane, lo, valid, eligible):
        """Greedy pick (wear levelling is what differs)."""
        costs = np.where(eligible, valid, np.iinfo(valid.dtype).max)
        return lo + int(np.argmin(costs))

    def wear_level(self, plane, now, timed):
        """Migrate the coldest sealed block out when the plane's
        erase-count gap reaches ``gc_wear_gap``."""
        gc = self.gc
        arr = gc.service.array
        lo, valid, eligible = gc._candidates(plane)
        if not eligible.any():
            return None
        hi = lo + gc.service.geom.blocks_per_plane
        erase = arr.erase_count[lo:hi]
        cold = np.where(eligible, erase, np.iinfo(erase.dtype).max)
        coldest = int(np.argmin(cold))
        if int(erase.max()) - int(cold[coldest]) < self.wear_gap:
            return None
        return gc.migrate_block(lo + coldest, now, timed=timed)


_REGISTRY: dict[str, type[GcPolicy]] = {
    cls.name: cls
    for cls in (
        GreedyPolicy,
        CostBenefitPolicy,
        WearAwarePolicy,
        WindowedGreedyPolicy,
        PreemptivePolicy,
        HotColdPolicy,
        DualPoolPolicy,
    )
}

assert tuple(_REGISTRY) == GC_POLICIES, "registry drifted from config"


def make_policy(name: str, cfg: SSDConfig) -> GcPolicy:
    """Instantiate the registered policy ``name`` with knobs from
    ``cfg``; raises :class:`ValueError` on unknown names (the
    pre-refactor :class:`GarbageCollector` contract)."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown GC policy {name!r}; expected one of {GC_POLICIES}"
        ) from None
    return cls(cfg)
