"""Shared FTL machinery: PMT storage, RMW composition, GC relocation,
translation-page programming, and the host-facing API contract.

Concrete schemes (:mod:`.pagemap`, :mod:`.mrsm`,
:mod:`repro.core.across`) implement :meth:`BaseFTL.write` /
:meth:`BaseFTL.read` in terms of the helpers here.

Sector bookkeeping
------------------
Each LPN carries a *PMT mask*: a bitmask of the sectors whose newest
copy lives in the normally-mapped page ``pmt[lpn]``.  The baseline FTL
has no other storage, so its mask equals "all sectors ever written".
Across-FTL additionally shadows a sector range per across area; those
bits are removed from the PMT mask while the area exists (see
:mod:`repro.core.across`).  Masks make read composition and
read-modify-write decisions O(1) bit arithmetic.

Data versions
-------------
When ``track_payload`` is on, every programmed page stores a dict of
``absolute_sector -> version stamp`` for the sectors it holds, and
:meth:`read` returns the stamps it found.  The simulation oracle
(:mod:`repro.sim.oracle`) compares them against ground truth — this is
how we prove all three schemes return the newest data through merges,
rollbacks and GC.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from array import array
from typing import Optional

import numpy as np

from ..config import SSDConfig
from ..errors import MappingError
from ..flash.service import FlashService
from ..metrics.counters import OpKind
from ..obs.events import FTLDecision
from ..units import split_extent
from .allocator import STREAM_GC, STREAM_USER, WriteAllocator
from .gc import GarbageCollector
from .gc_policy import make_policy
from .mapping_cache import MappingCache
from .meta import DataPageMeta, MapPageMeta


def mask_range(lo: int, hi: int) -> int:
    """Bitmask with bits ``[lo, hi)`` set (page-relative sectors)."""
    return ((1 << (hi - lo)) - 1) << lo


def iter_bits(mask: int):
    """Yield the set bit positions of ``mask`` in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class BaseFTL(ABC):
    """Abstract flash translation layer."""

    #: canonical scheme id ("ftl" / "mrsm" / "across")
    name: str = "base"
    #: whether the generic greedy GC manages this scheme's space
    #: (hybrid log-block schemes reclaim through merges instead and
    #: must never be driven through GarbageCollector)
    uses_generic_gc: bool = True
    #: bytes per PMT entry used for the Fig. 12a footprint model
    PMT_ENTRY_BYTES = 8

    def __init__(
        self,
        service: FlashService,
        *,
        track_payload: bool = False,
        mapping_cache_entries: int | None = None,
    ):
        self.service = service
        self.cfg: SSDConfig = service.cfg
        self.geom = service.geom
        self.counters = service.counters
        self.spp = self.cfg.sectors_per_page
        self.track_payload = track_payload
        self.logical_pages = self.cfg.logical_pages
        #: DRAM budget for mapping entries; defaults to "the baseline
        #: page table exactly fits" (paper §4.1 / Fig. 12 discussion).
        self.dram_entries = (
            mapping_cache_entries
            if mapping_cache_entries is not None
            else (
                self.cfg.mapping_cache_entries
                if self.cfg.mapping_cache_entries is not None
                else self.logical_pages
            )
        )
        # the policy is built before the allocator so policies that ask
        # for hot/cold stream separation (``hot_cold``) get it without
        # the user also flipping ``hot_cold_separation``
        gc_policy = make_policy(self.cfg.gc_policy, self.cfg)
        self.allocator = WriteAllocator(
            service,
            separate_streams=(
                self.cfg.hot_cold_separation or gc_policy.separate_streams
            ),
        )
        self.gc = GarbageCollector(
            service,
            self.allocator,
            self._relocate,
            self.cfg.gc_threshold,
            self.cfg.gc_restore,
            policy=gc_policy,
        )
        #: toggled by the engine during device pre-conditioning: flash
        #: ops become untimed and are counted under OpKind.AGING.
        self.aging = False

        #: LPN -> PPN of the normally-mapped page (-1 = none).  The raw
        #: table is a flat ``array('q')`` — scalar loads/stores on the
        #: per-piece write/read hot path are several times cheaper than
        #: numpy scalar indexing — while ``self.pmt`` is a zero-copy
        #: numpy view over the same memory for vectorised consumers
        #: (tests, examples, ``mapping_table_bytes``).
        self._pmt = array("q", [-1]) * self.logical_pages
        self.pmt = np.frombuffer(self._pmt, dtype=np.int64)
        #: LPN -> bitmask of sectors whose newest copy is in pmt[lpn]
        #: (same raw-buffer + view layout; masks are plain Python ints)
        self._pmt_mask = array("Q", bytes(8 * self.logical_pages))
        self.pmt_mask = np.frombuffer(self._pmt_mask, dtype=np.uint64)
        #: flash location of spilled translation pages, one int-keyed
        #: dict per table: ``table_id -> {tvpn -> ppn}`` (no tuple keys
        #: rebuilt per map/unmap)
        self._map_ppn: dict[int, dict[int, int]] = {}

    # ------------------------------------------------------------------
    # host-facing API
    # ------------------------------------------------------------------
    @abstractmethod
    def write(
        self, offset: int, size: int, now: float, stamps: Optional[dict] = None
    ) -> float:
        """Service a write of ``size`` sectors at sector ``offset``.

        ``stamps`` maps absolute sector -> version (oracle mode only).
        Returns the completion time of the request.
        """

    @abstractmethod
    def read(
        self, offset: int, size: int, now: float
    ) -> tuple[float, Optional[dict]]:
        """Service a read; returns (completion time, found stamps)."""

    @abstractmethod
    def mapping_table_bytes(self) -> int:
        """Current mapping-table footprint (Fig. 12a)."""

    def trim(self, offset: int, size: int, now: float) -> float:
        """TRIM/discard ``size`` sectors at ``offset``: the data is
        dropped, pages whose last live sectors are trimmed are
        invalidated (making them free GC fodder).  Returns completion
        time (a DRAM-speed metadata operation).

        The base implementation handles normally page-mapped data;
        schemes with extra state (across areas, region slots) override
        and chain up.
        """
        for lpn, rel_lo, count in split_extent(offset, size, self.spp):
            self._trim_pmt_piece(lpn, mask_range(rel_lo, rel_lo + count))
        self.counters.count_dram()
        return now + self.cfg.timing.cache_access_ms

    def _trim_pmt_piece(self, lpn: int, mask: int) -> None:
        remaining = self._pmt_mask[lpn] & ~mask
        self._pmt_mask[lpn] = remaining
        if remaining == 0 and self._pmt[lpn] >= 0:
            self.service.invalidate(self._pmt[lpn])
            self._pmt[lpn] = -1

    def stats(self) -> dict:
        """Scheme-specific statistics merged into the run report."""
        out = {
            "gc_collections": self.gc.collections,
            "gc_migrated_pages": self.gc.migrated_pages,
            # includes aging-time passes; the measured-run count is
            # counters.gc_stalls
            "gc_stall_passes": self.gc.stalls,
        }
        # policy-specific tallies only appear for non-default policies
        # so default-config report digests stay byte-identical
        if self.gc.policy != "greedy":
            out["gc_policy"] = self.gc.policy
            if self.gc.slices:
                out["gc_slice_passes"] = self.gc.slices
            if self.gc.deferrals:
                out["gc_deferral_passes"] = self.gc.deferrals
            if self.gc.wear_migrations:
                out["gc_wear_migrations"] = self.gc.wear_migrations
        return out

    def flush_metadata(self, now: float) -> float:
        """End-of-run barrier: write back dirty translation pages."""
        return now

    # ------------------------------------------------------------------
    # op-kind / timing helpers honouring aging mode
    # ------------------------------------------------------------------
    #: ``timed`` is the plain-attribute mirror of ``not aging``: it is
    #: read on every flash op, so it must be an attribute load, not a
    #: property call.  The ``aging`` property keeps the two in sync.
    timed: bool = True

    @property
    def aging(self) -> bool:
        return not self.timed

    @aging.setter
    def aging(self, value: bool) -> None:
        self.timed = not value

    def _kind(self, kind: OpKind) -> OpKind:
        return kind if self.timed else OpKind.AGING

    def _emit_decision(self, path: str, lpn: int, now: float) -> None:
        """Publish which servicing path was taken (no-op when
        observability is off: the caller already paid the one branch)."""
        obs = self.service.obs
        obs.emit(FTLDecision(now, obs.current_request, path, lpn))

    # ------------------------------------------------------------------
    # programming & relocation
    # ------------------------------------------------------------------
    def _program_page(
        self,
        meta,
        now: float,
        kind: OpKind,
        *,
        plane: int | None = None,
        gc_check: bool = True,
        timed: bool | None = None,
        stream: int = STREAM_USER,
    ) -> tuple[int, float]:
        """Allocate a page (preferring ``plane``), program ``meta`` and
        run the GC check on the plane written.  Returns (ppn, finish).

        ``timed=False`` models background work the controller schedules
        into idle periods (translation-page write-back): the program is
        counted but does not occupy a foreground chip timeline.
        """
        base_timed = self.timed
        ppn = None
        if plane is not None:
            ppn = self.allocator.allocate_in_plane(plane, stream)
        if ppn is None:
            ppn = self.allocator.allocate(stream)
        finish = self.service.program_page(
            ppn,
            meta,
            now,
            kind if base_timed else OpKind.AGING,
            timed=base_timed if timed is None else (timed and base_timed),
        )
        if gc_check:
            # GC runs after the program: its migrations and erases keep
            # the chips busy (delaying *later* requests — the long-tail
            # effect), but do not gate this request's completion.
            p = self.geom.plane_of_ppn(ppn)
            self.gc.maybe_collect(p, now, timed=base_timed)
        return ppn, finish

    def _relocate(self, old_ppn: int, now: float, timed: bool) -> float:
        """GC callback: move one valid page and fix the mapping."""
        self.service.read_page(old_ppn, now, self._kind(OpKind.GC), timed=timed)
        meta = self.service.array.meta(old_ppn)
        kind = meta.kind
        if kind == "data":
            return self._relocate_data(old_ppn, meta, now)
        if kind == "map":
            return self._relocate_map(old_ppn, meta, now)
        return self._relocate_extra(old_ppn, meta, now)

    def _relocate_data(self, old_ppn: int, meta: DataPageMeta, now: float) -> float:
        if self._pmt[meta.lpn] != old_ppn:
            raise MappingError(
                f"GC found data page for LPN {meta.lpn} at PPN {old_ppn} "
                f"but PMT points to {self._pmt[meta.lpn]}"
            )
        plane = self.geom.plane_of_ppn(old_ppn)
        new_ppn, finish = self._program_page(
            meta, now, OpKind.GC, plane=plane, gc_check=False, stream=STREAM_GC
        )
        self._pmt[meta.lpn] = new_ppn
        self.service.invalidate(old_ppn)
        return finish

    def _relocate_map(self, old_ppn: int, meta: MapPageMeta, now: float) -> float:
        table = self._map_ppn.get(meta.table_id)
        if table is None or table.get(meta.tvpn) != old_ppn:
            raise MappingError(
                f"stale map page {(meta.table_id, meta.tvpn)} "
                f"at PPN {old_ppn}"
            )
        plane = self.geom.plane_of_ppn(old_ppn)
        new_ppn, finish = self._program_page(
            meta, now, OpKind.GC, plane=plane, gc_check=False, stream=STREAM_GC
        )
        table[meta.tvpn] = new_ppn
        self.service.invalidate(old_ppn)
        return finish

    def _relocate_extra(self, old_ppn: int, meta, now: float) -> float:
        raise MappingError(f"scheme {self.name!r} cannot relocate {meta!r}")

    # ------------------------------------------------------------------
    # translation-page I/O callbacks for MappingCache
    # ------------------------------------------------------------------
    def _make_cache(
        self,
        table_id: int,
        *,
        entries_per_page: int,
        capacity_entries: int | None,
        touches_fn=None,
    ) -> MappingCache:
        # the per-table dict is re-fetched on every call (not captured)
        # so external table wipes (`_map_ppn.clear()` in recovery tests
        # and examples) can never leave a closure holding a stale dict
        def program(tvpn: int, now: float, timed: bool) -> float:
            table = self._map_ppn.setdefault(table_id, {})
            old = table.get(tvpn)
            if old is not None:
                self.service.invalidate(old)
                del table[tvpn]
            meta = MapPageMeta(table_id, tvpn)
            # translation-page write-back is background work: the
            # controller schedules it into chip idle periods, so it is
            # counted (Fig. 10's Map share, GC pressure) but does not
            # occupy the foreground timeline
            ppn, finish = self._program_page(meta, now, OpKind.MAP, timed=False)
            table[tvpn] = ppn
            return finish

        def read(tvpn: int, now: float, timed: bool) -> float:
            ppn = self._map_ppn[table_id][tvpn]
            return self.service.read_page(
                ppn, now, self._kind(OpKind.MAP), timed=timed
            )

        return MappingCache(
            self.service,
            entries_per_page=entries_per_page,
            capacity_entries=capacity_entries,
            program_map_page=program,
            read_map_page=read,
            touches_fn=touches_fn,
            table_id=table_id,
        )

    # ------------------------------------------------------------------
    # normal (page-mapped) data path shared by schemes
    # ------------------------------------------------------------------
    def _write_data_page(
        self,
        lpn: int,
        rel_lo: int,
        rel_hi: int,
        now: float,
        stamps: Optional[dict],
        *,
        extra_mask: int = 0,
        extra_payload: Optional[dict] = None,
    ) -> float:
        """Write sectors ``[rel_lo, rel_hi)`` (page-relative) of ``lpn``
        through the normal page-mapped path, performing read-modify-write
        when the page already holds other live sectors.

        ``extra_mask``/``extra_payload`` inject additional sectors that
        are already in hand (used by Across-FTL rollback, which folds the
        across-area data back in without re-reading it here).
        Returns the completion time.
        """
        service = self.service
        timed = self.timed
        new_mask = (((1 << (rel_hi - rel_lo)) - 1) << rel_lo) | extra_mask
        old_ppn = self._pmt[lpn]
        old_mask = self._pmt_mask[lpn]
        retained = old_mask & ~new_mask
        if service.obs is not None:
            self._emit_decision(
                "rmw" if (retained and old_ppn >= 0) else "page_write",
                lpn, now,
            )
        finish = now
        payload: Optional[dict] = None

        if self.track_payload:
            payload = {}
        if retained and old_ppn >= 0:
            # RMW: the old page holds live sectors the new page must keep
            attr = service.attr
            if attr is not None:
                attr.read_label = "update_read"
            finish = service.read_page(
                old_ppn, now,
                OpKind.DATA if timed else OpKind.AGING, timed=timed,
            )
            if attr is not None:
                attr.read_label = None
            if timed:
                self.counters.update_reads += 1
            if payload is not None:
                old_meta = self.service.array.meta(old_ppn)
                if old_meta.payload:
                    base = lpn * self.spp
                    for bit in iter_bits(retained):
                        sec = base + bit
                        if sec in old_meta.payload:
                            payload[sec] = old_meta.payload[sec]
        if payload is not None:
            if extra_payload:
                payload.update(extra_payload)
            if stamps:
                base = lpn * self.spp
                for bit in iter_bits(mask_range(rel_lo, rel_hi)):
                    sec = base + bit
                    if sec in stamps:
                        payload[sec] = stamps[sec]

        if old_ppn >= 0:
            service.invalidate(old_ppn)
        meta = DataPageMeta(lpn, old_mask | new_mask, payload)
        new_ppn, t = self._program_page(meta, finish, OpKind.DATA)
        self._pmt[lpn] = new_ppn
        self._pmt_mask[lpn] = old_mask | new_mask
        return t if t > finish else finish

    # ------------------------------------------------------------------
    # batched aging writes (SimConfig.batch)
    # ------------------------------------------------------------------
    def write_run(self, offsets, sizes, target: int) -> int:
        """Service a run of untimed aging writes (already clamped to the
        logical space by the engine), stopping once the AGING write
        counter reaches ``target``.  Returns how many requests of the
        run were consumed.

        This generic implementation is a scalar loop over :meth:`write`
        — bit-identical to the engine's legacy per-request aging loop by
        construction.  Schemes may override it with a fused kernel, but
        any override must (a) produce exactly the same device state,
        counters and mapping tables, and (b) fall back here whenever a
        precondition of its fast path does not hold (payload tracking,
        observability, timed mode).  The batch-vs-legacy report-digest
        tests and the ``repro check --batch`` differential leg enforce
        the equivalence.
        """
        counters = self.counters
        write = self.write
        aging = OpKind.AGING
        consumed = 0
        for offset, size in zip(offsets, sizes):
            write(offset, size, 0.0, None)
            consumed += 1
            if counters.writes[aging] >= target:
                break
        return consumed

    def _write_run_fallback(self) -> bool:
        """True when a fused :meth:`write_run` override must delegate to
        the generic scalar loop: the fast paths below inline the
        untimed, payload-free, unobserved flavour of every flash/cache
        operation, so any of these features being live would change
        behaviour."""
        return (
            self.timed
            or self.track_payload
            or self.service.obs is not None
            or self.service.attr is not None
        )

    def _read_stamps_from(self, ppn: int, sectors: list[int], out: dict) -> None:
        """Copy the stamps of ``sectors`` found at ``ppn`` into ``out``."""
        meta = self.service.array.meta(ppn)
        if meta.payload:
            for sec in sectors:
                if sec in meta.payload:
                    out[sec] = meta.payload[sec]

    # ------------------------------------------------------------------
    # power-loss recovery
    # ------------------------------------------------------------------
    def rebuild_from_flash(self) -> int:
        """Reconstruct every mapping table by scanning the valid pages'
        out-of-band records (power-loss recovery).

        Returns the number of pages scanned.  Caveat mirrors real
        devices: TRIMs applied only in DRAM are forgotten — trimmed
        sectors whose pages still hold them reappear.
        """
        self.pmt.fill(-1)
        self.pmt_mask.fill(0)
        self._map_ppn.clear()
        self._rebuild_reset()
        scanned = 0
        for ppn, meta in self.service.array.valid_items():
            scanned += 1
            kind = meta.kind
            if kind == "data":
                if self._pmt[meta.lpn] != -1:
                    raise MappingError(
                        f"two valid data pages claim LPN {meta.lpn}"
                    )
                self._pmt[meta.lpn] = ppn
                self._pmt_mask[meta.lpn] = meta.mask
            elif kind == "map":
                self._map_ppn.setdefault(meta.table_id, {})[meta.tvpn] = ppn
            else:
                self._rebuild_page(ppn, meta)
        self._rebuild_finish()
        return scanned

    def _rebuild_reset(self) -> None:
        """Scheme hook: clear scheme-specific tables before the scan."""

    def _rebuild_page(self, ppn: int, meta) -> None:
        raise MappingError(
            f"scheme {self.name!r} cannot rebuild from {meta!r}"
        )

    def _rebuild_finish(self) -> None:
        """Scheme hook: fix-ups after the scan."""

    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Cross-check PMT against the flash array (tests and
        :mod:`repro.check` sweeps).

        Vectorised over the PMT views so it stays affordable at a
        per-N-requests cadence: the Python loop only visits *mapped*
        LPNs (to compare per-page meta), not the whole logical space.
        """
        from ..flash.array import PAGE_VALID

        arr = self.service.array
        mapped = self.pmt >= 0
        orphans = np.nonzero(~mapped & (self.pmt_mask != 0))[0]
        if orphans.size:
            raise MappingError(
                f"LPN {int(orphans[0])} has mask bits but no page"
            )
        lpns = np.nonzero(mapped)[0]
        if not lpns.size:
            return
        ppns = self.pmt[lpns]
        stale = np.nonzero(arr.state[ppns] != PAGE_VALID)[0]
        if stale.size:
            raise MappingError(
                f"PMT[{int(lpns[stale[0]])}] -> invalid PPN "
                f"{int(ppns[stale[0]])}"
            )
        pmt = self._pmt
        meta_of = arr.meta
        for lpn in lpns.tolist():
            meta = meta_of(pmt[lpn])
            if meta.kind != "data" or meta.lpn != lpn:
                raise MappingError(f"PMT[{lpn}] -> foreign page {meta!r}")

    def referenced_ppns(self):
        """Yield ``(ppn, owner)`` for every flash page this FTL's tables
        reference: PMT data pages plus spilled translation pages.

        Schemes with additional tables (across areas, region pages)
        override and chain up.  The :mod:`repro.check` reachability
        sweep compares these claims against the array's valid pages and
        requires every valid page to be claimed by exactly one owner —
        hybrid log-block schemes (BAST/FAST) keep state this hook does
        not describe and are outside its contract.
        """
        pmt = self._pmt
        for lpn in np.nonzero(self.pmt >= 0)[0].tolist():
            yield pmt[lpn], f"pmt[{lpn}]"
        for table_id, table in self._map_ppn.items():
            for tvpn, ppn in table.items():
                yield ppn, f"map[{table_id}][{tvpn}]"
