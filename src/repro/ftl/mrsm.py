"""MRSM: multiregional sub-page space management (Chen et al., TCAD'20).

The comparator scheme of the paper's evaluation.  Every page is split
into ``regions_per_page`` fixed regions (default 4, i.e. 2 KiB regions
on 8 KiB pages); the mapping is kept at region granularity, and a write
packs all its regions into as few flash pages as possible — so an
unaligned or across-page write usually costs a *single* program and no
read-modify-write (region-aligned updates overwrite "directly").

The price is exactly what the paper observes (§4.2):

* the table has up to ``regions_per_page`` times more entries than a
  page-level table, far exceeding the DRAM budget, so lookups stream
  translation pages between DRAM and flash (the large *Map* components
  of Fig. 10 and the worst erase counts of Fig. 11);
* entries are organised in a tree, so each lookup costs O(log n) DRAM
  touches (the ~32x DRAM accesses of Fig. 12b).

Mapping-table *size* (Fig. 12a) is adaptive: a logical page whose R
regions are packed, in order, in a single flash page collapses to one
entry ("adaptively adjusting mapping granularity"); fragmented pages
pay one entry per region.
"""

from __future__ import annotations

import math
from operator import itemgetter
from typing import Optional

import numpy as np

from ..errors import ConfigError, MappingError
from ..metrics.counters import OpKind
from .allocator import STREAM_GC
from .base import BaseFTL, iter_bits, mask_range
from .meta import MapPageMeta, RegionPageMeta

#: a region entry records offset, size, PPN and slot ("a complicated
#: mapping data structure to record the offset and size information",
#: paper §2.2) — twice the plain page entry
REGION_ENTRY_BYTES = 16
PAGE_ENTRY_BYTES = 8


class MRSMFTL(BaseFTL):
    """Sub-page (regional) mapping FTL."""

    name = "mrsm"

    def __init__(self, service, *, regions_per_page: int = 4, **kw):
        super().__init__(service, **kw)
        if regions_per_page <= 0 or self.spp % regions_per_page != 0:
            raise ConfigError(
                f"regions_per_page={regions_per_page} must divide "
                f"sectors_per_page={self.spp}"
            )
        self.R = regions_per_page
        self.region_sectors = self.spp // regions_per_page
        #: region key (= lpn * R + r) -> (ppn, slot index within page)
        self.region_map: dict[int, tuple[int, int]] = {}
        #: region key -> bitmask of written sectors within the region
        self.region_mask: dict[int, int] = {}
        #: LPNs that have ever been written at sub-page granularity;
        #: once the tree splits a page's entry it stays split (a later
        #: full-page overwrite does not re-coarsen it), which is why
        #: MRSM's table converges to ~2.4x the baseline's (Fig. 12a)
        self._ever_fragmented: set[int] = set()
        # memoised _tree_touches state: current depth and the interval
        # of table sizes it stays valid for (empty → recompute on first use)
        self._tt_val = 1
        self._tt_lo = 0
        self._tt_hi = -1
        entries_per_page = max(1, self.cfg.page_size_bytes // REGION_ENTRY_BYTES)
        self._cache = self._make_cache(
            table_id=1,
            entries_per_page=entries_per_page,
            capacity_entries=self.dram_entries,
            touches_fn=self._tree_touches,
        )

    def _tree_touches(self) -> int:
        """DRAM touches per lookup: the depth of the (4-ary) mapping
        tree MRSM keeps its region entries in (Fig. 12b: ~32x the flat
        tables' single touch, once multiplied by regions per request).

        The depth only changes when the entry count crosses a power of
        4, so the log is memoised over the interval of table sizes that
        share the current depth (this runs per region per request).
        """
        n = len(self.region_map)
        if n > self._tt_hi or n < self._tt_lo:
            v = max(1, math.ceil(math.log2(n + 2) / 2))
            self._tt_val = v
            # depth v covers 4**(v-1) < n + 2 <= 4**v
            self._tt_lo = (1 << (2 * v - 2)) - 1
            self._tt_hi = (1 << (2 * v)) - 2
        return self._tt_val

    # ------------------------------------------------------------------
    # region geometry
    # ------------------------------------------------------------------
    def _split_regions(self, offset: int, size: int) -> list[tuple[int, int, int]]:
        """(region_key, rel_lo, rel_hi) pieces of a sector extent, with
        rel_* relative to the region start.  Returns a list (not a
        generator): callers iterate it at most twice and resuming a
        generator per region is pure overhead on the write path."""
        rs = self.region_sectors
        sec = offset
        end = offset + size
        out = []
        while sec < end:
            key = sec // rs
            region_start = key * rs
            hi = region_start + rs
            if hi > end:
                hi = end
            out.append((key, sec - region_start, hi - region_start))
            sec = hi
        return out

    def _region_base_sector(self, key: int) -> int:
        return key * self.region_sectors

    # ------------------------------------------------------------------
    # slot lifecycle
    # ------------------------------------------------------------------
    def _kill_slot(self, key: int) -> None:
        """Mark a region's old slot dead; invalidate its page when the
        last live slot dies."""
        loc = self.region_map.get(key)
        if loc is None:
            return
        ppn, slot = loc
        meta = self.service.array.meta(ppn)
        skey, live = meta.slots[slot]
        if skey != key or not live:
            raise MappingError(f"slot bookkeeping broken for region {key}")
        meta.slots[slot] = (key, False)
        # any() short-circuits on the first live slot, unlike live_count()
        if not any(live for _, live in meta.slots):
            self.service.invalidate(ppn)

    # ------------------------------------------------------------------
    def write(
        self, offset: int, size: int, now: float, stamps: Optional[dict] = None
    ) -> float:
        """Service a write: split into regions, region-level RMW where a
        region is partially covered, pack into R-slot pages."""
        pieces = self._split_regions(offset, size)
        finish = now
        timed = self.timed
        kind = OpKind.DATA if timed else OpKind.AGING
        region_map = self.region_map
        region_mask = self.region_mask
        mask_get = region_mask.get
        access = self._cache.access
        spp = self.spp
        # any lpn not covered by whole aligned pages becomes (and stays)
        # region-mapped in the tree — persistent table state, so warm-up
        # (aging) writes fragment it too, like the paper's warm-up trace
        end = offset + size
        first_lpn = offset // spp
        last_lpn = (end - 1) // spp
        for lpn in range(first_lpn, last_lpn + 1):
            page_lo = lpn * spp
            if offset > page_lo or end < page_lo + spp:
                self._ever_fragmented.add(lpn)
        # phase 1: mapping lookups + region-level read-modify-write
        rmw_ppns: set[int] = set()
        for key, rel_lo, rel_hi in pieces:
            t = access(key, now, dirty=True, timed=timed)
            if t > finish:
                finish = t
            old_mask = mask_get(key, 0)
            if old_mask & ~(((1 << (rel_hi - rel_lo)) - 1) << rel_lo):
                rmw_ppns.add(region_map[key][0])
        attr = self.service.attr
        if attr is not None and rmw_ppns:
            attr.read_label = "update_read"
        for ppn in rmw_ppns:
            t = self.service.read_page(ppn, now, kind, timed=timed)
            if timed:
                self.counters.update_reads += 1
            if t > finish:
                finish = t
        if attr is not None:
            attr.read_label = None

        # phase 2: pack regions into pages, R slots per page
        start = finish
        R = self.R
        rs = self.region_sectors
        track = self.track_payload
        for i in range(0, len(pieces), R):
            group = pieces[i : i + R]
            payload: Optional[dict] = None
            slots = []
            masks = []
            for key, rel_lo, rel_hi in group:
                old_mask = mask_get(key, 0)
                new_mask = ((1 << (rel_hi - rel_lo)) - 1) << rel_lo
                if track:
                    if payload is None:
                        payload = {}
                    base = key * rs
                    # retained old sectors of this region
                    retained = old_mask & ~new_mask
                    if retained:
                        old_ppn = region_map[key][0]
                        old_meta = self.service.array.meta(old_ppn)
                        if old_meta.payloads:
                            for bit in iter_bits(retained):
                                sec = base + bit
                                if sec in old_meta.payloads:
                                    payload[sec] = old_meta.payloads[sec]
                    if stamps:
                        for bit in iter_bits(new_mask):
                            sec = base + bit
                            if sec in stamps:
                                payload[sec] = stamps[sec]
                slots.append((key, True))
                masks.append(old_mask | new_mask)
            meta = RegionPageMeta(slots, masks, payload)
            for key, _lo, _hi in group:
                self._kill_slot(key)
            ppn, t = self._program_page(meta, start, OpKind.DATA)
            if t > finish:
                finish = t
            for slot_idx, (key, _rel_lo, _rel_hi) in enumerate(group):
                region_map[key] = (ppn, slot_idx)
                region_mask[key] = masks[slot_idx]
        return finish

    # ------------------------------------------------------------------
    def write_run(self, offsets, sizes, target: int) -> int:
        """Fused aging-write kernel (SimConfig.batch): region split,
        tree-depth-memoised cache touches, region RMW reads, slot kills,
        R-slot packing and GC checks inlined with the untimed /
        payload-free / unobserved branches resolved.

        Bit-identical to the generic scalar loop over :meth:`write`
        (enforced by the batch-vs-legacy digest tests and
        ``repro check --batch``); delegates to :meth:`BaseFTL.write_run`
        whenever a fast-path precondition fails.
        """
        if self._write_run_fallback():
            return super().write_run(offsets, sizes, target)
        from ..errors import FlashProtocolError
        from ..flash.array import PAGE_FREE, PAGE_INVALID, PAGE_VALID

        c = self.counters
        writes = c.writes
        reads = c.reads
        aging = OpKind.AGING
        spp = self.spp
        R = self.R
        rs = self.region_sectors
        region_map = self.region_map
        map_get = region_map.get
        region_mask = self.region_mask
        mask_get = region_mask.get
        fragmented = self._ever_fragmented
        cache = self._cache
        epp = cache.entries_per_page
        cached = cache._cached
        move_to_end = cached.move_to_end
        popitem = cached.popitem
        access = cache.access
        on_flash = cache._on_flash
        capacity_pages = cache.capacity_pages
        unlimited = cache.unlimited
        # flash locations of table 1's translation pages (the cache's
        # read/program callbacks consult the same dict)
        map_table = self._map_ppn.setdefault(1, {})
        tree_touches = self._tree_touches
        tt_val, tt_lo, tt_hi = self._tt_val, self._tt_lo, self._tt_hi
        service = self.service
        arr = service.array
        state = arr._state
        wp = arr._write_ptr
        valid_count = arr._valid_count
        last_mod = arr._last_mod
        meta_of = arr._meta
        allocator = self.allocator
        allocate = allocator.allocate
        order = allocator._plane_order
        active = allocator._active[0]
        n_planes = len(order)
        ppb = allocator._ppb
        gc = self.gc
        maybe_collect = gc.maybe_collect
        retire_pending = gc._retire_pending
        free_blocks = gc._free_blocks
        ok_free = gc._ok_free_count
        pages_per_plane = self.geom.pages_per_plane
        new_meta = object.__new__

        full_mask = (1 << rs) - 1
        consumed = 0
        for offset, size in zip(offsets, sizes):
            end = offset + size
            # --- region split (inlined _split_regions): only the first
            # and last pieces need offset arithmetic, interior pieces
            # are whole regions
            key = offset // rs
            last_key = (end - 1) // rs
            base = key * rs
            if key == last_key:
                pieces = [(key, offset - base, end - base)]
            else:
                pieces = [(key, offset - base, rs)]
                append_piece = pieces.append
                for kk in range(key + 1, last_key):
                    append_piece((kk, 0, rs))
                append_piece((last_key, 0, end - last_key * rs))
            # --- persistent fragmentation marking: only the boundary
            # pages can be partially covered, interior pages never are
            first_lpn = offset // spp
            last_lpn = (end - 1) // spp
            if offset - first_lpn * spp:
                fragmented.add(first_lpn)
            if (last_lpn + 1) * spp - end:
                fragmented.add(last_lpn)
            # --- phase 1: cache touches + region-level RMW.  The merged
            # masks are stashed per piece: one request's region keys are
            # distinct and phase 2 is their only writer, so the values
            # phase 2 would recompute are exactly these.
            rmw_ppns: set[int] = set()
            merged = []
            tvpn = pieces[0][0] // epp
            if tvpn == pieces[-1][0] // epp:
                # all pieces touch one translation page (~99.7% of
                # aging writes): the n identical LRU touches collapse
                # to one — same final recency order, dirty flag and
                # hit/miss/DRAM totals.  tt_val is constant here
                # because phase 1 never grows region_map.
                n = len(region_map)
                if n > tt_hi or n < tt_lo:
                    tree_touches()
                    tt_val = self._tt_val
                    tt_lo = self._tt_lo
                    tt_hi = self._tt_hi
                c.dram_accesses += tt_val * len(pieces)
                if unlimited:
                    cache.hits += len(pieces)
                elif tvpn in cached:
                    cache.hits += len(pieces)
                    move_to_end(tvpn)
                    cached[tvpn] = True
                else:
                    # inlined access() miss (dirty, untimed): fetch the
                    # flash-resident copy if any, install hot, spill the
                    # LRU overflow — the request's remaining touches
                    # re-hit the fresh entry
                    cache.misses += 1
                    cache.hits += len(pieces) - 1
                    if tvpn in on_flash:
                        # untimed map fetch (read_map_page callback)
                        fppn = map_table[tvpn]
                        if state[fppn] != PAGE_VALID:
                            raise FlashProtocolError(
                                f"read of non-valid PPN {fppn}"
                            )
                        arr.total_page_reads += 1
                        reads[aging] += 1
                    cached[tvpn] = True
                    while len(cached) > capacity_pages:
                        etvpn, was_dirty = popitem(last=False)
                        cache.evictions += 1
                        if not was_dirty:
                            continue
                        # untimed translation write-back (the
                        # program_map_page callback): invalidate the
                        # stale flash copy, program the new one, GC-
                        # check the plane written
                        old = map_table.get(etvpn)
                        if old is not None:
                            if state[old] != PAGE_VALID:
                                raise FlashProtocolError(
                                    f"invalidate of non-valid PPN {old}"
                                )
                            state[old] = PAGE_INVALID
                            ob = old // ppb
                            valid_count[ob] -= 1
                            del meta_of[old]
                            seq = arr.mod_seq + 1
                            arr.mod_seq = seq
                            last_mod[ob] = seq
                            del map_table[etvpn]
                        cur = allocator._cursor
                        plane = order[cur]
                        block = active[plane]
                        mppn = -1
                        if block is not None:
                            p = wp[block]
                            if p < ppb:
                                mppn = block * ppb + p
                                allocator._cursor = (
                                    cur + 1 if cur + 1 < n_planes else 0
                                )
                        if mppn < 0:
                            mppn = allocate(0)
                        if state[mppn] != PAGE_FREE:
                            raise FlashProtocolError(
                                f"program of non-free PPN {mppn}"
                            )
                        block = mppn // ppb
                        page = mppn - block * ppb
                        if page != wp[block]:
                            raise FlashProtocolError(
                                f"out-of-order program: block {block} "
                                f"expects page {wp[block]}, got {page}"
                            )
                        state[mppn] = PAGE_VALID
                        wp[block] = page + 1
                        valid_count[block] += 1
                        arr.total_programs += 1
                        meta_of[mppn] = MapPageMeta(1, etvpn)
                        seq = arr.mod_seq + 1
                        arr.mod_seq = seq
                        last_mod[block] = seq
                        writes[aging] += 1
                        plane = mppn // pages_per_plane
                        if retire_pending or len(free_blocks[plane]) < ok_free:
                            maybe_collect(plane, 0.0, timed=False)
                        map_table[etvpn] = mppn
                        on_flash.add(etvpn)
                append_merged = merged.append
                for key, rel_lo, rel_hi in pieces:
                    if rel_lo == 0 and rel_hi == rs:
                        # whole-region overwrite: the stored mask is a
                        # subset of full, so no RMW and merged == full
                        append_merged(full_mask)
                        continue
                    old_mask = mask_get(key, 0)
                    new_mask = ((1 << (rel_hi - rel_lo)) - 1) << rel_lo
                    if old_mask & ~new_mask:
                        rmw_ppns.add(region_map[key][0])
                    append_merged(old_mask | new_mask)
            else:
                for key, rel_lo, rel_hi in pieces:
                    tvpn = key // epp
                    if tvpn in cached:
                        n = len(region_map)
                        if n > tt_hi or n < tt_lo:
                            tree_touches()
                            tt_val = self._tt_val
                            tt_lo = self._tt_lo
                            tt_hi = self._tt_hi
                        c.dram_accesses += tt_val
                        cache.hits += 1
                        move_to_end(tvpn)
                        cached[tvpn] = True
                    else:
                        access(key, 0.0, dirty=True, timed=False)
                    if rel_lo == 0 and rel_hi == rs:
                        merged.append(full_mask)
                        continue
                    old_mask = mask_get(key, 0)
                    new_mask = ((1 << (rel_hi - rel_lo)) - 1) << rel_lo
                    if old_mask & ~new_mask:
                        rmw_ppns.add(region_map[key][0])
                    merged.append(old_mask | new_mask)
            for ppn in rmw_ppns:
                # untimed aging read of the partially-overwritten page
                if state[ppn] != PAGE_VALID:
                    raise FlashProtocolError(f"read of non-valid PPN {ppn}")
                arr.total_page_reads += 1
                reads[aging] += 1
            # --- phase 2: pack regions into pages, R slots per page
            for i in range(0, len(pieces), R):
                group = pieces[i : i + R]
                # plain loop, not a listcomp: no per-group extra frame
                slots = []
                for key, _lo, _hi in group:
                    slots.append((key, True))
                masks = merged[i : i + R]
                # __new__ + direct slot stores: same object as
                # RegionPageMeta(slots, masks, None) without the
                # constructor frame (one meta per programmed page)
                meta = new_meta(RegionPageMeta)
                meta.slots = slots
                meta.masks = masks
                meta.payloads = None
                # inlined _kill_slot; a group's keys were usually packed
                # together by an earlier write, so they share one region
                # page: cache its meta and count live slots down instead
                # of rescanning after every kill (same aliveness result)
                last_ppn0 = -1
                mslots = None
                live_left = 0
                for key, _lo, _hi in group:
                    loc = map_get(key)
                    if loc is None:
                        continue
                    ppn0, slot = loc
                    if ppn0 != last_ppn0:
                        mslots = meta_of[ppn0].slots
                        last_ppn0 = ppn0
                        live_left = 0
                        for _skey, lv in mslots:
                            if lv:
                                live_left += 1
                    skey, live = mslots[slot]
                    if skey != key or not live:
                        raise MappingError(
                            f"slot bookkeeping broken for region {key}"
                        )
                    mslots[slot] = (key, False)
                    live_left -= 1
                    if not live_left:
                        if state[ppn0] != PAGE_VALID:
                            raise FlashProtocolError(
                                f"invalidate of non-valid PPN {ppn0}"
                            )
                        state[ppn0] = PAGE_INVALID
                        old_block = ppn0 // ppb
                        valid_count[old_block] -= 1
                        del meta_of[ppn0]
                        seq = arr.mod_seq + 1
                        arr.mod_seq = seq
                        last_mod[old_block] = seq
                        last_ppn0 = -1  # page gone; never reuse its meta
                # allocate (round-robin fast path, exact fallback)
                cur = allocator._cursor
                plane = order[cur]
                block = active[plane]
                ppn = -1
                if block is not None:
                    p = wp[block]
                    if p < ppb:
                        ppn = block * ppb + p
                        allocator._cursor = cur + 1 if cur + 1 < n_planes else 0
                if ppn < 0:
                    ppn = allocate(0)
                # program (untimed, AGING kind)
                if state[ppn] != PAGE_FREE:
                    raise FlashProtocolError(f"program of non-free PPN {ppn}")
                block = ppn // ppb
                page = ppn - block * ppb
                if page != wp[block]:
                    raise FlashProtocolError(
                        f"out-of-order program: block {block} expects page "
                        f"{wp[block]}, got {page}"
                    )
                state[ppn] = PAGE_VALID
                wp[block] = page + 1
                valid_count[block] += 1
                arr.total_programs += 1
                meta_of[ppn] = meta
                seq = arr.mod_seq + 1
                arr.mod_seq = seq
                last_mod[block] = seq
                writes[aging] += 1
                # GC check on the written plane
                plane = ppn // pages_per_plane
                if retire_pending or len(free_blocks[plane]) < ok_free:
                    maybe_collect(plane, 0.0, timed=False)
                for slot_idx, (key, _rel_lo, _rel_hi) in enumerate(group):
                    region_map[key] = (ppn, slot_idx)
                    region_mask[key] = masks[slot_idx]
            consumed += 1
            if writes[aging] >= target:
                break
        return consumed

    # ------------------------------------------------------------------
    def read(
        self, offset: int, size: int, now: float
    ) -> tuple[float, Optional[dict]]:
        """Service a read: one flash read per distinct page holding a
        wanted live region."""
        finish = now
        timed = self.timed
        kind = OpKind.DATA if timed else OpKind.AGING
        access = self._cache.access
        mask_get = self.region_mask.get
        rs = self.region_sectors
        found: Optional[dict] = {} if self.track_payload else None
        ppn_sectors: dict[int, list[int]] = {}
        for key, rel_lo, rel_hi in self._split_regions(offset, size):
            t = access(key, now, dirty=False, timed=timed)
            if t > finish:
                finish = t
            present = mask_get(key, 0) & (
                ((1 << (rel_hi - rel_lo)) - 1) << rel_lo
            )
            if not present:
                continue
            ppn = self.region_map[key][0]
            base = key * rs
            ppn_sectors.setdefault(ppn, []).extend(
                base + bit for bit in iter_bits(present)
            )
        for ppn, sectors in ppn_sectors.items():
            t = self.service.read_page(ppn, now, kind, timed=timed)
            if t > finish:
                finish = t
            if found is not None:
                meta = self.service.array.meta(ppn)
                if meta.payloads:
                    for sec in sectors:
                        if sec in meta.payloads:
                            found[sec] = meta.payloads[sec]
        return finish, found

    # ------------------------------------------------------------------
    def trim(self, offset: int, size: int, now: float) -> float:
        """Drop data at region granularity: a region whose last live
        sectors are trimmed gives up its slot (and its page, once every
        slot is dead)."""
        for key, rel_lo, rel_hi in self._split_regions(offset, size):
            old = self.region_mask.get(key, 0)
            if not old:
                continue
            remaining = old & ~mask_range(rel_lo, rel_hi)
            if remaining:
                self.region_mask[key] = remaining
            else:
                self._kill_slot(key)
                del self.region_map[key]
                del self.region_mask[key]
        self.counters.count_dram()
        return now + self.cfg.timing.cache_access_ms

    # ------------------------------------------------------------------
    # GC relocation of region pages
    # ------------------------------------------------------------------
    def _relocate_extra(self, old_ppn: int, meta, now: float) -> float:
        if meta.kind != "region":
            return super()._relocate_extra(old_ppn, meta, now)
        live_keys = [k for k, live in meta.slots if live]
        for k in live_keys:
            if self.region_map.get(k, (None, None))[0] != old_ppn:
                raise MappingError(f"region {k} not mapped to GC page {old_ppn}")
        payload = None
        if meta.payloads is not None:
            payload = {}
            for k in live_keys:
                base = self._region_base_sector(k)
                for bit in iter_bits(self.region_mask.get(k, 0)):
                    sec = base + bit
                    if sec in meta.payloads:
                        payload[sec] = meta.payloads[sec]
        new_meta = RegionPageMeta(
            [(k, True) for k in live_keys],
            [self.region_mask.get(k, 0) for k in live_keys],
            payload,
        )
        plane = self.geom.plane_of_ppn(old_ppn)
        new_ppn, finish = self._program_page(
            new_meta, now, OpKind.GC, plane=plane, gc_check=False,
            stream=STREAM_GC,
        )
        for slot_idx, k in enumerate(live_keys):
            self.region_map[k] = (new_ppn, slot_idx)
        self.service.invalidate(old_ppn)
        return finish

    # ------------------------------------------------------------------
    # power-loss recovery
    # ------------------------------------------------------------------
    def _rebuild_reset(self) -> None:
        self.region_map.clear()
        self.region_mask.clear()
        self._ever_fragmented.clear()

    def _rebuild_page(self, ppn: int, meta) -> None:
        if meta.kind != "region":
            return super()._rebuild_page(ppn, meta)
        for slot_idx, (key, live) in enumerate(meta.slots):
            if not live:
                continue
            if key in self.region_map:
                raise MappingError(f"region {key} claimed by two slots")
            self.region_map[key] = (ppn, slot_idx)
            self.region_mask[key] = meta.masks[slot_idx]

    def _rebuild_finish(self) -> None:
        # an lpn whose regions are not one packed page is fragmented
        for key in self.region_map:
            lpn = key // self.R
            if lpn in self._ever_fragmented:
                continue
            locs = [
                self.region_map.get(lpn * self.R + r) for r in range(self.R)
            ]
            if None in locs or len({p for p, _ in locs}) != 1 or [
                s for _, s in locs
            ] != list(range(self.R)):
                self._ever_fragmented.add(lpn)

    # ------------------------------------------------------------------
    def mapping_table_bytes(self) -> int:
        """Adaptive footprint: an LPN whose R regions sit packed in-order
        in one page costs one entry; otherwise one entry per region."""
        if not self.region_map:
            return 0
        R = self.R
        n = len(self.region_map)
        keys = np.fromiter(self.region_map.keys(), dtype=np.int64, count=n)
        # itemgetter over the values iterates at C speed — this runs
        # once per report over the full (possibly multi-100k) table
        ppns = np.fromiter(
            map(itemgetter(0), self.region_map.values()),
            dtype=np.int64, count=n,
        )
        slots = np.fromiter(
            map(itemgetter(1), self.region_map.values()),
            dtype=np.int64, count=n,
        )
        order = np.argsort(keys)
        keys, ppns, slots = keys[order], ppns[order], slots[order]
        lpns = keys // R
        # group the (sorted, unique) keys by LPN and test each group
        # vectorised: a group of R keys sorted under one LPN necessarily
        # holds exactly lpn*R .. lpn*R+R-1, so only the slot order and
        # single-PPN conditions need checking
        starts = np.flatnonzero(np.r_[True, lpns[1:] != lpns[:-1]])
        counts = np.diff(np.r_[starts, n])
        coarse = counts == R
        if coarse.any():
            same_ppn = np.minimum.reduceat(ppns, starts) == np.maximum.reduceat(
                ppns, starts
            )
            slots_in_order = np.logical_and.reduceat(slots == keys % R, starts)
            coarse &= same_ppn & slots_in_order
            if self._ever_fragmented:
                frag = np.fromiter(
                    self._ever_fragmented, dtype=np.int64,
                    count=len(self._ever_fragmented),
                )
                coarse &= ~np.isin(lpns[starts], frag)
        n_coarse = int(coarse.sum())
        region_entries = n - n_coarse * R
        return n_coarse * PAGE_ENTRY_BYTES + region_entries * REGION_ENTRY_BYTES

    def flush_metadata(self, now: float) -> float:
        """Write back dirty translation pages (end-of-run barrier)."""
        return self._cache.flush(now, timed=self.timed)

    def stats(self) -> dict:
        """Region-map and mapping-cache statistics for the report."""
        s = super().stats()
        s.update(
            region_entries=len(self.region_map),
            map_cache_hits=self._cache.hits,
            map_cache_misses=self._cache.misses,
            map_cache_evictions=self._cache.evictions,
            map_residency=self._cache.residency(len(self.region_map)),
        )
        return s

    def referenced_ppns(self):
        """Base tables plus region pages (each distinct PPN once, no
        matter how many region slots of it are live)."""
        yield from super().referenced_ppns()
        seen = set()
        for key, (ppn, _slot) in self.region_map.items():
            if ppn not in seen:
                seen.add(ppn)
                yield ppn, f"region_page[{ppn}]"

    def check_invariants(self) -> None:
        """Region-map consistency (tests and :mod:`repro.check`)."""
        for key, (ppn, slot) in self.region_map.items():
            if not self.service.array.is_valid(ppn):
                raise MappingError(f"region {key} -> invalid PPN {ppn}")
            meta = self.service.array.meta(ppn)
            if meta.kind != "region":
                raise MappingError(f"region {key} -> non-region page")
            skey, live = meta.slots[slot]
            if skey != key or not live:
                raise MappingError(f"region {key} slot mismatch at PPN {ppn}")
