"""Reverse-mapping records stored with every programmed flash page.

The flash array treats these as opaque; garbage collection reads them
back to know how to re-map a migrated page.  ``payload`` carries the
sector-version stamps used by the correctness oracle and is ``None``
in plain performance runs.
"""

from __future__ import annotations

from typing import Optional


class DataPageMeta:
    """A normally-mapped data page holding sectors of one LPN.

    ``mask`` is the page-relative bitmap of the sectors that were live
    when the page was programmed — the out-of-band (OOB) record a real
    FTL scans to rebuild its tables after power loss.
    """

    __slots__ = ("lpn", "mask", "payload")
    kind = "data"

    def __init__(self, lpn: int, mask: int = 0, payload: Optional[dict] = None):
        self.lpn = lpn
        self.mask = mask
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DataPageMeta(lpn={self.lpn})"


class AcrossPageMeta:
    """An across-page area: one physical page holding a sector extent
    that spans two logical pages (paper §3.1)."""

    __slots__ = ("aidx", "start", "size", "payload")
    kind = "across"

    def __init__(self, aidx: int, start: int, size: int, payload: Optional[dict] = None):
        self.aidx = aidx
        #: absolute first sector of the re-aligned extent
        self.start = start
        #: extent length in sectors (always <= sectors per page)
        self.size = size
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AcrossPageMeta(aidx={self.aidx}, start={self.start}, size={self.size})"


class MapPageMeta:
    """A translation page: a flash-resident chunk of a mapping table."""

    __slots__ = ("table_id", "tvpn")
    kind = "map"

    def __init__(self, table_id: int, tvpn: int):
        self.table_id = table_id
        self.tvpn = tvpn

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MapPageMeta(table={self.table_id}, tvpn={self.tvpn})"


class RegionPageMeta:
    """An MRSM data page packing up to R sub-page regions.

    ``slots`` holds one ``(region_key, live)`` pair per packed region;
    a page stays VALID in the array while any slot is live.  ``masks``
    records each slot's written-sector bitmap (region-relative) for
    table reconstruction.
    """

    __slots__ = ("slots", "masks", "payloads")
    kind = "region"

    def __init__(
        self,
        slots: list,
        masks: Optional[list] = None,
        payloads: Optional[dict] = None,
    ):
        self.slots = slots
        self.masks = masks if masks is not None else [0] * len(slots)
        self.payloads = payloads

    def live_count(self) -> int:
        """Number of slots still holding the newest copy of a region."""
        return sum(1 for _, live in self.slots if live)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RegionPageMeta({self.slots!r})"
