"""BAST: block-associative hybrid log-block FTL (library extension).

A classic pre-page-mapping design, included as an additional baseline:
it shows *why* fine-grained mapping won — and how badly across-page
and unaligned traffic age a block-mapped device.

Model
-----
* Logical blocks (``pages_per_block`` consecutive LPNs) map to whole
  physical *data blocks*; a page's position inside its data block is
  fixed (block-level mapping: one entry per block, tiny table).
* All host writes append to the logical block's dedicated *log block*
  (page-mapped internally).  NAND's sequential-program rule is always
  honoured: data blocks are only ever *constructed* by merges, which
  write pages 0..N-1 in order.
* When a log block fills, or the log pool runs dry, the victim logical
  block is **merged**: the newest copy of every page (log first, then
  the old data block) is copied into a freshly allocated block, and
  the old data and log blocks are erased.  A *switch merge* — the log
  block containing exactly pages 0..N-1 in order — promotes the log
  block to data block with a single erase.
* Merges are this scheme's garbage collection; the generic greedy GC
  never runs for it.

Partial-page writes do read-modify-write against the newest copy, so
the oracle holds.  Reads check the log block's page map first, then
the data block.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

import numpy as np

from ..errors import ConfigError, MappingError, OutOfSpaceError
from ..metrics.counters import OpKind
from ..units import split_extent
from .base import BaseFTL, iter_bits, mask_range
from .meta import DataPageMeta


class _LogBlock:
    """Per-logical-block log state."""

    __slots__ = ("block", "write_ptr", "page_of_offset", "sequential")

    def __init__(self, block: int):
        self.block = block
        self.write_ptr = 0
        #: page-offset-in-lbn -> page-index-in-log-block (newest copy)
        self.page_of_offset: dict[int, int] = {}
        #: stays True while appended offsets are exactly 0,1,2,...
        self.sequential = True


class BASTFTL(BaseFTL):
    """Hybrid log-block FTL with block-level mapping."""

    name = "bast"
    uses_generic_gc = False
    BLOCK_ENTRY_BYTES = 4

    def __init__(self, service, *, log_blocks: int = 32, **kw):
        super().__init__(service, **kw)
        if log_blocks < 2:
            raise ConfigError("need at least 2 log blocks")
        self.ppb = self.geom.pages_per_block
        self.num_lbns = -(-self.logical_pages // self.ppb)
        #: logical block -> physical data block (-1 = none yet)
        self.block_map = np.full(self.num_lbns, -1, dtype=np.int64)
        #: logical block -> live log block (LRU order = merge victims)
        self.logs: OrderedDict[int, _LogBlock] = OrderedDict()
        self.max_logs = log_blocks
        self._plane_cursor = 0
        # statistics
        self.full_merges = 0
        self.switch_merges = 0

    # ------------------------------------------------------------------
    # whole-block allocation (BAST works in block units)
    # ------------------------------------------------------------------
    def _alloc_block(self) -> int:
        arr = self.service.array
        n = self.geom.num_planes
        for i in range(n):
            plane = (self._plane_cursor + i) % n
            if arr.free_block_count(plane) > 0:
                self._plane_cursor = (plane + 1) % n
                return arr.pop_free_block(plane)
        raise OutOfSpaceError("no free block for BAST")

    def _erase(self, block: int, now: float) -> None:
        self.service.erase_block(block, now, aging=self.aging)

    # ------------------------------------------------------------------
    # newest-copy lookup
    # ------------------------------------------------------------------
    def _ppn_of(self, lpn: int) -> int | None:
        """PPN holding the newest copy of ``lpn``, or None."""
        lbn, off = divmod(lpn, self.ppb)
        log = self.logs.get(lbn)
        if log is not None and off in log.page_of_offset:
            return log.block * self.ppb + log.page_of_offset[off]
        pbn = int(self.block_map[lbn])
        if pbn >= 0:
            ppn = pbn * self.ppb + off
            if self.service.array.is_valid(ppn):
                return ppn
        return None

    # ------------------------------------------------------------------
    # merges
    # ------------------------------------------------------------------
    def _merge(self, lbn: int, now: float) -> None:
        """Fold a logical block's log into a fresh data block."""
        attr = self.service.attr
        if attr is not None:
            # a merge is reclamation, not request service: background
            # for latency attribution like generic GC
            attr.suspend()
            try:
                self._merge_inner(lbn, now)
            finally:
                attr.resume()
        else:
            self._merge_inner(lbn, now)

    def _merge_inner(self, lbn: int, now: float) -> None:
        log = self.logs.pop(lbn)
        old_pbn = int(self.block_map[lbn])
        arr = self.service.array

        # switch merge: the log IS the new data block
        if (
            log.sequential
            and log.write_ptr == self.ppb
            and len(log.page_of_offset) == self.ppb
        ):
            self.block_map[lbn] = log.block
            if old_pbn >= 0:
                self._invalidate_block(old_pbn)
                self._erase(old_pbn, now)
            self.switch_merges += 1
            return
        # full merge: copy newest pages in offset order
        new_pbn = self._alloc_block()
        kind = self._kind(OpKind.GC)
        for off in range(self.ppb):
            src = None
            if off in log.page_of_offset:
                src = log.block * self.ppb + log.page_of_offset[off]
            elif old_pbn >= 0:
                cand = old_pbn * self.ppb + off
                if arr.is_valid(cand):
                    src = cand
            if src is None:
                # hole: nothing ever written at this offset — but NAND
                # programs sequentially, so pad with an empty page only
                # when later offsets still hold data
                if any(
                    o > off
                    for o in log.page_of_offset
                ) or (
                    old_pbn >= 0
                    and any(
                        arr.is_valid(old_pbn * self.ppb + o)
                        for o in range(off + 1, self.ppb)
                    )
                ):
                    pad = DataPageMeta(lbn * self.ppb + off, 0, None)
                    self.service.program_page(
                        new_pbn * self.ppb + off, pad, now, kind,
                        timed=self.timed,
                    )
                    self.service.invalidate(new_pbn * self.ppb + off)
                continue
            self.service.read_page(src, now, kind, timed=self.timed)
            meta = arr.meta(src)
            self.service.program_page(
                new_pbn * self.ppb + off, meta, now, kind, timed=self.timed
            )
            arr.invalidate(src)
        self.full_merges += 1
        self._invalidate_block(old_pbn)
        self._invalidate_block(log.block)
        if old_pbn >= 0:
            self._erase(old_pbn, now)
        self._erase(log.block, now)
        self.block_map[lbn] = new_pbn

    def _invalidate_block(self, block: int) -> None:
        if block < 0:
            return
        arr = self.service.array
        for ppn in list(arr.valid_ppns(block)):
            arr.invalidate(ppn)

    def _log_for(self, lbn: int, now: float) -> _LogBlock:
        log = self.logs.get(lbn)
        if log is not None:
            if log.write_ptr < self.ppb:
                self.logs.move_to_end(lbn)
                return log
            self._merge(lbn, now)  # full log: fold it first
        while len(self.logs) >= self.max_logs:
            victim = next(iter(self.logs))  # least recently used
            self._merge(victim, now)
        log = _LogBlock(self._alloc_block())
        self.logs[lbn] = log
        return log

    # ------------------------------------------------------------------
    # host API
    # ------------------------------------------------------------------
    def write(
        self, offset: int, size: int, now: float, stamps: Optional[dict] = None
    ) -> float:
        """Append every touched page's newest image to its log block."""
        finish = now
        for lpn, rel_lo, count in split_extent(offset, size, self.spp):
            t = self._write_page(lpn, rel_lo, rel_lo + count, now, stamps)
            finish = max(finish, t)
        return finish

    def _write_page(
        self, lpn: int, rel_lo: int, rel_hi: int, now: float, stamps
    ) -> float:
        self.counters.count_dram()
        lbn, off = divmod(lpn, self.ppb)
        new_mask = mask_range(rel_lo, rel_hi)
        old_mask = self._pmt_mask[lpn]
        retained = old_mask & ~new_mask
        finish = now
        payload: Optional[dict] = {} if self.track_payload else None
        # resolve the log FIRST: acquiring it may trigger a merge, which
        # relocates this LPN's newest copy — look it up afterwards
        log = self._log_for(lbn, now)
        old_ppn = self._ppn_of(lpn)
        if retained and old_ppn is not None:
            attr = self.service.attr
            if attr is not None:
                attr.read_label = "update_read"
            finish = self.service.read_page(
                old_ppn, now, self._kind(OpKind.DATA), timed=self.timed
            )
            if attr is not None:
                attr.read_label = None
            if not self.aging:
                self.counters.update_reads += 1
            if payload is not None:
                old_meta = self.service.array.meta(old_ppn)
                if old_meta.payload:
                    base = lpn * self.spp
                    for bit in iter_bits(retained):
                        sec = base + bit
                        if sec in old_meta.payload:
                            payload[sec] = old_meta.payload[sec]
        if payload is not None and stamps:
            base = lpn * self.spp
            for bit in iter_bits(new_mask):
                sec = base + bit
                if sec in stamps:
                    payload[sec] = stamps[sec]

        page_idx = log.write_ptr
        ppn = log.block * self.ppb + page_idx
        meta = DataPageMeta(lpn, old_mask | new_mask, payload)
        t = self.service.program_page(
            ppn, meta, finish, self._kind(OpKind.DATA), timed=self.timed
        )
        finish = max(finish, t)
        # supersede the previous copy
        prev = log.page_of_offset.get(off)
        if prev is not None:
            self.service.invalidate(log.block * self.ppb + prev)
        elif old_ppn is not None:
            self.service.invalidate(old_ppn)
        if log.sequential and page_idx != off:
            log.sequential = False
        log.page_of_offset[off] = page_idx
        log.write_ptr += 1
        self._pmt_mask[lpn] = old_mask | new_mask
        return finish

    # ------------------------------------------------------------------
    def read(
        self, offset: int, size: int, now: float
    ) -> tuple[float, Optional[dict]]:
        """Read each page's newest copy (log first, then data block)."""
        finish = now
        found: Optional[dict] = {} if self.track_payload else None
        for lpn, rel_lo, count in split_extent(offset, size, self.spp):
            self.counters.count_dram()
            present = self._pmt_mask[lpn] & mask_range(
                rel_lo, rel_lo + count
            )
            if not present:
                continue
            ppn = self._ppn_of(lpn)
            if ppn is None:
                continue
            t = self.service.read_page(
                ppn, now, self._kind(OpKind.DATA), timed=self.timed
            )
            finish = max(finish, t)
            if found is not None:
                base = lpn * self.spp
                self._read_stamps_from(
                    ppn, [base + bit for bit in iter_bits(present)], found
                )
        return finish, found

    # ------------------------------------------------------------------
    def trim(self, offset: int, size: int, now: float) -> float:
        """Drop data; whole-block reclamation happens lazily at merges."""
        for lpn, rel_lo, count in split_extent(offset, size, self.spp):
            mask = mask_range(rel_lo, rel_lo + count)
            remaining = self._pmt_mask[lpn] & ~mask
            self._pmt_mask[lpn] = remaining
            if remaining == 0:
                ppn = self._ppn_of(lpn)
                if ppn is not None:
                    self.service.invalidate(ppn)
                    lbn, off = divmod(lpn, self.ppb)
                    log = self.logs.get(lbn)
                    if log is not None:
                        log.page_of_offset.pop(off, None)
                        log.sequential = False
        self.counters.count_dram()
        return now + self.cfg.timing.cache_access_ms

    # ------------------------------------------------------------------
    def mapping_table_bytes(self) -> int:
        """Block-level table plus per-log page maps — BAST's selling
        point was exactly this tiny footprint."""
        mapped = int((self.block_map >= 0).sum())
        log_entries = sum(len(l.page_of_offset) + 1 for l in self.logs.values())
        return mapped * self.BLOCK_ENTRY_BYTES + log_entries * 4

    def rebuild_from_flash(self) -> int:
        """Not supported: BAST's OOB records do not distinguish data
        blocks from log blocks in this model (a real device tags them);
        use the page-mapping schemes for recovery studies."""
        raise MappingError("rebuild_from_flash is not supported for bast")

    def stats(self) -> dict:
        """Merge and log-pool statistics for the report."""
        s = super().stats()
        s.update(
            bast_full_merges=self.full_merges,
            bast_switch_merges=self.switch_merges,
            bast_live_logs=len(self.logs),
        )
        return s

    def check_invariants(self) -> None:
        """BAST-specific consistency (the base PMT is unused here)."""
        for lbn, log in self.logs.items():
            for off, page_idx in log.page_of_offset.items():
                ppn = log.block * self.ppb + page_idx
                if not self.service.array.is_valid(ppn):
                    raise MappingError(
                        f"log of lbn {lbn}: offset {off} -> invalid PPN {ppn}"
                    )
                meta = self.service.array.meta(ppn)
                if meta.lpn != lbn * self.ppb + off:
                    raise MappingError(f"log page {ppn} holds foreign LPN")
