"""Baseline dynamic page-level mapping FTL (the paper's "FTL").

Every logical page maps to one physical page.  A write that covers a
page only partially triggers read-modify-write: the old page is read,
merged with the new sectors, and the union is programmed to a fresh
page (the old one is invalidated).  An *across-page* request therefore
costs two flash programs — and up to two RMW reads — even though it
carries no more than one page of data.  That is precisely the overhead
Figure 4 measures and Across-FTL removes.

The full mapping table fits controller DRAM (paper §4.1), so this
scheme produces no Map flash traffic in Fig. 10.
"""

from __future__ import annotations

from typing import Optional

from ..metrics.counters import OpKind
from ..units import split_extent
from .base import BaseFTL, iter_bits


class PageMapFTL(BaseFTL):
    """Dynamic page-level mapping with read-modify-write."""

    name = "ftl"

    def __init__(self, service, *, rmw_enabled: bool = True, **kw):
        super().__init__(service, **kw)
        #: ablation knob (bench_ablation_rmw): when False, partial-page
        #: writes do not read the old page first — this breaks data
        #: retention on purpose to isolate RMW's cost.
        self.rmw_enabled = rmw_enabled
        #: PMT lookups go through a cache that, at default settings,
        #: wholly fits DRAM — modelling the paper's in-DRAM baseline.
        entries_per_page = max(1, self.cfg.page_size_bytes // self.PMT_ENTRY_BYTES)
        self._pmt_cache = self._make_cache(
            table_id=0,
            entries_per_page=entries_per_page,
            capacity_entries=self.dram_entries,
        )

    # ------------------------------------------------------------------
    def write(
        self, offset: int, size: int, now: float, stamps: Optional[dict] = None
    ) -> float:
        """Service a write piece-by-piece with RMW on partial pages."""
        finish = now
        timed = self.timed
        access = self._pmt_cache.access
        write_page = self._write_data_page
        rmw = self.rmw_enabled
        for lpn, rel_lo, count in split_extent(offset, size, self.spp):
            t = access(lpn, now, dirty=True, timed=timed)
            if not rmw:
                # ablation: pretend the page held nothing else
                self._pmt_mask[lpn] = 0
            t = write_page(
                lpn, rel_lo, rel_lo + count, t if t > now else now, stamps
            )
            if t > finish:
                finish = t
        return finish

    # ------------------------------------------------------------------
    def write_run(self, offsets, sizes, target: int) -> int:
        """Fused aging-write kernel (SimConfig.batch): the per-piece
        pipeline of :meth:`write` — PMT-cache touch, RMW read, old-page
        invalidate, allocate, program, GC check — inlined into one loop
        with the untimed/payload-free/unobserved branches resolved.

        Bit-identical to the generic scalar loop: every counter bump,
        protocol check, LRU movement, allocator-cursor advance and GC
        trigger happens in exactly the order :meth:`write` produces.
        Any precondition miss (timed mode, payload tracking,
        observability) delegates to :meth:`BaseFTL.write_run`.
        """
        if self._write_run_fallback():
            return super().write_run(offsets, sizes, target)
        from ..errors import FlashProtocolError
        from ..flash.array import PAGE_FREE, PAGE_INVALID, PAGE_VALID
        from .meta import DataPageMeta

        c = self.counters
        writes = c.writes
        reads = c.reads
        aging = OpKind.AGING
        spp = self.spp
        rmw = self.rmw_enabled
        pmt = self._pmt
        pmt_mask = self._pmt_mask
        cache = self._pmt_cache
        unlimited = cache.unlimited
        epp = cache.entries_per_page
        cached = cache._cached
        move_to_end = cached.move_to_end
        access = cache.access
        service = self.service
        arr = service.array
        state = arr._state
        wp = arr._write_ptr
        valid_count = arr._valid_count
        last_mod = arr._last_mod
        meta_of = arr._meta
        allocator = self.allocator
        allocate = allocator.allocate
        order = allocator._plane_order
        active = allocator._active[0]
        n_planes = len(order)
        ppb = allocator._ppb
        gc = self.gc
        maybe_collect = gc.maybe_collect
        retire_pending = gc._retire_pending
        free_blocks = gc._free_blocks
        ok_free = gc._ok_free_count
        pages_per_plane = self.geom.pages_per_plane

        consumed = 0
        for offset, size in zip(offsets, sizes):
            end = offset + size
            first = offset // spp
            last = (end - 1) // spp
            for lpn in range(first, last + 1):
                page_lo = lpn * spp
                rel_lo = offset - page_lo if offset > page_lo else 0
                rel_hi = end - page_lo if end < page_lo + spp else spp
                # --- mapping-cache touch (dirty, untimed, hit inlined)
                if unlimited:
                    c.dram_accesses += 1
                    cache.hits += 1
                else:
                    tvpn = lpn // epp
                    if tvpn in cached:
                        c.dram_accesses += 1
                        cache.hits += 1
                        move_to_end(tvpn)
                        cached[tvpn] = True
                    else:
                        access(lpn, 0.0, dirty=True, timed=False)
                if not rmw:
                    pmt_mask[lpn] = 0
                # --- _write_data_page, untimed / no payload / no obs
                new_mask = ((1 << (rel_hi - rel_lo)) - 1) << rel_lo
                old_ppn = pmt[lpn]
                old_mask = pmt_mask[lpn]
                if old_mask & ~new_mask and old_ppn >= 0:
                    # RMW read of the old page (untimed aging read)
                    if state[old_ppn] != PAGE_VALID:
                        raise FlashProtocolError(
                            f"read of non-valid PPN {old_ppn}"
                        )
                    arr.total_page_reads += 1
                    reads[aging] += 1
                if old_ppn >= 0:
                    if state[old_ppn] != PAGE_VALID:
                        raise FlashProtocolError(
                            f"invalidate of non-valid PPN {old_ppn}"
                        )
                    state[old_ppn] = PAGE_INVALID
                    old_block = old_ppn // ppb
                    valid_count[old_block] -= 1
                    del meta_of[old_ppn]
                    seq = arr.mod_seq + 1
                    arr.mod_seq = seq
                    last_mod[old_block] = seq
                full_mask = old_mask | new_mask
                # --- allocate (round-robin fast path, exact fallback)
                cur = allocator._cursor
                plane = order[cur]
                block = active[plane]
                ppn = -1
                if block is not None:
                    p = wp[block]
                    if p < ppb:
                        ppn = block * ppb + p
                        allocator._cursor = cur + 1 if cur + 1 < n_planes else 0
                if ppn < 0:
                    ppn = allocate(0)
                # --- program (untimed, AGING kind)
                if state[ppn] != PAGE_FREE:
                    raise FlashProtocolError(f"program of non-free PPN {ppn}")
                block = ppn // ppb
                page = ppn - block * ppb
                if page != wp[block]:
                    raise FlashProtocolError(
                        f"out-of-order program: block {block} expects page "
                        f"{wp[block]}, got {page}"
                    )
                state[ppn] = PAGE_VALID
                wp[block] = page + 1
                valid_count[block] += 1
                arr.total_programs += 1
                meta_of[ppn] = DataPageMeta(lpn, full_mask, None)
                seq = arr.mod_seq + 1
                arr.mod_seq = seq
                last_mod[block] = seq
                writes[aging] += 1
                # --- GC check on the written plane
                plane = ppn // pages_per_plane
                if retire_pending or len(free_blocks[plane]) < ok_free:
                    maybe_collect(plane, 0.0, timed=False)
                pmt[lpn] = ppn
                pmt_mask[lpn] = full_mask
            consumed += 1
            if writes[aging] >= target:
                break
        return consumed

    # ------------------------------------------------------------------
    def read(
        self, offset: int, size: int, now: float
    ) -> tuple[float, Optional[dict]]:
        """Service a read: one flash read per written page touched."""
        finish = now
        timed = self.timed
        kind = OpKind.DATA if timed else OpKind.AGING
        access = self._pmt_cache.access
        read_page = self.service.read_page
        found: Optional[dict] = {} if self.track_payload else None
        for lpn, rel_lo, count in split_extent(offset, size, self.spp):
            t = access(lpn, now, dirty=False, timed=timed)
            if t > finish:
                finish = t
            wanted = ((1 << count) - 1) << rel_lo
            present = self._pmt_mask[lpn] & wanted
            if not present:
                continue  # nothing of this piece was ever written
            if self.service.obs is not None:
                self._emit_decision("page_read", lpn, now)
            ppn = self._pmt[lpn]
            t = read_page(ppn, now, kind, timed=timed)
            if t > finish:
                finish = t
            if found is not None:
                base = lpn * self.spp
                sectors = [base + bit for bit in iter_bits(present)]
                self._read_stamps_from(ppn, sectors, found)
        return finish, found

    # ------------------------------------------------------------------
    def mapping_table_bytes(self) -> int:
        """Fig. 12a model: entries are demand-allocated per mapped LPN
        (all three schemes use the same convention, so the paper's
        1.4x/2.4x ratios are comparable)."""
        return int((self.pmt >= 0).sum()) * self.PMT_ENTRY_BYTES

    def flush_metadata(self, now: float) -> float:
        """Write back dirty PMT translation pages (end-of-run barrier)."""
        return self._pmt_cache.flush(now, timed=self.timed)

    def stats(self) -> dict:
        """PMT-cache statistics for the report."""
        s = super().stats()
        s.update(
            pmt_cache_hits=self._pmt_cache.hits,
            pmt_cache_misses=self._pmt_cache.misses,
        )
        return s
