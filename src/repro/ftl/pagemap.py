"""Baseline dynamic page-level mapping FTL (the paper's "FTL").

Every logical page maps to one physical page.  A write that covers a
page only partially triggers read-modify-write: the old page is read,
merged with the new sectors, and the union is programmed to a fresh
page (the old one is invalidated).  An *across-page* request therefore
costs two flash programs — and up to two RMW reads — even though it
carries no more than one page of data.  That is precisely the overhead
Figure 4 measures and Across-FTL removes.

The full mapping table fits controller DRAM (paper §4.1), so this
scheme produces no Map flash traffic in Fig. 10.
"""

from __future__ import annotations

from typing import Optional

from ..metrics.counters import OpKind
from ..units import split_extent
from .base import BaseFTL, iter_bits


class PageMapFTL(BaseFTL):
    """Dynamic page-level mapping with read-modify-write."""

    name = "ftl"

    def __init__(self, service, *, rmw_enabled: bool = True, **kw):
        super().__init__(service, **kw)
        #: ablation knob (bench_ablation_rmw): when False, partial-page
        #: writes do not read the old page first — this breaks data
        #: retention on purpose to isolate RMW's cost.
        self.rmw_enabled = rmw_enabled
        #: PMT lookups go through a cache that, at default settings,
        #: wholly fits DRAM — modelling the paper's in-DRAM baseline.
        entries_per_page = max(1, self.cfg.page_size_bytes // self.PMT_ENTRY_BYTES)
        self._pmt_cache = self._make_cache(
            table_id=0,
            entries_per_page=entries_per_page,
            capacity_entries=self.dram_entries,
        )

    # ------------------------------------------------------------------
    def write(
        self, offset: int, size: int, now: float, stamps: Optional[dict] = None
    ) -> float:
        """Service a write piece-by-piece with RMW on partial pages."""
        finish = now
        timed = self.timed
        access = self._pmt_cache.access
        write_page = self._write_data_page
        rmw = self.rmw_enabled
        for lpn, rel_lo, count in split_extent(offset, size, self.spp):
            t = access(lpn, now, dirty=True, timed=timed)
            if not rmw:
                # ablation: pretend the page held nothing else
                self._pmt_mask[lpn] = 0
            t = write_page(
                lpn, rel_lo, rel_lo + count, t if t > now else now, stamps
            )
            if t > finish:
                finish = t
        return finish

    # ------------------------------------------------------------------
    def read(
        self, offset: int, size: int, now: float
    ) -> tuple[float, Optional[dict]]:
        """Service a read: one flash read per written page touched."""
        finish = now
        timed = self.timed
        kind = OpKind.DATA if timed else OpKind.AGING
        access = self._pmt_cache.access
        read_page = self.service.read_page
        found: Optional[dict] = {} if self.track_payload else None
        for lpn, rel_lo, count in split_extent(offset, size, self.spp):
            t = access(lpn, now, dirty=False, timed=timed)
            if t > finish:
                finish = t
            wanted = ((1 << count) - 1) << rel_lo
            present = self._pmt_mask[lpn] & wanted
            if not present:
                continue  # nothing of this piece was ever written
            if self.service.obs is not None:
                self._emit_decision("page_read", lpn, now)
            ppn = self._pmt[lpn]
            t = read_page(ppn, now, kind, timed=timed)
            if t > finish:
                finish = t
            if found is not None:
                base = lpn * self.spp
                sectors = [base + bit for bit in iter_bits(present)]
                self._read_stamps_from(ppn, sectors, found)
        return finish, found

    # ------------------------------------------------------------------
    def mapping_table_bytes(self) -> int:
        """Fig. 12a model: entries are demand-allocated per mapped LPN
        (all three schemes use the same convention, so the paper's
        1.4x/2.4x ratios are comparable)."""
        return int((self.pmt >= 0).sum()) * self.PMT_ENTRY_BYTES

    def flush_metadata(self, now: float) -> float:
        """Write back dirty PMT translation pages (end-of-run barrier)."""
        return self._pmt_cache.flush(now, timed=self.timed)

    def stats(self) -> dict:
        """PMT-cache statistics for the report."""
        s = super().stats()
        s.update(
            pmt_cache_hits=self._pmt_cache.hits,
            pmt_cache_misses=self._pmt_cache.misses,
        )
        return s
