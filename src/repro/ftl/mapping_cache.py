"""DRAM mapping cache with translation-page flash traffic.

Mapping tables that do not fit the controller's DRAM live in flash as
*translation pages* of ``entries_per_page`` entries each, DFTL-style.
Accessing an entry whose translation page is not cached costs a flash
read (:attr:`OpKind.MAP`); evicting a dirty translation page costs a
flash write.  These are exactly the *Map* components of Fig. 10 and the
reason MRSM loses to the baseline on flash traffic while Across-FTL
barely registers (map share 36.9%/34.4% vs 2.6%/0.74%, §4.2.2).

DRAM accesses themselves are counted per entry *touch*; schemes with
tree-structured tables (MRSM) pass a ``touches_fn`` so a lookup costs
O(log n) touches (Fig. 12b).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable

from ..flash.service import FlashService
from ..metrics.counters import OpKind
from ..obs.events import CMTEvent

#: program_map_page(tvpn, now, timed) -> completion time.  Provided by
#: the owning FTL: it allocates a flash page, invalidates the previous
#: copy of the translation page, and programs the new one.
ProgramMapFn = Callable[[int, float, bool], float]
#: read_map_page(tvpn, now, timed) -> completion time for fetching the
#: flash-resident copy of a translation page.
ReadMapFn = Callable[[int, float, bool], float]


class MappingCache:
    """LRU cache of translation pages for one mapping table."""

    def __init__(
        self,
        service: FlashService,
        *,
        entries_per_page: int,
        capacity_entries: int | None,
        program_map_page: ProgramMapFn,
        read_map_page: ReadMapFn,
        touches_fn: Callable[[], int] | None = None,
        table_id: int = 0,
    ):
        if entries_per_page <= 0:
            raise ValueError("entries_per_page must be positive")
        self.service = service
        self.table_id = table_id
        self.entries_per_page = entries_per_page
        self.unlimited = capacity_entries is None
        self.capacity_pages = (
            None
            if capacity_entries is None
            else max(1, capacity_entries // entries_per_page)
        )
        self._program = program_map_page
        self._read = read_map_page
        self._touches_fn = touches_fn
        # bound once: access() runs per mapping touch on the hot path
        self._counters = service.counters
        #: cached translation pages: tvpn -> dirty flag (LRU order)
        self._cached: OrderedDict[int, bool] = OrderedDict()
        #: translation pages that have a flash-resident copy
        self._on_flash: set[int] = set()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def access(
        self, key: int, now: float, *, dirty: bool, timed: bool = True
    ) -> float:
        """Touch the entry ``key``; returns the time the access completed
        (``now`` unless flash I/O was needed)."""
        tf = self._touches_fn
        self._counters.dram_accesses += 1 if tf is None else tf()
        obs = self.service.obs
        if self.unlimited:
            self.hits += 1
            if obs is not None:
                obs.emit(CMTEvent(now, self.table_id, "hit", key))
            return now
        tvpn = key // self.entries_per_page
        finish = now
        cached = self._cached
        if tvpn in cached:
            self.hits += 1
            cached.move_to_end(tvpn)
            if dirty:
                cached[tvpn] = True
            if obs is not None:
                obs.emit(CMTEvent(now, self.table_id, "hit", key))
            return finish
        self.misses += 1
        if obs is not None:
            obs.emit(CMTEvent(now, self.table_id, "miss", key))
        if tvpn in self._on_flash:
            # a read lookup blocks: the mapping must be fetched before
            # the data can be located.  A write lookup does not: the new
            # entry is installed in DRAM immediately and merged with the
            # flash copy in the background (the fetch still occupies a
            # chip) — so for attribution the dirty fetch is background
            # work, the clean fetch a gating map_read.
            if dirty:
                attr = self.service.attr
                if attr is not None:
                    attr.suspend()
                    try:
                        self._read(tvpn, now, timed)
                    finally:
                        attr.resume()
                else:
                    self._read(tvpn, now, timed)
            else:
                finish = self._read(tvpn, now, timed)
        self._cached[tvpn] = dirty
        self._evict_overflow(now, timed)
        return finish

    def _evict_overflow(self, now: float, timed: bool) -> None:
        """Write back evicted dirty translation pages.

        Evictions are *asynchronous* (DFTL-style): the flash programs
        occupy the chips — delaying later operations — but do not gate
        the completion of the request that caused the eviction.
        """
        while len(self._cached) > self.capacity_pages:
            tvpn, was_dirty = self._cached.popitem(last=False)
            self.evictions += 1
            obs = self.service.obs
            if obs is not None:
                obs.emit(CMTEvent(
                    now, self.table_id,
                    "spill" if was_dirty else "evict", tvpn,
                ))
            if was_dirty:
                self._program(tvpn, now, timed)
                self._on_flash.add(tvpn)

    # ------------------------------------------------------------------
    def flush(self, now: float, *, timed: bool = True) -> float:
        """Write back every dirty translation page (end-of-run barrier)."""
        finish = now
        for tvpn, dirty in list(self._cached.items()):
            if dirty:
                finish = max(finish, self._program(tvpn, now, timed))
                self._on_flash.add(tvpn)
                self._cached[tvpn] = False
        return finish

    @property
    def cached_pages(self) -> int:
        return len(self._cached)

    def residency(self, total_entries: int) -> float:
        """Fraction of the table resident in DRAM (paper quotes 42.1%
        for MRSM under Table 1 settings)."""
        if total_entries <= 0:
            return 1.0
        if self.unlimited:
            return 1.0
        return min(1.0, self.capacity_pages * self.entries_per_page / total_entries)
