"""FTL schemes and shared FTL machinery.

Three host-visible schemes are provided, matching the paper's §4.1
comparison set:

* :class:`~repro.ftl.pagemap.PageMapFTL` — the baseline dynamic
  page-level mapping scheme (``"ftl"``),
* :class:`~repro.ftl.mrsm.MRSMFTL` — multiregional sub-page space
  management (``"mrsm"``, Chen et al. TCAD'20),
* :class:`~repro.core.across.AcrossFTL` — the paper's contribution
  (``"across"``), re-exported here for symmetry.

Shared machinery: write allocation, greedy garbage collection, and the
DRAM mapping cache with translation-page flash traffic.
"""

from .allocator import WriteAllocator
from .base import BaseFTL
from .gc import GarbageCollector
from .mapping_cache import MappingCache
from .mrsm import MRSMFTL
from .pagemap import PageMapFTL


def make_ftl(scheme: str, service, **kw):
    """Instantiate an FTL scheme by its canonical name.

    Besides the paper's three comparison schemes, the hybrid log-block
    schemes ``"bast"`` and ``"fast"`` (library extensions) are
    constructible here; they are not part of :data:`repro.config.SCHEMES` and never appears in
    the paper-figure sweeps.
    """
    from ..core.across import AcrossFTL
    from .bast import BASTFTL
    from .fast import FASTFTL

    schemes = {
        "ftl": PageMapFTL,
        "mrsm": MRSMFTL,
        "across": AcrossFTL,
        "bast": BASTFTL,
        "fast": FASTFTL,
    }
    try:
        cls = schemes[scheme]
    except KeyError:
        raise ValueError(
            f"unknown scheme {scheme!r}; expected one of {sorted(schemes)}"
        ) from None
    return cls(service, **kw)


__all__ = [
    "BaseFTL",
    "PageMapFTL",
    "MRSMFTL",
    "WriteAllocator",
    "GarbageCollector",
    "MappingCache",
    "make_ftl",
]
