"""Garbage collection: trigger mechanism + pluggable policies.

When a plane's free-block fraction drops below the policy's trigger
threshold (Table 1: 10% for the default greedy policy), the collector
repeatedly picks a victim via the configured :class:`GcPolicy`
(:mod:`repro.ftl.gc_policy`), migrates its valid pages via the owning
FTL's ``relocate`` callback (which re-programs them and fixes the
mapping tables), and erases the block — until the plane is back above
``gc_restore`` or no block would yield free space.  Partial policies
(``preemptive``) instead relocate bounded slices per invocation and
defer the rest to later invocations while the plane stays healthy.

Erase operations are the paper's endurance metric (Fig. 11); migration
reads/writes are counted with :attr:`OpKind.GC` so they appear in the
flash-op totals of Fig. 10 without polluting the Data/Map split.
"""

from __future__ import annotations

from typing import Callable

from ..config import GC_POLICIES
from ..flash.service import FlashService
from ..obs.events import GCEvent, GcPolicyDecision, GCStall
from .allocator import WriteAllocator
from .gc_policy import GcPolicy, make_policy

#: relocate(old_ppn, now, timed) -> completion time
RelocateFn = Callable[[int, float, bool], float]

__all__ = ["GC_POLICIES", "GarbageCollector", "RelocateFn"]


class GarbageCollector:
    """Per-plane collector delegating decisions to a :class:`GcPolicy`."""

    def __init__(
        self,
        service: FlashService,
        allocator: WriteAllocator,
        relocate: RelocateFn,
        threshold: float,
        restore: float,
        policy: str | GcPolicy = "greedy",
        wear_weight: float = 4.0,
    ):
        if isinstance(policy, str):
            policy = make_policy(policy, service.cfg)
        self.service = service
        self.allocator = allocator
        self.relocate = relocate
        #: the strategy object; ``self.policy`` stays the plain name
        #: (the pre-refactor string attribute callers compare against)
        self.policy_obj = policy
        self.policy = policy.name
        #: effective trigger threshold (the policy may start earlier
        #: than the configured ``gc_threshold``, e.g. ``preemptive``)
        self.threshold = policy.trigger_threshold(threshold)
        #: the configured threshold: below this the plane is *urgent*
        #: and even partial policies run the full restore loop
        self.hard_threshold = threshold
        self.restore = restore
        self.wear_weight = wear_weight
        self._collecting = False
        # maybe_collect() runs after every page program; precompute the
        # smallest free-block count whose free_fraction clears the GC
        # trigger (testing the same float comparison free_fraction
        # would) so the common "plane is healthy" case is one integer
        # compare with no try/finally or method calls.
        bpp = service.geom.blocks_per_plane
        self._free_blocks = service.array._free_blocks
        self._retire_pending = service.retire_pending
        self._ok_free_count = next(
            (c for c in range(bpp + 1) if c / bpp >= self.threshold), bpp + 1
        )
        # policy plumbing resolved once: partial mode, slice budget and
        # the wear-levelling hook (None when the policy doesn't override
        # it, so the default path pays a single None check)
        policy.bind(self)
        self._partial = policy.partial
        self._budget = policy.relocation_budget()
        self._wear_level = (
            policy.wear_level
            if type(policy).wear_level is not GcPolicy.wear_level
            else None
        )
        #: plane -> victim block a partial policy is mid-way through
        self._partial_victim: dict[int, int] = {}
        #: number of GC invocations (victim blocks processed)
        self.collections = 0
        #: valid pages migrated over the run (write-amplification source)
        self.migrated_pages = 0
        #: passes that ended with no block freed (mirrors the measured
        #: ``FlashOpCounters.gc_stalls``, but also counts aging-time
        #: stalls)
        self.stalls = 0
        #: bounded collection slices run by a partial policy (mirrors
        #: the measured ``FlashOpCounters.gc_slices`` + aging-time ones)
        self.slices = 0
        #: slices that left the victim un-erased, deferring the rest to
        #: a later invocation (measured twin: ``gc_deferrals``)
        self.deferrals = 0
        #: cold blocks migrated by wear levelling (measured twin:
        #: ``wear_migrations``)
        self.wear_migrations = 0

    # ------------------------------------------------------------------
    def _candidates(self, plane: int):
        """(lo, valid, eligible) arrays for a plane's blocks."""
        geom = self.service.geom
        arr = self.service.array
        lo = plane * geom.blocks_per_plane
        hi = lo + geom.blocks_per_plane
        valid = arr.valid_count[lo:hi]
        eligible = arr.write_ptr[lo:hi] == geom.pages_per_block
        actives = self.allocator.active_in_plane(plane)
        if actives:
            eligible = eligible.copy()
            for active in actives:
                if lo <= active < hi:
                    eligible[active - lo] = False
        # a fully-valid block frees nothing: never a victim
        eligible = eligible & (valid < geom.pages_per_block)
        # retired bad blocks look like perfect victims (0 valid, sealed
        # write pointer) but can never be erased
        eligible = eligible & ~arr.is_bad[lo : lo + geom.blocks_per_plane]
        return lo, valid, eligible

    def select_victim(self, plane: int) -> int | None:
        """Pick a victim block by the configured policy; None when no
        eligible block would free any space."""
        lo, valid, eligible = self._candidates(plane)
        if not eligible.any():
            return None
        return self.policy_obj.select_victim(plane, lo, valid, eligible)

    # ------------------------------------------------------------------
    def collect_once(self, plane: int, now: float, *, timed: bool = True) -> float:
        """Collect a single victim block; returns the erase finish time,
        or ``now`` when no victim exists."""
        victim = self.select_victim(plane)
        if victim is None:
            return now
        arr = self.service.array
        obs = self.service.obs
        if obs is not None:
            obs.emit(GCEvent(
                now, plane, victim, int(arr.valid_count[victim])
            ))
        finish = now
        for ppn in list(arr.valid_ppns(victim)):
            finish = max(finish, self.relocate(ppn, now, timed))
            self.migrated_pages += 1
        finish = max(finish, self.service.erase_block(victim, now, aging=not timed))
        self.collections += 1
        return finish

    def migrate_block(self, block: int, now: float, *, timed: bool = True) -> float:
        """Wear-levelling migration: relocate every valid page of
        ``block`` (typically a cold, under-worn block) and erase it so
        it re-enters the free pool.  Returns the erase finish time."""
        arr = self.service.array
        obs = self.service.obs
        if obs is not None:
            obs.emit(GcPolicyDecision(
                now, self.service.geom.plane_of_block(block), self.policy,
                "wear_migrate", block, int(arr.valid_count[block]),
            ))
        finish = now
        for ppn in list(arr.valid_ppns(block)):
            finish = max(finish, self.relocate(ppn, now, timed))
            self.migrated_pages += 1
        finish = max(finish, self.service.erase_block(block, now, aging=not timed))
        self.wear_migrations += 1
        if timed:
            self.service.counters.wear_migrations += 1
        return finish

    def _drain_retirements(self, now: float, *, timed: bool = True) -> float:
        """Retire blocks queued on ``service.retire_pending``: relocate
        their valid pages (the bad-block *remapping* — across-page areas
        ride the same ``relocate`` callback GC migration uses, so their
        data survives intact), then take the block out of service.

        Blocks still serving as a write frontier, or not yet fully
        written, are left queued and picked up once sealed.
        """
        service = self.service
        if not service.retire_pending:
            return now
        arr = service.array
        geom = service.geom
        finish = now
        for block in sorted(service.retire_pending):
            if arr.is_bad[block]:
                service.retire_pending.discard(block)
                continue
            plane = geom.plane_of_block(block)
            if block in self.allocator.active_in_plane(plane):
                continue
            if arr.write_ptr[block] < geom.pages_per_block:
                continue
            relocated = 0
            for ppn in list(arr.valid_ppns(block)):
                finish = max(finish, self.relocate(ppn, now, timed))
                relocated += 1
                self.migrated_pages += 1
            if timed and relocated:
                service.counters.fault_relocations += relocated
            service.retire(block, finish, relocated)
        return finish

    def _collect_until_restored(
        self, plane: int, now: float, *, timed: bool = True
    ) -> float:
        """The classic stop-the-world loop: collect whole victims until
        the plane's free fraction clears ``restore`` (hysteresis) or no
        victim makes progress."""
        finish = now
        arr = self.service.array
        while self.service.free_fraction(plane) < self.restore:
            before = arr.free_block_count(plane)
            before_bad = arr.total_bad_blocks
            finish = max(finish, self.collect_once(plane, now, timed=timed))
            if arr.free_block_count(plane) <= before:
                if arr.total_bad_blocks > before_bad:
                    # the victim's erase failed and the block was
                    # retired — that is progress of a sort: try
                    # another victim before declaring a stall
                    continue
                # no progress possible; let allocation fail upstream —
                # but make the starvation visible where it happens
                self.stalls += 1
                if timed:
                    self.service.counters.gc_stalls += 1
                obs = self.service.obs
                if obs is not None:
                    obs.emit(GCStall(now, plane, before))
                break
        return finish

    def _collect_slice(self, plane: int, now: float, *, timed: bool = True) -> float:
        """One bounded collection slice of a partial policy: continue
        (or start) the plane's victim, relocate at most the policy's
        budget of valid pages, erase the victim once it is empty, and
        defer the rest to the next invocation."""
        service = self.service
        if service.free_fraction(plane) < self.hard_threshold:
            # urgent: the plane hit the classic GC threshold — drop the
            # polite slicing and restore headroom now, so allocation
            # can never starve behind a deferring policy
            self._partial_victim.pop(plane, None)
            obs = service.obs
            if obs is not None:
                obs.emit(GcPolicyDecision(
                    now, plane, self.policy, "urgent", -1, 0
                ))
            return self._collect_until_restored(plane, now, timed=timed)
        arr = service.array
        obs = service.obs
        victim = self._partial_victim.get(plane)
        if victim is not None and arr.is_bad[victim]:
            # retired as bad between slices; pick a fresh victim
            self._partial_victim.pop(plane)
            victim = None
        if victim is None:
            victim = self.select_victim(plane)
            if victim is None:
                self.stalls += 1
                if timed:
                    service.counters.gc_stalls += 1
                if obs is not None:
                    obs.emit(GCStall(
                        now, plane, arr.free_block_count(plane)
                    ))
                return now
            self._partial_victim[plane] = victim
            if obs is not None:
                obs.emit(GCEvent(
                    now, plane, victim, int(arr.valid_count[victim])
                ))
        budget = self._budget
        finish = now
        moved = 0
        for ppn in list(arr.valid_ppns(victim)):
            if budget is not None and moved >= budget:
                break
            finish = max(finish, self.relocate(ppn, now, timed))
            self.migrated_pages += 1
            moved += 1
        self.slices += 1
        if timed:
            service.counters.gc_slices += 1
        if int(arr.valid_count[victim]) == 0:
            finish = max(
                finish, service.erase_block(victim, now, aging=not timed)
            )
            self.collections += 1
            self._partial_victim.pop(plane, None)
            action = "slice_erase"
        else:
            # the victim keeps valid pages: defer them — host
            # overwrites may invalidate some before the next slice,
            # which is the policy's whole WAF saving
            self.deferrals += 1
            if timed:
                service.counters.gc_deferrals += 1
            action = "defer"
        if obs is not None:
            obs.emit(GcPolicyDecision(
                now, plane, self.policy, action, victim, moved
            ))
        return finish

    def maybe_collect(self, plane: int, now: float, *, timed: bool = True) -> float:
        """Run GC on ``plane`` if it is below the trigger threshold;
        returns the time the reclamation finished (``now`` when nothing
        ran).

        Blocks queued for bad-block retirement are drained first (even
        above the GC threshold), so media failures translate into
        relocation traffic and lost over-provisioning promptly rather
        than lingering until the plane fills up.
        """
        if (
            not self._retire_pending
            and len(self._free_blocks[plane]) >= self._ok_free_count
        ):
            # healthy plane, nothing queued for retirement: the slow
            # path below would do exactly nothing
            return now
        if self._collecting:
            return now
        self._collecting = True
        # GC work is background for latency attribution: it occupies
        # chips (surfacing as gc_stall waits on later requests) but
        # never gates the triggering request's completion
        attr = self.service.attr
        if attr is not None:
            attr.suspend()
        finish = now
        try:
            finish = max(finish, self._drain_retirements(now, timed=timed))
            if self.service.free_fraction(plane) >= self.threshold:
                return finish
            if self._partial:
                finish = max(
                    finish, self._collect_slice(plane, now, timed=timed)
                )
            else:
                finish = max(
                    finish,
                    self._collect_until_restored(plane, now, timed=timed),
                )
            wear_level = self._wear_level
            if wear_level is not None:
                levelled = wear_level(plane, now, timed)
                if levelled is not None:
                    finish = max(finish, levelled)
        finally:
            self._collecting = False
            if attr is not None:
                attr.resume()
        return finish
