"""Greedy garbage collection.

When a plane's free-block fraction drops below ``gc_threshold``
(Table 1: 10%), the collector repeatedly picks the fully-written,
non-active block with the fewest valid pages, migrates those pages via
the owning FTL's ``relocate`` callback (which re-programs them and
fixes the mapping tables), and erases the block — until the plane is
back above ``gc_restore`` or no block would yield free space.

Erase operations are the paper's endurance metric (Fig. 11); migration
reads/writes are counted with :attr:`OpKind.GC` so they appear in the
flash-op totals of Fig. 10 without polluting the Data/Map split.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..flash.service import FlashService
from ..obs.events import GCEvent, GCStall
from .allocator import WriteAllocator

#: relocate(old_ppn, now, timed) -> completion time
RelocateFn = Callable[[int, float, bool], float]


#: victim-selection policies (``SSDConfig.gc_policy``):
#: ``greedy`` — fewest valid pages (the paper's / SSDsim's default);
#: ``cost_benefit`` — classic (1-u)/(1+u) * age score, favouring cold
#: blocks so hot data has time to invalidate itself;
#: ``wear_aware`` — greedy score with a penalty on already-worn blocks,
#: trading some write amplification for evener wear.
GC_POLICIES = ("greedy", "cost_benefit", "wear_aware")


class GarbageCollector:
    """Per-plane collector with selectable victim policy."""

    def __init__(
        self,
        service: FlashService,
        allocator: WriteAllocator,
        relocate: RelocateFn,
        threshold: float,
        restore: float,
        policy: str = "greedy",
        wear_weight: float = 4.0,
    ):
        if policy not in GC_POLICIES:
            raise ValueError(
                f"unknown GC policy {policy!r}; expected one of {GC_POLICIES}"
            )
        self.service = service
        self.allocator = allocator
        self.relocate = relocate
        self.threshold = threshold
        self.restore = restore
        self.policy = policy
        self.wear_weight = wear_weight
        self._collecting = False
        # maybe_collect() runs after every page program; precompute the
        # smallest free-block count whose free_fraction clears the GC
        # threshold (testing the same float comparison free_fraction
        # would) so the common "plane is healthy" case is one integer
        # compare with no try/finally or method calls.
        bpp = service.geom.blocks_per_plane
        self._free_blocks = service.array._free_blocks
        self._retire_pending = service.retire_pending
        self._ok_free_count = next(
            (c for c in range(bpp + 1) if c / bpp >= threshold), bpp + 1
        )
        #: number of GC invocations (victim blocks processed)
        self.collections = 0
        #: valid pages migrated over the run (write-amplification source)
        self.migrated_pages = 0
        #: passes that ended with no block freed (mirrors the measured
        #: ``FlashOpCounters.gc_stalls``, but also counts aging-time
        #: stalls)
        self.stalls = 0

    # ------------------------------------------------------------------
    def _candidates(self, plane: int):
        """(lo, valid, eligible) arrays for a plane's blocks."""
        geom = self.service.geom
        arr = self.service.array
        lo = plane * geom.blocks_per_plane
        hi = lo + geom.blocks_per_plane
        valid = arr.valid_count[lo:hi]
        eligible = arr.write_ptr[lo:hi] == geom.pages_per_block
        actives = self.allocator.active_in_plane(plane)
        if actives:
            eligible = eligible.copy()
            for active in actives:
                if lo <= active < hi:
                    eligible[active - lo] = False
        # a fully-valid block frees nothing: never a victim
        eligible = eligible & (valid < geom.pages_per_block)
        # retired bad blocks look like perfect victims (0 valid, sealed
        # write pointer) but can never be erased
        eligible = eligible & ~arr.is_bad[lo : lo + geom.blocks_per_plane]
        return lo, valid, eligible

    def select_victim(self, plane: int) -> int | None:
        """Pick a victim block by the configured policy; None when no
        eligible block would free any space."""
        geom = self.service.geom
        arr = self.service.array
        lo, valid, eligible = self._candidates(plane)
        if not eligible.any():
            return None
        if self.policy == "greedy":
            costs = np.where(eligible, valid, np.iinfo(valid.dtype).max)
            return lo + int(np.argmin(costs))
        if self.policy == "wear_aware":
            hi = lo + geom.blocks_per_plane
            wear = arr.erase_count[lo:hi].astype(np.float64)
            mean_wear = wear.mean()
            score = valid + self.wear_weight * np.maximum(
                0.0, wear - mean_wear
            )
            score = np.where(eligible, score, np.inf)
            return lo + int(np.argmin(score))
        # cost_benefit: maximise (free/ppb) / (2 * valid/ppb) * age,
        # i.e. the classic (1-u)/(2u) * age with age = time since the
        # block last changed (colder blocks win ties)
        hi = lo + geom.blocks_per_plane
        ppb = geom.pages_per_block
        u = valid / ppb
        age = (arr.mod_seq - arr.last_mod[lo:hi]).astype(np.float64) + 1.0
        benefit = (1.0 - u) / (2.0 * u + 1e-9) * age
        benefit = np.where(eligible, benefit, -np.inf)
        return lo + int(np.argmax(benefit))

    # ------------------------------------------------------------------
    def collect_once(self, plane: int, now: float, *, timed: bool = True) -> float:
        """Collect a single victim block; returns the erase finish time,
        or ``now`` when no victim exists."""
        victim = self.select_victim(plane)
        if victim is None:
            return now
        arr = self.service.array
        obs = self.service.obs
        if obs is not None:
            obs.emit(GCEvent(
                now, plane, victim, int(arr.valid_count[victim])
            ))
        finish = now
        for ppn in list(arr.valid_ppns(victim)):
            finish = max(finish, self.relocate(ppn, now, timed))
            self.migrated_pages += 1
        finish = max(finish, self.service.erase_block(victim, now, aging=not timed))
        self.collections += 1
        return finish

    def _drain_retirements(self, now: float, *, timed: bool = True) -> float:
        """Retire blocks queued on ``service.retire_pending``: relocate
        their valid pages (the bad-block *remapping* — across-page areas
        ride the same ``relocate`` callback GC migration uses, so their
        data survives intact), then take the block out of service.

        Blocks still serving as a write frontier, or not yet fully
        written, are left queued and picked up once sealed.
        """
        service = self.service
        if not service.retire_pending:
            return now
        arr = service.array
        geom = service.geom
        finish = now
        for block in sorted(service.retire_pending):
            if arr.is_bad[block]:
                service.retire_pending.discard(block)
                continue
            plane = geom.plane_of_block(block)
            if block in self.allocator.active_in_plane(plane):
                continue
            if arr.write_ptr[block] < geom.pages_per_block:
                continue
            relocated = 0
            for ppn in list(arr.valid_ppns(block)):
                finish = max(finish, self.relocate(ppn, now, timed))
                relocated += 1
                self.migrated_pages += 1
            if timed and relocated:
                service.counters.fault_relocations += relocated
            service.retire(block, finish, relocated)
        return finish

    def maybe_collect(self, plane: int, now: float, *, timed: bool = True) -> float:
        """Run GC on ``plane`` if it is below threshold; returns the time
        the reclamation finished (``now`` when nothing ran).

        Blocks queued for bad-block retirement are drained first (even
        above the GC threshold), so media failures translate into
        relocation traffic and lost over-provisioning promptly rather
        than lingering until the plane fills up.
        """
        if (
            not self._retire_pending
            and len(self._free_blocks[plane]) >= self._ok_free_count
        ):
            # healthy plane, nothing queued for retirement: the slow
            # path below would do exactly nothing
            return now
        if self._collecting:
            return now
        self._collecting = True
        # GC work is background for latency attribution: it occupies
        # chips (surfacing as gc_stall waits on later requests) but
        # never gates the triggering request's completion
        attr = self.service.attr
        if attr is not None:
            attr.suspend()
        finish = now
        try:
            finish = max(finish, self._drain_retirements(now, timed=timed))
            if self.service.free_fraction(plane) >= self.threshold:
                return finish
            arr = self.service.array
            while self.service.free_fraction(plane) < self.restore:
                before = arr.free_block_count(plane)
                before_bad = arr.total_bad_blocks
                finish = max(finish, self.collect_once(plane, now, timed=timed))
                if arr.free_block_count(plane) <= before:
                    if arr.total_bad_blocks > before_bad:
                        # the victim's erase failed and the block was
                        # retired — that is progress of a sort: try
                        # another victim before declaring a stall
                        continue
                    # no progress possible; let allocation fail upstream —
                    # but make the starvation visible where it happens
                    self.stalls += 1
                    if timed:
                        self.service.counters.gc_stalls += 1
                    obs = self.service.obs
                    if obs is not None:
                        obs.emit(GCStall(now, plane, before))
                    break
        finally:
            self._collecting = False
            if attr is not None:
                attr.resume()
        return finish
