"""Wear statistics and endurance projection.

The paper uses the total erase count as its lifetime indicator
(Fig. 11).  This module adds the per-block view a device vendor would
look at: the erase-count distribution, its imbalance (a perfectly
wear-levelled device has every block at the mean), and a projected
lifetime under a per-block erase limit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .array import FlashArray


@dataclass(frozen=True)
class WearStats:
    """Summary of a device's wear state."""

    total_erases: int
    mean: float
    std: float
    max: int
    min: int
    #: normalised imbalance: (max - mean) / (mean + 1); 0 = perfectly even
    imbalance: float
    #: Gini coefficient of the erase distribution (0 = even, 1 = single
    #: block takes all erases)
    gini: float

    def summary(self) -> str:
        """One-line human-readable wear report."""
        return (
            f"erases: total {self.total_erases}, per-block mean "
            f"{self.mean:.2f} (std {self.std:.2f}, min {self.min}, "
            f"max {self.max}), imbalance {self.imbalance:.3f}, "
            f"gini {self.gini:.3f}"
        )


def wear_stats(array: FlashArray) -> WearStats:
    """Compute wear statistics from a flash array's erase counters."""
    counts = array.erase_count.astype(np.float64)
    total = int(counts.sum())
    mean = float(counts.mean())
    if total == 0:
        return WearStats(0, 0.0, 0.0, 0, 0, 0.0, 0.0)
    sorted_counts = np.sort(counts)
    n = len(counts)
    # standard Gini formula on the sorted distribution
    index = np.arange(1, n + 1)
    gini = float(
        (2 * index - n - 1).dot(sorted_counts) / (n * sorted_counts.sum())
    )
    return WearStats(
        total_erases=total,
        mean=mean,
        std=float(counts.std()),
        max=int(counts.max()),
        min=int(counts.min()),
        imbalance=float((counts.max() - mean) / (mean + 1.0)),
        gini=max(0.0, gini),
    )


def projected_lifetime_writes(
    array: FlashArray, erase_limit: int, writes_so_far: int
) -> float:
    """Host writes the device can absorb before its most-worn block
    reaches ``erase_limit``, extrapolating the observed wear rate.

    Returns ``inf`` when nothing has been erased yet.
    """
    if erase_limit <= 0:
        raise ValueError("erase_limit must be positive")
    worst = int(array.erase_count.max())
    if worst == 0 or writes_so_far <= 0:
        return float("inf")
    wear_per_write = worst / writes_so_far
    remaining = max(0, erase_limit - worst)
    return remaining / wear_per_write
