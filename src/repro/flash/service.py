"""Facade combining the flash array, chip timelines and op counters.

FTL code talks to this object only.  Every call both mutates NAND state
and returns the *completion time* of the operation, so the FTL can fold
flash latencies into request response times without touching the
timing model directly.

Operations carry an :class:`~repro.metrics.counters.OpKind` so the
Data/Map/GC split of Fig. 10 falls out of the counters, and an optional
``timed=False`` mode used during device aging (pre-conditioning must
not leave the chips busy or pollute measured counts).
"""

from __future__ import annotations

from typing import Any

from ..config import SSDConfig
from ..geometry import FlashGeometry
from ..metrics.counters import FlashOpCounters, OpKind
from ..obs.events import FlashOp
from .array import FlashArray
from .timing import ChipTimeline


class FlashService:
    """Single entry point for all flash operations of one device."""

    def __init__(self, cfg: SSDConfig, counters: FlashOpCounters | None = None):
        cfg.validate()
        self.cfg = cfg
        self.geom = FlashGeometry(cfg)
        self.array = FlashArray(self.geom)
        self.timeline = ChipTimeline(
            self.geom.num_chips, cfg.timing, cfg.chips_per_channel
        )
        self.counters = counters if counters is not None else FlashOpCounters()
        #: observability event bus (repro.obs.events.EventBus) — installed
        #: by the engine when SimConfig.observability.enabled; FTL-side
        #: components share this reference, so disabled runs pay one
        #: `is None` branch per hook
        self.obs = None

    # ------------------------------------------------------------------
    def read_page(
        self, ppn: int, now: float, kind: OpKind = OpKind.DATA, *, timed: bool = True
    ) -> float:
        """Read a valid page; returns completion time (``now`` if untimed)."""
        self.array.read(ppn)
        self.counters.count_read(kind)
        if not timed:
            finish = now
        else:
            finish = self.timeline.read(self.geom.chip_of_ppn(ppn), now)
        obs = self.obs
        if obs is not None:
            obs.emit(FlashOp(
                now, obs.current_request, "read", kind.value,
                self.geom.chip_of_ppn(ppn), finish, ppn,
            ))
        return finish

    def program_page(
        self,
        ppn: int,
        meta: Any,
        now: float,
        kind: OpKind = OpKind.DATA,
        *,
        timed: bool = True,
    ) -> float:
        """Program a free page; returns completion time."""
        self.array.program(ppn, meta)
        self.counters.count_write(kind)
        if not timed:
            finish = now
        else:
            finish = self.timeline.program(self.geom.chip_of_ppn(ppn), now)
        obs = self.obs
        if obs is not None:
            obs.emit(FlashOp(
                now, obs.current_request, "program", kind.value,
                self.geom.chip_of_ppn(ppn), finish, ppn,
            ))
        return finish

    def erase_block(self, block: int, now: float, *, aging: bool = False) -> float:
        """Erase a block; returns completion time (untimed when aging)."""
        self.array.erase(block, aging=aging)
        self.counters.count_erase(aging=aging)
        chip = self.geom.chip_of_plane(self.geom.plane_of_block(block))
        if aging:
            finish = now
        else:
            finish = self.timeline.erase(chip, now)
        obs = self.obs
        if obs is not None:
            obs.emit(FlashOp(
                now, obs.current_request, "erase",
                "aging" if aging else "data", chip, finish, block,
            ))
        return finish

    def invalidate(self, ppn: int) -> None:
        """Mark a valid page stale (no timing cost: metadata only)."""
        self.array.invalidate(ppn)

    # -- pool passthroughs ------------------------------------------------
    def free_fraction(self, plane: int) -> float:
        """Free-block share of ``plane`` (GC trigger input)."""
        return self.array.free_fraction(plane)

    def pop_free_block(self, plane: int) -> int:
        """Take a fully-erased block from ``plane``'s pool."""
        return self.array.pop_free_block(plane)

    @property
    def num_planes(self) -> int:
        return self.geom.num_planes
