"""Facade combining the flash array, chip timelines and op counters.

FTL code talks to this object only.  Every call both mutates NAND state
and returns the *completion time* of the operation, so the FTL can fold
flash latencies into request response times without touching the
timing model directly.

Operations carry an :class:`~repro.metrics.counters.OpKind` so the
Data/Map/GC split of Fig. 10 falls out of the counters, and an optional
``timed=False`` mode used during device aging (pre-conditioning must
not leave the chips busy or pollute measured counts).
"""

from __future__ import annotations

from typing import Any

from ..config import SSDConfig
from ..errors import MediaError
from ..geometry import FlashGeometry
from ..metrics.counters import FlashOpCounters, OpKind
from ..obs.events import BadBlockRetired, FlashOp, MediaFault, ReadRetry
from .array import FlashArray
from .timing import ChipTimeline


class FlashService:
    """Single entry point for all flash operations of one device."""

    def __init__(self, cfg: SSDConfig, counters: FlashOpCounters | None = None):
        cfg.validate()
        self.cfg = cfg
        self.geom = FlashGeometry(cfg)
        self.array = FlashArray(self.geom)
        self.timeline = ChipTimeline(
            self.geom.num_chips, cfg.timing, cfg.chips_per_channel
        )
        self.counters = counters if counters is not None else FlashOpCounters()
        # memoized geometry divisor: chip_of_ppn on the per-page hot path
        self._pages_per_chip = self.geom.pages_per_chip
        # memoized timing scalars for the attribution segment boundaries
        self._read_ms = cfg.timing.read_ms
        self._transfer_ms = cfg.timing.transfer_ms
        #: observability event bus (repro.obs.events.EventBus) — installed
        #: by the engine when SimConfig.observability.enabled; FTL-side
        #: components share this reference, so disabled runs pay one
        #: `is None` branch per hook
        self.obs = None
        #: fault injector (repro.faults.FaultInjector) — installed by the
        #: engine when SimConfig.faults.enabled; same `is None` contract
        #: as ``obs``, so fault-free runs stay on the fast path
        self.faults = None
        #: latency-attribution recorder
        #: (repro.obs.attribution.AttributionRecorder) — installed by the
        #: engine when SimConfig.observability.attribution; same
        #: `is None` contract, so undecomposed runs pay one branch
        self.attr = None
        #: blocks that crossed the program-failure retirement threshold
        #: and await relocation of their valid pages; drained by
        #: :meth:`repro.ftl.gc.GarbageCollector.maybe_collect`
        self.retire_pending: set[int] = set()

    # ------------------------------------------------------------------
    def read_page(
        self, ppn: int, now: float, kind: OpKind = OpKind.DATA, *, timed: bool = True
    ) -> float:
        """Read a valid page; returns completion time (``now`` if untimed).

        With fault injection on, timed reads draw raw bit errors from
        the page's RBER; errors beyond the ECC budget cost escalating
        read-retry steps on the chip, and errors surviving the whole
        retry table count as uncorrectable (raising
        :class:`~repro.errors.MediaError` only when
        ``FaultConfig.halt_on_uncorrectable`` asks for a hard stop).
        """
        self.array.read(ppn)
        # inlined counters.count_read: one method call per page read is
        # measurable on the replay hot path
        c = self.counters
        c.reads[kind] += 1
        if kind is not OpKind.AGING:
            c._measured_reads += 1
        if not timed:
            finish = now
        else:
            chip = ppn // self._pages_per_chip
            attr = self.attr
            if attr is not None:
                wait_end = self.timeline.next_free(chip, now)
            finish = self.timeline.read(chip, now)
            base_finish = finish
            faults = self.faults
            if faults is not None:
                steps, uncorrectable = faults.read_outcome(ppn, now)
                if steps:
                    self.counters.read_retries += steps
                    finish = self.timeline.read_retries(chip, finish, steps)
                if uncorrectable:
                    self.counters.uncorrectable_reads += 1
                if steps or uncorrectable:
                    obs = self.obs
                    if obs is not None:
                        obs.emit(ReadRetry(
                            now, obs.current_request, ppn, steps,
                            uncorrectable,
                        ))
                if uncorrectable and faults.cfg.halt_on_uncorrectable:
                    raise MediaError(
                        f"uncorrectable read at PPN {ppn}: raw errors "
                        f"exceeded the ECC budget after "
                        f"{faults.cfg.max_read_retries} retry steps"
                    )
            if attr is not None:
                if kind is OpKind.MAP:
                    label = "map_read"
                else:
                    label = attr.read_label or "flash_read"
                if self._transfer_ms > 0:
                    segs = ((label, wait_end + self._read_ms),
                            ("bus_xfer", base_finish))
                else:
                    segs = ((label, base_finish),)
                if finish > base_finish:
                    segs += (("media_retry", finish),)
                attr.record(chip, now, wait_end, segs)
        obs = self.obs
        if obs is not None:
            obs.emit(FlashOp(
                now, obs.current_request, "read", kind.value,
                self.geom.chip_of_ppn(ppn), finish, ppn,
            ))
        return finish

    def program_page(
        self,
        ppn: int,
        meta: Any,
        now: float,
        kind: OpKind = OpKind.DATA,
        *,
        timed: bool = True,
    ) -> float:
        """Program a free page; returns completion time.

        With fault injection on, timed programs may report failure
        status; each failure is absorbed by an in-place reprogram pulse
        (extra chip time, data lands at the same PPN so mappings never
        move), and a block whose lifetime failure tally crosses
        ``FaultConfig.retire_after_program_fails`` is queued on
        :attr:`retire_pending` for bad-block retirement by GC.
        """
        self.array.program(ppn, meta)
        c = self.counters
        c.writes[kind] += 1
        if kind is not OpKind.AGING:
            c._measured_writes += 1
        if not timed:
            finish = now
        else:
            chip = ppn // self._pages_per_chip
            attr = self.attr
            if attr is not None:
                wait_end = self.timeline.program_start(chip, now)
            finish = self.timeline.program(chip, now)
            base_finish = finish
            faults = self.faults
            if faults is not None:
                attempts, failures = faults.program_attempts(ppn)
                if failures:
                    self.counters.program_fails += failures
                    finish = self.timeline.reprogram(chip, finish, attempts)
                    obs = self.obs
                    if obs is not None:
                        obs.emit(MediaFault(
                            now, obs.current_request, "program", ppn,
                        ))
                    if faults.note_program_failures(ppn, failures):
                        block = ppn // self.geom.pages_per_block
                        if not self.array.is_bad[block]:
                            self.retire_pending.add(block)
                faults.note_program(ppn, finish)
            if attr is not None:
                if self._transfer_ms > 0:
                    segs = (("bus_xfer", wait_end + self._transfer_ms),
                            ("flash_program", base_finish))
                else:
                    segs = (("flash_program", base_finish),)
                if finish > base_finish:
                    segs += (("media_retry", finish),)
                attr.record(chip, now, wait_end, segs)
        obs = self.obs
        if obs is not None:
            obs.emit(FlashOp(
                now, obs.current_request, "program", kind.value,
                self.geom.chip_of_ppn(ppn), finish, ppn,
            ))
        return finish

    def erase_block(self, block: int, now: float, *, aging: bool = False) -> float:
        """Erase a block; returns completion time (untimed when aging).

        With fault injection on, a (non-aging) erase may report failure
        status: the command still occupies the chip, but the block is
        retired on the spot instead of returning to the free pool — its
        valid pages are already gone, since erase is only legal on
        fully-invalid blocks.
        """
        chip = self.geom.chip_of_plane(self.geom.plane_of_block(block))
        faults = self.faults
        if not aging and faults is not None and faults.erase_fails(block):
            finish = self.timeline.erase(chip, now)
            self.counters.erase_fails += 1
            attr = self.attr
            if attr is not None:
                attr.note_background(chip, finish)
            obs = self.obs
            if obs is not None:
                obs.emit(MediaFault(now, obs.current_request, "erase", block))
            self.retire(block, finish)
            return finish
        self.array.erase(block, aging=aging)
        self.counters.count_erase(aging=aging)
        if aging:
            finish = now
        else:
            finish = self.timeline.erase(chip, now)
            attr = self.attr
            if attr is not None:
                attr.note_background(chip, finish)
        obs = self.obs
        if obs is not None:
            obs.emit(FlashOp(
                now, obs.current_request, "erase",
                "aging" if aging else "data", chip, finish, block,
            ))
        return finish

    def invalidate(self, ppn: int) -> None:
        """Mark a valid page stale (no timing cost: metadata only)."""
        self.array.invalidate(ppn)

    def retire(self, block: int, now: float, relocated: int = 0) -> None:
        """Permanently retire ``block`` (bad-block path of
        :mod:`repro.faults`); callers relocate its valid pages first.

        ``relocated`` is how many valid pages were moved off the block,
        carried into the :class:`~repro.obs.events.BadBlockRetired`
        event for observability consumers.
        """
        self.array.retire_block(block)
        self.counters.bad_blocks += 1
        self.retire_pending.discard(block)
        obs = self.obs
        if obs is not None:
            obs.emit(BadBlockRetired(
                now, block, self.geom.plane_of_block(block), relocated,
            ))

    # -- pool passthroughs ------------------------------------------------
    def free_fraction(self, plane: int) -> float:
        """Free-block share of ``plane`` (GC trigger input)."""
        return self.array.free_fraction(plane)

    def pop_free_block(self, plane: int) -> int:
        """Take a fully-erased block from ``plane``'s pool."""
        return self.array.pop_free_block(plane)

    @property
    def num_planes(self) -> int:
        return self.geom.num_planes
