"""Per-chip operation timelines.

A chip services one flash operation at a time; operations on different
chips overlap freely.  This is the contention model that turns flash-op
counts into request response times: a sub-request issued at ``now``
against a busy chip waits until the chip frees up (paper §2.1 — a
request completes only when all its page-level sub-requests do).

Erase operations issued by GC occupy the chip the same way, which is
how GC pressure surfaces as long-tail latency.

Like :class:`~repro.flash.array.FlashArray`, the per-chip tables are
raw :class:`array.array` buffers for fast scalar access on the per-op
hot path, with the public numpy attributes (``busy_until``,
``busy_time``, ``op_count``, ``bus_busy_until``) exposed as zero-copy
views over the same memory for vectorised consumers (utilisation
sampling, idle-chip assertions in tests).  The latency scalars from
:class:`~repro.config.TimingConfig` (a frozen dataclass) are bound to
locals at construction so the per-op cost is one array load instead of
repeated attribute chasing.
"""

from __future__ import annotations

from array import array

import numpy as np

from ..config import TimingConfig
from ..errors import SimulationError


class ChipTimeline:
    """Busy-until tracking for every chip (and, optionally, every
    channel bus) in the device.

    With ``timing.transfer_ms == 0`` (the default) a chip is the only
    contended resource.  With a non-zero transfer time, page data also
    occupies the chip's channel bus: programs transfer in before the
    cell operation, reads transfer out after it, and transfers of chips
    sharing a channel serialise against each other.
    """

    def __init__(
        self,
        num_chips: int,
        timing: TimingConfig,
        chips_per_channel: int | None = None,
    ):
        if num_chips <= 0:
            raise SimulationError("need at least one chip")
        self.timing = timing
        # TimingConfig is frozen — memoize the per-op latency scalars
        self._read_ms = timing.read_ms
        self._program_ms = timing.program_ms
        self._erase_ms = timing.erase_ms
        self._read_retry_ms = timing.read_retry_ms
        self._transfer_ms = timing.transfer_ms
        # raw buffers (scalar hot path) + zero-copy numpy views (public)
        self._busy_until = array("d", bytes(8 * num_chips))
        self._busy_time = array("d", bytes(8 * num_chips))
        self._op_count = array("q", bytes(8 * num_chips))
        self.busy_until = np.frombuffer(self._busy_until, dtype=np.float64)
        #: cumulative busy time per chip (utilisation accounting)
        self.busy_time = np.frombuffer(self._busy_time, dtype=np.float64)
        self.op_count = np.frombuffer(self._op_count, dtype=np.int64)
        #: chips sharing one channel bus (None = one chip per channel)
        self.chips_per_channel = chips_per_channel or 1
        n_channels = -(-num_chips // self.chips_per_channel)
        self._bus_busy_until = array("d", bytes(8 * n_channels))
        self.bus_busy_until = np.frombuffer(
            self._bus_busy_until, dtype=np.float64
        )

    def _channel(self, chip: int) -> int:
        return chip // self.chips_per_channel

    def _occupy(self, chip: int, now: float, duration: float) -> float:
        bu = self._busy_until
        start = bu[chip]
        if now > start:
            start = now
        finish = start + duration
        bu[chip] = finish
        self._busy_time[chip] += duration
        self._op_count[chip] += 1
        return finish

    def read(self, chip: int, now: float) -> float:
        """Schedule a page read; returns its completion time."""
        tr = self._transfer_ms
        if tr <= 0:
            return self._occupy(chip, now, self._read_ms)
        # cell read, then the data transfers out over the channel
        cell_done = self._occupy(chip, now, self._read_ms)
        ch = chip // self.chips_per_channel
        t0 = self._bus_busy_until[ch]
        if cell_done > t0:
            t0 = cell_done
        finish = t0 + tr
        self._bus_busy_until[ch] = finish
        if finish > self._busy_until[chip]:
            self._busy_until[chip] = finish
        return finish

    def program(self, chip: int, now: float) -> float:
        """Schedule a page program; returns its completion time."""
        tr = self._transfer_ms
        if tr <= 0:
            return self._occupy(chip, now, self._program_ms)
        # the data transfers in over the channel, then the cell programs
        ch = chip // self.chips_per_channel
        start = now
        if self._busy_until[chip] > start:
            start = self._busy_until[chip]
        if self._bus_busy_until[ch] > start:
            start = self._bus_busy_until[ch]
        self._bus_busy_until[ch] = start + tr
        finish = start + tr + self._program_ms
        self._busy_until[chip] = finish
        self._busy_time[chip] += tr + self._program_ms
        self._op_count[chip] += 1
        return finish

    def read_retries(self, chip: int, now: float, steps: int) -> float:
        """Charge ``steps`` escalating read-retry re-reads after a read
        whose raw errors exceeded the ECC budget (:mod:`repro.faults`).

        Step ``k`` (1-based) occupies the chip for
        ``read_retry_ms * k`` — deeper entries of a real NAND retry
        table use slower sensing — so the total penalty is
        ``read_retry_ms * steps * (steps + 1) / 2``.
        """
        if steps <= 0:
            return self.next_free(chip, now)
        penalty = self._read_retry_ms * steps * (steps + 1) / 2.0
        return self._occupy(chip, now, penalty)

    def reprogram(self, chip: int, now: float, attempts: int) -> float:
        """Charge ``attempts - 1`` extra in-place program pulses after
        program-status failures (:mod:`repro.faults`)."""
        if attempts <= 1:
            return self.next_free(chip, now)
        return self._occupy(chip, now, self._program_ms * (attempts - 1))

    def erase(self, chip: int, now: float) -> float:
        """Schedule a block erase; returns its completion time."""
        return self._occupy(chip, now, self._erase_ms)

    def next_free(self, chip: int, now: float) -> float:
        """Earliest time the chip could start a new operation."""
        busy = self._busy_until[chip]
        return busy if busy > now else now

    def program_start(self, chip: int, now: float) -> float:
        """When a program issued at ``now`` would start occupying
        resources — the channel bus too when transfers are modelled
        (programs transfer data in before the cell operation)."""
        t = self._busy_until[chip]
        if now > t:
            t = now
        if self._transfer_ms > 0:
            b = self._bus_busy_until[chip // self.chips_per_channel]
            if b > t:
                t = b
        return t

    def utilization(self, horizon_ms: float) -> np.ndarray:
        """Per-chip busy fraction over ``[0, horizon_ms]``."""
        if horizon_ms <= 0:
            return np.zeros_like(self.busy_time)
        return np.minimum(self.busy_time / horizon_ms, 1.0)
