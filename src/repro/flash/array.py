"""NAND flash array: page states, block bookkeeping, protocol checks.

The array is deliberately FTL-agnostic: a programmed page carries an
opaque ``meta`` object owned by the FTL (its reverse-mapping record),
which garbage collection later reads back.

Storage layout (the hot-path contract of this module): every per-page /
per-block table is a plain Python buffer — ``bytearray`` for byte-wide
state, :class:`array.array` for counters — because scalar indexing of
those is several times faster than numpy scalar indexing, and the
per-page operations here are the innermost loop of the whole simulator.
The public numpy attributes (``state``, ``write_ptr``, ``valid_count``,
``erase_count``, ``last_mod``, ``is_bad``) are **zero-copy views** over
the same buffers (``np.frombuffer``), so vectorised consumers — GC
victim selection, wear statistics, observability samplers, tests — read
and write the very same memory.  Even the full Table 1 device (16.7 M
pages) stays compact.

NAND protocol rules enforced here (violations raise
:class:`~repro.errors.FlashProtocolError`, because they always indicate
FTL bugs):

* a page can only be programmed while FREE, and pages within a block
  must be programmed in order (the one-shot sequential-program rule);
* only VALID pages can be read;
* a block can only be erased when it holds no VALID page.
"""

from __future__ import annotations

from array import array
from collections import deque
from typing import Any, Iterator

import numpy as np

from ..errors import FlashProtocolError, OutOfSpaceError
from ..geometry import FlashGeometry

PAGE_FREE = 0
PAGE_VALID = 1
PAGE_INVALID = 2
#: page of a retired (bad) block — never programmable again
PAGE_BAD = 3


class FlashArray:
    """Physical page state for one device."""

    def __init__(self, geom: FlashGeometry):
        self.geom = geom
        n_pages = geom.num_pages
        n_blocks = geom.num_blocks
        ppb = geom.pages_per_block
        self._ppb = ppb
        # raw buffers (fast scalar access on the per-page hot path)
        self._state = bytearray(n_pages)
        self._write_ptr = array("i", bytes(4 * n_blocks))
        self._valid_count = array("i", bytes(4 * n_blocks))
        self._erase_count = array("q", bytes(8 * n_blocks))
        self._last_mod = array("q", bytes(8 * n_blocks))
        self._is_bad = bytearray(n_blocks)
        # precomputed page-state runs for whole-block erase/retire
        self._free_run = bytes(ppb)
        self._bad_run = bytes([PAGE_BAD]) * ppb
        # zero-copy numpy views over the same memory (vectorised readers
        # and writers — GC, wear stats, samplers, tests — see every
        # scalar mutation instantly, and vice versa)
        self.state = np.frombuffer(self._state, dtype=np.uint8)
        #: next page index to program, per global block
        self.write_ptr = np.frombuffer(self._write_ptr, dtype=np.int32)
        #: number of VALID pages, per global block
        self.valid_count = np.frombuffer(self._valid_count, dtype=np.int32)
        #: lifetime erase count, per global block (wear indicator)
        self.erase_count = np.frombuffer(self._erase_count, dtype=np.int64)
        #: logical clock of block mutations, and per-block last-mutation
        #: stamp — the "age" input of cost-benefit GC victim selection
        self.mod_seq = 0
        self.last_mod = np.frombuffer(self._last_mod, dtype=np.int64)
        #: retired (bad) blocks — media wear-out, never reused
        #: (:meth:`retire_block`; injected by :mod:`repro.faults`)
        self.is_bad = np.frombuffer(self._is_bad, dtype=np.bool_)
        #: lifetime totals across every page program / read — the flash
        #: side of the counter-conservation laws checked by
        #: :mod:`repro.check` (plain ints: one increment on the hot path)
        self.total_programs = 0
        self.total_page_reads = 0
        #: FTL metadata of currently-valid pages
        self._meta: dict[int, Any] = {}
        #: per-plane pool of fully-erased blocks (global block ids)
        self._free_blocks: list[deque[int]] = [
            deque(
                range(
                    p * geom.blocks_per_plane, (p + 1) * geom.blocks_per_plane
                )
            )
            for p in range(geom.num_planes)
        ]

    # ------------------------------------------------------------------
    # free-block pool
    # ------------------------------------------------------------------
    def free_block_count(self, plane: int) -> int:
        """Fully-erased blocks currently pooled in ``plane``."""
        return len(self._free_blocks[plane])

    def free_fraction(self, plane: int) -> float:
        """Free-block share of ``plane`` (the GC trigger input)."""
        return len(self._free_blocks[plane]) / self.geom.blocks_per_plane

    def total_free_blocks(self) -> int:
        """Free blocks across every plane."""
        return sum(len(q) for q in self._free_blocks)

    def pop_free_block(self, plane: int) -> int:
        """Take a fully-erased block from ``plane``'s pool."""
        q = self._free_blocks[plane]
        if not q:
            raise OutOfSpaceError(f"plane {plane} has no free block")
        return q.popleft()

    # ------------------------------------------------------------------
    # page operations
    # ------------------------------------------------------------------
    def program(self, ppn: int, meta: Any) -> None:
        """Program one page, storing the FTL's reverse-map record."""
        state = self._state
        if state[ppn] != PAGE_FREE:
            raise FlashProtocolError(f"program of non-free PPN {ppn}")
        ppb = self._ppb
        block = ppn // ppb
        page = ppn - block * ppb
        wp = self._write_ptr
        if page != wp[block]:
            raise FlashProtocolError(
                f"out-of-order program: block {block} expects page "
                f"{wp[block]}, got {page}"
            )
        state[ppn] = PAGE_VALID
        wp[block] = page + 1
        self._valid_count[block] += 1
        self.total_programs += 1
        self._meta[ppn] = meta
        seq = self.mod_seq + 1
        self.mod_seq = seq
        self._last_mod[block] = seq

    def read(self, ppn: int) -> Any:
        """Return the meta stored at a VALID page."""
        if self._state[ppn] != PAGE_VALID:
            raise FlashProtocolError(f"read of non-valid PPN {ppn}")
        self.total_page_reads += 1
        return self._meta[ppn]

    def meta(self, ppn: int) -> Any:
        """Peek at a valid page's meta without protocol check semantics."""
        return self._meta[ppn]

    def invalidate(self, ppn: int) -> None:
        """Mark a VALID page stale (its data was superseded)."""
        state = self._state
        if state[ppn] != PAGE_VALID:
            raise FlashProtocolError(f"invalidate of non-valid PPN {ppn}")
        state[ppn] = PAGE_INVALID
        block = ppn // self._ppb
        self._valid_count[block] -= 1
        del self._meta[ppn]
        seq = self.mod_seq + 1
        self.mod_seq = seq
        self._last_mod[block] = seq

    def is_valid(self, ppn: int) -> bool:
        """True while the page holds live data."""
        return self._state[ppn] == PAGE_VALID

    # ------------------------------------------------------------------
    # block operations
    # ------------------------------------------------------------------
    def erase(self, block: int, *, aging: bool = False) -> None:
        """Erase a block and return it to its plane's free pool."""
        if self._valid_count[block] != 0:
            raise FlashProtocolError(
                f"erase of block {block} holding "
                f"{self._valid_count[block]} valid pages"
            )
        if self._is_bad[block]:
            raise FlashProtocolError(f"erase of retired bad block {block}")
        lo = block * self._ppb
        self._state[lo : lo + self._ppb] = self._free_run
        self._write_ptr[block] = 0
        self._erase_count[block] += 1
        plane = self.geom.plane_of_block(block)
        self._free_blocks[plane].append(block)

    def retire_block(self, block: int) -> None:
        """Permanently retire a bad block (media wear-out).

        The block must hold no valid pages — callers relocate live data
        first (the bad-block *remapping* of
        :meth:`repro.ftl.gc.GarbageCollector.maybe_collect`).  Every
        page goes to ``PAGE_BAD``, the write pointer is sealed, and the
        block never re-enters its plane's free pool: over-provisioning
        shrinks by one block, which is the graceful-degradation
        feedback into the GC trigger.
        """
        if self._valid_count[block] != 0:
            raise FlashProtocolError(
                f"retire of block {block} holding "
                f"{self._valid_count[block]} valid pages"
            )
        if self._is_bad[block]:
            raise FlashProtocolError(f"double retire of block {block}")
        lo = block * self._ppb
        self._state[lo : lo + self._ppb] = self._bad_run
        self._write_ptr[block] = self._ppb
        self._is_bad[block] = 1
        # defensive: a block retired while pooled must leave the pool
        plane = self.geom.plane_of_block(block)
        try:
            self._free_blocks[plane].remove(block)
        except ValueError:
            pass
        seq = self.mod_seq + 1
        self.mod_seq = seq
        self._last_mod[block] = seq

    @property
    def total_bad_blocks(self) -> int:
        """Blocks retired so far (lost over-provisioning)."""
        return sum(self._is_bad)

    def valid_ppns(self, block: int) -> Iterator[int]:
        """Iterate the VALID PPNs of a block (GC migration source)."""
        lo = block * self._ppb
        state = self._state
        for ppn in range(lo, lo + self._ppb):
            if state[ppn] == PAGE_VALID:
                yield ppn

    def block_full(self, block: int) -> bool:
        """True once every page of the block has been programmed."""
        return self._write_ptr[block] == self._ppb

    def valid_items(self):
        """Iterate ``(ppn, meta)`` over every VALID page — the full-device
        OOB scan an FTL performs to rebuild its tables after power loss."""
        return self._meta.items()

    # ------------------------------------------------------------------
    # invariants (used by tests and sanity sweeps)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Verify the block bookkeeping against the raw page states."""
        ppb = self.geom.pages_per_block
        states = self.state.reshape(-1, ppb)
        valid = (states == PAGE_VALID).sum(axis=1)
        if not np.array_equal(valid, self.valid_count):
            bad = np.nonzero(valid != self.valid_count)[0][:5]
            raise FlashProtocolError(f"valid_count mismatch in blocks {bad}")
        # every page at or past the write pointer must be FREE, every
        # page before it must not be FREE
        past_wp = np.arange(ppb)[None, :] >= self.write_ptr[:, None]
        is_free = states == PAGE_FREE
        bad = np.nonzero((is_free & ~past_wp).any(axis=1))[0]
        if bad.size:
            raise FlashProtocolError(f"block {int(bad[0])}: free before wp")
        bad = np.nonzero((~is_free & past_wp).any(axis=1))[0]
        if bad.size:
            raise FlashProtocolError(f"block {int(bad[0])}: non-free past wp")
        bad = np.nonzero(self.is_bad)[0]
        if bad.size and (self.write_ptr[bad] != ppb).any():
            raise FlashProtocolError("retired block with unsealed write ptr")
        n_valid_meta = len(self._meta)
        if n_valid_meta != int(self.valid_count.sum()):
            raise FlashProtocolError(
                f"meta store has {n_valid_meta} entries but "
                f"{int(self.valid_count.sum())} pages are valid"
            )

    @property
    def total_valid_pages(self) -> int:
        return int(self.valid_count.sum())

    @property
    def total_erases(self) -> int:
        return int(self.erase_count.sum())
