"""Flash-array substrate: NAND state machine, chip timing, service facade.

This subpackage plays the role SSDsim's flash model plays in the paper:
it owns physical page states, enforces NAND protocol rules (sequential
program within a block, erase-before-reuse), tracks wear, and charges
operation latencies against per-chip timelines.
"""

from .array import PAGE_FREE, PAGE_INVALID, PAGE_VALID, FlashArray
from .service import FlashService
from .timing import ChipTimeline
from .wear import WearStats, projected_lifetime_writes, wear_stats

__all__ = [
    "FlashArray",
    "FlashService",
    "ChipTimeline",
    "PAGE_FREE",
    "PAGE_VALID",
    "PAGE_INVALID",
    "WearStats",
    "wear_stats",
    "projected_lifetime_writes",
]
