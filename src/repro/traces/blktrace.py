"""Linux blktrace/blkparse text output parser.

Parses the default ``blkparse`` text format, keeping the *queue* (Q) or
*issue* (D) events that represent request submission::

    8,0    3     11     0.009507758  697  Q   W 223490 + 8 [kworker/3:1]
    8,0    3     12     0.009510831  697  D   W 223490 + 8 [kworker/3:1]

Columns: dev major,minor / cpu / sequence / time (s) / pid / action /
rwbs / start sector / "+" / sectors / process.  The rwbs flags combine
R/W/D (discard) with modifiers (S sync, M meta, ...); discards map to
TRIM requests.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path

import numpy as np

from ..errors import TraceFormatError
from .model import OP_READ, OP_TRIM, OP_WRITE, Trace

_EVENT_WHITELIST = ("Q", "D")


def _op_of_rwbs(rwbs: str) -> int | None:
    if "D" in rwbs:  # discard
        return OP_TRIM
    if "W" in rwbs:
        return OP_WRITE
    if "R" in rwbs:
        return OP_READ
    return None


def load_blktrace(
    path: str | Path,
    name: str | None = None,
    *,
    event: str = "Q",
    include_trim: bool = True,
) -> Trace:
    """Parse blkparse text output (optionally .gz) into a :class:`Trace`.

    ``event`` selects which action to keep ("Q" queue events by default;
    "D" for driver-issue events).
    """
    if event not in _EVENT_WHITELIST:
        raise TraceFormatError(f"event must be one of {_EVENT_WHITELIST}")
    path = Path(path)
    opener = (
        (lambda p: io.TextIOWrapper(gzip.open(p, "rb"), encoding="ascii",
                                    errors="replace"))
        if str(path).endswith(".gz")
        else (lambda p: open(p, "r", encoding="ascii", errors="replace"))
    )
    times, ops, offsets, sizes = [], [], [], []
    with opener(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            parts = line.split()
            if len(parts) < 9 or "," not in parts[0]:
                continue  # summary lines, blank lines, CPU totals
            try:
                t_s = float(parts[3])
                action = parts[5]
                rwbs = parts[6]
            except (ValueError, IndexError):
                continue
            if action != event:
                continue
            op = _op_of_rwbs(rwbs)
            if op is None or (op == OP_TRIM and not include_trim):
                continue
            try:
                sector = int(parts[7])
                if parts[8] != "+" or len(parts) < 10:
                    continue  # e.g. flush records without an extent
                nsectors = int(parts[9])
            except (ValueError, IndexError):
                raise TraceFormatError(f"{path}:{lineno}: bad extent") from None
            if nsectors <= 0:
                continue
            times.append(t_s * 1000.0)
            ops.append(op)
            offsets.append(sector)
            sizes.append(nsectors)
    if not times:
        raise TraceFormatError(f"{path}: no usable {event} events")
    t = np.array(times)
    t -= t.min()
    return Trace(
        name or path.stem,
        t,
        np.array(ops, dtype=np.uint8),
        np.array(offsets, dtype=np.int64),
        np.array(sizes, dtype=np.int64),
    )
