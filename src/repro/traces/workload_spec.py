"""Declarative workload specifications (fio-style) compiled to traces.

Users who do not have block traces describe workloads as a JSON/dict
document of weighted *phases*, each mixing access patterns::

    {
      "name": "mail-server",
      "duration_ms": 60000,
      "phases": [
        {"weight": 3, "pattern": "random", "op": "write",
         "size_kb": [4, 8], "align_kb": 4, "region": [0.0, 0.5]},
        {"weight": 1, "pattern": "sequential", "op": "read",
         "size_kb": [64], "region": [0.5, 1.0]},
        {"weight": 1, "pattern": "boundary", "op": "write",
         "size_kb": [2, 6]}
      ],
      "interarrival_ms": 1.5,
      "seed": 7
    }

Patterns:

* ``random`` — offsets uniform in the phase's region, aligned to
  ``align_kb``;
* ``sequential`` — a cursor walks the region, wrapping;
* ``boundary`` — extents deliberately straddling flash-page boundaries
  (the paper's across-page requests);
* ``hotspot`` — zipf-clustered offsets (define ``zones``/``zipf_s``).

Compile with :func:`compile_workload`; validate-only with
:func:`validate_spec`.  This complements the calibrated VDI generator
(:mod:`repro.traces.synthetic`), which targets the paper's Table 2
statistics specifically.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..errors import ConfigError
from ..units import KIB, SECTOR_BYTES
from .model import OP_READ, OP_TRIM, OP_WRITE, Trace

PATTERNS = ("random", "sequential", "boundary", "hotspot")
OPS = {"read": OP_READ, "write": OP_WRITE, "trim": OP_TRIM}


@dataclass
class Phase:
    """One weighted traffic component of a workload spec."""

    weight: float = 1.0
    pattern: str = "random"
    op: str = "write"
    #: candidate request sizes in KiB, sampled uniformly
    size_kb: list[float] = field(default_factory=lambda: [4.0])
    #: offset alignment in KiB (ignored by "boundary")
    align_kb: float = 4.0
    #: fraction of the address space this phase touches [lo, hi)
    region: tuple[float, float] = (0.0, 1.0)
    #: hotspot parameters
    zones: int = 32
    zipf_s: float = 1.2
    #: flash page size the "boundary" pattern straddles, in KiB
    boundary_page_kb: float = 8.0

    def validate(self) -> None:
        """Raise :class:`ConfigError` for any malformed field."""
        if self.weight <= 0:
            raise ConfigError("phase weight must be positive")
        if self.pattern not in PATTERNS:
            raise ConfigError(
                f"unknown pattern {self.pattern!r}; expected one of {PATTERNS}"
            )
        if self.op not in OPS:
            raise ConfigError(f"unknown op {self.op!r}")
        if not self.size_kb or any(s <= 0 for s in self.size_kb):
            raise ConfigError("size_kb must be a non-empty list of positives")
        if self.align_kb * KIB % SECTOR_BYTES:
            raise ConfigError("align_kb must be sector-aligned")
        lo, hi = self.region
        if not (0.0 <= lo < hi <= 1.0):
            raise ConfigError("region must satisfy 0 <= lo < hi <= 1")
        if self.zones < 1 or self.zipf_s <= 0:
            raise ConfigError("bad hotspot parameters")
        if self.boundary_page_kb <= 0:
            raise ConfigError("boundary_page_kb must be positive")


@dataclass
class WorkloadSpec:
    """A named collection of phases plus arrival parameters."""

    name: str
    phases: list[Phase]
    requests: int = 10_000
    interarrival_ms: float = 2.0
    seed: int = 1

    def validate(self) -> None:
        """Raise :class:`ConfigError` for any malformed field."""
        if not self.phases:
            raise ConfigError("workload needs at least one phase")
        for p in self.phases:
            p.validate()
        if self.requests <= 0:
            raise ConfigError("requests must be positive")
        if self.interarrival_ms <= 0:
            raise ConfigError("interarrival_ms must be positive")

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "WorkloadSpec":
        """Build from a plain dict (e.g. parsed JSON)."""
        try:
            phases = [
                Phase(
                    weight=p.get("weight", 1.0),
                    pattern=p.get("pattern", "random"),
                    op=p.get("op", "write"),
                    size_kb=list(p.get("size_kb", [4.0])),
                    align_kb=p.get("align_kb", 4.0),
                    region=tuple(p.get("region", (0.0, 1.0))),
                    zones=p.get("zones", 32),
                    zipf_s=p.get("zipf_s", 1.2),
                    boundary_page_kb=p.get("boundary_page_kb", 8.0),
                )
                for p in doc["phases"]
            ]
        except KeyError as exc:
            raise ConfigError(f"workload spec missing field: {exc}") from None
        spec = cls(
            name=doc.get("name", "workload"),
            phases=phases,
            requests=doc.get("requests", 10_000),
            interarrival_ms=doc.get("interarrival_ms", 2.0),
            seed=doc.get("seed", 1),
        )
        spec.validate()
        return spec

    @classmethod
    def from_json(cls, text: str) -> "WorkloadSpec":
        """Build from a JSON document string."""
        return cls.from_dict(json.loads(text))


def validate_spec(doc: dict[str, Any]) -> WorkloadSpec:
    """Parse + validate, returning the spec (raises ConfigError)."""
    return WorkloadSpec.from_dict(doc)


class _PhaseState:
    """Per-phase mutable generation state."""

    def __init__(self, phase: Phase, footprint: int, rng: np.random.Generator):
        self.phase = phase
        lo, hi = phase.region
        self.lo = int(footprint * lo)
        self.hi = max(self.lo + 64, int(footprint * hi))
        self.cursor = self.lo
        if phase.pattern == "hotspot":
            ranks = np.arange(1, phase.zones + 1, dtype=np.float64)
            w = ranks ** (-phase.zipf_s)
            self.zone_weights = w / w.sum()
            self.zone_order = rng.permutation(phase.zones)

    def next_extent(self, rng: np.random.Generator) -> tuple[int, int]:
        p = self.phase
        size = max(
            1, int(round(p.size_kb[rng.integers(len(p.size_kb))] * KIB / SECTOR_BYTES))
        )
        span = self.hi - self.lo
        if p.pattern == "sequential":
            if self.cursor + size > self.hi:
                self.cursor = self.lo
            off = self.cursor
            self.cursor += size
            return off, size
        if p.pattern == "boundary":
            page_secs = max(2, int(p.boundary_page_kb * KIB / SECTOR_BYTES))
            size = min(size, page_secs)
            if size < 2:
                size = 2
            n_boundaries = max(1, span // page_secs - 1)
            b = self.lo + (1 + int(rng.integers(n_boundaries))) * page_secs
            left = int(rng.integers(1, size))
            return max(self.lo, b - left), size
        align = max(1, int(p.align_kb * KIB / SECTOR_BYTES))
        if p.pattern == "hotspot":
            zone = int(
                self.zone_order[
                    int(rng.choice(len(self.zone_weights), p=self.zone_weights))
                ]
            )
            zspan = max(size + align, span // p.zones)
            zlo = self.lo + zone * zspan
            off = zlo + int(rng.integers(max(1, zspan - size)) // align) * align
        else:  # random
            off = self.lo + int(rng.integers(max(1, span - size)) // align) * align
        return min(off, self.hi - size), size


def compile_workload(
    spec: WorkloadSpec | dict[str, Any], footprint_sectors: int
) -> Trace:
    """Compile a workload spec into a concrete :class:`Trace`."""
    if isinstance(spec, dict):
        spec = WorkloadSpec.from_dict(spec)
    spec.validate()
    if footprint_sectors < 1024:
        raise ConfigError("footprint too small to compile a workload")
    rng = np.random.default_rng(spec.seed)
    states = [_PhaseState(p, footprint_sectors, rng) for p in spec.phases]
    weights = np.array([p.weight for p in spec.phases], dtype=np.float64)
    weights /= weights.sum()

    n = spec.requests
    ops = np.empty(n, dtype=np.uint8)
    offsets = np.empty(n, dtype=np.int64)
    sizes = np.empty(n, dtype=np.int64)
    choices = rng.choice(len(states), size=n, p=weights)
    times = np.cumsum(rng.exponential(spec.interarrival_ms, n))
    for i in range(n):
        st = states[choices[i]]
        off, size = st.next_extent(rng)
        size = min(size, footprint_sectors - off)
        ops[i] = OPS[st.phase.op]
        offsets[i] = off
        sizes[i] = max(1, size)
    return Trace(spec.name, times, ops, offsets, sizes)
