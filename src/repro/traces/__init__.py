"""Block traces: container model, real-format parsers (SYSTOR'17 /
MSR Cambridge), calibrated synthetic VDI workload generators, and the
characterisation statistics behind Table 2 and Figs. 2/13."""

from .columnar import (
    ColumnarSegment,
    decode_segments,
    request_digest,
    request_digest_scalar,
)
from .lint import Finding, has_errors, lint_trace
from .model import OP_READ, OP_TRIM, OP_WRITE, Trace
from .stats import TraceStats, across_page_ratio, characterize
from .synthetic import SyntheticSpec, VDIWorkloadGenerator, generate_trace
from .workload_spec import (
    Phase,
    WorkloadSpec,
    compile_workload,
    validate_spec,
)

__all__ = [
    "Trace",
    "OP_READ",
    "OP_WRITE",
    "OP_TRIM",
    "ColumnarSegment",
    "decode_segments",
    "request_digest",
    "request_digest_scalar",
    "Phase",
    "WorkloadSpec",
    "compile_workload",
    "validate_spec",
    "Finding",
    "lint_trace",
    "has_errors",
    "TraceStats",
    "characterize",
    "across_page_ratio",
    "SyntheticSpec",
    "VDIWorkloadGenerator",
    "generate_trace",
]
