"""Trace characterisation: the metrics of Table 2 and Figs. 2/13.

Everything is vectorised over the trace arrays; characterising a
million-request trace takes milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..units import SECTOR_BYTES, sectors_per_page
from .model import OP_WRITE, Trace


def _across_mask(
    offsets: np.ndarray, sizes: np.ndarray, spp: int
) -> np.ndarray:
    """Vectorised across-page predicate (paper §1): size <= one page and
    the extent spans exactly two logical pages."""
    first = offsets // spp
    last = (offsets + sizes - 1) // spp
    return (sizes <= spp) & (last - first == 1)


def across_page_ratio(trace: Trace, page_size_bytes: int) -> float:
    """Fraction of requests that are across-page at ``page_size_bytes``
    (Fig. 2 / Fig. 13 / Table 2 "Across R")."""
    if not len(trace):
        return 0.0
    spp = sectors_per_page(page_size_bytes)
    return float(_across_mask(trace.offsets, trace.sizes, spp).mean())


@dataclass(frozen=True)
class TraceStats:
    """One row of Table 2 plus a few extras."""

    name: str
    requests: int
    write_ratio: float
    mean_write_kb: float
    mean_read_kb: float
    across_ratio: float
    across_write_ratio: float
    across_read_ratio: float
    unaligned_ratio: float
    footprint_mb: float

    def table2_row(self) -> tuple:
        """(# of Req., Write R, Write SZ, Across R) as in Table 2."""
        return (
            self.requests,
            f"{self.write_ratio:.1%}",
            f"{self.mean_write_kb:.1f}KB",
            f"{self.across_ratio:.1%}",
        )


def characterize(trace: Trace, page_size_bytes: int) -> TraceStats:
    """Compute the full statistics row for a trace at a page size."""
    n = len(trace)
    if n == 0:
        return TraceStats(trace.name, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    spp = sectors_per_page(page_size_bytes)
    writes = trace.ops == OP_WRITE
    across = _across_mask(trace.offsets, trace.sizes, spp)
    aligned = (trace.offsets % spp == 0) & ((trace.offsets + trace.sizes) % spp == 0)
    wsz = trace.sizes[writes]
    rsz = trace.sizes[~writes]
    return TraceStats(
        name=trace.name,
        requests=n,
        write_ratio=float(writes.mean()),
        mean_write_kb=float(wsz.mean() * SECTOR_BYTES / 1024) if len(wsz) else 0.0,
        mean_read_kb=float(rsz.mean() * SECTOR_BYTES / 1024) if len(rsz) else 0.0,
        across_ratio=float(across.mean()),
        across_write_ratio=float(across[writes].mean()) if writes.any() else 0.0,
        across_read_ratio=float(across[~writes].mean()) if (~writes).any() else 0.0,
        unaligned_ratio=float((~aligned).mean()),
        footprint_mb=trace.footprint_sectors * SECTOR_BYTES / (1024 * 1024),
    )
