"""Columnar trace decoding for the batch execution layer.

The scalar reader — ``for op, offset, size, t in trace`` — hands the
engine one python tuple per request.  The batch engine
(:class:`~repro.config.BatchConfig`) instead decodes whole trace
segments into numpy arrays up front: a :class:`ColumnarSegment` is a
bounded slice of the trace carrying the four raw request columns plus
the derived per-request geometry the vector kernels need (first/last
logical page, page-piece count, the across-page classification of
paper §2.1).

Decoding is *pure*: a segment is views/arithmetic over the trace's own
arrays, so the request stream it describes is byte-identical to what
the scalar reader yields.  That equivalence is pinned two ways:

* :func:`request_digest` / :func:`request_digest_scalar` compute the
  same SHA-256 over the canonical request encoding — one from the
  columnar arrays, one through the scalar tuple iterator — and the
  property tests require equal hexes on synthetic, blktrace and MSR
  traces (TRIM rows and truncated-tail segments included);
* the ``batch`` differential-replay leg (``repro check --batch``)
  replays whole traces through the batch engine and compares oracle
  read digests against the sequential loop.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from .model import Trace

#: canonical per-request encoding (little-endian, no padding):
#: op uint8, offset int64, size int64, arrival-time float64
_ROW_STRUCT = struct.Struct("<Bqqd")

#: numpy dtype mirroring :data:`_ROW_STRUCT` field for field
_ROW_DTYPE = np.dtype(
    [("op", "<u1"), ("offset", "<i8"), ("size", "<i8"), ("time", "<f8")]
)


@dataclass(frozen=True)
class ColumnarSegment:
    """One decoded trace segment (a bounded run of requests).

    The four raw columns are slices of the trace arrays; the derived
    columns are what the batch kernels consume per request:

    ``lpn_lo``/``lpn_hi``
        first and last logical page the extent touches;
    ``pieces``
        how many page-level sub-requests the extent splits into
        (``lpn_hi - lpn_lo + 1``);
    ``across``
        the paper's across-page classification (at most one page of
        data, spanning a page boundary) — matching the engine's
        inlined ``is_across_page`` exactly.
    """

    #: index of the segment's first request within the whole trace
    start: int
    times: np.ndarray
    ops: np.ndarray
    offsets: np.ndarray
    sizes: np.ndarray
    lpn_lo: np.ndarray
    lpn_hi: np.ndarray
    pieces: np.ndarray
    across: np.ndarray

    def __len__(self) -> int:
        return len(self.ops)

    def request_tuples(self):
        """The segment's requests as scalar ``(op, offset, size, time)``
        tuples — the same stream the scalar reader yields for this
        slice (equivalence-test helper, not a hot path)."""
        return list(
            zip(
                self.ops.tolist(),
                self.offsets.tolist(),
                self.sizes.tolist(),
                self.times.tolist(),
            )
        )


def decode_segments(
    trace: Trace, *, max_batch: int = 512, spp: int
) -> Iterator[ColumnarSegment]:
    """Decode ``trace`` into :class:`ColumnarSegment` runs of at most
    ``max_batch`` requests (the tail segment is simply shorter).

    ``spp`` (sectors per page) drives the derived geometry columns.
    The derived values are computed vectorised per segment, not per
    request — this is the "decode" stage of the batch pipeline.
    """
    if max_batch <= 0:
        raise ValueError(f"max_batch must be positive, got {max_batch}")
    if spp <= 0:
        raise ValueError(f"spp must be positive, got {spp}")
    n = len(trace)
    for lo in range(0, n, max_batch):
        hi = min(lo + max_batch, n)
        offsets = trace.offsets[lo:hi]
        sizes = trace.sizes[lo:hi]
        lpn_lo = offsets // spp
        lpn_hi = (offsets + sizes - 1) // spp
        yield ColumnarSegment(
            start=lo,
            times=trace.times[lo:hi],
            ops=trace.ops[lo:hi],
            offsets=offsets,
            sizes=sizes,
            lpn_lo=lpn_lo,
            lpn_hi=lpn_hi,
            pieces=lpn_hi - lpn_lo + 1,
            across=(sizes <= spp) & (lpn_hi == lpn_lo + 1),
        )


# ----------------------------------------------------------------------
# digest equivalence: columnar vs. scalar request streams
# ----------------------------------------------------------------------
def request_digest(trace: Trace, *, max_batch: int = 512, spp: int = 16) -> str:
    """SHA-256 over the canonical request stream, computed from the
    *columnar* decode: each segment's rows are packed into the
    :data:`_ROW_DTYPE` record array and hashed as raw bytes."""
    h = hashlib.sha256()
    for seg in decode_segments(trace, max_batch=max_batch, spp=spp):
        rows = np.empty(len(seg), dtype=_ROW_DTYPE)
        rows["op"] = seg.ops
        rows["offset"] = seg.offsets
        rows["size"] = seg.sizes
        rows["time"] = seg.times
        h.update(rows.tobytes())
    return h.hexdigest()


def request_digest_scalar(trace: Trace) -> str:
    """SHA-256 over the canonical request stream, computed through the
    scalar reader (``Trace.__iter__``) one :data:`_ROW_STRUCT` pack at
    a time — the reference :func:`request_digest` must match."""
    h = hashlib.sha256()
    pack = _ROW_STRUCT.pack
    for op, offset, size, t in trace:
        h.update(pack(op, offset, size, t))
    return h.hexdigest()
