"""SYSTOR '17 trace format (Lee et al., the paper's LUN collection).

The public collection stores one CSV per LUN with the header::

    Timestamp,Response,IOType,LUN,Offset,Size

``Timestamp``/``Response`` are seconds (float), ``IOType`` is ``R``/
``W`` (the collection also contains rare other codes, skipped here),
``Offset`` and ``Size`` are bytes.  If real trace files are available
they can be loaded with :func:`load_systor` and dropped straight into
the experiment runner in place of the calibrated synthetic workloads.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path

import numpy as np

from ..errors import TraceFormatError
from ..units import SECTOR_BYTES
from .model import OP_READ, OP_TRIM, OP_WRITE, Trace

_HEADER = "Timestamp,Response,IOType,LUN,Offset,Size"


def _open_text(path: Path):
    if str(path).endswith(".gz"):
        return io.TextIOWrapper(gzip.open(path, "rb"), encoding="ascii")
    return open(path, "r", encoding="ascii")


def load_systor(
    path: str | Path, name: str | None = None, *, include_trim: bool = False
) -> Trace:
    """Parse a SYSTOR '17 LUN CSV (optionally .gz) into a :class:`Trace`.

    ``include_trim=True`` keeps UNMAP records as TRIM requests instead
    of skipping them.
    """
    path = Path(path)
    times, ops, offsets, sizes = [], [], [], []
    skipped = 0
    with _open_text(path) as fh:
        first = fh.readline().strip()
        if not first:
            raise TraceFormatError(f"{path}: empty trace file")
        if not first.lower().startswith("timestamp"):
            # no header: treat the first line as data
            fh = _chain_line(first, fh)
        for lineno, line in enumerate(fh, start=2):
            line = line.strip()
            if not line:
                continue
            parts = line.split(",")
            if len(parts) != 6:
                raise TraceFormatError(
                    f"{path}:{lineno}: expected 6 fields, got {len(parts)}"
                )
            ts, _resp, iotype, _lun, off, size = parts
            iotype = iotype.strip().upper()
            if iotype in ("R",):
                op = OP_READ
            elif iotype in ("W",):
                op = OP_WRITE
            elif include_trim and iotype in ("U", "UN", "UNMAP", "T", "D"):
                op = OP_TRIM
            else:
                skipped += 1
                continue
            try:
                off_b = int(off)
                size_b = int(size)
                t = float(ts)
            except ValueError as exc:
                raise TraceFormatError(f"{path}:{lineno}: {exc}") from None
            if size_b <= 0:
                skipped += 1
                continue
            times.append(t * 1000.0)  # seconds -> ms
            ops.append(op)
            # byte offsets are not always sector-aligned; round down/up
            # to sector granularity like the device interface would
            lo = off_b // SECTOR_BYTES
            hi = -(-(off_b + size_b) // SECTOR_BYTES)
            offsets.append(lo)
            sizes.append(hi - lo)
    if not times:
        raise TraceFormatError(f"{path}: no usable requests (skipped {skipped})")
    t = np.array(times)
    t -= t.min()
    return Trace(
        name or path.stem,
        t,
        np.array(ops, dtype=np.uint8),
        np.array(offsets, dtype=np.int64),
        np.array(sizes, dtype=np.int64),
    )


def _chain_line(first: str, fh):
    yield first + "\n"
    yield from fh


def save_systor(trace: Trace, path: str | Path) -> None:
    """Write a trace in SYSTOR '17 CSV format (inverse of load)."""
    path = Path(path)
    with open(path, "w", encoding="ascii") as fh:
        fh.write(_HEADER + "\n")
        codes = {OP_READ: "R", OP_WRITE: "W", OP_TRIM: "U"}
        for op, off, size, ts in trace:
            fh.write(
                f"{ts / 1000.0:.6f},0.0,"
                f"{codes[op]},0,"
                f"{off * SECTOR_BYTES},{size * SECTOR_BYTES}\n"
            )
