"""MSR Cambridge trace format.

A second widely-used enterprise format, supported so users can replay
their own workloads::

    Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime

``Timestamp`` is in Windows filetime ticks (100 ns), ``Type`` is
``Read``/``Write``, ``Offset``/``Size`` are bytes.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path

import numpy as np

from ..errors import TraceFormatError
from ..units import SECTOR_BYTES
from .model import OP_READ, OP_WRITE, Trace

_TICKS_PER_MS = 10_000.0


def load_msr(path: str | Path, name: str | None = None) -> Trace:
    """Parse an MSR Cambridge CSV (optionally .gz) into a :class:`Trace`."""
    path = Path(path)
    opener = (
        (lambda p: io.TextIOWrapper(gzip.open(p, "rb"), encoding="ascii"))
        if str(path).endswith(".gz")
        else (lambda p: open(p, "r", encoding="ascii"))
    )
    times, ops, offsets, sizes = [], [], [], []
    with opener(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.lower().startswith("timestamp"):
                continue
            parts = line.split(",")
            if len(parts) < 6:
                raise TraceFormatError(
                    f"{path}:{lineno}: expected >=6 fields, got {len(parts)}"
                )
            ts, _host, _disk, typ, off, size = parts[:6]
            typ = typ.strip().lower()
            if typ not in ("read", "write"):
                continue
            try:
                t = int(ts) / _TICKS_PER_MS
                off_b = int(off)
                size_b = int(size)
            except ValueError as exc:
                raise TraceFormatError(f"{path}:{lineno}: {exc}") from None
            if size_b <= 0:
                continue
            times.append(t)
            ops.append(OP_WRITE if typ == "write" else OP_READ)
            lo = off_b // SECTOR_BYTES
            hi = -(-(off_b + size_b) // SECTOR_BYTES)
            offsets.append(lo)
            sizes.append(hi - lo)
    if not times:
        raise TraceFormatError(f"{path}: no usable requests")
    t = np.array(times)
    t -= t.min()
    return Trace(
        name or path.stem,
        t,
        np.array(ops, dtype=np.uint8),
        np.array(offsets, dtype=np.int64),
        np.array(sizes, dtype=np.int64),
    )
