"""Calibrated synthetic VDI workloads.

The paper replays six LUN traces from an enterprise Virtual Desktop
Infrastructure (SYSTOR'17 collection).  Those traces are not
redistributable with this repository, so this module generates
workloads *calibrated to Table 2*: request count, write ratio, mean
write size and — most importantly — the across-page request ratio at
the reference 8 KiB page size are generator inputs reproduced exactly
(within sampling noise).  :mod:`repro.traces.systor` loads the real
traces when available; both feed the same runner.

Why the substitution preserves behaviour: Across-FTL's benefit is a
function of (a) how many requests are across-page, (b) how often
across-page data is updated/extended (AMerge) or overwhelmed
(ARollback), and (c) how often reads fall inside the re-aligned areas.
The generator models VDI block traffic as a mixture that controls all
three:

* **across component** (probability = the Table 2 "Across R"): small
  extents deliberately straddling an 8 KiB page boundary, drawn from a
  pool of reusable *sites* so updates re-hit the same areas — mostly
  contained overwrites and small extensions (AMerge), rarely growing
  past one page (ARollback);
* **small unaligned component**: sub-page extents on a 512 B/1 KiB
  grid that stay inside one 8 KiB page (these are what makes the
  across-page ratio *rise* when the page shrinks to 4 KiB, Fig. 13,
  and occasionally overlap an across area — the Unprofitable-AMerge
  class of Fig. 8b);
* **aligned component**: 4 KiB-aligned requests with a size mixture
  solved to match the Table 2 mean write size (the VDI bulk traffic).

Reads preferentially target previously written extents, and reads of
across sites occasionally exceed the site (merged reads, §4.2.1).
"""

from __future__ import annotations

from bisect import bisect_right
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..units import KIB, SECTOR_BYTES
from .model import OP_READ, OP_WRITE, Trace

#: reference page size the across-page ratio is calibrated at (paper
#: Table 2 uses 8 KiB pages)
REFERENCE_PAGE_BYTES = 8 * KIB
_REF_SPP = REFERENCE_PAGE_BYTES // SECTOR_BYTES  # 16 sectors


@dataclass(frozen=True)
class SyntheticSpec:
    """Knobs of one synthetic workload (one Table 2 row)."""

    name: str
    requests: int
    write_ratio: float
    #: target across-page request ratio at the 8 KiB reference page
    across_ratio: float
    #: target mean write size in KiB
    mean_write_kb: float
    #: addressable sector span the workload stays inside
    footprint_sectors: int
    seed: int = 1
    #: mean request interarrival in ms (exponential with bursts);
    #: calibrated so the baseline FTL's write response sits a few times
    #: above the 2 ms program latency, like the paper's Fig. 9 values
    interarrival_ms: float = 7.0
    #: probability a new request reuses an existing across site
    site_reuse: float = 0.45
    #: on reuse: P(contained overwrite), P(small extension); the rest
    #: grows past one page and triggers ARollback
    p_overwrite: float = 0.72
    p_extend: float = 0.245
    #: share of across sites carrying *bulk* extents (8..16 sectors —
    #: ordinary 4-8 KiB writes that merely straddle a boundary; these
    #: are what makes the paper's per-sector across cost only ~1.5x a
    #: normal request's, Fig. 4).  The rest are small tails (2..4
    #: sectors), which also straddle 4 KiB boundaries when the page
    #: shrinks (Fig. 13).
    across_big_fraction: float = 0.5
    #: share of non-across writes that are small unaligned sub-page
    small_unaligned: float = 0.22
    #: probability a read that targets an across site exceeds it
    #: (merged reads are rare in the paper's traces: 0.12% of reads)
    p_read_beyond: float = 0.005
    #: Markov burst model of arrivals (VDI boot/login storms): chance of
    #: entering a burst run, of staying in it, and the rate multiplier
    #: while bursting.  Calibrated so the baseline FTL's write response
    #: sits a few times above the 2 ms program latency (paper Fig. 9).
    burst_enter: float = 0.02
    burst_stay: float = 0.97
    burst_speedup: float = 30.0
    #: spatial locality: the address space is split into this many
    #: zones whose popularity follows a zipf law (VDI traffic is
    #: strongly skewed; this is also what gives mapping caches their
    #: hit rates)
    hot_zones: int = 64
    #: zipf exponent of zone popularity (larger = more skewed)
    zipf_s: float = 1.1

    def validate(self) -> None:
        """Raise :class:`ConfigError` on any out-of-range knob."""
        if self.requests < 0:
            raise ConfigError("requests must be non-negative")
        for nm in (
            "write_ratio",
            "across_ratio",
            "site_reuse",
            "p_overwrite",
            "p_extend",
            "across_big_fraction",
            "small_unaligned",
            "p_read_beyond",
        ):
            v = getattr(self, nm)
            if not (0.0 <= v <= 1.0):
                raise ConfigError(f"{nm} must be in [0, 1], got {v}")
        if self.p_overwrite + self.p_extend > 1.0:
            raise ConfigError("p_overwrite + p_extend must be <= 1")
        if self.hot_zones < 1:
            raise ConfigError("hot_zones must be >= 1")
        for nm in ("burst_enter", "burst_stay"):
            v = getattr(self, nm)
            if not (0.0 <= v < 1.0):
                raise ConfigError(f"{nm} must be in [0, 1), got {v}")
        if self.burst_speedup < 1.0:
            raise ConfigError("burst_speedup must be >= 1")
        if self.zipf_s <= 0:
            raise ConfigError("zipf_s must be positive")
        if self.footprint_sectors < 16 * _REF_SPP:
            raise ConfigError("footprint too small for a meaningful workload")
        if self.mean_write_kb <= 0:
            raise ConfigError("mean_write_kb must be positive")


# aligned-size candidates (sectors): small group and large group; the
# mix between groups is solved for the Table 2 mean write size
_SMALL_SIZES = np.array([8, 16], dtype=np.int64)          # 4, 8 KiB
_LARGE_SIZES = np.array([32, 48, 64, 96, 128], dtype=np.int64)  # 16-64 KiB
# the across bulk-extent candidates of _new_across_site, as a tuple:
# ``Generator.choice(a)`` without weights draws ``integers(0, len(a))``,
# so plain tuple indexing consumes the identical stream without paying
# choice()'s per-call array coercion and validation
_ACROSS_BULK_SIZES = (8, 12, 16)


def _weights_cdf(p) -> list[float]:
    """The exact CDF ``Generator.choice(n, p=p)`` builds internally.

    numpy computes ``cdf = p.cumsum(); cdf /= cdf[-1]`` and then draws
    ``cdf.searchsorted(random(), side='right')``.  Replicating that CDF
    once lets the per-request hot path replace ``choice`` — whose
    argument validation dominates its cost — with one ``random()`` plus
    ``bisect_right``, consuming the identical RNG stream and returning
    the identical index (``tests/test_synthetic.py`` pins this
    equivalence against ``Generator.choice`` itself).
    """
    cdf = np.asarray(p, dtype=np.float64).cumsum()
    cdf /= cdf[-1]
    return cdf.tolist()


class VDIWorkloadGenerator:
    """Stateful generator producing one :class:`Trace` per call."""

    def __init__(self, spec: SyntheticSpec):
        spec.validate()
        self.spec = spec
        self.rng = np.random.default_rng(spec.seed)
        #: across sites: (start_sector, size_sectors) keyed by boundary
        self._sites: list[list[int]] = []
        #: page indices hosting an across site (kept disjoint from the
        #: bulk aligned traffic: in VDI workloads the structures that
        #: produce boundary-straddling tails — journals, image metadata
        #: — are not the same blocks the guest overwrites wholesale;
        #: this is what keeps the ARollback ratio at the paper's few
        #: percent, Fig. 8a)
        self._site_pages: set[int] = set()
        self._site_boundaries: set[int] = set()
        #: previously written aligned extents for read targeting
        self._written: list[tuple[int, int]] = []
        #: pages covered by the aligned pool (new across sites avoid
        #: them, so reads of bulk extents rarely cross an area — the
        #: paper measures merged reads at only 0.12% of reads)
        self._written_pages: set[int] = set()
        #: small-unaligned sites: sub-page extents rewritten in place
        #: (journal tails, bitmaps).  Reuse matters at 4 KiB pages,
        #: where these extents become across-page: rewriting the same
        #: extent is an AMerge overwrite, not a rollback storm.
        self._small_sites: list[tuple[int, int]] = []
        self._aligned_weights = self._solve_size_mix()
        # zone popularity: zipf over a shuffled zone order so hot zones
        # are scattered across the address space
        ranks = np.arange(1, spec.hot_zones + 1, dtype=np.float64)
        weights = ranks ** (-spec.zipf_s)
        weights /= weights.sum()
        self._zone_weights = weights
        self._zone_order = self.rng.permutation(spec.hot_zones)
        self._zone_pages = max(
            1, spec.footprint_sectors // _REF_SPP // spec.hot_zones
        )
        # hot-path precomputation: zone CDF (see _weights_cdf), zone
        # order as a plain list (scalar numpy indexing is ~5x slower),
        # and the aligned-size group CDFs
        self._zone_cdf = _weights_cdf(weights)
        self._zone_order_list = [int(z) for z in self._zone_order]
        self._last_page = spec.footprint_sectors // _REF_SPP - 1
        w, ps, pl = self._aligned_weights
        self._small_cdf = _weights_cdf(ps)
        self._large_cdf = _weights_cdf(pl)
        self._small_sizes = _SMALL_SIZES.tolist()
        self._large_sizes = _LARGE_SIZES.tolist()
        self._w_small = w
        self._n_pages = spec.footprint_sectors // _REF_SPP
        self._pool_cap = max(256, self._n_pages // 128)

    def _pick_page(self) -> int:
        """A page index drawn from the zipf zone model."""
        rng = self.rng
        zone = self._zone_order_list[bisect_right(self._zone_cdf, rng.random())]
        page = zone * self._zone_pages + int(rng.integers(self._zone_pages))
        last = self._last_page
        return page if page < last else last

    # ------------------------------------------------------------------
    def _solve_size_mix(self) -> tuple[float, np.ndarray, np.ndarray]:
        """Solve the small/large aligned-size mix for the target mean.

        The overall mean write size is across*mean_across +
        small*mean_small + aligned*mean_aligned; we pick the aligned
        group weights to land the total on ``mean_write_kb``.
        """
        s = self.spec
        target = s.mean_write_kb * KIB / SECTOR_BYTES
        # across mixture: big_fraction x ~12 sectors + rest x ~3 sectors
        mean_across = s.across_big_fraction * 12.0 + (
            1.0 - s.across_big_fraction
        ) * 3.0
        mean_small = 4.5     # small unaligned average ~2.25 KiB
        p_across = s.across_ratio
        p_small = (1.0 - p_across) * s.small_unaligned
        p_aligned = 1.0 - p_across - p_small
        need = (target - p_across * mean_across - p_small * mean_small) / max(
            p_aligned, 1e-9
        )
        mean_s = float(_SMALL_SIZES.mean())   # 12
        mean_l = float(_LARGE_SIZES.mean())   # 73.6
        w = (mean_l - need) / (mean_l - mean_s)
        w = float(np.clip(w, 0.0, 1.0))
        return (
            w,
            np.full(len(_SMALL_SIZES), 1.0 / len(_SMALL_SIZES)),
            np.full(len(_LARGE_SIZES), 1.0 / len(_LARGE_SIZES)),
        )

    # ------------------------------------------------------------------
    # request constructors
    # ------------------------------------------------------------------
    def _new_across_site(self) -> tuple[int, int]:
        """A fresh extent straddling a random 8 KiB page boundary."""
        rng = self.rng
        n_boundaries = self._n_pages - 1
        b_page = max(1, min(self._pick_page(), n_boundaries))
        # avoid boundaries adjacent to existing sites: an LPN can hold
        # only one across area, so neighbouring sites would force
        # rollbacks the real workloads do not show
        for _ in range(8):
            near = {b_page - 1, b_page, b_page + 1}
            pages = {b_page - 1, b_page}
            if (
                not (near & self._site_boundaries)
                and not (pages & self._written_pages)
                and not (pages & self._site_pages)
            ):
                break
            b_page = max(1, min(self._pick_page(), n_boundaries))
        boundary = b_page * _REF_SPP
        if rng.random() < self.spec.across_big_fraction:
            # bulk extent (4-8 KiB) that merely straddles the boundary:
            # a plain write whose placement is unaligned.  At 4 KiB
            # pages these span >1 page and are no longer across-page,
            # so they never enter a 4 KiB merge chain.
            size = _ACROSS_BULK_SIZES[int(rng.integers(3))]
            left = int(rng.integers(max(1, size - 12), min(size, 13)))
        else:
            # small tail (1-2 KiB): straddles a 4 KiB boundary too when
            # the page shrinks (Fig. 13's monotonicity), and AMerge
            # unions rarely outgrow even a 4 KiB page, keeping the
            # rollback ratio at the paper's few percent (Fig. 8a)
            left = int(rng.integers(1, 3))   # 1..2 sectors before
            right = int(rng.integers(1, 3))  # 1..2 sectors after
            size = left + right
        start = boundary - left
        self._sites.append([start, size])
        self._site_boundaries.add(b_page)
        self._site_pages.update((b_page - 1, b_page))
        return start, size

    def _across_write(self) -> tuple[int, int]:
        rng = self.rng
        s = self.spec
        if self._sites and rng.random() < s.site_reuse:
            # zipf-ish reuse: prefer recent sites
            idx = len(self._sites) - 1 - int(
                rng.zipf(1.6) - 1
            ) % len(self._sites)
            site = self._sites[idx]
            start, size = site
            boundary = (start // _REF_SPP + 1) * _REF_SPP
            r = rng.random()
            if r < s.p_overwrite:
                return start, size  # contained overwrite -> AMerge/no-read
            if r < s.p_overwrite + s.p_extend:
                # small extension, still across and still <= one page
                grow_left = int(rng.integers(0, 2))
                grow_right = int(rng.integers(0, 2)) or (1 - grow_left)
                new_start = max(boundary - _REF_SPP + 1, start - grow_left)
                new_end = min(boundary + _REF_SPP - 1, start + size + grow_right)
                new_end = min(new_end, new_start + _REF_SPP)
                if new_end - boundary < 1:
                    new_end = boundary + 1
                site[0], site[1] = new_start, new_end - new_start
                return new_start, new_end - new_start
            # grow past one page: the union exceeds a page -> ARollback.
            # The *site* resets to a small extent afterwards (the area
            # is gone; the next tail write there is small again).
            new_start = boundary - _REF_SPP // 2 - int(rng.integers(1, 5))
            new_start = max(0, new_start)
            new_size = min(
                _REF_SPP + int(rng.integers(1, _REF_SPP // 2)),
                _REF_SPP * 2 - 1,
            )
            left = int(rng.integers(1, 3))
            right = int(rng.integers(1, 3))
            site[0], site[1] = boundary - left, left + right
            return new_start, new_size
        return self._new_across_site()

    def _small_unaligned_write(self) -> tuple[int, int]:
        """Sub-page extent inside one 8 KiB page, 512 B granularity.

        With a small probability it deliberately overlaps an across
        site's page (without being across itself), producing the
        Unprofitable-AMerge class.
        """
        rng = self.rng
        if self._sites and rng.random() < 0.18:
            # update part of an across area without being across
            # ourselves: the union stays within the area, so this is
            # exactly the Unprofitable-AMerge class of Fig. 8b (a
            # rollback would need the union to outgrow a page)
            start, size = self._sites[int(rng.integers(len(self._sites)))]
            page = start // _REF_SPP  # first page of the area
            rel = start - page * _REF_SPP
            first_page_end = min(_REF_SPP, rel + size)
            span = first_page_end - rel
            if span >= 2:
                lo = rel + int(rng.integers(0, span - 1))
                hi = min(first_page_end, lo + int(rng.integers(2, 5)))
                return page * _REF_SPP + lo, hi - lo
            return page * _REF_SPP + rel, 1
        pool_cap = self._pool_cap
        if self._small_sites and (
            rng.random() < 0.6 or len(self._small_sites) >= pool_cap
        ):
            # rewrite an existing small site in place; once the pool is
            # at capacity every small write is a rewrite, so the
            # population of distinct sub-page sites stays bounded
            return self._small_sites[
                len(self._small_sites)
                - 1
                - int(rng.zipf(1.6) - 1) % len(self._small_sites)
            ]
        page = self._pick_page()
        for _ in range(6):  # stay off the across sites' pages
            if page not in self._site_pages:
                break
            page = self._pick_page()
        size = int(rng.integers(1, 9))  # 0.5 - 4 KiB
        if size >= 2 and rng.random() < 0.75:
            # straddle the page's interior 4 KiB boundary: still inside
            # one 8 KiB page, but across-page once pages shrink to 4 KiB
            half = _REF_SPP // 2
            rel = int(rng.integers(half - size + 1, half))
        else:
            rel = int(rng.integers(0, _REF_SPP - size + 1))
        extent = (page * _REF_SPP + rel, size)
        # bounded pool: the population of distinct sub-page sites —
        # which become live across areas at 4 KiB pages — scales with
        # the device rather than the trace length (the paper's
        # full-size device keeps area density under ~1% of pages)
        if len(self._small_sites) < pool_cap:
            self._small_sites.append(extent)
            # bulk traffic steers clear of these pages too: at 4 KiB
            # pages the straddling sites become across areas, and a
            # full-page overwrite on top would be a rollback real
            # workloads don't show
            self._site_pages.add(page)
        return extent

    def _aligned_write(self) -> tuple[int, int]:
        """4/8 KiB-aligned bulk traffic that is never across at 8 KiB."""
        rng = self.rng
        if rng.random() < self._w_small:
            size = self._small_sizes[
                bisect_right(self._small_cdf, rng.random())
            ]
        else:
            size = self._large_sizes[
                bisect_right(self._large_cdf, rng.random())
            ]
        if size % _REF_SPP == 0 or size > _REF_SPP:
            # multiples of a page (and anything larger than a page)
            # start on a page boundary: unaligned-but-not-across is the
            # across component's job
            n = self._n_pages
            pages_spanned = -(-size // _REF_SPP)
            page = min(self._pick_page(), max(0, n - 1 - pages_spanned))
            for _ in range(6):  # keep bulk traffic off the across sites
                span = range(page, page + pages_spanned)
                if not self._site_pages.intersection(span):
                    break
                page = min(self._pick_page(), max(0, n - 1 - pages_spanned))
            return page * _REF_SPP, size
        # 4 KiB request on the 4 KiB grid, kept inside one page
        page = self._pick_page()
        for _ in range(6):
            if page not in self._site_pages:
                break
            page = self._pick_page()
        half = int(rng.integers(2)) * (_REF_SPP // 2)
        if half + size > _REF_SPP:
            half = 0
        return page * _REF_SPP + half, size

    # ------------------------------------------------------------------
    def _read_target(self) -> tuple[int, int]:
        rng = self.rng
        s = self.spec
        if self._sites and rng.random() < s.across_ratio:
            start, size = self._sites[int(rng.integers(len(self._sites)))]
            if rng.random() < s.p_read_beyond:
                # merged read: exceed the area on one side
                return max(0, start - 2), min(size + 4, _REF_SPP * 2 - 1)
            if size > 2 and rng.random() < 0.5:
                # partial read within the area, still across
                boundary = (start // _REF_SPP + 1) * _REF_SPP
                lo = max(start, boundary - max(1, size // 2))
                hi = min(start + size, boundary + max(1, size // 2))
                return lo, hi - lo
            return start, size
        if self._small_sites and rng.random() < 0.18:
            # re-read a sub-page site (inside one 8 KiB page; across
            # once pages shrink to 4 KiB — Fig. 13)
            return self._small_sites[int(rng.integers(len(self._small_sites)))]
        if self._written and rng.random() < 0.75:
            off, size = self._written[int(rng.integers(len(self._written)))]
            return off, size
        return self._aligned_write()

    # ------------------------------------------------------------------
    def generate(self) -> Trace:
        """Produce the whole trace."""
        s = self.spec
        rng = self.rng
        n = s.requests
        ops = np.empty(n, dtype=np.uint8)
        offsets = np.empty(n, dtype=np.int64)
        sizes = np.empty(n, dtype=np.int64)

        is_write = rng.random(n) < s.write_ratio
        # Markov-modulated arrivals: VDI traffic alternates between calm
        # periods and sustained burst runs (boot/login storms).  Burst
        # runs last ~1/(1-burst_stay) requests at burst_speedup x the
        # base rate — these are what create the queueing the paper's
        # response times (several times the 2 ms program latency) show.
        gaps = rng.exponential(s.interarrival_ms, n)
        enter, stay, speedup = s.burst_enter, s.burst_stay, s.burst_speedup
        u = rng.random(n)
        in_burst = np.zeros(n, dtype=bool)
        state = False
        for i, ui in enumerate(u.tolist()):
            state = (ui < stay) if state else (ui < enter)
            in_burst[i] = state
        gaps[in_burst] /= speedup
        times = np.cumsum(gaps)

        p_across = s.across_ratio
        p_small_cut = p_across + (1 - p_across) * s.small_unaligned
        footprint = s.footprint_sectors
        max_written = 4096  # bounded memory for the read-target pool
        # bound every per-request callable once: the loop below runs for
        # each of the trace's (often hundreds of thousands of) requests
        random = rng.random
        integers = rng.integers
        across_write = self._across_write
        small_unaligned_write = self._small_unaligned_write
        aligned_write = self._aligned_write
        read_target = self._read_target
        written = self._written
        written_pages = self._written_pages
        out_ops = ops.tolist()
        out_offsets = offsets.tolist()
        out_sizes = sizes.tolist()
        for i, w in enumerate(is_write.tolist()):
            if w:
                r = random()
                if r < p_across:
                    off, size = across_write()
                elif r < p_small_cut:
                    off, size = small_unaligned_write()
                else:
                    off, size = aligned_write()
                    if len(written) < max_written:
                        written.append((off, size))
                    else:
                        written[int(integers(max_written))] = (off, size)
                    written_pages.update(
                        range(off // _REF_SPP, (off + size - 1) // _REF_SPP + 1)
                    )
                out_ops[i] = OP_WRITE
            else:
                off, size = read_target()
                out_ops[i] = OP_READ
            end = off + size
            if end > footprint:
                end = footprint
            if off < 0:
                off = 0
            elif off > footprint - 1:
                off = footprint - 1
            size = end - off
            out_offsets[i] = off
            out_sizes[i] = 1 if size < 1 else size
        ops[:] = out_ops
        offsets[:] = out_offsets
        sizes[:] = out_sizes
        return Trace(s.name, times, ops, offsets, sizes)


#: deterministic-generation memo: spec -> generated trace.  Generation
#: is a pure function of the (frozen, hashable) spec, so any two calls
#: with equal specs produce bit-identical traces — the memo only skips
#: redundant work, never changes output.  Bounded LRU; huge traces are
#: not retained.  Cached traces are marked read-only as a tripwire:
#: traces are immutable by repo convention, and sharing one across
#: callers must never let an in-place edit corrupt a later run.
_TRACE_MEMO: "OrderedDict[SyntheticSpec, Trace]" = OrderedDict()
_TRACE_MEMO_ENTRIES = 8
_TRACE_MEMO_MAX_REQUESTS = 200_000


def generate_trace(spec: SyntheticSpec, *, memo: bool = True) -> Trace:
    """Convenience wrapper: one-shot generation from a spec, memoised.

    Repeated calls with an equal spec return the same (read-only)
    :class:`Trace` instead of regenerating it — the bench-gate
    scenarios share their warm-up and lun specs across schemes, and
    regeneration was a third of their wall time.  Pass ``memo=False``
    to force a fresh, writable generation.

    Generation is deterministic in the spec (seed included), and the
    calibration targets come out within sampling noise:

    >>> spec = SyntheticSpec("demo", 4_000, write_ratio=0.6,
    ...                      across_ratio=0.25, mean_write_kb=9.0,
    ...                      footprint_sectors=1 << 20)
    >>> t = generate_trace(spec)
    >>> len(t)
    4000
    >>> t.offsets.tolist() == generate_trace(spec).offsets.tolist()
    True
    >>> from repro.traces.stats import characterize
    >>> st = characterize(t, 8192)
    >>> abs(st.write_ratio - 0.6) < 0.03
    True
    >>> abs(st.across_ratio - 0.25) < 0.03
    True
    """
    if not memo or spec.requests > _TRACE_MEMO_MAX_REQUESTS:
        return VDIWorkloadGenerator(spec).generate()
    cached = _TRACE_MEMO.get(spec)
    if cached is not None:
        _TRACE_MEMO.move_to_end(spec)
        return cached
    trace = VDIWorkloadGenerator(spec).generate()
    for arr in (trace.times, trace.ops, trace.offsets, trace.sizes):
        arr.setflags(write=False)
    _TRACE_MEMO[spec] = trace
    while len(_TRACE_MEMO) > _TRACE_MEMO_ENTRIES:
        _TRACE_MEMO.popitem(last=False)
    return trace


def spec_from_stats(stats, *, requests: int | None = None, seed: int = 1,
                    footprint_sectors: int | None = None) -> SyntheticSpec:
    """A synthetic *twin* of a measured trace.

    Feed :func:`repro.traces.stats.characterize`'s output of any real
    trace and get a spec whose generated workload matches its request
    count, write ratio, mean write size and across-page ratio — an
    anonymised stand-in that can be shared or re-scaled when the
    original cannot (exactly how this library's lun presets stand in
    for the paper's SYSTOR'17 traces).
    """
    from ..errors import ConfigError
    from ..units import SECTOR_BYTES

    if stats.requests == 0:
        raise ConfigError("cannot build a spec from an empty trace")
    footprint = footprint_sectors
    if footprint is None:
        footprint = max(
            16 * _REF_SPP,
            int(stats.footprint_mb * 1024 * 1024 / SECTOR_BYTES),
        )
    return SyntheticSpec(
        name=f"{stats.name}-twin",
        requests=requests if requests is not None else stats.requests,
        write_ratio=stats.write_ratio,
        across_ratio=min(0.95, stats.across_ratio),
        mean_write_kb=max(0.5, stats.mean_write_kb),
        footprint_sectors=footprint,
        seed=seed,
    )


def trace_collection(
    count: int,
    *,
    footprint_sectors: int,
    requests: int = 10_000,
    base_seed: int = 100,
    name_prefix: str = "trace",
) -> list[SyntheticSpec]:
    """Specs for a Fig. 2-style collection: ``count`` traces whose
    across-page ratios spread over the range the LUN collection shows
    (a few percent up to ~35%)."""
    rng = np.random.default_rng(base_seed)
    specs = []
    for i in range(count):
        across = float(np.clip(rng.beta(2.0, 6.5), 0.01, 0.40))
        specs.append(
            SyntheticSpec(
                name=f"{name_prefix}{i + 1}",
                requests=requests,
                write_ratio=float(rng.uniform(0.3, 0.7)),
                across_ratio=across,
                mean_write_kb=float(rng.uniform(6.0, 14.0)),
                footprint_sectors=footprint_sectors,
                seed=base_seed + 7 * i + 1,
            )
        )
    return specs
