"""The in-memory block trace container.

A trace is four parallel numpy arrays — arrival time (ms), operation,
sector offset, sector size — plus a name.  Requests are kept sorted by
arrival time.  Offsets/sizes use 512-byte sectors, the native unit of
the SYSTOR'17 traces the paper replays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import TraceFormatError

OP_READ = 0
OP_WRITE = 1
OP_TRIM = 2


@dataclass
class Trace:
    """An ordered sequence of block I/O requests."""

    name: str
    times: np.ndarray    # float64, ms, non-decreasing
    ops: np.ndarray      # uint8, OP_READ / OP_WRITE
    offsets: np.ndarray  # int64, sectors
    sizes: np.ndarray    # int64, sectors (positive)

    def __post_init__(self):
        self.times = np.asarray(self.times, dtype=np.float64)
        self.ops = np.asarray(self.ops, dtype=np.uint8)
        self.offsets = np.asarray(self.offsets, dtype=np.int64)
        self.sizes = np.asarray(self.sizes, dtype=np.int64)
        n = len(self.times)
        if not (len(self.ops) == len(self.offsets) == len(self.sizes) == n):
            raise TraceFormatError("trace arrays have mismatched lengths")
        if n:
            if (self.sizes <= 0).any():
                raise TraceFormatError("trace contains non-positive sizes")
            if (self.offsets < 0).any():
                raise TraceFormatError("trace contains negative offsets")
            if not (self.ops <= OP_TRIM).all():
                raise TraceFormatError("trace contains unknown op codes")
            if (np.diff(self.times) < 0).any():
                order = np.argsort(self.times, kind="stable")
                self.times = self.times[order]
                self.ops = self.ops[order]
                self.offsets = self.offsets[order]
                self.sizes = self.sizes[order]

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self):
        """Yield (op, offset, size, time) tuples."""
        return zip(
            self.ops.tolist(),
            self.offsets.tolist(),
            self.sizes.tolist(),
            self.times.tolist(),
        )

    # ------------------------------------------------------------------
    @property
    def write_ratio(self) -> float:
        return float((self.ops == OP_WRITE).mean()) if len(self) else 0.0

    @property
    def footprint_sectors(self) -> int:
        """Highest sector touched plus one."""
        if not len(self):
            return 0
        return int((self.offsets + self.sizes).max())

    def duration_ms(self) -> float:
        """Wall-clock span of the trace (last minus first arrival)."""
        return float(self.times[-1] - self.times[0]) if len(self) else 0.0

    # ------------------------------------------------------------------
    def clamped_to(self, logical_sectors: int, name: str | None = None) -> "Trace":
        """Fit the trace into a device of ``logical_sectors``: offsets
        wrap modulo the logical space (page-aligned wrap so request
        alignment — and hence across-page behaviour — is preserved),
        and requests longer than the space are dropped."""
        if logical_sectors <= 0:
            raise TraceFormatError("logical_sectors must be positive")
        keep = self.sizes <= logical_sectors
        offsets = self.offsets[keep].copy()
        sizes = self.sizes[keep]
        # wrap at a large page-multiple boundary to preserve alignment
        offsets %= logical_sectors
        over = offsets + sizes > logical_sectors
        offsets[over] = (offsets[over] + sizes[over]) % logical_sectors - sizes[over]
        offsets[over] = np.maximum(offsets[over], 0)
        return Trace(
            name if name is not None else self.name,
            self.times[keep],
            self.ops[keep],
            offsets,
            sizes,
        )

    def head(self, n: int) -> "Trace":
        """First ``n`` requests (workload-size scaling)."""
        return Trace(
            self.name,
            self.times[:n],
            self.ops[:n],
            self.offsets[:n],
            self.sizes[:n],
        )

    def scaled_time(self, factor: float, name: str | None = None) -> "Trace":
        """Stretch (>1) or compress (<1) arrival times — the load knob
        for sensitivity studies."""
        if factor <= 0:
            raise TraceFormatError("time scale factor must be positive")
        return Trace(
            name if name is not None else self.name,
            self.times * factor,
            self.ops,
            self.offsets,
            self.sizes,
        )

    def filtered_ops(self, keep: set[int], name: str | None = None) -> "Trace":
        """Keep only the given op codes (e.g. ``{OP_WRITE}``)."""
        mask = np.isin(self.ops, list(keep))
        return Trace(
            name if name is not None else self.name,
            self.times[mask],
            self.ops[mask],
            self.offsets[mask],
            self.sizes[mask],
        )

    def window(self, t0: float, t1: float, name: str | None = None) -> "Trace":
        """Requests arriving in ``[t0, t1)`` (e.g. one burst period)."""
        mask = (self.times >= t0) & (self.times < t1)
        return Trace(
            name if name is not None else self.name,
            self.times[mask],
            self.ops[mask],
            self.offsets[mask],
            self.sizes[mask],
        )

    @staticmethod
    def interleave(
        traces: list["Trace"],
        name: str = "interleave",
        *,
        partitioned: bool = True,
    ) -> "Trace":
        """Merge traces by arrival time — concurrent tenants sharing one
        device.

        With ``partitioned`` (the default), each tenant's addresses are
        shifted into its own contiguous slice of the logical space (the
        realistic multi-tenant layout); otherwise offsets are kept
        verbatim and tenants collide on the same addresses.
        """
        if not traces:
            return Trace.from_lists(name, [])
        shift = 0
        offsets = []
        for t in traces:
            if partitioned:
                offsets.append(t.offsets + shift)
                shift += t.footprint_sectors
            else:
                offsets.append(t.offsets)
        merged = Trace(
            name,
            np.concatenate([t.times for t in traces]),
            np.concatenate([t.ops for t in traces]),
            np.concatenate(offsets),
            np.concatenate([t.sizes for t in traces]),
        )
        return merged  # __post_init__ sorted it by arrival time

    @staticmethod
    def concat(traces: list["Trace"], name: str = "concat") -> "Trace":
        """Play traces back to back (each shifted past the previous
        one's end) — multi-tenant composition."""
        if not traces:
            return Trace.from_lists(name, [])
        times, ops, offsets, sizes = [], [], [], []
        shift = 0.0
        for t in traces:
            times.append(t.times + shift)
            ops.append(t.ops)
            offsets.append(t.offsets)
            sizes.append(t.sizes)
            if len(t):
                shift = float(times[-1][-1]) + 1.0
        return Trace(
            name,
            np.concatenate(times),
            np.concatenate(ops),
            np.concatenate(offsets),
            np.concatenate(sizes),
        )

    @classmethod
    def from_lists(cls, name: str, requests) -> "Trace":
        """Build from an iterable of (op, offset, size, time) tuples."""
        reqs = list(requests)
        if not reqs:
            return cls(
                name,
                np.empty(0),
                np.empty(0, dtype=np.uint8),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
            )
        ops, offsets, sizes, times = zip(
            *((op, off, sz, t) for op, off, sz, t in reqs)
        )
        return cls(
            name,
            np.array(times, dtype=np.float64),
            np.array(ops, dtype=np.uint8),
            np.array(offsets, dtype=np.int64),
            np.array(sizes, dtype=np.int64),
        )
