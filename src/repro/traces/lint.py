"""Trace sanity linting.

Real trace files come with warts — clock regressions, zero-size or
monster requests, offsets beyond any plausible device, suspicious
alignment patterns.  :func:`lint_trace` inspects a trace and returns a
structured report so problems surface *before* a multi-minute
simulation, and ``python -m repro lint`` prints it.

Findings carry a severity: ``error`` (the simulator will reject or
silently distort these), ``warning`` (legal but probably not what you
meant), ``info`` (characterisation worth knowing).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..units import KIB, SECTOR_BYTES, sectors_per_page
from .model import OP_READ, OP_TRIM, Trace

SEVERITIES = ("error", "warning", "info")


@dataclass(frozen=True)
class Finding:
    """One lint result."""

    severity: str
    code: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity.upper():7s}] {self.code}: {self.message}"


def lint_trace(
    trace: Trace,
    *,
    logical_sectors: int | None = None,
    page_size_bytes: int = 8 * KIB,
) -> list[Finding]:
    """Inspect a trace; returns findings ordered most severe first."""
    findings: list[Finding] = []
    n = len(trace)
    if n == 0:
        return [Finding("error", "empty", "trace has no requests")]

    add = findings.append

    # --- hard problems ---------------------------------------------------
    if logical_sectors is not None:
        over = trace.offsets + trace.sizes > logical_sectors
        if over.any():
            add(
                Finding(
                    "error",
                    "out-of-range",
                    f"{int(over.sum())} requests ({over.mean():.1%}) end "
                    f"beyond the device's {logical_sectors} sectors — "
                    "clamp with Trace.clamped_to() before simulating",
                )
            )
    huge = trace.sizes > 64 * KIB // SECTOR_BYTES * 64  # > 4 MiB
    if huge.any():
        add(
            Finding(
                "warning",
                "huge-requests",
                f"{int(huge.sum())} requests exceed 4 MiB (max "
                f"{int(trace.sizes.max()) * SECTOR_BYTES // KIB} KiB) — "
                "real block layers split these",
            )
        )

    # --- time axis --------------------------------------------------------
    if float(trace.times[0]) != 0.0:
        add(
            Finding(
                "info",
                "time-offset",
                f"first arrival at {trace.times[0]:.1f} ms (not rebased)",
            )
        )
    gaps = np.diff(trace.times)
    if n > 1 and (gaps == 0).mean() > 0.5:
        add(
            Finding(
                "warning",
                "timestamp-resolution",
                f"{(gaps == 0).mean():.0%} of consecutive requests share a "
                "timestamp — the source clock is coarser than the request "
                "rate, so queueing results will be pessimistic",
            )
        )
    span = trace.duration_ms()
    if span > 0 and n / span > 100:  # >100 requests per ms
        add(
            Finding(
                "warning",
                "arrival-rate",
                f"mean arrival rate {n / span:.0f} req/ms will saturate any "
                "simulated device; check the timestamp unit",
            )
        )

    # --- composition --------------------------------------------------------
    ops = set(np.unique(trace.ops).tolist())
    if ops == {OP_READ}:
        add(Finding("warning", "read-only",
                    "no writes: FTL comparisons will be trivial"))
    if OP_TRIM in ops:
        trims = int((trace.ops == OP_TRIM).sum())
        add(Finding("info", "has-trims", f"{trims} TRIM requests present"))

    spp = sectors_per_page(page_size_bytes)
    aligned = (trace.offsets % spp == 0) & ((trace.offsets + trace.sizes) % spp == 0)
    if aligned.all():
        add(
            Finding(
                "info",
                "fully-aligned",
                f"every request is {page_size_bytes // KIB} KiB-aligned: "
                "across-page re-alignment cannot help this workload",
            )
        )
    first = trace.offsets // spp
    last = (trace.offsets + trace.sizes - 1) // spp
    across = (trace.sizes <= spp) & (last - first == 1)
    add(
        Finding(
            "info",
            "across-ratio",
            f"{across.mean():.1%} across-page at {page_size_bytes // KIB} KiB "
            "pages",
        )
    )

    order = {s: i for i, s in enumerate(SEVERITIES)}
    findings.sort(key=lambda f: order[f.severity])
    return findings


def has_errors(findings: list[Finding]) -> bool:
    """True when any finding is severity ``error``."""
    return any(f.severity == "error" for f in findings)
