"""Physical address arithmetic for the flash hierarchy.

The SSD follows the channel - chip - die - plane - block - page
organisation (paper §1).  We linearise physical page numbers (PPNs) so
that a plane's pages are contiguous::

    plane_index = ((channel * chips_per_channel + chip) * dies_per_chip
                   + die) * planes_per_die + plane
    ppn = (plane_index * blocks_per_plane + block) * pages_per_block + page

This keeps per-plane structures (free pools, valid counters) simple
array slices, and chip contention a cheap integer division away.

>>> from repro.config import SSDConfig
>>> g = FlashGeometry(SSDConfig.tiny())   # 2ch x 2chip x 1die x 2plane
>>> g.ppn(plane_index=1, block=2, page=3)
1059
>>> g.decode(1059)
PhysAddr(channel=0, chip=0, die=0, plane=1, block=2, page=3)
>>> g.encode(g.decode(1059))              # decode/encode round-trip
1059
>>> g.chip_of_ppn(1059)                   # plane 1 still lives on chip 0
0
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import SSDConfig
from .errors import GeometryError


@dataclass(frozen=True)
class PhysAddr:
    """A fully decoded physical page address."""

    channel: int
    chip: int
    die: int
    plane: int
    block: int
    page: int


class FlashGeometry:
    """Address packing/unpacking and hierarchy sizes for one device."""

    __slots__ = (
        "cfg",
        "pages_per_block",
        "blocks_per_plane",
        "pages_per_plane",
        "num_planes",
        "num_chips",
        "planes_per_chip",
        "pages_per_chip",
        "num_blocks",
        "num_pages",
    )

    def __init__(self, cfg: SSDConfig):
        cfg.validate()
        self.cfg = cfg
        self.pages_per_block = cfg.pages_per_block
        self.blocks_per_plane = cfg.blocks_per_plane
        self.pages_per_plane = cfg.pages_per_plane
        self.num_planes = cfg.num_planes
        self.num_chips = cfg.num_chips
        self.planes_per_chip = cfg.dies_per_chip * cfg.planes_per_die
        self.pages_per_chip = self.pages_per_plane * self.planes_per_chip
        self.num_blocks = cfg.num_blocks
        self.num_pages = cfg.num_pages

    # -- packing -------------------------------------------------------
    def ppn(self, plane_index: int, block: int, page: int) -> int:
        """Pack (plane, block-in-plane, page-in-block) into a PPN."""
        if not (0 <= plane_index < self.num_planes):
            raise GeometryError(f"plane {plane_index} out of range")
        if not (0 <= block < self.blocks_per_plane):
            raise GeometryError(f"block {block} out of range")
        if not (0 <= page < self.pages_per_block):
            raise GeometryError(f"page {page} out of range")
        return (plane_index * self.blocks_per_plane + block) * self.pages_per_block + page

    def check_ppn(self, ppn: int) -> None:
        """Raise :class:`GeometryError` when ``ppn`` is out of range."""
        if not (0 <= ppn < self.num_pages):
            raise GeometryError(f"PPN {ppn} outside device of {self.num_pages} pages")

    # -- unpacking -----------------------------------------------------
    def plane_of_ppn(self, ppn: int) -> int:
        """Linear plane index containing the page."""
        return ppn // self.pages_per_plane

    def block_of_ppn(self, ppn: int) -> int:
        """Global block index (plane-major) of a PPN."""
        return ppn // self.pages_per_block

    def block_in_plane(self, ppn: int) -> int:
        """Block index within its plane."""
        return (ppn // self.pages_per_block) % self.blocks_per_plane

    def page_in_block(self, ppn: int) -> int:
        """Page index within its block."""
        return ppn % self.pages_per_block

    def chip_of_plane(self, plane_index: int) -> int:
        """Global chip index hosting the plane."""
        return plane_index // self.planes_per_chip

    def chip_of_ppn(self, ppn: int) -> int:
        """Global chip index hosting the page (contention target)."""
        return ppn // self.pages_per_chip

    def channel_of_chip(self, chip: int) -> int:
        """Channel the chip hangs off."""
        return chip // self.cfg.chips_per_channel

    def decode(self, ppn: int) -> PhysAddr:
        """Full decode of a PPN into its hierarchy coordinates."""
        self.check_ppn(ppn)
        page = self.page_in_block(ppn)
        block = self.block_in_plane(ppn)
        plane_index = self.plane_of_ppn(ppn)
        plane = plane_index % self.cfg.planes_per_die
        die = (plane_index // self.cfg.planes_per_die) % self.cfg.dies_per_chip
        chip_global = plane_index // self.planes_per_chip
        chip = chip_global % self.cfg.chips_per_channel
        channel = chip_global // self.cfg.chips_per_channel
        return PhysAddr(channel, chip, die, plane, block, page)

    def encode(self, addr: PhysAddr) -> int:
        """Inverse of :meth:`decode`."""
        cfg = self.cfg
        if not (0 <= addr.channel < cfg.channels):
            raise GeometryError(f"channel {addr.channel} out of range")
        if not (0 <= addr.chip < cfg.chips_per_channel):
            raise GeometryError(f"chip {addr.chip} out of range")
        if not (0 <= addr.die < cfg.dies_per_chip):
            raise GeometryError(f"die {addr.die} out of range")
        if not (0 <= addr.plane < cfg.planes_per_die):
            raise GeometryError(f"plane {addr.plane} out of range")
        plane_index = (
            (addr.channel * cfg.chips_per_channel + addr.chip) * cfg.dies_per_chip
            + addr.die
        ) * cfg.planes_per_die + addr.plane
        return self.ppn(plane_index, addr.block, addr.page)

    # -- block-level helpers --------------------------------------------
    def first_ppn_of_block(self, global_block: int) -> int:
        """PPN of the block's page 0."""
        if not (0 <= global_block < self.num_blocks):
            raise GeometryError(f"block {global_block} out of range")
        return global_block * self.pages_per_block

    def plane_of_block(self, global_block: int) -> int:
        """Linear plane index containing the block."""
        return global_block // self.blocks_per_plane
