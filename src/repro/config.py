"""Validated configuration objects and paper presets.

:class:`SSDConfig` captures everything Table 1 of the paper specifies
(geometry, TLC timing, GC threshold, DRAM cache) plus the knobs the
evaluation sweeps (page size, Fig. 13/14).  Presets:

* :func:`SSDConfig.paper_table1` — the full 128 GiB device of Table 1.
* :func:`SSDConfig.bench_default` — the same device scaled down (fewer
  blocks per plane) so a pure-Python sweep over six traces and three
  schemes completes in minutes.  All reported metrics are normalised
  ratios, which are stable under this scaling (see DESIGN.md §2).
* :func:`SSDConfig.tiny` — a deliberately small device for unit tests,
  sized so GC triggers after a few hundred page writes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, replace

from .errors import ConfigError
from .units import GIB, KIB, MIB, sectors_per_page


@dataclass(frozen=True)
class TimingConfig:
    """Flash and controller operation latencies, in milliseconds.

    Defaults follow Table 1 (TLC cell): page read 0.075 ms, page program
    2 ms, DRAM/cache access 0.001 ms.  The paper does not list the erase
    latency; 3.5 ms is the customary SSDsim TLC figure and only shifts
    absolute I/O time, never the normalised comparisons.
    """

    read_ms: float = 0.075
    program_ms: float = 2.0
    erase_ms: float = 3.5
    cache_access_ms: float = 0.001
    #: Per mapping-table lookup cost (models the ARM A7 measurement of
    #: §4.2.4; charged once per DRAM mapping access when enabled).
    map_lookup_ms: float = 0.0
    #: Channel-bus transfer time per page (SSDsim models the data
    #: transfer separately from the cell operation; ~20 us for 8 KiB at
    #: 400 MB/s).  0 disables bus contention — the default, since the
    #: cell operations dominate by 100x; enable for bus-bound studies.
    transfer_ms: float = 0.0

    def validate(self) -> None:
        """Raise :class:`ConfigError` on any non-physical latency."""
        for name in ("read_ms", "program_ms", "erase_ms", "cache_access_ms"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"timing.{name} must be positive")
        if self.map_lookup_ms < 0:
            raise ConfigError("timing.map_lookup_ms must be non-negative")
        if self.transfer_ms < 0:
            raise ConfigError("timing.transfer_ms must be non-negative")


@dataclass(frozen=True)
class SSDConfig:
    """Full device configuration: geometry, timing, GC, caches."""

    channels: int = 8
    chips_per_channel: int = 4
    dies_per_chip: int = 2
    planes_per_die: int = 2
    blocks_per_plane: int = 2048
    pages_per_block: int = 64
    page_size_bytes: int = 8 * KIB

    #: GC starts in a plane when its free-block fraction drops below this.
    gc_threshold: float = 0.10
    #: GC stops once the free fraction is back above this (hysteresis).
    gc_restore: float = 0.12
    #: victim-selection policy: "greedy" (paper default), "cost_benefit"
    #: or "wear_aware" (see repro.ftl.gc.GC_POLICIES)
    gc_policy: str = "greedy"
    #: when True, GC-migrated (cold) pages fill separate active blocks
    #: from fresh user writes — classic stream separation that avoids
    #: mixing lifetimes within a block (bench_ablation_streams)
    hot_cold_separation: bool = False
    #: Fraction of logical space exported to the host; the rest is
    #: over-provisioning the FTL can burn during GC.
    op_ratio: float = 0.125

    timing: TimingConfig = field(default_factory=TimingConfig)

    #: DRAM write-buffer capacity in bytes (Table 1 "cache").  ``0``
    #: disables the buffer.
    write_buffer_bytes: int = 16 * MIB
    #: DRAM budget for cached mapping entries, in entries.  ``None``
    #: means the whole table of the *baseline* page-map FTL fits; larger
    #: tables (MRSM, AMT spill) then overflow to flash proportionally.
    mapping_cache_entries: int | None = None

    # ------------------------------------------------------------------
    # derived geometry
    # ------------------------------------------------------------------
    @property
    def sectors_per_page(self) -> int:
        return sectors_per_page(self.page_size_bytes)

    @property
    def num_planes(self) -> int:
        return (
            self.channels
            * self.chips_per_channel
            * self.dies_per_chip
            * self.planes_per_die
        )

    @property
    def num_chips(self) -> int:
        return self.channels * self.chips_per_channel

    @property
    def num_blocks(self) -> int:
        return self.num_planes * self.blocks_per_plane

    @property
    def pages_per_plane(self) -> int:
        return self.blocks_per_plane * self.pages_per_block

    @property
    def num_pages(self) -> int:
        return self.num_blocks * self.pages_per_block

    @property
    def physical_bytes(self) -> int:
        return self.num_pages * self.page_size_bytes

    @property
    def logical_pages(self) -> int:
        """Number of LPNs exported to the host (after over-provisioning)."""
        return int(self.num_pages * (1.0 - self.op_ratio))

    @property
    def logical_sectors(self) -> int:
        return self.logical_pages * self.sectors_per_page

    @property
    def logical_bytes(self) -> int:
        return self.logical_pages * self.page_size_bytes

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`ConfigError` on any inconsistent setting."""
        for name in (
            "channels",
            "chips_per_channel",
            "dies_per_chip",
            "planes_per_die",
            "blocks_per_plane",
            "pages_per_block",
        ):
            v = getattr(self, name)
            if not isinstance(v, int) or v <= 0:
                raise ConfigError(f"{name} must be a positive integer, got {v!r}")
        if self.page_size_bytes % 512 != 0 or self.page_size_bytes <= 0:
            raise ConfigError(
                f"page_size_bytes must be a positive multiple of 512, "
                f"got {self.page_size_bytes}"
            )
        if not (0.0 < self.gc_threshold < 1.0):
            raise ConfigError("gc_threshold must be in (0, 1)")
        if not (self.gc_threshold <= self.gc_restore < 1.0):
            raise ConfigError("gc_restore must be in [gc_threshold, 1)")
        if not (0.0 < self.op_ratio < 1.0):
            raise ConfigError("op_ratio must be in (0, 1)")
        if self.gc_policy not in ("greedy", "cost_benefit", "wear_aware"):
            raise ConfigError(f"unknown gc_policy {self.gc_policy!r}")
        if self.blocks_per_plane < 4:
            raise ConfigError("need at least 4 blocks per plane for GC headroom")
        if self.write_buffer_bytes < 0:
            raise ConfigError("write_buffer_bytes must be non-negative")
        if self.mapping_cache_entries is not None and self.mapping_cache_entries <= 0:
            raise ConfigError("mapping_cache_entries must be positive or None")
        self.timing.validate()

    def with_page_size(self, page_size_bytes: int) -> "SSDConfig":
        """Return a copy with a different page size, keeping capacity by
        scaling pages per block (Fig. 13/14 sweep helper)."""
        factor = self.page_size_bytes / page_size_bytes
        ppb = max(4, int(round(self.pages_per_block * factor)))
        cfg = replace(self, page_size_bytes=page_size_bytes, pages_per_block=ppb)
        cfg.validate()
        return cfg

    def replace(self, **kw) -> "SSDConfig":
        """Copy with keyword overrides (validated)."""
        cfg = replace(self, **kw)
        cfg.validate()
        return cfg

    # ------------------------------------------------------------------
    # presets
    # ------------------------------------------------------------------
    @classmethod
    def paper_table1(cls) -> "SSDConfig":
        """The exact Table 1 device: 262144 blocks x 64 pages x 8 KiB = 128 GiB."""
        cfg = cls(
            channels=8,
            chips_per_channel=4,
            dies_per_chip=2,
            planes_per_die=2,
            blocks_per_plane=2048,
            pages_per_block=64,
            page_size_bytes=8 * KIB,
        )
        cfg.validate()
        assert cfg.num_blocks == 262144
        assert cfg.physical_bytes == 128 * GIB
        return cfg

    @classmethod
    def bench_default(cls) -> "SSDConfig":
        """A 2 GiB device (64x fewer blocks than Table 1) used by the
        benchmark harness together with proportionally scaled traces.

        The channel/chip/die/plane fan-out matches Table 1's device
        (8 x 4 x 2 x 2 = 32 chips), so request-level parallelism and
        queueing behave like the paper's; only blocks per plane shrink,
        and every reported figure is a normalised ratio, which is
        scale-stable.
        """
        cfg = cls(
            channels=8,
            chips_per_channel=4,
            dies_per_chip=2,
            planes_per_die=2,
            blocks_per_plane=32,
            pages_per_block=64,
            page_size_bytes=8 * KIB,
            write_buffer_bytes=16 * MIB,
        )
        cfg.validate()
        return cfg

    @classmethod
    def tiny(cls) -> "SSDConfig":
        """A small device for unit tests: 4 chips, 512 blocks, 16 pages/block."""
        cfg = cls(
            channels=2,
            chips_per_channel=2,
            dies_per_chip=1,
            planes_per_die=2,
            blocks_per_plane=64,
            pages_per_block=16,
            page_size_bytes=8 * KIB,
            write_buffer_bytes=0,
        )
        cfg.validate()
        return cfg

    def summary(self) -> str:
        """One-paragraph human-readable description."""
        return (
            f"SSD: {self.channels}ch x {self.chips_per_channel}chip x "
            f"{self.dies_per_chip}die x {self.planes_per_die}plane, "
            f"{self.blocks_per_plane} blocks/plane, "
            f"{self.pages_per_block} pages/block, "
            f"{self.page_size_bytes // 1024} KiB pages -> "
            f"{self.physical_bytes / GIB:.1f} GiB physical, "
            f"{self.logical_bytes / GIB:.1f} GiB logical, "
            f"GC at {self.gc_threshold:.0%} free"
        )


@dataclass(frozen=True)
class ObservabilityConfig:
    """Instrumentation options (the :mod:`repro.obs` subsystem).

    All off by default: a normal run pays one branch per instrumented
    hot-path hook and allocates nothing.  ``enabled`` turns on the
    event bus; ``trace`` additionally records per-request spans
    (exportable as Chrome-trace JSON / JSONL); a positive
    ``sample_interval_ms`` collects chip-utilisation, queue-depth,
    free-block and AMT-occupancy time series on that simulated-time
    tick.
    """

    #: master switch: build the event bus and wire the hooks
    enabled: bool = False
    #: record per-request spans (needs ``enabled``)
    trace: bool = False
    #: simulated-time sampling tick in ms, 0 = no sampling
    #: (needs ``enabled``)
    sample_interval_ms: float = 0.0

    def validate(self) -> None:
        """Raise :class:`ConfigError` on inconsistent settings."""
        if self.sample_interval_ms < 0:
            raise ConfigError("sample_interval_ms must be non-negative")
        if not self.enabled and (self.trace or self.sample_interval_ms > 0):
            raise ConfigError(
                "observability.trace / sample_interval_ms require "
                "observability.enabled"
            )

    @classmethod
    def full(cls, sample_interval_ms: float = 10.0) -> "ObservabilityConfig":
        """Everything on: bus + spans + samplers (``repro trace`` uses
        this)."""
        return cls(
            enabled=True, trace=True, sample_interval_ms=sample_interval_ms
        )


@dataclass(frozen=True)
class SimConfig:
    """Simulation-run options shared by all schemes."""

    #: Age the device before the measured run: fill until ``aged_used``
    #: of physical capacity has been programmed, with ``aged_valid`` of
    #: capacity still valid afterwards (paper §4.1: 90% used, 39.8% valid).
    aged_used: float = 0.0
    aged_valid: float = 0.0
    #: How to age: "aligned" fills with page-aligned writes (fast,
    #: deterministic valid fraction); "vdi" replays a synthetic VDI
    #: write stream like the paper's warm-up trace
    #: (additional-02...LUN6), which also pre-fragments sub-page mapping
    #: tables and seeds across-page areas.  With "vdi" the valid
    #: fraction is emergent.
    aging_style: str = "aligned"
    #: Seed for any randomness inside the run (aging fill pattern).
    seed: int = 42
    #: When True the engine keeps a sector-version oracle and verifies
    #: every read against it (tests); costs memory and time.
    check_oracle: bool = False
    #: Collect per-request latency samples (needed for latency metrics).
    record_latencies: bool = True
    #: Keep a full per-request event log (time, op, class, latency,
    #: induced flushes) for tail-latency analysis; costs memory.
    record_requests: bool = False
    #: Take a counter snapshot every N requests (0 = off): feeds the
    #: metric-over-time series of repro.metrics.series.
    snapshot_every: int = 0
    #: Host queue depth (NCQ): at most this many requests outstanding;
    #: later arrivals wait in the host queue (their latency includes the
    #: wait).  None = unlimited (the default, matching SSDsim replay).
    queue_depth: int | None = None
    #: Instrumentation (event bus / spans / samplers); off by default.
    observability: ObservabilityConfig = field(
        default_factory=ObservabilityConfig
    )
    #: Print a throttled progress line (requests/s, % done, ETA) to
    #: stderr during the replay loop (``--progress`` on the CLI).
    progress: bool = False

    def validate(self) -> None:
        """Raise :class:`ConfigError` on inconsistent run options."""
        if not (0.0 <= self.aged_used <= 0.98):
            raise ConfigError("aged_used must be in [0, 0.98]")
        if not (0.0 <= self.aged_valid <= self.aged_used or self.aged_used == 0.0):
            raise ConfigError("aged_valid must be in [0, aged_used]")
        if self.aging_style not in ("aligned", "vdi"):
            raise ConfigError(f"unknown aging_style {self.aging_style!r}")
        if self.queue_depth is not None and self.queue_depth <= 0:
            raise ConfigError("queue_depth must be positive or None")
        if self.snapshot_every < 0:
            raise ConfigError("snapshot_every must be non-negative")
        self.observability.validate()

    @classmethod
    def paper_aging(cls, **kw) -> "SimConfig":
        """Paper §4.1 aging: 90% of capacity used, 39.8% valid."""
        return cls(aged_used=0.90, aged_valid=0.398, **kw)

    def replace_observability(self, **kw) -> "SimConfig":
        """Copy with observability-field overrides (validated)."""
        obs = dataclasses.replace(self.observability, **kw)
        cfg = replace(self, observability=obs)
        cfg.validate()
        return cfg


SCHEMES = ("ftl", "mrsm", "across")
"""Canonical identifiers of the three compared FTL schemes."""
