"""Validated configuration objects and paper presets.

:class:`SSDConfig` captures everything Table 1 of the paper specifies
(geometry, TLC timing, GC threshold, DRAM cache) plus the knobs the
evaluation sweeps (page size, Fig. 13/14).  Presets:

* :func:`SSDConfig.paper_table1` — the full 128 GiB device of Table 1.
* :func:`SSDConfig.bench_default` — the same device scaled down (fewer
  blocks per plane) so a pure-Python sweep over six traces and three
  schemes completes in minutes.  All reported metrics are normalised
  ratios, which are stable under this scaling (see DESIGN.md §2).
* :func:`SSDConfig.tiny` — a deliberately small device for unit tests,
  sized so GC triggers after a few hundred page writes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, replace

from .errors import ConfigError
from .units import GIB, KIB, MIB, sectors_per_page

#: Registered GC victim-selection / scheduling policies
#: (:mod:`repro.ftl.gc_policy`):
#:
#: * ``greedy`` — fewest valid pages (the paper's / SSDsim's default);
#: * ``cost_benefit`` — classic (1-u)/(2u) * age score, favouring cold
#:   blocks so hot data has time to invalidate itself;
#: * ``wear_aware`` — greedy score with a penalty on already-worn
#:   blocks, trading some write amplification for evener wear;
#: * ``windowed_greedy`` — greedy restricted to the ``gc_window``
#:   oldest sealed blocks (cheap cost-benefit approximation);
#: * ``preemptive`` — partial GC in bounded ``gc_slice_pages`` slices
#:   between host requests, starting early at ``gc_preempt_threshold``
#:   and deferring the rest while the plane stays healthy
#:   (arXiv 1807.09313);
#: * ``hot_cold`` — greedy victim selection with hot/cold write-stream
#:   separation (user and GC traffic fill distinct active blocks);
#: * ``dual_pool`` — greedy victim selection plus dual-pool wear
#:   levelling: when the plane's erase-count gap exceeds
#:   ``gc_wear_gap``, the coldest sealed block's data is migrated out
#:   so the under-worn block re-enters circulation.
GC_POLICIES = (
    "greedy",
    "cost_benefit",
    "wear_aware",
    "windowed_greedy",
    "preemptive",
    "hot_cold",
    "dual_pool",
)


@dataclass(frozen=True)
class TimingConfig:
    """Flash and controller operation latencies, in milliseconds.

    Defaults follow Table 1 (TLC cell): page read 0.075 ms, page program
    2 ms, DRAM/cache access 0.001 ms.  The paper does not list the erase
    latency; 3.5 ms is the customary SSDsim TLC figure and only shifts
    absolute I/O time, never the normalised comparisons.
    """

    read_ms: float = 0.075
    program_ms: float = 2.0
    erase_ms: float = 3.5
    cache_access_ms: float = 0.001
    #: Per read-retry *step* cost (repro.faults): a page whose raw bit
    #: errors exceed the ECC budget is re-read with shifted thresholds;
    #: step ``k`` (1-based) occupies the chip for ``read_retry_ms * k``
    #: on top of the base read, so deep retries escalate like real
    #: NAND retry tables.
    read_retry_ms: float = 0.05
    #: Per mapping-table lookup cost (models the ARM A7 measurement of
    #: §4.2.4; charged once per DRAM mapping access when enabled).
    map_lookup_ms: float = 0.0
    #: Channel-bus transfer time per page (SSDsim models the data
    #: transfer separately from the cell operation; ~20 us for 8 KiB at
    #: 400 MB/s).  0 disables bus contention — the default, since the
    #: cell operations dominate by 100x; enable for bus-bound studies.
    transfer_ms: float = 0.0

    def validate(self) -> None:
        """Raise :class:`ConfigError` on any non-physical latency."""
        for name in ("read_ms", "program_ms", "erase_ms", "cache_access_ms"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"timing.{name} must be positive")
        if self.map_lookup_ms < 0:
            raise ConfigError("timing.map_lookup_ms must be non-negative")
        if self.transfer_ms < 0:
            raise ConfigError("timing.transfer_ms must be non-negative")
        if self.read_retry_ms < 0:
            raise ConfigError("timing.read_retry_ms must be non-negative")


@dataclass(frozen=True)
class SSDConfig:
    """Full device configuration: geometry, timing, GC, caches."""

    channels: int = 8
    chips_per_channel: int = 4
    dies_per_chip: int = 2
    planes_per_die: int = 2
    blocks_per_plane: int = 2048
    pages_per_block: int = 64
    page_size_bytes: int = 8 * KIB

    #: GC starts in a plane when its free-block fraction drops below this.
    gc_threshold: float = 0.10
    #: GC stops once the free fraction is back above this (hysteresis).
    gc_restore: float = 0.12
    #: GC policy: victim selection plus trigger/budget scheduling (see
    #: :data:`GC_POLICIES` and :mod:`repro.ftl.gc_policy`)
    gc_policy: str = "greedy"
    #: free-block fraction below which the ``preemptive`` policy starts
    #: background collection slices (its soft threshold; the classic
    #: ``gc_threshold`` stays the urgent fall-back)
    gc_preempt_threshold: float = 0.20
    #: valid pages a ``preemptive`` collection slice may relocate per
    #: GC invocation before deferring back to host traffic
    gc_slice_pages: int = 8
    #: candidate window of the ``windowed_greedy`` policy: victims come
    #: from the N least-recently-modified sealed blocks of the plane
    gc_window: int = 8
    #: per-plane erase-count gap that triggers a ``dual_pool``
    #: cold-block migration
    gc_wear_gap: int = 16
    #: when True, GC-migrated (cold) pages fill separate active blocks
    #: from fresh user writes — classic stream separation that avoids
    #: mixing lifetimes within a block (bench_ablation_streams)
    hot_cold_separation: bool = False
    #: Fraction of logical space exported to the host; the rest is
    #: over-provisioning the FTL can burn during GC.
    op_ratio: float = 0.125

    timing: TimingConfig = field(default_factory=TimingConfig)

    #: DRAM write-buffer capacity in bytes (Table 1 "cache").  ``0``
    #: disables the buffer.
    write_buffer_bytes: int = 16 * MIB
    #: DRAM budget for cached mapping entries, in entries.  ``None``
    #: means the whole table of the *baseline* page-map FTL fits; larger
    #: tables (MRSM, AMT spill) then overflow to flash proportionally.
    mapping_cache_entries: int | None = None

    # ------------------------------------------------------------------
    # derived geometry
    # ------------------------------------------------------------------
    @property
    def sectors_per_page(self) -> int:
        return sectors_per_page(self.page_size_bytes)

    @property
    def num_planes(self) -> int:
        return (
            self.channels
            * self.chips_per_channel
            * self.dies_per_chip
            * self.planes_per_die
        )

    @property
    def num_chips(self) -> int:
        return self.channels * self.chips_per_channel

    @property
    def num_blocks(self) -> int:
        return self.num_planes * self.blocks_per_plane

    @property
    def pages_per_plane(self) -> int:
        return self.blocks_per_plane * self.pages_per_block

    @property
    def num_pages(self) -> int:
        return self.num_blocks * self.pages_per_block

    @property
    def physical_bytes(self) -> int:
        return self.num_pages * self.page_size_bytes

    @property
    def logical_pages(self) -> int:
        """Number of LPNs exported to the host (after over-provisioning)."""
        return int(self.num_pages * (1.0 - self.op_ratio))

    @property
    def logical_sectors(self) -> int:
        return self.logical_pages * self.sectors_per_page

    @property
    def logical_bytes(self) -> int:
        return self.logical_pages * self.page_size_bytes

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`ConfigError` on any inconsistent setting."""
        for name in (
            "channels",
            "chips_per_channel",
            "dies_per_chip",
            "planes_per_die",
            "blocks_per_plane",
            "pages_per_block",
        ):
            v = getattr(self, name)
            if not isinstance(v, int) or v <= 0:
                raise ConfigError(f"{name} must be a positive integer, got {v!r}")
        if self.page_size_bytes % 512 != 0 or self.page_size_bytes <= 0:
            raise ConfigError(
                f"page_size_bytes must be a positive multiple of 512, "
                f"got {self.page_size_bytes}"
            )
        if not (0.0 < self.gc_threshold < 1.0):
            raise ConfigError("gc_threshold must be in (0, 1)")
        if not (self.gc_threshold <= self.gc_restore < 1.0):
            raise ConfigError("gc_restore must be in [gc_threshold, 1)")
        if not (0.0 < self.op_ratio < 1.0):
            raise ConfigError("op_ratio must be in (0, 1)")
        if self.gc_policy not in GC_POLICIES:
            raise ConfigError(f"unknown gc_policy {self.gc_policy!r}")
        if not (self.gc_threshold <= self.gc_preempt_threshold < 1.0):
            raise ConfigError(
                "gc_preempt_threshold must be in [gc_threshold, 1)"
            )
        for name in ("gc_slice_pages", "gc_window", "gc_wear_gap"):
            v = getattr(self, name)
            if not isinstance(v, int) or v <= 0:
                raise ConfigError(f"{name} must be a positive integer, got {v!r}")
        if self.blocks_per_plane < 4:
            raise ConfigError("need at least 4 blocks per plane for GC headroom")
        if self.write_buffer_bytes < 0:
            raise ConfigError("write_buffer_bytes must be non-negative")
        if self.mapping_cache_entries is not None and self.mapping_cache_entries <= 0:
            raise ConfigError("mapping_cache_entries must be positive or None")
        self.timing.validate()

    def with_page_size(self, page_size_bytes: int) -> "SSDConfig":
        """Return a copy with a different page size, keeping capacity by
        scaling pages per block (Fig. 13/14 sweep helper)."""
        factor = self.page_size_bytes / page_size_bytes
        ppb = max(4, int(round(self.pages_per_block * factor)))
        cfg = replace(self, page_size_bytes=page_size_bytes, pages_per_block=ppb)
        cfg.validate()
        return cfg

    def replace(self, **kw) -> "SSDConfig":
        """Copy with keyword overrides (validated)."""
        cfg = replace(self, **kw)
        cfg.validate()
        return cfg

    # ------------------------------------------------------------------
    # presets
    # ------------------------------------------------------------------
    @classmethod
    def paper_table1(cls) -> "SSDConfig":
        """The exact Table 1 device: 262144 blocks x 64 pages x 8 KiB = 128 GiB."""
        cfg = cls(
            channels=8,
            chips_per_channel=4,
            dies_per_chip=2,
            planes_per_die=2,
            blocks_per_plane=2048,
            pages_per_block=64,
            page_size_bytes=8 * KIB,
        )
        cfg.validate()
        assert cfg.num_blocks == 262144
        assert cfg.physical_bytes == 128 * GIB
        return cfg

    @classmethod
    def bench_default(cls) -> "SSDConfig":
        """A 2 GiB device (64x fewer blocks than Table 1) used by the
        benchmark harness together with proportionally scaled traces.

        The channel/chip/die/plane fan-out matches Table 1's device
        (8 x 4 x 2 x 2 = 32 chips), so request-level parallelism and
        queueing behave like the paper's; only blocks per plane shrink,
        and every reported figure is a normalised ratio, which is
        scale-stable.
        """
        cfg = cls(
            channels=8,
            chips_per_channel=4,
            dies_per_chip=2,
            planes_per_die=2,
            blocks_per_plane=32,
            pages_per_block=64,
            page_size_bytes=8 * KIB,
            write_buffer_bytes=16 * MIB,
        )
        cfg.validate()
        return cfg

    @classmethod
    def tiny(cls) -> "SSDConfig":
        """A small device for unit tests: 4 chips, 512 blocks, 16 pages/block."""
        cfg = cls(
            channels=2,
            chips_per_channel=2,
            dies_per_chip=1,
            planes_per_die=2,
            blocks_per_plane=64,
            pages_per_block=16,
            page_size_bytes=8 * KIB,
            write_buffer_bytes=0,
        )
        cfg.validate()
        return cfg

    #: names accepted by :meth:`preset` (wire-facing: ``repro serve``
    #: requests pick their device by one of these strings)
    PRESETS = ("tiny", "bench", "table1")

    @classmethod
    def preset(cls, name: str) -> "SSDConfig":
        """Look up a device preset by name: ``tiny``
        (:meth:`tiny`), ``bench`` (:meth:`bench_default`) or
        ``table1`` (:meth:`paper_table1`)."""
        try:
            return {
                "tiny": cls.tiny,
                "bench": cls.bench_default,
                "table1": cls.paper_table1,
            }[name]()
        except KeyError:
            raise ConfigError(
                f"unknown device preset {name!r}; choose from {cls.PRESETS}"
            ) from None

    def summary(self) -> str:
        """One-paragraph human-readable description."""
        return (
            f"SSD: {self.channels}ch x {self.chips_per_channel}chip x "
            f"{self.dies_per_chip}die x {self.planes_per_die}plane, "
            f"{self.blocks_per_plane} blocks/plane, "
            f"{self.pages_per_block} pages/block, "
            f"{self.page_size_bytes // 1024} KiB pages -> "
            f"{self.physical_bytes / GIB:.1f} GiB physical, "
            f"{self.logical_bytes / GIB:.1f} GiB logical, "
            f"GC at {self.gc_threshold:.0%} free"
        )


@dataclass(frozen=True)
class ObservabilityConfig:
    """Instrumentation options (the :mod:`repro.obs` subsystem).

    All off by default: a normal run pays one branch per instrumented
    hot-path hook and allocates nothing.  ``enabled`` turns on the
    event bus; ``trace`` additionally records per-request spans
    (exportable as Chrome-trace JSON / JSONL); a positive
    ``sample_interval_ms`` collects chip-utilisation, queue-depth,
    free-block and AMT-occupancy time series on that simulated-time
    tick.
    """

    #: master switch: build the event bus and wire the hooks
    enabled: bool = False
    #: record per-request spans (needs ``enabled``)
    trace: bool = False
    #: simulated-time sampling tick in ms, 0 = no sampling
    #: (needs ``enabled``)
    sample_interval_ms: float = 0.0
    #: per-request critical-path latency attribution + per-phase
    #: tail-latency sketches (:mod:`repro.obs.attribution`); needs
    #: ``enabled``
    attribution: bool = False

    def validate(self) -> None:
        """Raise :class:`ConfigError` on inconsistent settings."""
        if self.sample_interval_ms < 0:
            raise ConfigError("sample_interval_ms must be non-negative")
        if not self.enabled and (
            self.trace or self.sample_interval_ms > 0 or self.attribution
        ):
            raise ConfigError(
                "observability.trace / sample_interval_ms / attribution "
                "require observability.enabled"
            )

    @classmethod
    def full(cls, sample_interval_ms: float = 10.0) -> "ObservabilityConfig":
        """Everything on: bus + spans + samplers + attribution
        (``repro trace`` uses this)."""
        return cls(
            enabled=True,
            trace=True,
            sample_interval_ms=sample_interval_ms,
            attribution=True,
        )


@dataclass(frozen=True)
class FaultConfig:
    """Media-reliability / fault-injection options (:mod:`repro.faults`).

    Off by default: the injection points in
    :class:`~repro.flash.service.FlashService` hold a ``faults``
    reference that stays ``None`` unless ``enabled`` is set, so a
    normal run pays one branch per flash operation and allocates
    nothing (the ``observability`` pattern).

    The model is deterministic and seed-driven: one dedicated RNG
    stream (``seed``) is consumed in flash-op order, so the same trace,
    device and fault config always produce bit-identical reports —
    including across ``--jobs`` process fan-out, where every run owns a
    fresh injector.

    Raw bit-error rate grows with per-block P/E cycles (the
    :class:`~repro.flash.array.FlashArray` erase counters) and with
    retention age::

        rber = rber_base
               * (1 + pe / pe_cycle_scale) ** pe_exponent
               * (1 + age_ms / retention_scale_ms)

    A read draws ``Poisson(rber * page_bits)`` raw errors; anything
    beyond ``ecc_bits`` triggers escalating read-retry steps (each step
    recovers a ``retry_error_factor`` fraction of the errors and costs
    ``timing.read_retry_ms * step``); errors surviving
    ``max_read_retries`` are *uncorrectable* (counted, and raised as
    :class:`~repro.errors.MediaError` when ``halt_on_uncorrectable``).
    Programs and erases fail with wear-scaled probabilities; a block
    accumulating ``retire_after_program_fails`` program failures — or
    failing an erase — is retired: its valid pages (including
    across-page areas) are relocated by GC and the block leaves the
    free pool for good, shrinking over-provisioning.
    """

    #: master switch: build the injector and wire the flash hooks
    enabled: bool = False
    #: dedicated fault-stream seed (independent of ``SimConfig.seed``
    #: so fault draws never perturb workload/aging randomness)
    seed: int = 7

    # -- raw bit-error-rate model --------------------------------------
    #: RBER of a fresh block reading freshly-written data
    rber_base: float = 1e-5
    #: P/E cycles at which wear doubles the base term
    pe_cycle_scale: float = 500.0
    #: super-linear wear exponent (TLC-like RBER growth)
    pe_exponent: float = 2.0
    #: retention age (simulated ms) at which charge leak doubles RBER
    retention_scale_ms: float = 1e6

    # -- ECC / read retry ----------------------------------------------
    #: correctable raw bit errors per page (the ECC budget)
    ecc_bits: int = 64
    #: fraction of raw errors *surviving* each retry step
    retry_error_factor: float = 0.5
    #: retry-table depth before a read is declared uncorrectable
    max_read_retries: int = 5

    # -- program / erase failures --------------------------------------
    #: per-program failure probability on a fresh block
    program_fail_prob: float = 1e-5
    #: per-erase failure probability on a fresh block
    erase_fail_prob: float = 1e-4
    #: in-place reprogram attempts charged before a program sticks
    max_program_retries: int = 3
    #: program failures a block survives before it is retired
    retire_after_program_fails: int = 4
    #: raise :class:`~repro.errors.MediaError` on an uncorrectable read
    #: instead of counting it and returning the (simulated) data
    halt_on_uncorrectable: bool = False

    def validate(self) -> None:
        """Raise :class:`ConfigError` on any non-physical setting."""
        for name in ("rber_base", "pe_cycle_scale", "retention_scale_ms"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"faults.{name} must be positive")
        if self.pe_exponent < 0:
            raise ConfigError("faults.pe_exponent must be non-negative")
        if self.ecc_bits < 0:
            raise ConfigError("faults.ecc_bits must be non-negative")
        if not (0.0 <= self.retry_error_factor < 1.0):
            raise ConfigError("faults.retry_error_factor must be in [0, 1)")
        if self.max_read_retries < 0 or self.max_program_retries < 0:
            raise ConfigError("faults retry depths must be non-negative")
        for name in ("program_fail_prob", "erase_fail_prob"):
            if not (0.0 <= getattr(self, name) <= 1.0):
                raise ConfigError(f"faults.{name} must be in [0, 1]")
        if self.retire_after_program_fails <= 0:
            raise ConfigError(
                "faults.retire_after_program_fails must be positive"
            )

    @classmethod
    def stress(cls, seed: int = 7) -> "FaultConfig":
        """An aggressive preset that makes every fault class visible on
        bench/test-scale devices within a few thousand requests (the
        ``repro faults`` sweep base and the reliability example)."""
        return cls(
            enabled=True,
            seed=seed,
            # an 8 KiB page carries 65536 bits: lambda = 65536 * 1e-3
            # ~ 66 raw errors per read, just past the 48-bit ECC budget
            # even on unworn blocks, so read retries show up immediately
            rber_base=1e-3,
            pe_cycle_scale=50.0,
            ecc_bits=48,
            program_fail_prob=5e-3,
            erase_fail_prob=2e-2,
            retire_after_program_fails=2,
        )

    def scaled(self, intensity: float) -> "FaultConfig":
        """Copy with error rates multiplied by ``intensity`` (enabled
        when ``intensity > 0``; 0 returns a disabled config) — the
        ``repro faults`` sweep axis."""
        if intensity < 0:
            raise ConfigError("fault intensity must be non-negative")
        if intensity == 0:
            return FaultConfig()
        cfg = replace(
            self,
            enabled=True,
            rber_base=self.rber_base * intensity,
            program_fail_prob=min(1.0, self.program_fail_prob * intensity),
            erase_fail_prob=min(1.0, self.erase_fail_prob * intensity),
        )
        cfg.validate()
        return cfg


@dataclass(frozen=True)
class FrontendConfig:
    """Event-driven frontend options (:mod:`repro.sim.frontend`).

    Off by default: the engine replays the trace through the legacy
    sequential loop (bit-identical to every pinned golden/bench
    digest).  When ``enabled``, :meth:`repro.sim.engine.Simulator.run`
    instead drives a time-ordered event heap
    (:mod:`repro.sim.events`): requests *arrive*, wait in a frontend
    queue until they are free of LBA-overlap RAW/WAW/WAR hazards
    against every in-flight request, *issue* through per-chip command
    schedulers (:mod:`repro.sim.nand_sched`) and *complete* when the
    synchronous timing model says so.  Reads that fully hit the DRAM
    data cache are served without occupying a NAND queue slot, and
    TRIMs complete at DRAM speed outside the NAND queue.
    """

    #: master switch: replay through the discrete-event frontend
    enabled: bool = False
    #: how many waiting requests each dispatch scan may look past the
    #: queue head (out-of-order admission window; 1 = strict FIFO)
    window: int = 64
    #: outstanding command budget per chip scheduler
    per_chip_depth: int = 1
    #: reorder queued chip commands read-first (reads are latency-
    #: critical; programs are 26x longer and can wait)
    read_priority: bool = True

    def validate(self) -> None:
        """Raise :class:`ConfigError` on inconsistent settings."""
        if self.window <= 0:
            raise ConfigError("frontend.window must be positive")
        if self.per_chip_depth <= 0:
            raise ConfigError("frontend.per_chip_depth must be positive")


@dataclass(frozen=True)
class BatchConfig:
    """Batched/vectorised replay options (:mod:`repro.sim.kernels`).

    Off by default: the engine steps the trace one request at a time
    (bit-identical to every pinned golden/bench digest).  When
    ``enabled``, the trace is decoded into columnar numpy segments
    (:mod:`repro.traces.columnar`) and the engine replays *hazard-free
    batches*: runs of consecutive reads go through vectorised kernels
    (flat-PMT/AMT lookup, sector-mask math, counter accumulation and
    chip-timeline advancement), and — with ``aging`` — device warm-up
    writes go through fused per-scheme ``write_run`` kernels.  Output
    is bit-identical to the scalar loop by contract, enforced by the
    golden-hotpath fixture, the BENCH gate digests and the ``batch``
    differential-replay leg (``repro check --batch``).

    Composes with :class:`FrontendConfig`: with both enabled the
    :class:`~repro.sim.frontend.FrontendScheduler` releases hazard-free
    batches per dispatch round instead of single requests.
    """

    #: master switch: decode the trace into columnar segments and
    #: replay through the batch execution layer
    enabled: bool = False
    #: largest decoded segment / released batch (bounds kernel working
    #: sets; hazard windows and checker sweep points segment further)
    max_batch: int = 512
    #: route device-aging writes through the fused per-scheme
    #: ``write_run`` kernels (bit-identical; the dominant replay cost
    #: on aged scenarios)
    aging: bool = True

    def validate(self) -> None:
        """Raise :class:`ConfigError` on inconsistent settings."""
        if self.max_batch <= 0:
            raise ConfigError("batch.max_batch must be positive")


@dataclass(frozen=True)
class CheckConfig:
    """Runtime invariant-checking options (:mod:`repro.check`).

    Off by default: the engine holds a ``checker`` reference that stays
    ``None`` unless ``enabled`` is set, so a normal run pays one branch
    per request and allocates nothing (the ``observability`` /
    ``faults`` pattern).  When enabled, a full cross-layer sweep —
    mapping tables vs. flash state, free-pool and write-pointer
    conservation, chip-timeline monotonicity, counter conservation
    laws — runs every ``every`` serviced requests and once more at end
    of run; any disagreement raises
    :class:`~repro.errors.InvariantViolation` naming both sides.
    """

    #: master switch: build the checker and wire the engine hooks
    enabled: bool = False
    #: run a full sweep every N serviced requests (0 = only the
    #: unconditional end-of-run sweep; needs ``enabled``)
    every: int = 0

    def validate(self) -> None:
        """Raise :class:`ConfigError` on inconsistent settings."""
        if self.every < 0:
            raise ConfigError("check.every must be non-negative")
        if self.every > 0 and not self.enabled:
            raise ConfigError("check.every requires check.enabled")

    @classmethod
    def full(cls, every: int = 256) -> "CheckConfig":
        """Checking on, sweeping every ``every`` requests (the
        ``repro check`` default)."""
        return cls(enabled=True, every=every)


@dataclass(frozen=True)
class SimConfig:
    """Simulation-run options shared by all schemes."""

    #: Age the device before the measured run: fill until ``aged_used``
    #: of physical capacity has been programmed, with ``aged_valid`` of
    #: capacity still valid afterwards (paper §4.1: 90% used, 39.8% valid).
    aged_used: float = 0.0
    aged_valid: float = 0.0
    #: How to age: "aligned" fills with page-aligned writes (fast,
    #: deterministic valid fraction); "vdi" replays a synthetic VDI
    #: write stream like the paper's warm-up trace
    #: (additional-02...LUN6), which also pre-fragments sub-page mapping
    #: tables and seeds across-page areas.  With "vdi" the valid
    #: fraction is emergent.
    aging_style: str = "aligned"
    #: Seed for any randomness inside the run (aging fill pattern).
    seed: int = 42
    #: When True the engine keeps a sector-version oracle and verifies
    #: every read against it (tests); costs memory and time.
    check_oracle: bool = False
    #: Collect per-request latency samples (needed for latency metrics).
    record_latencies: bool = True
    #: Keep a full per-request event log (time, op, class, latency,
    #: induced flushes) for tail-latency analysis; costs memory.
    record_requests: bool = False
    #: Append end-of-run wear statistics (per-block erase distribution:
    #: mean/std/max/Gini, :mod:`repro.flash.wear`) to ``report.extra``.
    #: Off by default so existing report digests stay byte-identical;
    #: the ``repro endure`` sweeps turn it on.
    record_wear: bool = False
    #: Take a counter snapshot every N requests (0 = off): feeds the
    #: metric-over-time series of repro.metrics.series.
    snapshot_every: int = 0
    #: Host queue depth (NCQ): at most this many requests outstanding;
    #: later arrivals wait in the host queue (their latency includes the
    #: wait).  None = unlimited (the default, matching SSDsim replay).
    queue_depth: int | None = None
    #: Per-stream QoS boundaries (strictly increasing sector offsets).
    #: When non-empty the LBA space is split into ``len+1`` streams —
    #: stream *i* covers ``[boundaries[i-1], boundaries[i])`` — and the
    #: report gains a ``streams`` section with per-stream request
    #: counts and latency sketches.  The fleet layer
    #: (:mod:`repro.fleet`) uses this to recover per-tenant QoS from a
    #: single shard run.  Empty (the default) keeps report digests
    #: byte-identical to runs that never had the feature.
    qos_streams: tuple[int, ...] = ()
    #: Instrumentation (event bus / spans / samplers); off by default.
    observability: ObservabilityConfig = field(
        default_factory=ObservabilityConfig
    )
    #: Media-fault injection (:mod:`repro.faults`); off by default.
    faults: FaultConfig = field(default_factory=FaultConfig)
    #: Runtime invariant checking (:mod:`repro.check`); off by default.
    check: CheckConfig = field(default_factory=CheckConfig)
    #: Event-driven frontend (:mod:`repro.sim.frontend`); off by
    #: default — the legacy sequential replay loop stays bit-identical.
    frontend: FrontendConfig = field(default_factory=FrontendConfig)
    #: Batched/vectorised replay kernels (:mod:`repro.sim.kernels`);
    #: off by default — opt-in, output bit-identical by contract.
    batch: BatchConfig = field(default_factory=BatchConfig)
    #: Print a throttled progress line (requests/s, % done, ETA) to
    #: stderr during the replay loop (``--progress`` on the CLI).
    progress: bool = False

    def __post_init__(self) -> None:
        # JSON round trips (shrink reproducers, serve requests) hand the
        # boundaries back as a list; normalise so equality and hashing
        # behave regardless of the source.
        object.__setattr__(self, "qos_streams", tuple(self.qos_streams))

    def validate(self) -> None:
        """Raise :class:`ConfigError` on inconsistent run options."""
        if not (0.0 <= self.aged_used <= 0.98):
            raise ConfigError("aged_used must be in [0, 0.98]")
        if not (0.0 <= self.aged_valid <= self.aged_used or self.aged_used == 0.0):
            raise ConfigError("aged_valid must be in [0, aged_used]")
        if self.aging_style not in ("aligned", "vdi"):
            raise ConfigError(f"unknown aging_style {self.aging_style!r}")
        if self.queue_depth is not None and self.queue_depth <= 0:
            raise ConfigError("queue_depth must be positive or None")
        if self.snapshot_every < 0:
            raise ConfigError("snapshot_every must be non-negative")
        prev = 0
        for b in self.qos_streams:
            if not isinstance(b, int) or b <= prev:
                raise ConfigError(
                    "qos_streams must be strictly increasing positive "
                    f"sector offsets, got {self.qos_streams!r}"
                )
            prev = b
        self.observability.validate()
        self.faults.validate()
        self.check.validate()
        self.frontend.validate()
        self.batch.validate()

    @classmethod
    def paper_aging(cls, **kw) -> "SimConfig":
        """Paper §4.1 aging: 90% of capacity used, 39.8% valid."""
        return cls(aged_used=0.90, aged_valid=0.398, **kw)

    def replace_observability(self, **kw) -> "SimConfig":
        """Copy with observability-field overrides (validated)."""
        obs = dataclasses.replace(self.observability, **kw)
        cfg = replace(self, observability=obs)
        cfg.validate()
        return cfg

    def replace_faults(self, **kw) -> "SimConfig":
        """Copy with fault-field overrides (validated)."""
        faults = dataclasses.replace(self.faults, **kw)
        cfg = replace(self, faults=faults)
        cfg.validate()
        return cfg

    def replace_check(self, **kw) -> "SimConfig":
        """Copy with invariant-checking overrides (validated)."""
        check = dataclasses.replace(self.check, **kw)
        cfg = replace(self, check=check)
        cfg.validate()
        return cfg

    def replace_frontend(self, **kw) -> "SimConfig":
        """Copy with frontend-field overrides (validated)."""
        frontend = dataclasses.replace(self.frontend, **kw)
        cfg = replace(self, frontend=frontend)
        cfg.validate()
        return cfg

    def replace_batch(self, **kw) -> "SimConfig":
        """Copy with batch-kernel overrides (validated)."""
        batch = dataclasses.replace(self.batch, **kw)
        cfg = replace(self, batch=batch)
        cfg.validate()
        return cfg


SCHEMES = ("ftl", "mrsm", "across")
"""Canonical identifiers of the three compared FTL schemes."""
