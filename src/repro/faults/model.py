"""The RBER curve and the seed-driven fault injector.

Model
-----
Raw bit-error rate of a page is a function of its block's lifetime
erase count (P/E cycles, read straight off the
:class:`~repro.flash.array.FlashArray` wear counters) and of the data's
retention age::

    rber = rber_base * (1 + pe / pe_cycle_scale) ** pe_exponent
                     * (1 + age_ms / retention_scale_ms)

A page read draws ``Poisson(rber * page_bits)`` raw bit errors.  Up to
``ecc_bits`` of them are corrected for free; beyond that the controller
walks a retry table — each step re-reads with shifted thresholds,
keeps only a ``retry_error_factor`` fraction of the errors, and costs
``timing.read_retry_ms * step`` extra chip time.  Errors surviving
``max_read_retries`` steps are *uncorrectable*.

Programs and erases fail with base probabilities scaled by the same
wear factor; the consequences (in-place reprogram charges, bad-block
retirement, relocation of valid data) live in
:class:`~repro.flash.service.FlashService` and
:class:`~repro.ftl.gc.GarbageCollector` — this module only decides
*what* happens, deterministically.

Determinism
-----------
One ``numpy`` Generator seeded from ``FaultConfig.seed`` is consumed
in flash-operation order.  Untimed operations (device aging,
background translation-page write-back) never consult the injector, so
the measured-run draw sequence depends only on the trace and configs —
the property behind the ``--jobs 1`` vs ``--jobs 4`` bit-identical
guarantee (see ``tests/test_faults.py``).
"""

from __future__ import annotations

import numpy as np

from ..config import FaultConfig, SSDConfig
from ..flash.array import FlashArray


def raw_bit_error_rate(
    fcfg: FaultConfig, pe_cycles: float, age_ms: float = 0.0
) -> float:
    """RBER of a page on a block with ``pe_cycles`` erases whose data
    is ``age_ms`` of simulated time old.

    >>> from repro.config import FaultConfig
    >>> fc = FaultConfig(rber_base=1e-5, pe_cycle_scale=500, pe_exponent=2)
    >>> raw_bit_error_rate(fc, 0)
    1e-05
    >>> raw_bit_error_rate(fc, 500) == 4e-05   # (1 + 1)**2 wear factor
    True
    """
    wear = (1.0 + pe_cycles / fcfg.pe_cycle_scale) ** fcfg.pe_exponent
    retention = 1.0 + max(0.0, age_ms) / fcfg.retention_scale_ms
    return fcfg.rber_base * wear * retention


def read_retry_steps(fcfg: FaultConfig, raw_errors: int) -> tuple[int, bool]:
    """Retry steps needed to correct ``raw_errors`` raw bit errors.

    Returns ``(steps, uncorrectable)``: 0 steps when the ECC budget
    already covers the errors; each step keeps
    ``retry_error_factor`` of the remaining errors; ``uncorrectable``
    when ``max_read_retries`` steps still leave more than ``ecc_bits``.

    >>> from repro.config import FaultConfig
    >>> fc = FaultConfig(ecc_bits=64, retry_error_factor=0.5,
    ...                  max_read_retries=5)
    >>> read_retry_steps(fc, 10)
    (0, False)
    >>> read_retry_steps(fc, 200)      # 200 -> 100 -> 50: two steps
    (2, False)
    >>> read_retry_steps(fc, 10_000)   # beyond the whole retry table
    (5, True)
    """
    errors = raw_errors
    steps = 0
    while errors > fcfg.ecc_bits and steps < fcfg.max_read_retries:
        steps += 1
        errors = int(errors * fcfg.retry_error_factor)
    return steps, errors > fcfg.ecc_bits


class FaultInjector:
    """Per-run deterministic fault source for one device.

    Owned by the engine (built when ``SimConfig.faults.enabled``) and
    installed on the device's :class:`~repro.flash.service.FlashService`
    as its ``faults`` reference.  Holds the per-page program timestamps
    (the retention clock) and the per-block program-failure tallies
    (the bad-block detection input); the flash array keeps physical
    truth (page states, erase counts, retired blocks).
    """

    def __init__(self, cfg: SSDConfig, fcfg: FaultConfig, array: FlashArray):
        fcfg.validate()
        self.cfg = fcfg
        self.array = array
        self.page_bits = cfg.page_size_bytes * 8
        self.pages_per_block = cfg.pages_per_block
        self.rng = np.random.default_rng(fcfg.seed)
        #: simulated-ms timestamp of each page's last program; pages
        #: written before injection was active (aging) read as age
        #: ``now``, i.e. maximally retention-stressed — aged data *is*
        #: old data.
        self.program_time = np.zeros(cfg.num_pages, dtype=np.float64)
        #: lifetime program failures per block (bad-block detection)
        self.program_fail_count = np.zeros(cfg.num_blocks, dtype=np.int32)
        #: draws consumed (diagnostic; equal runs consume equally)
        self.draws = 0

    # ------------------------------------------------------------------
    def _wear(self, block: int) -> float:
        pe = float(self.array.erase_count[block])
        return (1.0 + pe / self.cfg.pe_cycle_scale) ** self.cfg.pe_exponent

    def rber(self, ppn: int, now: float) -> float:
        """Current RBER of ``ppn`` (wear x retention)."""
        block = ppn // self.pages_per_block
        age = max(0.0, now - float(self.program_time[ppn]))
        return raw_bit_error_rate(
            self.cfg, float(self.array.erase_count[block]), age
        )

    # ------------------------------------------------------------------
    # per-operation outcomes (each consumes the RNG exactly once)
    # ------------------------------------------------------------------
    def read_outcome(self, ppn: int, now: float) -> tuple[int, bool]:
        """Fault outcome of reading ``ppn``: (retry steps, uncorrectable)."""
        lam = self.rber(ppn, now) * self.page_bits
        self.draws += 1
        raw_errors = int(self.rng.poisson(lam))
        return read_retry_steps(self.cfg, raw_errors)

    def program_attempts(self, ppn: int) -> tuple[int, int]:
        """Attempts needed to program ``ppn``: (attempts, failures).

        ``attempts`` is at least 1 and at most
        ``max_program_retries + 1``; ``failures == attempts - 1``
        unless even the last attempt failed (the hard-fail case), where
        ``failures == attempts``.
        """
        block = ppn // self.pages_per_block
        p = min(1.0, self.cfg.program_fail_prob * self._wear(block))
        failures = 0
        while failures <= self.cfg.max_program_retries:
            self.draws += 1
            if self.rng.random() >= p:
                break
            failures += 1
        attempts = min(failures + 1, self.cfg.max_program_retries + 1)
        return attempts, failures

    def erase_fails(self, block: int) -> bool:
        """True when this erase of ``block`` fails (block must retire)."""
        p = min(1.0, self.cfg.erase_fail_prob * self._wear(block))
        self.draws += 1
        return bool(self.rng.random() < p)

    # ------------------------------------------------------------------
    # bookkeeping hooks
    # ------------------------------------------------------------------
    def note_program(self, ppn: int, now: float) -> None:
        """Record a successful program (resets the retention clock)."""
        self.program_time[ppn] = now

    def note_program_failures(self, ppn: int, failures: int) -> bool:
        """Tally ``failures`` on the page's block; True when the block
        has crossed the retirement threshold."""
        block = ppn // self.pages_per_block
        self.program_fail_count[block] += failures
        return (
            self.program_fail_count[block]
            >= self.cfg.retire_after_program_fails
        )
