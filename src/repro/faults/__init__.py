"""Deterministic media-fault injection and reliability modelling.

The paper evaluates Across-FTL on a fault-free SSD model; this package
adds the reliability layer a real device lives with, so the headline
lifetime argument (Fig. 11 erase counts) can be carried through to
media behaviour: a raw bit-error-rate curve driven by per-block P/E
cycles and retention age, an ECC budget per page, escalating read-retry
steps, program/erase failure injection, and bad-block detection with
graceful degradation (valid data — including across-page areas — is
relocated and the block leaves the free pool, shrinking
over-provisioning and feeding back into GC pressure).

Everything is **off by default** and seed-driven: the injection points
in :class:`~repro.flash.service.FlashService` hold a ``faults``
reference that stays ``None`` unless ``SimConfig.faults.enabled`` is
set, so a normal run pays one branch per flash operation; with a fixed
``FaultConfig.seed`` the fault sequence — and therefore the whole
report — is bit-identical across repeats and ``--jobs`` fan-out.

See ``docs/reliability.md`` for the model, knobs and worked example,
``repro faults --help`` for the CLI sweep, and
``examples/reliability_study.py`` for an end-to-end integrity check
under injected block failures.
"""

from __future__ import annotations

from .model import FaultInjector, raw_bit_error_rate, read_retry_steps

__all__ = [
    "FaultInjector",
    "raw_bit_error_rate",
    "read_retry_steps",
]
