"""Per-request event log.

When enabled (``SimConfig.record_requests``), the engine appends one
row per serviced request — reads, writes *and* TRIMs (a TRIM row
carries ``flush = 0``: discards never induce flash programs): arrival
time, op, across-page flag, latency, and the flash programs the
request induced.  The arrays support the analyses the paper's figures
summarise — per-class percentiles (Fig. 4), latency-over-time, burst
drain behaviour — without re-running the simulation.  (The aggregate
:class:`~repro.metrics.latency.LatencyRecorder` buckets, by contrast,
cover read/write requests only.)
"""

from __future__ import annotations

import numpy as np


class RequestLog:
    """Columnar per-request log with amortised O(1) appends."""

    __slots__ = (
        "_time", "_op", "_across", "_latency", "_flush", "_offset", "_n"
    )

    def __init__(self, capacity: int = 4096):
        self._time = np.empty(capacity, dtype=np.float64)
        self._op = np.empty(capacity, dtype=np.uint8)
        self._across = np.empty(capacity, dtype=bool)
        self._latency = np.empty(capacity, dtype=np.float64)
        self._flush = np.empty(capacity, dtype=np.int32)
        self._offset = np.empty(capacity, dtype=np.int64)
        self._n = 0

    def append(
        self,
        time: float,
        op: int,
        across: bool,
        latency: float,
        flush: int,
        offset: int = 0,
    ) -> None:
        """Record one serviced request."""
        if self._n == len(self._time):
            new = self._n * 2
            self._time = np.resize(self._time, new)
            self._op = np.resize(self._op, new)
            self._across = np.resize(self._across, new)
            self._latency = np.resize(self._latency, new)
            self._flush = np.resize(self._flush, new)
            self._offset = np.resize(self._offset, new)
        i = self._n
        self._time[i] = time
        self._op[i] = op
        self._across[i] = across
        self._latency[i] = latency
        self._flush[i] = flush
        self._offset[i] = offset
        self._n += 1

    def __len__(self) -> int:
        return self._n

    # -- column views ----------------------------------------------------
    @property
    def time(self) -> np.ndarray:
        return self._time[: self._n]

    @property
    def op(self) -> np.ndarray:
        return self._op[: self._n]

    @property
    def across(self) -> np.ndarray:
        return self._across[: self._n]

    @property
    def latency(self) -> np.ndarray:
        return self._latency[: self._n]

    @property
    def flush(self) -> np.ndarray:
        return self._flush[: self._n]

    @property
    def offset(self) -> np.ndarray:
        return self._offset[: self._n]

    # -- analyses ----------------------------------------------------------
    def percentile(
        self, q: float, *, op: int | None = None, across: bool | None = None
    ) -> float:
        """Latency percentile, optionally filtered by op and class."""
        lat = self.latency
        mask = np.ones(len(lat), dtype=bool)
        if op is not None:
            mask &= self.op == op
        if across is not None:
            mask &= self.across == across
        sel = lat[mask]
        return float(np.percentile(sel, q)) if len(sel) else 0.0

    def latency_series(self, bucket_ms: float) -> tuple[np.ndarray, np.ndarray]:
        """(bucket start times, mean latency per bucket) — latency over
        time, e.g. to see burst drain behaviour."""
        if self._n == 0 or bucket_ms <= 0:
            return np.empty(0), np.empty(0)
        t = self.time
        # bucket against the earliest time, not t[0]: real blktrace /
        # SYSTOR captures can be non-monotonic, and a negative index
        # would crash np.bincount (or silently alias a wrong bucket)
        t0 = float(t.min())
        buckets = ((t - t0) // bucket_ms).astype(np.int64)
        n_buckets = int(buckets.max()) + 1
        sums = np.bincount(buckets, weights=self.latency, minlength=n_buckets)
        counts = np.bincount(buckets, minlength=n_buckets)
        valid = counts > 0
        starts = t0 + np.arange(n_buckets)[valid] * bucket_ms
        return starts, sums[valid] / counts[valid]

    def tail_ratio(self, q: float = 99.0) -> float:
        """pXX / median — the long-tail indicator GC pressure drives."""
        p50 = self.percentile(50.0)
        if p50 <= 0:
            return 0.0
        return self.percentile(q) / p50
