"""Flash-operation and DRAM-access counters.

The paper's Figures 10-12 are built from exactly these counts: flash
reads and writes split into *Data* (user payload) and *Map* (mapping
table pages spilled to / fetched from flash), erase counts (Fig. 11),
and DRAM access counts (Fig. 12b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class OpKind(str, Enum):
    """Why a flash operation happened — the Data/Map/GC split."""

    DATA = "data"       # user payload I/O
    MAP = "map"         # mapping-table page I/O (CMT miss/evict)
    GC = "gc"           # valid-page migration during garbage collection
    AGING = "aging"     # device pre-conditioning (excluded from results)


@dataclass
class FlashOpCounters:
    """Mutable tally of every flash and DRAM operation in a run."""

    reads: dict[OpKind, int] = field(
        default_factory=lambda: {k: 0 for k in OpKind}
    )
    writes: dict[OpKind, int] = field(
        default_factory=lambda: {k: 0 for k in OpKind}
    )
    erases: int = 0
    aging_erases: int = 0
    #: DRAM mapping-structure accesses (Fig. 12b).
    dram_accesses: int = 0
    #: Write-buffer hits that avoided a flash read.
    cache_hits: int = 0
    #: Flash reads performed only to complete a read-modify-write of a
    #: partial page update (the update-induced reads of §4.2.2).
    update_reads: int = 0
    #: Flash reads performed by Across-FTL merged reads (§4.2.1).
    merged_reads: int = 0
    #: GC passes that found no victim able to free a block — the plane
    #: is starved and a later allocation will fail; surfaced so runs
    #: show the stall where it happens rather than dying downstream.
    gc_stalls: int = 0
    # -- media reliability (repro.faults; all zero when disabled) -------
    #: read-retry steps walked because raw bit errors exceeded the ECC
    #: budget (each step also cost chip time).
    read_retries: int = 0
    #: reads whose errors survived the whole retry table (data returned
    #: anyway unless ``FaultConfig.halt_on_uncorrectable``).
    uncorrectable_reads: int = 0
    #: program-status failures absorbed by in-place reprogram attempts.
    program_fails: int = 0
    #: erase-status failures (each retires the block on the spot).
    erase_fails: int = 0
    #: blocks retired as bad (lost over-provisioning).
    bad_blocks: int = 0
    #: valid pages relocated off blocks headed for retirement (the
    #: bad-block remapping traffic, also counted under OpKind.GC).
    fault_relocations: int = 0
    # -- GC policy zoo (all zero under the default greedy policy) --------
    #: bounded collection slices run by a partial GC policy.
    gc_slices: int = 0
    #: partial-GC slices that left the victim un-erased (valid pages
    #: deferred to a later slice — the request-aware deferral of
    #: preemptive GC).
    gc_deferrals: int = 0
    #: cold blocks migrated by wear levelling (dual-pool policy).
    wear_migrations: int = 0
    #: running totals of measured (non-aging) ops, kept in lock-step
    #: with the per-kind dicts so :attr:`total_reads`/:attr:`total_writes`
    #: are O(1) — the engine consults them on every request.
    _measured_reads: int = field(
        default=0, init=False, repr=False, compare=False
    )
    _measured_writes: int = field(
        default=0, init=False, repr=False, compare=False
    )

    # -- increments ------------------------------------------------------
    def count_read(self, kind: OpKind, n: int = 1) -> None:
        """Tally ``n`` flash page reads of the given kind."""
        self.reads[kind] += n
        if kind is not OpKind.AGING:
            self._measured_reads += n

    def count_write(self, kind: OpKind, n: int = 1) -> None:
        """Tally ``n`` flash page programs of the given kind."""
        self.writes[kind] += n
        if kind is not OpKind.AGING:
            self._measured_writes += n

    def count_erase(self, aging: bool = False) -> None:
        """Tally one block erase (aging erases are kept separate)."""
        if aging:
            self.aging_erases += 1
        else:
            self.erases += 1

    def count_dram(self, n: int = 1) -> None:
        """Tally ``n`` DRAM mapping-structure touches (Fig. 12b)."""
        self.dram_accesses += n

    # -- aggregates ------------------------------------------------------
    @property
    def data_reads(self) -> int:
        return self.reads[OpKind.DATA]

    @property
    def data_writes(self) -> int:
        return self.writes[OpKind.DATA]

    @property
    def map_reads(self) -> int:
        return self.reads[OpKind.MAP]

    @property
    def map_writes(self) -> int:
        return self.writes[OpKind.MAP]

    @property
    def gc_reads(self) -> int:
        return self.reads[OpKind.GC]

    @property
    def gc_writes(self) -> int:
        return self.writes[OpKind.GC]

    def _retally(self) -> None:
        """Resync the running totals after direct dict assignment."""
        self._measured_reads = sum(
            v for k, v in self.reads.items() if k is not OpKind.AGING
        )
        self._measured_writes = sum(
            v for k, v in self.writes.items() if k is not OpKind.AGING
        )

    @property
    def total_reads(self) -> int:
        """All measured flash reads (aging excluded)."""
        return self._measured_reads

    @property
    def total_writes(self) -> int:
        """All measured flash writes (aging excluded)."""
        return self._measured_writes

    def map_write_share(self) -> float:
        """Fraction of flash writes that are mapping-table writes
        (paper reports 36.9% for MRSM, 2.6% for Across-FTL)."""
        t = self.total_writes
        return self.map_writes / t if t else 0.0

    def map_read_share(self) -> float:
        """Fraction of flash reads that are mapping-table reads
        (paper reports 34.4% for MRSM, 0.74% for Across-FTL)."""
        t = self.total_reads
        return self.map_reads / t if t else 0.0

    def snapshot(self) -> dict:
        """Plain-dict copy for reports / JSON.

        The per-kind splits (``reads_by_kind``/``writes_by_kind``) carry
        the full counter state, so :meth:`from_snapshot` can rebuild an
        equal instance; the flat aggregates stay for readability and
        backward compatibility of archived sweeps.  Policy-zoo tallies
        (``gc_slices``/``gc_deferrals``/``wear_migrations``) appear only
        when nonzero: the default greedy policy never touches them, and
        omitting the keys keeps default-run report digests byte-stable.
        """
        out = {
            "data_reads": self.data_reads,
            "data_writes": self.data_writes,
            "map_reads": self.map_reads,
            "map_writes": self.map_writes,
            "gc_reads": self.gc_reads,
            "gc_writes": self.gc_writes,
            "total_reads": self.total_reads,
            "total_writes": self.total_writes,
            "erases": self.erases,
            "dram_accesses": self.dram_accesses,
            "cache_hits": self.cache_hits,
            "update_reads": self.update_reads,
            "merged_reads": self.merged_reads,
            "gc_stalls": self.gc_stalls,
            "read_retries": self.read_retries,
            "uncorrectable_reads": self.uncorrectable_reads,
            "program_fails": self.program_fails,
            "erase_fails": self.erase_fails,
            "bad_blocks": self.bad_blocks,
            "fault_relocations": self.fault_relocations,
            "aging_erases": self.aging_erases,
            "reads_by_kind": {k.value: v for k, v in self.reads.items()},
            "writes_by_kind": {k.value: v for k, v in self.writes.items()},
        }
        if self.gc_slices:
            out["gc_slices"] = self.gc_slices
        if self.gc_deferrals:
            out["gc_deferrals"] = self.gc_deferrals
        if self.wear_migrations:
            out["wear_migrations"] = self.wear_migrations
        return out

    @classmethod
    def from_snapshot(cls, d: dict) -> "FlashOpCounters":
        """Rebuild counters from a :meth:`snapshot` dict (round trip)."""
        out = cls()
        by_read = d.get("reads_by_kind")
        by_write = d.get("writes_by_kind")
        if by_read is not None and by_write is not None:
            out.reads = {k: int(by_read.get(k.value, 0)) for k in OpKind}
            out.writes = {k: int(by_write.get(k.value, 0)) for k in OpKind}
        else:  # legacy archive without the per-kind splits
            out.reads[OpKind.DATA] = int(d.get("data_reads", 0))
            out.reads[OpKind.MAP] = int(d.get("map_reads", 0))
            out.reads[OpKind.GC] = int(d.get("gc_reads", 0))
            out.writes[OpKind.DATA] = int(d.get("data_writes", 0))
            out.writes[OpKind.MAP] = int(d.get("map_writes", 0))
            out.writes[OpKind.GC] = int(d.get("gc_writes", 0))
        out._retally()
        out.erases = int(d.get("erases", 0))
        out.aging_erases = int(d.get("aging_erases", 0))
        out.dram_accesses = int(d.get("dram_accesses", 0))
        out.cache_hits = int(d.get("cache_hits", 0))
        out.update_reads = int(d.get("update_reads", 0))
        out.merged_reads = int(d.get("merged_reads", 0))
        out.gc_stalls = int(d.get("gc_stalls", 0))
        out.read_retries = int(d.get("read_retries", 0))
        out.uncorrectable_reads = int(d.get("uncorrectable_reads", 0))
        out.program_fails = int(d.get("program_fails", 0))
        out.erase_fails = int(d.get("erase_fails", 0))
        out.bad_blocks = int(d.get("bad_blocks", 0))
        out.fault_relocations = int(d.get("fault_relocations", 0))
        out.gc_slices = int(d.get("gc_slices", 0))
        out.gc_deferrals = int(d.get("gc_deferrals", 0))
        out.wear_migrations = int(d.get("wear_migrations", 0))
        return out

    def merged_with(self, other: "FlashOpCounters") -> "FlashOpCounters":
        """Element-wise sum (used when aggregating multi-trace runs)."""
        out = FlashOpCounters()
        for k in OpKind:
            out.reads[k] = self.reads[k] + other.reads[k]
            out.writes[k] = self.writes[k] + other.writes[k]
        out._retally()
        out.erases = self.erases + other.erases
        out.aging_erases = self.aging_erases + other.aging_erases
        out.dram_accesses = self.dram_accesses + other.dram_accesses
        out.cache_hits = self.cache_hits + other.cache_hits
        out.update_reads = self.update_reads + other.update_reads
        out.merged_reads = self.merged_reads + other.merged_reads
        out.gc_stalls = self.gc_stalls + other.gc_stalls
        out.read_retries = self.read_retries + other.read_retries
        out.uncorrectable_reads = (
            self.uncorrectable_reads + other.uncorrectable_reads
        )
        out.program_fails = self.program_fails + other.program_fails
        out.erase_fails = self.erase_fails + other.erase_fails
        out.bad_blocks = self.bad_blocks + other.bad_blocks
        out.fault_relocations = (
            self.fault_relocations + other.fault_relocations
        )
        out.gc_slices = self.gc_slices + other.gc_slices
        out.gc_deferrals = self.gc_deferrals + other.gc_deferrals
        out.wear_migrations = self.wear_migrations + other.wear_migrations
        return out
