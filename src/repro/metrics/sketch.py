"""Bounded-memory log-bucketed latency histograms (HDR-style sketch).

:class:`LogHistogram` records latency samples into geometrically spaced
buckets: bucket ``i`` covers ``[min_value * growth**i,
min_value * growth**(i+1))``.  Memory is bounded by the number of
*distinct occupied* buckets (a sparse dict), not the sample count, so a
million-request run costs a few hundred integers while still answering
p50/p95/p99/p99.9 queries.

Accuracy: a quantile estimate is the geometric midpoint of its bucket,
so the relative error is at most ``sqrt(growth) - 1`` (~2% at the
default ``growth = 1.04``) and always within one bucket (< 5% relative)
of the exact sample — the bound the attribution acceptance tests
verify against exact numpy percentiles.

Everything is deterministic and insertion-order independent:
``to_dict``/``from_dict`` round-trip through JSON (bucket keys are
stringified for JSON object compatibility) and two sketches fed the
same multiset of samples compare equal.
"""

from __future__ import annotations

import math
from typing import Iterable


class LogHistogram:
    """Sparse logarithmic histogram over non-negative latencies (ms)."""

    __slots__ = ("min_value", "growth", "_log_growth", "buckets",
                 "zero_count", "count", "total")

    def __init__(self, min_value: float = 1e-4, growth: float = 1.04):
        if min_value <= 0:
            raise ValueError("min_value must be positive")
        if growth <= 1.0:
            raise ValueError("growth must be > 1")
        self.min_value = min_value
        self.growth = growth
        self._log_growth = math.log(growth)
        #: bucket index -> sample count (sparse)
        self.buckets: dict[int, int] = {}
        #: samples below ``min_value`` (including exact zeros)
        self.zero_count = 0
        self.count = 0
        self.total = 0.0

    # ------------------------------------------------------------------
    def _index(self, value: float) -> int:
        return int(math.log(value / self.min_value) / self._log_growth)

    def _bucket_lo(self, index: int) -> float:
        return self.min_value * self.growth ** index

    def add(self, value: float, n: int = 1) -> None:
        """Record ``value`` (ms) ``n`` times; negatives are clamped to
        the zero bucket (attribution phases can round to -0.0)."""
        self.count += n
        if value > 0:
            self.total += value * n
        if value < self.min_value:
            self.zero_count += n
            return
        i = self._index(value)
        self.buckets[i] = self.buckets.get(i, 0) + n

    def extend(self, values: Iterable[float]) -> None:
        """Add every value in ``values`` with weight 1."""
        for v in values:
            self.add(v)

    def merge(self, other: "LogHistogram") -> None:
        """Fold another sketch with identical parameters into this one."""
        if (other.min_value, other.growth) != (self.min_value, self.growth):
            raise ValueError("cannot merge sketches with different buckets")
        self.count += other.count
        self.total += other.total
        self.zero_count += other.zero_count
        for i, n in other.buckets.items():
            self.buckets[i] = self.buckets.get(i, 0) + n

    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0 <= q <= 1).

        Returns the geometric midpoint of the bucket holding the
        ``ceil(q * count)``-th smallest sample: relative error at most
        ``sqrt(growth) - 1`` against the true sample value.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        if rank <= self.zero_count:
            return 0.0
        seen = self.zero_count
        last = 0
        for i in sorted(self.buckets):
            seen += self.buckets[i]
            last = i
            if seen >= rank:
                break
        lo = self._bucket_lo(last)
        return lo * math.sqrt(self.growth)

    def quantiles(self, qs=(0.5, 0.95, 0.99, 0.999)) -> dict[str, float]:
        """The standard tail summary: ``{"p50": ..., ..., "p99.9": ...}``."""
        out = {}
        for q in qs:
            pct = q * 100.0
            name = f"p{pct:g}"
            out[name] = self.quantile(q)
        return out

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serialisable dump (bucket keys stringified)."""
        return {
            "min_value": self.min_value,
            "growth": self.growth,
            "count": self.count,
            "total": self.total,
            "zero_count": self.zero_count,
            "buckets": {str(i): n for i, n in sorted(self.buckets.items())},
        }

    @classmethod
    def from_dict(cls, d: dict) -> "LogHistogram":
        """Rebuild a sketch from :meth:`to_dict` output (round trip)."""
        h = cls(
            min_value=float(d.get("min_value", 1e-4)),
            growth=float(d.get("growth", 1.04)),
        )
        h.count = int(d.get("count", 0))
        h.total = float(d.get("total", 0.0))
        h.zero_count = int(d.get("zero_count", 0))
        h.buckets = {int(k): int(v) for k, v in d.get("buckets", {}).items()}
        return h

    def __eq__(self, other) -> bool:
        if not isinstance(other, LogHistogram):
            return NotImplemented
        return (
            self.min_value == other.min_value
            and self.growth == other.growth
            and self.count == other.count
            and self.zero_count == other.zero_count
            and self.buckets == other.buckets
        )

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return (
            f"LogHistogram(count={self.count}, "
            f"occupied_buckets={len(self.buckets)}, mean={self.mean:.4f})"
        )

    # ------------------------------------------------------------------
    def bucket_bounds(self) -> list[tuple[float, float, int]]:
        """Occupied buckets as ``(lo_ms, hi_ms, count)`` in order
        (Prometheus exposition and plotting input)."""
        out = []
        if self.zero_count:
            out.append((0.0, self.min_value, self.zero_count))
        for i in sorted(self.buckets):
            out.append(
                (self._bucket_lo(i), self._bucket_lo(i + 1), self.buckets[i])
            )
        return out
