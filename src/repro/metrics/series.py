"""Periodic counter snapshots: metric-over-time series.

With ``SimConfig.snapshot_every`` set, the engine records a counter
snapshot every N requests.  :class:`CounterSeries` turns those into the
time series a study needs — write amplification over time, GC activity,
erase accumulation — without per-request logging overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .counters import FlashOpCounters


@dataclass
class Snapshot:
    """Counter state after ``requests`` serviced, at trace time ``t_ms``."""

    requests: int
    t_ms: float
    data_writes: int
    gc_writes: int
    map_writes: int
    total_reads: int
    erases: int

    @classmethod
    def capture(
        cls, requests: int, t_ms: float, counters: FlashOpCounters
    ) -> "Snapshot":
        """Freeze the counters' current values."""
        return cls(
            requests=requests,
            t_ms=t_ms,
            data_writes=counters.data_writes,
            gc_writes=counters.gc_writes,
            map_writes=counters.map_writes,
            total_reads=counters.total_reads,
            erases=counters.erases,
        )


@dataclass
class CounterSeries:
    """Ordered snapshots plus derived per-interval series."""

    snapshots: list[Snapshot] = field(default_factory=list)

    def append(self, snap: Snapshot) -> None:
        """Add the next snapshot (must be monotone in requests)."""
        self.snapshots.append(snap)

    def __len__(self) -> int:
        return len(self.snapshots)

    # -- raw columns -----------------------------------------------------
    def column(self, name: str) -> np.ndarray:
        """One snapshot field as an array."""
        return np.array([getattr(s, name) for s in self.snapshots], dtype=float)

    # -- derived series ---------------------------------------------------
    def interval_write_amplification(self) -> np.ndarray:
        """(data+gc+map writes) / data writes, per snapshot interval.

        The series starts near 1 on a fresh device and climbs as GC
        engages — the onset is visible as the knee.
        """
        total = (
            self.column("data_writes")
            + self.column("gc_writes")
            + self.column("map_writes")
        )
        data = self.column("data_writes")
        d_total = np.diff(total, prepend=0.0)
        d_data = np.diff(data, prepend=0.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            waf = np.where(d_data > 0, d_total / np.maximum(d_data, 1e-12), np.nan)
        return waf

    def interval_erases(self) -> np.ndarray:
        """Erases per snapshot interval (GC activity pulse train)."""
        return np.diff(self.column("erases"), prepend=0.0)

    def cumulative(self, name: str) -> np.ndarray:
        """Cumulative value of a counter column at each snapshot."""
        return self.column(name)

    def gc_onset_request(self) -> int | None:
        """Request count at the first snapshot interval with an erase,
        or None if GC never ran."""
        er = self.interval_erases()
        idx = np.nonzero(er > 0)[0]
        if len(idx) == 0:
            return None
        return int(self.snapshots[int(idx[0])].requests)

    def summary(self) -> dict:
        """Headline scalars of the series."""
        if not self.snapshots:
            return {"snapshots": 0}
        waf = self.interval_write_amplification()
        valid = waf[~np.isnan(waf)]
        return {
            "snapshots": len(self.snapshots),
            "final_erases": self.snapshots[-1].erases,
            "peak_interval_waf": float(valid.max()) if len(valid) else 0.0,
            "mean_interval_waf": float(valid.mean()) if len(valid) else 0.0,
            "gc_onset_request": self.gc_onset_request(),
        }
