"""Measurement infrastructure: flash-operation counters, latency
recording, bounded-memory latency sketches, and report
assembly/normalisation for the paper's figures."""

from .counters import FlashOpCounters, OpKind
from .latency import LatencyRecorder, LatencySummary
from .report import SimulationReport, geomean, normalize, render_table
from .sketch import LogHistogram
from .timeline import RequestLog

__all__ = [
    "FlashOpCounters",
    "OpKind",
    "LatencyRecorder",
    "LatencySummary",
    "LogHistogram",
    "SimulationReport",
    "normalize",
    "geomean",
    "render_table",
    "RequestLog",
]
