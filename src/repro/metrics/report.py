"""Run reports, normalisation and ASCII table rendering.

:class:`SimulationReport` is what :func:`repro.experiments.runner.run_trace`
returns — everything needed to rebuild each paper figure.  The paper
presents results *normalised to the baseline FTL*; :func:`normalize`
implements exactly that, and :func:`render_table` prints the aligned
tables used by the benchmark harness and EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from .counters import FlashOpCounters
from .latency import LatencyRecorder


@dataclass
class SimulationReport:
    """Everything measured in one (trace, scheme) simulation run."""

    scheme: str
    trace_name: str
    requests: int
    counters: FlashOpCounters
    latency: LatencyRecorder
    #: Scheme-specific statistics, e.g. Across-FTL write-class counts
    #: (Fig. 8) or MRSM region metrics.
    extra: dict[str, Any] = field(default_factory=dict)
    #: Mapping-table footprint in bytes (Fig. 12a).
    mapping_table_bytes: int = 0
    wall_seconds: float = 0.0
    #: Latency-attribution aggregate
    #: (:meth:`repro.obs.attribution.AttributionRecorder.summary`):
    #: per-class request counts, per-phase summed ms, tail quantiles and
    #: the serialised :class:`~repro.metrics.sketch.LogHistogram`
    #: sketches.  None unless ``observability.attribution`` was on —
    #: and then absent from :meth:`to_dict` output, so disabled runs
    #: keep byte-identical report digests.
    attribution: dict | None = None
    #: Per-stream QoS summary (``SimConfig.qos_streams``): the stream
    #: boundaries plus, per occupied stream, request counts by op and a
    #: serialised :class:`~repro.metrics.sketch.LogHistogram` latency
    #: sketch.  The fleet layer reads this to recover per-tenant QoS
    #: from a cached shard report.  Same digest discipline as
    #: ``attribution``: None unless the feature was on, and then absent
    #: from :meth:`to_dict` output.
    streams: dict | None = None

    # -- headline metrics used by the figures ----------------------------
    @property
    def total_io_ms(self) -> float:
        """Overall I/O time (Fig. 9c / Fig. 14a)."""
        return self.latency.total_ms

    @property
    def mean_read_ms(self) -> float:
        return self.latency.mean_read_ms

    @property
    def mean_write_ms(self) -> float:
        return self.latency.mean_write_ms

    @property
    def erase_count(self) -> int:
        return self.counters.erases

    @property
    def cache_hits(self) -> int:
        """Write-buffer read hits served at DRAM speed."""
        return self.counters.cache_hits

    @property
    def gc_stalls(self) -> int:
        """GC passes that freed nothing (allocation-starvation precursor)."""
        return self.counters.gc_stalls

    @property
    def read_retries(self) -> int:
        """Read-retry steps walked (zero unless :mod:`repro.faults` on)."""
        return self.counters.read_retries

    @property
    def bad_blocks(self) -> int:
        """Blocks retired as bad (zero unless :mod:`repro.faults` on)."""
        return self.counters.bad_blocks

    def to_dict(self) -> dict:
        """JSON-serialisable dump of the run (for archiving sweeps).

        Carries the *full* state — counters with per-kind splits and the
        per-class latency sample distributions — so :meth:`from_dict`
        rebuilds a report equal to the original and archived sweeps can
        regenerate every figure.  The ``mean_read_ms``/``mean_write_ms``
        convenience keys stay for readers of older archives.
        """
        lat = self.latency
        latency = lat.to_dict()
        latency["mean_read_ms"] = lat.mean_read_ms
        latency["mean_write_ms"] = lat.mean_write_ms
        d = {
            "scheme": self.scheme,
            "trace": self.trace_name,
            "requests": self.requests,
            "counters": self.counters.snapshot(),
            "latency": latency,
            "mapping_table_bytes": self.mapping_table_bytes,
            "extra": {
                k: v
                for k, v in self.extra.items()
                if isinstance(v, (int, float, str, bool))
            },
            "wall_seconds": self.wall_seconds,
        }
        # emitted only when attribution ran: runs with observability
        # off must keep byte-identical dumps (bench-gate digests)
        if self.attribution is not None:
            d["attribution"] = self.attribution
        if self.streams is not None:
            d["streams"] = self.streams
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "SimulationReport":
        """Rebuild a report from :meth:`to_dict` output (round trip)."""
        return cls(
            scheme=d["scheme"],
            trace_name=d["trace"],
            requests=int(d["requests"]),
            counters=FlashOpCounters.from_snapshot(d.get("counters", {})),
            latency=LatencyRecorder.from_dict(d.get("latency", {})),
            extra=dict(d.get("extra", {})),
            mapping_table_bytes=int(d.get("mapping_table_bytes", 0)),
            wall_seconds=float(d.get("wall_seconds", 0.0)),
            attribution=d.get("attribution"),
            streams=d.get("streams"),
        )

    def to_json(self, **kw) -> str:
        """JSON string of :meth:`to_dict` (kwargs go to json.dumps)."""
        import json

        return json.dumps(self.to_dict(), **kw)

    @classmethod
    def from_json(cls, text: str) -> "SimulationReport":
        """Inverse of :meth:`to_json`."""
        import json

        return cls.from_dict(json.loads(text))

    def metric(self, name: str) -> float:
        """Look up a metric by dotted name (used by generic benches)."""
        direct = {
            "total_io_ms": self.total_io_ms,
            "mean_read_ms": self.mean_read_ms,
            "mean_write_ms": self.mean_write_ms,
            "erase_count": float(self.erase_count),
            "flash_reads": float(self.counters.total_reads),
            "flash_writes": float(self.counters.total_writes),
            "map_reads": float(self.counters.map_reads),
            "map_writes": float(self.counters.map_writes),
            "dram_accesses": float(self.counters.dram_accesses),
            "mapping_table_bytes": float(self.mapping_table_bytes),
            "update_reads": float(self.counters.update_reads),
            "cache_hits": float(self.counters.cache_hits),
            "gc_stalls": float(self.counters.gc_stalls),
            "read_retries": float(self.counters.read_retries),
            "uncorrectable_reads": float(self.counters.uncorrectable_reads),
            "program_fails": float(self.counters.program_fails),
            "erase_fails": float(self.counters.erase_fails),
            "bad_blocks": float(self.counters.bad_blocks),
            "fault_relocations": float(self.counters.fault_relocations),
        }
        if name in direct:
            return direct[name]
        if name in self.extra:
            return float(self.extra[name])
        raise KeyError(f"unknown metric {name!r}")


def normalize(
    values: Mapping[str, float], baseline: str = "ftl"
) -> dict[str, float]:
    """Divide every scheme's value by the baseline scheme's value.

    This is the presentation used by Figs. 9, 10, 11, 12b and 14.  A
    zero baseline yields 0 for zero values and ``inf`` otherwise, which
    keeps degenerate unit-test workloads from raising.
    """
    base = values[baseline]
    out = {}
    for k, v in values.items():
        if base == 0:
            out[k] = 0.0 if v == 0 else float("inf")
        else:
            out[k] = v / base
    return out


def render_table(
    title: str,
    columns: Sequence[str],
    rows: Mapping[str, Sequence[Any]],
    float_fmt: str = "{:.3f}",
) -> str:
    """Render an aligned ASCII table.

    ``rows`` maps a row label (e.g. a trace name) to one value per
    column.  Numbers are formatted with ``float_fmt``; everything else
    with ``str``.
    """

    def fmt(v: Any) -> str:
        if isinstance(v, float):
            return float_fmt.format(v)
        return str(v)

    header = [""] + list(columns)
    body = [[label] + [fmt(v) for v in vals] for label, vals in rows.items()]
    widths = [
        max(len(r[i]) for r in [header] + body) for i in range(len(header))
    ]
    lines = [title]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)).rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for r in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)).rstrip())
    return "\n".join(lines)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean, the right average for normalised ratios."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    prod = 1.0
    for v in vals:
        prod *= v
    return prod ** (1.0 / len(vals))
