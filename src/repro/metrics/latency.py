"""Per-request latency recording and summarisation.

Requests are classified the way the paper's motivation study does
(Fig. 4): *across-page* vs *normal*, separately for reads and writes.
Only read and write requests land in these four buckets — TRIMs are
metadata-only operations outside Fig. 4's scope; they are counted by
the engine (``trim_count``) and logged row-by-row in
:class:`~repro.metrics.timeline.RequestLog`.  Latencies are
accumulated in growable numpy buffers so recording a million samples
costs amortised O(1) python work per sample.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class _Samples:
    """Growable float64 sample buffer with paired sector sizes."""

    __slots__ = ("_lat", "_sectors", "_n")

    def __init__(self, capacity: int = 1024):
        self._lat = np.empty(capacity, dtype=np.float64)
        self._sectors = np.empty(capacity, dtype=np.int64)
        self._n = 0

    def append(self, latency_ms: float, sectors: int) -> None:
        if self._n == len(self._lat):
            self._lat = np.resize(self._lat, self._n * 2)
            self._sectors = np.resize(self._sectors, self._n * 2)
        self._lat[self._n] = latency_ms
        self._sectors[self._n] = sectors
        self._n += 1

    @property
    def latencies(self) -> np.ndarray:
        return self._lat[: self._n]

    @property
    def sectors(self) -> np.ndarray:
        return self._sectors[: self._n]

    def __len__(self) -> int:
        return self._n

    @classmethod
    def from_lists(
        cls, latencies: "list[float]", sectors: "list[int]"
    ) -> "_Samples":
        """Rebuild a buffer from plain lists (JSON round trip)."""
        out = cls(capacity=max(1024, len(latencies)))
        n = len(latencies)
        out._lat[:n] = latencies
        out._sectors[:n] = sectors
        out._n = n
        return out


@dataclass(frozen=True)
class LatencySummary:
    """Aggregate statistics for one request class."""

    count: int
    total_ms: float
    mean_ms: float
    p50_ms: float
    p99_ms: float
    max_ms: float
    #: Mean latency divided by mean sector count — the per-sector-size
    #: metric of Fig. 4.
    per_sector_ms: float

    @classmethod
    def empty(cls) -> "LatencySummary":
        return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)


def _summarize(samples: _Samples) -> LatencySummary:
    n = len(samples)
    if n == 0:
        return LatencySummary.empty()
    lat = samples.latencies
    total = float(lat.sum())
    total_sectors = int(samples.sectors.sum())
    return LatencySummary(
        count=n,
        total_ms=total,
        mean_ms=total / n,
        p50_ms=float(np.percentile(lat, 50)),
        p99_ms=float(np.percentile(lat, 99)),
        max_ms=float(lat.max()),
        per_sector_ms=total / total_sectors if total_sectors else 0.0,
    )


class LatencyRecorder:
    """Collects request latencies split by (op, across-page) class."""

    #: class keys
    READ_NORMAL = "read_normal"
    READ_ACROSS = "read_across"
    WRITE_NORMAL = "write_normal"
    WRITE_ACROSS = "write_across"

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._buckets: dict[str, _Samples] = {
            k: _Samples()
            for k in (
                self.READ_NORMAL,
                self.READ_ACROSS,
                self.WRITE_NORMAL,
                self.WRITE_ACROSS,
            )
        }
        # Totals are kept even when sample recording is disabled, so the
        # overall I/O time metric (Fig. 9c) is always available.
        self.total_ms = 0.0
        self.read_ms = 0.0
        self.write_ms = 0.0
        self.read_count = 0
        self.write_count = 0

    def record(
        self, is_write: bool, is_across: bool, latency_ms: float, sectors: int
    ) -> None:
        """Record one completed request."""
        self.total_ms += latency_ms
        if is_write:
            self.write_ms += latency_ms
            self.write_count += 1
        else:
            self.read_ms += latency_ms
            self.read_count += 1
        if not self.enabled:
            return
        if is_write:
            key = self.WRITE_ACROSS if is_across else self.WRITE_NORMAL
        else:
            key = self.READ_ACROSS if is_across else self.READ_NORMAL
        self._buckets[key].append(latency_ms, sectors)

    # -- summaries -------------------------------------------------------
    def summary(self, key: str) -> LatencySummary:
        """Aggregate statistics for one request class."""
        return _summarize(self._buckets[key])

    def summaries(self) -> dict[str, LatencySummary]:
        """Summaries for all four (op, across) classes."""
        return {k: _summarize(s) for k, s in self._buckets.items()}

    @property
    def mean_read_ms(self) -> float:
        return self.read_ms / self.read_count if self.read_count else 0.0

    @property
    def mean_write_ms(self) -> float:
        return self.write_ms / self.write_count if self.write_count else 0.0

    @property
    def request_count(self) -> int:
        return self.read_count + self.write_count

    # -- (de)serialisation -----------------------------------------------
    def to_dict(self) -> dict:
        """Full state — totals *and* per-class sample distributions — so
        an archived run can rebuild every latency summary (Fig. 4 needs
        the per-sector distributions, not just the means)."""
        return {
            "enabled": self.enabled,
            "total_ms": self.total_ms,
            "read_ms": self.read_ms,
            "write_ms": self.write_ms,
            "reads": self.read_count,
            "writes": self.write_count,
            "samples": {
                k: {
                    "latencies": s.latencies.tolist(),
                    "sectors": s.sectors.tolist(),
                }
                for k, s in self._buckets.items()
            },
        }

    @classmethod
    def from_dict(cls, d: dict) -> "LatencyRecorder":
        """Inverse of :meth:`to_dict`."""
        out = cls(enabled=bool(d.get("enabled", True)))
        out.total_ms = float(d.get("total_ms", 0.0))
        out.read_ms = float(d.get("read_ms", 0.0))
        out.write_ms = float(d.get("write_ms", 0.0))
        out.read_count = int(d.get("reads", 0))
        out.write_count = int(d.get("writes", 0))
        for key, payload in d.get("samples", {}).items():
            if key in out._buckets:
                out._buckets[key] = _Samples.from_lists(
                    payload.get("latencies", []), payload.get("sectors", [])
                )
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LatencyRecorder):
            return NotImplemented
        if (
            self.enabled != other.enabled
            or self.total_ms != other.total_ms
            or self.read_ms != other.read_ms
            or self.write_ms != other.write_ms
            or self.read_count != other.read_count
            or self.write_count != other.write_count
        ):
            return False
        for k, s in self._buckets.items():
            o = other._buckets[k]
            if len(s) != len(o):
                return False
            if not (
                np.array_equal(s.latencies, o.latencies)
                and np.array_equal(s.sectors, o.sectors)
            ):
                return False
        return True
