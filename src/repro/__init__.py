"""Across-FTL: re-aligning across-page requests for flash-based SSDs.

A full reproduction of Cai et al., ICPP 2023.  The package contains:

* the SSD simulator substrate (:mod:`repro.flash`, :mod:`repro.sim`) —
  geometry, NAND protocol, chip timing, GC, DRAM caches;
* three FTL schemes (:mod:`repro.ftl`, :mod:`repro.core`) — the
  baseline page-map FTL, the MRSM comparator and the paper's
  Across-FTL;
* trace infrastructure (:mod:`repro.traces`) — SYSTOR'17/MSR parsers
  and the calibrated synthetic VDI workloads;
* the experiment harness (:mod:`repro.experiments`) regenerating every
  table and figure of the paper's evaluation.

Quickstart::

    from repro import SSDConfig, run_trace, generate_trace, SyntheticSpec

    cfg = SSDConfig.bench_default()
    spec = SyntheticSpec("demo", 5_000, 0.6, 0.25, 9.0,
                         footprint_sectors=cfg.logical_sectors // 2)
    trace = generate_trace(spec)
    report = run_trace("across", trace, cfg)
    print(report.mean_write_ms, report.erase_count)
"""

from .check import (
    DifferentialResult,
    FuzzOutcome,
    InvariantChecker,
    ReplayFailure,
    checked_sim_cfg,
    differential_replay,
    dump_counterexample,
    load_counterexample,
    random_spec,
    replay_counterexample,
    run_fuzz,
    shrink_trace,
)
from .config import (
    BatchConfig,
    CheckConfig,
    FaultConfig,
    FrontendConfig,
    SCHEMES,
    SimConfig,
    SSDConfig,
    TimingConfig,
)
from .core.across import AcrossFTL, AcrossStats
from .core.amt import AcrossMappingTable, AMTEntry
from .errors import (
    ConfigError,
    FlashProtocolError,
    GeometryError,
    InvariantViolation,
    MappingError,
    MediaError,
    OutOfSpaceError,
    ReproError,
    SimulationError,
    SweepError,
    TraceFormatError,
)
from .faults import FaultInjector, raw_bit_error_rate, read_retry_steps
from .experiments.runner import ExperimentContext, compare_schemes, run_trace
from .experiments.workloads import TABLE2_SPECS, lun_specs, lun_traces
from .experiments.endurance import (
    EnduranceCell,
    EnduranceResult,
    endurance_specs,
    run_endurance,
)
from .fleet import (
    FleetConfig,
    FleetService,
    ShardPlan,
    TenantQos,
    aggregate_qos,
    compose_shards,
    fleet_summary,
    shard_of,
    tenant_weights,
)
from .flash.service import FlashService
from .flash.wear import WearStats, projected_lifetime_writes, wear_stats
from .ftl import MRSMFTL, PageMapFTL, make_ftl
from .ftl.bast import BASTFTL
from .ftl.fast import FASTFTL
from .ftl.gc import GC_POLICIES
from .ftl.gc_policy import GcPolicy, make_policy
from .geometry import FlashGeometry, PhysAddr
from .metrics.report import SimulationReport, normalize, render_table
from .metrics.series import CounterSeries, Snapshot
from .metrics.sketch import LogHistogram
from .metrics.timeline import RequestLog
from .obs.attribution import AttributionRecorder, PHASES, REQUEST_CLASSES
from .sim.engine import Simulator
from .sim.oracle import OracleMismatch, SectorOracle
from .traces.model import OP_READ, OP_TRIM, OP_WRITE, Trace
from .traces.blktrace import load_blktrace
from .traces.lint import Finding, lint_trace
from .traces.msr import load_msr
from .traces.stats import TraceStats, across_page_ratio, characterize
from .traces.synthetic import (
    SyntheticSpec,
    VDIWorkloadGenerator,
    generate_trace,
    spec_from_stats,
    trace_collection,
)
from .traces.systor import load_systor, save_systor
from .traces.workload_spec import (
    Phase,
    WorkloadSpec,
    compile_workload,
    validate_spec,
)
from .units import is_across_page, lpn_range, sectors_per_page, split_extent

__version__ = "1.0.0"

__all__ = [
    # configuration
    "SSDConfig",
    "SimConfig",
    "TimingConfig",
    "FaultConfig",
    "CheckConfig",
    "BatchConfig",
    "FrontendConfig",
    "SCHEMES",
    # substrate
    "FlashService",
    "FlashGeometry",
    "PhysAddr",
    "Simulator",
    "SectorOracle",
    "OracleMismatch",
    # FTL schemes
    "AcrossFTL",
    "AcrossStats",
    "AcrossMappingTable",
    "AMTEntry",
    "PageMapFTL",
    "MRSMFTL",
    "BASTFTL",
    "FASTFTL",
    "make_ftl",
    "GC_POLICIES",
    "GcPolicy",
    "make_policy",
    "WearStats",
    "wear_stats",
    "projected_lifetime_writes",
    # reliability / fault injection
    "FaultInjector",
    "raw_bit_error_rate",
    "read_retry_steps",
    # correctness harness (repro.check)
    "InvariantChecker",
    "DifferentialResult",
    "ReplayFailure",
    "checked_sim_cfg",
    "differential_replay",
    "FuzzOutcome",
    "random_spec",
    "run_fuzz",
    "shrink_trace",
    "dump_counterexample",
    "load_counterexample",
    "replay_counterexample",
    # traces
    "Trace",
    "OP_READ",
    "OP_WRITE",
    "OP_TRIM",
    "SyntheticSpec",
    "VDIWorkloadGenerator",
    "generate_trace",
    "spec_from_stats",
    "trace_collection",
    "load_systor",
    "save_systor",
    "load_msr",
    "load_blktrace",
    "Phase",
    "WorkloadSpec",
    "compile_workload",
    "validate_spec",
    "TraceStats",
    "characterize",
    "across_page_ratio",
    # experiments
    "ExperimentContext",
    "run_trace",
    "compare_schemes",
    "TABLE2_SPECS",
    "lun_specs",
    "lun_traces",
    "EnduranceCell",
    "EnduranceResult",
    "endurance_specs",
    "run_endurance",
    # fleet-scale serving
    "FleetConfig",
    "FleetService",
    "ShardPlan",
    "TenantQos",
    "aggregate_qos",
    "compose_shards",
    "fleet_summary",
    "shard_of",
    "tenant_weights",
    # metrics / attribution
    "SimulationReport",
    "normalize",
    "render_table",
    "CounterSeries",
    "Snapshot",
    "RequestLog",
    "LogHistogram",
    "AttributionRecorder",
    "PHASES",
    "REQUEST_CLASSES",
    "Finding",
    "lint_trace",
    # units
    "is_across_page",
    "sectors_per_page",
    "split_extent",
    "lpn_range",
    # errors
    "ReproError",
    "ConfigError",
    "GeometryError",
    "FlashProtocolError",
    "MediaError",
    "OutOfSpaceError",
    "MappingError",
    "InvariantViolation",
    "TraceFormatError",
    "SimulationError",
    "SweepError",
]
