"""Correctness tooling: runtime invariant sweeps and differential replay.

Two halves (ISSUE 5 / ``docs/architecture.md`` §repro.check):

* :class:`~repro.check.invariants.InvariantChecker` — cross-layer
  consistency sweeps the engine runs at a configurable cadence when
  ``SimConfig.check.enabled`` is set: mapping tables vs. flash state
  (every mapped PPN valid, every valid page reachable from exactly one
  table, AIdx entries resolving to live areas), free-pool /
  write-pointer / ``valid_count`` conservation, chip-timeline
  monotonicity, and counter conservation laws (host + GC + map + aging
  programs = the array's lifetime total).
* :func:`~repro.check.differential.differential_replay` — the same
  trace replayed across ``ftl``/``mrsm``/``across`` must agree on
  oracle-verified read contents; cache-on vs cache-off must return the
  same bytes; ``--jobs 1`` vs ``--jobs N`` must produce bit-identical
  reports.  :func:`~repro.check.fuzz.run_fuzz` drives the harness over
  random :class:`~repro.traces.synthetic.SyntheticSpec` workloads and
  shrinks any failure to a minimal reproducer
  (:func:`~repro.check.shrink.shrink_trace`), dumped as a JSON
  counterexample that ``repro check --replay`` re-runs.
"""

from .differential import (
    DifferentialResult,
    ReplayFailure,
    checked_sim_cfg,
    differential_replay,
)
from .fuzz import FuzzOutcome, random_spec, run_fuzz
from .invariants import InvariantChecker
from .shrink import (
    dump_counterexample,
    load_counterexample,
    replay_counterexample,
    shrink_trace,
)

__all__ = [
    "InvariantChecker",
    "DifferentialResult",
    "ReplayFailure",
    "checked_sim_cfg",
    "differential_replay",
    "FuzzOutcome",
    "random_spec",
    "run_fuzz",
    "shrink_trace",
    "dump_counterexample",
    "load_counterexample",
    "replay_counterexample",
]
