"""Greedy trace shrinking and counterexample persistence.

When the differential harness finds a failure, replaying the whole
fuzz trace is a terrible reproducer — :func:`shrink_trace` runs a
budgeted ddmin-style reduction (drop chunks, keep the subset while the
failure persists, halve the chunk size) to a near-1-minimal request
slice, and :func:`dump_counterexample` persists everything needed to
re-run it — the (shrunk) trace arrays, the device and sim configs, the
generating :class:`~repro.traces.synthetic.SyntheticSpec`/seed, and
the recorded failures — as one JSON file that
``repro check --replay <file>`` (:func:`replay_counterexample`)
re-executes.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from ..config import (
    BatchConfig,
    CheckConfig,
    FaultConfig,
    FrontendConfig,
    ObservabilityConfig,
    SimConfig,
    SSDConfig,
    TimingConfig,
)
from ..traces.model import Trace

#: counterexample file-format version (bumped on incompatible changes)
FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# trace subsetting & ddmin
# ----------------------------------------------------------------------
def trace_subset(trace: Trace, indices: Sequence[int]) -> Trace:
    """The sub-trace keeping ``indices`` (ascending) of ``trace``."""
    idx = np.asarray(indices, dtype=np.int64)
    return Trace(
        trace.name,
        trace.times[idx],
        trace.ops[idx],
        trace.offsets[idx],
        trace.sizes[idx],
    )


def shrink_trace(
    trace: Trace,
    still_fails: Callable[[Trace], bool],
    *,
    max_probes: int = 96,
) -> Trace:
    """Greedy delta-debugging reduction of a failing trace.

    ``still_fails`` re-runs the failing check on a candidate sub-trace
    and returns True while the failure reproduces (it should swallow
    its own exceptions — any error during a probe counts as "fails").
    At most ``max_probes`` candidate replays are spent; the best
    reproducer found within the budget is returned.
    """
    if len(trace) < 2:
        return trace
    idx = list(range(len(trace)))
    granularity = 2
    probes = 0
    while len(idx) >= 2 and probes < max_probes:
        chunk = max(1, (len(idx) + granularity - 1) // granularity)
        reduced = False
        for start in range(0, len(idx), chunk):
            candidate = idx[:start] + idx[start + chunk :]
            if not candidate:
                continue
            probes += 1
            if still_fails(trace_subset(trace, candidate)):
                idx = candidate
                granularity = max(2, granularity - 1)
                reduced = True
                break
            if probes >= max_probes:
                break
        if not reduced:
            if chunk == 1:
                break
            granularity = min(len(idx), granularity * 2)
    return trace_subset(trace, idx)


# ----------------------------------------------------------------------
# config (de)serialisation — nested frozen dataclasses over JSON
# ----------------------------------------------------------------------
def cfg_from_dict(doc: dict) -> SSDConfig:
    """Rebuild an :class:`SSDConfig` from ``dataclasses.asdict`` output."""
    doc = dict(doc)
    doc["timing"] = TimingConfig(**doc["timing"])
    cfg = SSDConfig(**doc)
    cfg.validate()
    return cfg


def sim_cfg_from_dict(doc: dict) -> SimConfig:
    """Rebuild a :class:`SimConfig` from ``dataclasses.asdict`` output."""
    doc = dict(doc)
    doc["observability"] = ObservabilityConfig(**doc["observability"])
    doc["faults"] = FaultConfig(**doc["faults"])
    doc["check"] = CheckConfig(**doc.get("check") or {})
    # dumps from before the frontend/batch blocks existed rebuild as
    # defaults
    doc["frontend"] = FrontendConfig(**doc.get("frontend") or {})
    doc["batch"] = BatchConfig(**doc.get("batch") or {})
    cfg = SimConfig(**doc)
    cfg.validate()
    return cfg


def _trace_to_doc(trace: Trace) -> dict:
    return {
        "name": trace.name,
        "ops": trace.ops.tolist(),
        "offsets": trace.offsets.tolist(),
        "sizes": trace.sizes.tolist(),
        "times": trace.times.tolist(),
    }


def _trace_from_doc(doc: dict) -> Trace:
    return Trace(
        doc.get("name", "counterexample"),
        np.asarray(doc["times"], dtype=np.float64),
        np.asarray(doc["ops"], dtype=np.uint8),
        np.asarray(doc["offsets"], dtype=np.int64),
        np.asarray(doc["sizes"], dtype=np.int64),
    )


# ----------------------------------------------------------------------
# counterexample files
# ----------------------------------------------------------------------
def dump_counterexample(
    path,
    *,
    trace: Trace,
    cfg: SSDConfig,
    sim_cfg: SimConfig,
    failures,
    schemes=None,
    spec=None,
    seed: int | None = None,
) -> Path:
    """Write a self-contained JSON reproducer; returns its path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = {
        "version": FORMAT_VERSION,
        "repro_command": f"repro check --replay {path}",
        "failures": [
            dataclasses.asdict(f) if dataclasses.is_dataclass(f) else dict(f)
            for f in failures
        ],
        "schemes": list(schemes) if schemes is not None else None,
        "seed": seed,
        "spec": dataclasses.asdict(spec) if spec is not None else None,
        "cfg": dataclasses.asdict(cfg),
        "sim_cfg": dataclasses.asdict(sim_cfg),
        "trace": _trace_to_doc(trace),
    }
    path.write_text(json.dumps(doc, indent=1))
    return path


def load_counterexample(path) -> tuple[Trace, SSDConfig, SimConfig, dict]:
    """Load a dumped reproducer: (trace, cfg, sim_cfg, full document)."""
    doc = json.loads(Path(path).read_text())
    if doc.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported counterexample version {doc.get('version')!r}"
        )
    return (
        _trace_from_doc(doc["trace"]),
        cfg_from_dict(doc["cfg"]),
        sim_cfg_from_dict(doc["sim_cfg"]),
        doc,
    )


def replay_counterexample(path):
    """Re-run a dumped counterexample through the differential harness;
    returns the fresh :class:`~repro.check.differential.DifferentialResult`."""
    from .differential import differential_replay

    trace, cfg, sim_cfg, doc = load_counterexample(path)
    schemes = doc.get("schemes")
    kwargs = {} if schemes is None else {"schemes": tuple(schemes)}
    return differential_replay(trace, cfg, sim_cfg, **kwargs)
