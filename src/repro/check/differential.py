"""Differential replay: one trace, many engines, one answer.

Three comparisons, each catching a failure class the aggregate bench
digests cannot:

* **Cross-scheme** — ``ftl``, ``mrsm`` and ``across`` implement the
  same block-device contract, so replaying one trace with the sector
  oracle on must verify every read *and* yield the same oracle-stamped
  read contents (``check_read_digest``) under all three mappings.
* **Cache on/off** — the DRAM write buffer is a transparent cache;
  disabling it must not change a single returned sector version.
* **jobs 1 vs N** — fanning runs out across worker processes
  (:func:`repro.experiments.parallel.execute_runs`) must produce
  bit-identical reports (canonical digest, wall time excluded) to the
  same runs executed in-process.
* **Frontend on/off, any queue depth** (opt-in) — the event-driven
  frontend (:mod:`repro.sim.frontend`) reorders execution but its
  hazard rules pin data semantics to arrival order, so its oracle read
  digest must equal the sequential replay's at every host queue depth.
* **Batch on/off** (opt-in) — the batch execution layer
  (:mod:`repro.sim.kernels`) vectorises hot paths but promises
  bit-identical results, so its oracle read digest must equal the
  scalar replay's; combined with ``frontend`` it also exercises the
  hazard-free batch release inside the event loop.
* **GC policy zoo** (opt-in) — a garbage-collection policy
  (:mod:`repro.ftl.gc_policy`) reshuffles *where* data lives and *when*
  it migrates, never *what* a read returns: replaying under any policy
  must yield the default-policy leg's oracle read digest.

Every replay runs with the runtime invariant checker enabled, so a
sweep violation or oracle mismatch inside any leg is reported as a
failure too.  :func:`~repro.check.fuzz.run_fuzz` feeds this harness
random workloads; a plain :func:`differential_replay` call is the
point-run entry (``repro check``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..config import SCHEMES, SimConfig, SSDConfig
from ..errors import ReproError
from ..sim.oracle import OracleMismatch
from ..traces.model import Trace


@dataclass
class ReplayFailure:
    """One divergence or in-run violation found by the harness."""

    #: "invariant" | "oracle" | "error" | "scheme-divergence" |
    #: "cache-divergence" | "jobs-divergence" | "frontend-divergence" |
    #: "qd-divergence" | "batch-divergence" | "policy-divergence"
    kind: str
    #: scheme the failure occurred in (None for cross-run comparisons)
    scheme: str | None
    detail: str


@dataclass
class DifferentialResult:
    """Outcome of one :func:`differential_replay` call."""

    trace_name: str
    failures: list[ReplayFailure] = field(default_factory=list)
    #: per-scheme oracle-verified read-content digests (cache-on leg)
    read_digests: dict[str, str] = field(default_factory=dict)
    #: per-scheme reports of the cache-on leg (for callers that want
    #: counters / latency detail alongside the verdict)
    reports: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        """One line per failure (or an all-clear)."""
        if self.ok:
            return f"{self.trace_name}: ok ({len(self.reports)} schemes agree)"
        lines = [f"{self.trace_name}: {len(self.failures)} failure(s)"]
        for f in self.failures:
            where = f" [{f.scheme}]" if f.scheme else ""
            lines.append(f"  {f.kind}{where}: {f.detail}")
        return "\n".join(lines)


def checked_sim_cfg(
    base: SimConfig | None = None,
    *,
    every: int = 256,
    attribution: bool = False,
) -> SimConfig:
    """The harness's run options: ``base`` with the sector oracle on,
    invariant sweeps every ``every`` requests, and progress off.

    ``attribution`` additionally turns on latency attribution
    (:mod:`repro.obs.attribution`), which arms the per-request
    phase-conservation invariant — every replayed request then proves
    its phase latencies sum to its recorded latency."""
    cfg = base if base is not None else SimConfig()
    cfg = replace(cfg, check_oracle=True, progress=False)
    cfg = cfg.replace_check(enabled=True, every=every)
    if attribution:
        cfg = cfg.replace_observability(enabled=True, attribution=True)
    return cfg


def _checked_run(scheme: str, trace: Trace, cfg: SSDConfig, sim_cfg: SimConfig):
    """Run one leg; returns (report | None, ReplayFailure | None)."""
    from ..experiments.runner import run_trace

    try:
        return run_trace(scheme, trace, cfg, sim_cfg), None
    except OracleMismatch as exc:
        return None, ReplayFailure("oracle", scheme, str(exc))
    except ReproError as exc:
        kind = (
            "invariant"
            if type(exc).__name__ in ("InvariantViolation", "MappingError",
                                      "FlashProtocolError")
            else "error"
        )
        return None, ReplayFailure(
            kind, scheme, f"{type(exc).__name__}: {exc}"
        )


def differential_replay(
    trace: Trace,
    cfg: SSDConfig,
    sim_cfg: SimConfig | None = None,
    *,
    schemes=SCHEMES,
    every: int = 256,
    compare_cache: bool = True,
    compare_jobs: bool = False,
    jobs: int = 2,
    attribution: bool = False,
    frontend: bool = False,
    qd_sweep: tuple = (),
    batch: bool = False,
    policies: tuple = (),
) -> DifferentialResult:
    """Replay ``trace`` across ``schemes`` and cross-check the results.

    All legs run with the oracle and the invariant checker on.  When
    ``compare_cache`` and the device has a write buffer, each scheme is
    additionally replayed with the buffer disabled and the read
    contents compared.  When ``compare_jobs``, the scheme runs are also
    executed through the ``jobs``-worker process pool and the canonical
    report digests compared against the in-process runs.
    ``attribution`` arms the per-request phase-conservation invariant
    on every leg (see :func:`checked_sim_cfg`).

    ``frontend`` adds, per scheme, a replay with the event-driven
    frontend enabled (:mod:`repro.sim.frontend`): its hazard rules must
    reproduce arrival semantics, so the oracle read digest must match
    the sequential leg exactly ("frontend-divergence" otherwise).
    ``qd_sweep`` (implies the frontend legs) additionally replays at
    each listed host queue depth — reordering freedom may change every
    latency, but never a returned sector version ("qd-divergence").

    ``batch`` adds, per scheme, a replay with the batch execution layer
    on (:mod:`repro.sim.kernels`): vectorised kernels promise
    bit-identical behaviour, so the oracle read digest must match the
    scalar leg exactly ("batch-divergence" otherwise).  When combined
    with ``frontend`` a batch+frontend leg also runs, exercising the
    hazard-free batch release inside the event loop.

    ``policies`` adds, per scheme, one replay per listed GC policy
    (:data:`repro.config.GC_POLICIES` names): GC decisions move data
    and shape wear but must never change returned sector versions, so
    each policy leg's oracle read digest must match the default-policy
    leg exactly ("policy-divergence" otherwise).
    """
    sim_cfg = checked_sim_cfg(sim_cfg, every=every, attribution=attribution)
    result = DifferentialResult(trace_name=trace.name)

    for scheme in schemes:
        report, failure = _checked_run(scheme, trace, cfg, sim_cfg)
        if failure is not None:
            result.failures.append(failure)
            continue
        result.reports[scheme] = report
        result.read_digests[scheme] = report.extra["check_read_digest"]

    digests = result.read_digests
    if len(digests) >= 2 and len(set(digests.values())) > 1:
        detail = ", ".join(
            f"{s}={d[:12]}" for s, d in sorted(digests.items())
        )
        result.failures.append(
            ReplayFailure(
                "scheme-divergence",
                None,
                f"read contents disagree across schemes: {detail}",
            )
        )

    if compare_cache and cfg.write_buffer_bytes > 0:
        nocache_cfg = cfg.replace(write_buffer_bytes=0)
        for scheme in schemes:
            if scheme not in digests:
                continue  # the cache-on leg already failed
            report, failure = _checked_run(scheme, trace, nocache_cfg, sim_cfg)
            if failure is not None:
                failure = replace(
                    failure, detail=f"(cache-off leg) {failure.detail}"
                )
                result.failures.append(failure)
                continue
            got = report.extra["check_read_digest"]
            if got != digests[scheme]:
                result.failures.append(
                    ReplayFailure(
                        "cache-divergence",
                        scheme,
                        f"read contents differ with the write buffer off: "
                        f"{digests[scheme][:12]} (on) vs {got[:12]} (off)",
                    )
                )

    if frontend or qd_sweep:
        fe_sim = sim_cfg.replace_frontend(enabled=True)
        for scheme in schemes:
            if scheme not in digests:
                continue  # the sequential leg already failed
            report, failure = _checked_run(scheme, trace, cfg, fe_sim)
            if failure is not None:
                result.failures.append(replace(
                    failure, detail=f"(frontend leg) {failure.detail}"
                ))
                continue
            got = report.extra["check_read_digest"]
            if got != digests[scheme]:
                result.failures.append(
                    ReplayFailure(
                        "frontend-divergence",
                        scheme,
                        f"read contents differ with the event-driven "
                        f"frontend on: {digests[scheme][:12]} (sequential) "
                        f"vs {got[:12]} (frontend)",
                    )
                )
                continue
            for qd in qd_sweep:
                qd_sim = replace(fe_sim, queue_depth=qd)
                report, failure = _checked_run(scheme, trace, cfg, qd_sim)
                if failure is not None:
                    result.failures.append(replace(
                        failure, detail=f"(frontend qd={qd} leg) "
                        f"{failure.detail}"
                    ))
                    continue
                got = report.extra["check_read_digest"]
                if got != digests[scheme]:
                    result.failures.append(
                        ReplayFailure(
                            "qd-divergence",
                            scheme,
                            f"read contents differ at queue depth {qd}: "
                            f"{digests[scheme][:12]} (sequential) vs "
                            f"{got[:12]} (frontend qd={qd})",
                        )
                    )

    if batch:
        legs = [("batch leg", sim_cfg.replace_batch(enabled=True))]
        if frontend or qd_sweep:
            legs.append((
                "batch+frontend leg",
                sim_cfg.replace_batch(enabled=True)
                .replace_frontend(enabled=True),
            ))
        for label, leg_sim in legs:
            for scheme in schemes:
                if scheme not in digests:
                    continue  # the scalar leg already failed
                report, failure = _checked_run(scheme, trace, cfg, leg_sim)
                if failure is not None:
                    result.failures.append(replace(
                        failure, detail=f"({label}) {failure.detail}"
                    ))
                    continue
                got = report.extra["check_read_digest"]
                if got != digests[scheme]:
                    result.failures.append(
                        ReplayFailure(
                            "batch-divergence",
                            scheme,
                            f"read contents differ with the batch layer on "
                            f"({label}): {digests[scheme][:12]} (scalar) vs "
                            f"{got[:12]} (batch)",
                        )
                    )

    for policy in policies:
        pol_cfg = cfg.replace(gc_policy=policy)
        for scheme in schemes:
            if scheme not in digests:
                continue  # the default-policy leg already failed
            report, failure = _checked_run(scheme, trace, pol_cfg, sim_cfg)
            if failure is not None:
                result.failures.append(replace(
                    failure, detail=f"(gc={policy} leg) {failure.detail}"
                ))
                continue
            got = report.extra["check_read_digest"]
            if got != digests[scheme]:
                result.failures.append(
                    ReplayFailure(
                        "policy-divergence",
                        scheme,
                        f"read contents differ under gc_policy={policy}: "
                        f"{digests[scheme][:12]} (default) vs {got[:12]} "
                        f"({policy})",
                    )
                )

    if compare_jobs and result.reports:
        result.failures.extend(
            _compare_jobs(trace, cfg, sim_cfg, result.reports, jobs)
        )
    return result


def _compare_jobs(trace, cfg, sim_cfg, serial_reports, jobs):
    """Replay through the process pool; any canonical-digest drift vs
    the in-process reports is a determinism failure."""
    from ..experiments.benchgate import report_digest
    from ..experiments.parallel import RunSpec, execute_runs

    schemes = list(serial_reports)
    specs = [RunSpec.make(s, trace, cfg, sim_cfg) for s in schemes]
    failures: list[ReplayFailure] = []
    try:
        outcome = execute_runs(specs, jobs=max(2, jobs))
    except ReproError as exc:
        return [
            ReplayFailure(
                "jobs-divergence", None, f"pooled replay failed: {exc}"
            )
        ]
    for scheme, pooled in zip(schemes, outcome.reports):
        want = report_digest(serial_reports[scheme])
        got = report_digest(pooled)
        if want != got:
            failures.append(
                ReplayFailure(
                    "jobs-divergence",
                    scheme,
                    f"report digest differs between --jobs 1 ({want[:12]}) "
                    f"and --jobs {max(2, jobs)} ({got[:12]})",
                )
            )
    return failures
