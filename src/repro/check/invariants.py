"""Runtime cross-layer invariant sweeps.

A sweep asserts the *conservation laws* that hold between host
requests, no matter how aggressively the hot path is optimised:

1.  **Flash bookkeeping** — per-block ``valid_count`` equals the VALID
    page count, write pointers split each block into a programmed
    prefix and a FREE suffix, retired blocks are sealed, and the meta
    store holds exactly one record per valid page
    (:meth:`repro.flash.array.FlashArray.check_invariants`).
2.  **Free-pool conservation** — a block sits in its plane's free pool
    exactly when it is fully erased (``write_ptr == 0``) and not
    retired, appears there exactly once, and in the right plane's pool.
3.  **Chip-timeline monotonicity** — ``busy_until``, accumulated
    ``busy_time`` and ``op_count`` never move backwards between sweeps
    (time travel is how queue-model bugs historically surfaced).
4.  **Counter conservation** — host + GC + map + aging programs add up
    to the array's lifetime program total; same for page reads; erases
    plus aging erases equal the array's erase total (failed erases
    retire the block *without* erasing it, so they are excluded on both
    sides).
5.  **Mapping reachability** — the scheme's own table checks
    (PMT/AIdx/AMT/region-slot detail), plus: every PPN any table
    references is VALID on flash, and every VALID flash page is
    referenced by *exactly one* table owner
    (:meth:`repro.ftl.base.BaseFTL.referenced_ppns`).  Hybrid
    log-block schemes (BAST/FAST) keep state outside that hook's
    contract, so the reachability half is skipped for them
    (``uses_generic_gc`` is False).

Sweeps only run *between* requests (and at end of run), which is what
makes 2 sound: mid-GC a block can transiently be out of the pool with
``write_ptr == 0``.
"""

from __future__ import annotations

import numpy as np

from ..config import CheckConfig
from ..errors import InvariantViolation
from ..flash.array import PAGE_FREE, PAGE_VALID


class InvariantChecker:
    """Periodic cross-layer consistency sweeps over one simulator run.

    Built by the engine when ``SimConfig.check.enabled`` is set; call
    :meth:`maybe_check` after each serviced request and :meth:`check_now`
    for the unconditional end-of-run sweep.  Any violated law raises
    :class:`~repro.errors.InvariantViolation` (or the violated
    subsystem's own :class:`~repro.errors.MappingError` /
    :class:`~repro.errors.FlashProtocolError`) naming both sides of the
    disagreement.
    """

    def __init__(self, ftl, cfg: CheckConfig | None = None):
        self.ftl = ftl
        self.cfg = cfg or CheckConfig(enabled=True)
        self.service = ftl.service
        self.array = ftl.service.array
        self.timeline = ftl.service.timeline
        self.counters = ftl.service.counters
        #: completed sweep count (reported as ``check_sweeps``)
        self.sweeps = 0
        # previous-sweep timeline snapshots for the monotonicity law
        self._busy_until = np.array(self.timeline.busy_until, copy=True)
        self._busy_time = np.array(self.timeline.busy_time, copy=True)
        self._op_count = np.array(self.timeline.op_count, copy=True)

    # ------------------------------------------------------------------
    def maybe_check(self, requests_done: int) -> None:
        """Run a sweep when the cadence (``cfg.every``) says so."""
        every = self.cfg.every
        if every and requests_done % every == 0:
            self.check_now()

    def check_now(self) -> None:
        """Run one full sweep; raises on the first violated law."""
        self.array.check_invariants()
        self._check_free_pool()
        self._check_timeline()
        self._check_counters()
        self.ftl.check_invariants()
        if self.ftl.uses_generic_gc:
            self._check_reachability()
        self.sweeps += 1

    #: absolute tolerance (ms) for the attribution conservation law;
    #: phase subtraction is exact (Sterbenz: all endpoints sit inside a
    #: narrow window of a common magnitude), so only the final sum
    #: accumulates rounding — orders of magnitude below this bound
    ATTRIBUTION_TOL_MS = 1e-9

    def check_attribution(
        self, phases: dict, latency: float, rid: int = -1
    ) -> None:
        """Conservation law for latency attribution: the per-request
        phase durations (:mod:`repro.obs.attribution`) must sum to the
        recorded request latency.

        Called per request by the engine when both the checker and
        ``observability.attribution`` are enabled.  A violation means a
        gating flash operation was not recorded (an un-instrumented
        code path) or a background bracket leaked — the attribution
        analogue of the counter-conservation sweep.
        """
        total = 0.0
        for ms in phases.values():
            total += ms
        if abs(total - latency) > self.ATTRIBUTION_TOL_MS:
            parts = ", ".join(
                f"{k}={v:.9f}" for k, v in sorted(phases.items())
            )
            raise InvariantViolation(
                f"attribution phases sum to {total:.12f} ms but request "
                f"{rid} latency is {latency:.12f} ms "
                f"(delta {total - latency:+.3e}; phases: {parts or 'none'})"
            )

    def check_hazard_order(self, issuing, held, inflight) -> None:
        """Ordering law for the event-driven frontend: a request being
        released must not overlap (with at least one side mutating) any
        request still held back by the scheduler or already in flight.

        Called by :meth:`repro.sim.frontend.FrontendScheduler.dispatch`
        at every release decision; the interval arithmetic here is
        deliberately independent of the scheduler's own
        ``Request.conflicts`` so a bug in its hazard test cannot also
        hide the violation.  TRIMs count as writes; read/read overlap
        is allowed.
        """
        from ..traces.model import OP_READ

        lo = issuing.offset
        hi = issuing.offset + issuing.size
        is_read = issuing.op == OP_READ
        for group, other in (
            [("in-flight", o) for o in inflight]
            + [("held", o) for o in held]
        ):
            if is_read and other.op == OP_READ:
                continue
            if lo < other.offset + other.size and other.offset < hi:
                raise InvariantViolation(
                    f"hazard-order violation: request {issuing.rid} "
                    f"(op={issuing.op}, [{lo},{hi})) released over "
                    f"{group} request {other.rid} (op={other.op}, "
                    f"[{other.offset},{other.offset + other.size}))"
                )

    # ------------------------------------------------------------------
    def _check_free_pool(self) -> None:
        arr = self.array
        geom = arr.geom
        pooled: list[int] = []
        for plane, pool in enumerate(arr._free_blocks):
            for block in pool:
                if geom.plane_of_block(block) != plane:
                    raise InvariantViolation(
                        f"block {block} pooled in plane {plane} but lives "
                        f"in plane {geom.plane_of_block(block)}"
                    )
            pooled.extend(pool)
        pooled_arr = np.array(sorted(pooled), dtype=np.int64)
        if pooled_arr.size and (np.diff(pooled_arr) == 0).any():
            dup = int(pooled_arr[np.nonzero(np.diff(pooled_arr) == 0)[0][0]])
            raise InvariantViolation(f"block {dup} pooled more than once")
        erased = np.nonzero((arr.write_ptr == 0) & ~arr.is_bad)[0]
        if pooled_arr.size != erased.size or not np.array_equal(
            pooled_arr, erased
        ):
            missing = np.setdiff1d(erased, pooled_arr)
            extra = np.setdiff1d(pooled_arr, erased)
            if missing.size:
                raise InvariantViolation(
                    f"block {int(missing[0])} is erased (wp=0, not bad) "
                    f"but absent from its plane's free pool"
                )
            raise InvariantViolation(
                f"block {int(extra[0])} is pooled but not erased "
                f"(wp={int(arr.write_ptr[extra[0]])}, "
                f"bad={bool(arr.is_bad[extra[0]])})"
            )
        if pooled_arr.size:
            states = arr.state.reshape(-1, geom.pages_per_block)[pooled_arr]
            if (states != PAGE_FREE).any():
                bad = int(pooled_arr[(states != PAGE_FREE).any(axis=1)][0])
                raise InvariantViolation(
                    f"pooled block {bad} holds non-free pages"
                )

    def _check_timeline(self) -> None:
        tl = self.timeline
        for name, prev, cur in (
            ("busy_until", self._busy_until, tl.busy_until),
            ("busy_time", self._busy_time, tl.busy_time),
            ("op_count", self._op_count, tl.op_count),
        ):
            cur = np.asarray(cur)
            moved_back = np.nonzero(cur < prev)[0]
            if moved_back.size:
                chip = int(moved_back[0])
                raise InvariantViolation(
                    f"chip {chip} {name} moved backwards: "
                    f"{prev[chip]} -> {cur[chip]}"
                )
            prev[:] = cur

    def _check_counters(self) -> None:
        c = self.counters
        arr = self.array
        counted = sum(c.writes.values())
        if counted != arr.total_programs:
            raise InvariantViolation(
                f"program conservation: counters sum to {counted} "
                f"(host+GC+map+aging) but the array performed "
                f"{arr.total_programs} programs"
            )
        counted = sum(c.reads.values())
        if counted != arr.total_page_reads:
            raise InvariantViolation(
                f"read conservation: counters sum to {counted} but the "
                f"array performed {arr.total_page_reads} page reads"
            )
        counted = c.erases + c.aging_erases
        if counted != arr.total_erases:
            raise InvariantViolation(
                f"erase conservation: counters sum to {counted} but "
                f"block erase counters sum to {arr.total_erases}"
            )

    def _check_reachability(self) -> None:
        arr = self.array
        state = arr.state
        owners: dict[int, str] = {}
        for ppn, owner in self.ftl.referenced_ppns():
            prior = owners.get(ppn)
            if prior is not None:
                raise InvariantViolation(
                    f"PPN {ppn} claimed by two owners: {prior} and {owner}"
                )
            if state[ppn] != PAGE_VALID:
                raise InvariantViolation(
                    f"{owner} references PPN {ppn} which is not valid "
                    f"on flash (state={int(state[ppn])})"
                )
            owners[ppn] = owner
        n_valid = arr.total_valid_pages
        if len(owners) != n_valid:
            for ppn, _meta in arr.valid_items():
                if ppn not in owners:
                    raise InvariantViolation(
                        f"valid PPN {ppn} ({arr.meta(ppn)!r}) is "
                        f"unreachable from every mapping table"
                    )
            raise InvariantViolation(
                f"reachability count mismatch: {len(owners)} owned vs "
                f"{n_valid} valid pages"
            )
