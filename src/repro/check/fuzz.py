"""Randomised differential fuzzing over synthetic workloads.

Each case draws a random :class:`~repro.traces.synthetic.SyntheticSpec`
(knobs sampled inside their validated ranges), optionally flips a slice
of its writes to TRIMs (the trim paths are where bookkeeping bugs like
the dropped ``RequestLog`` rows hid), generates the trace on a tiny
geometry, and feeds it to
:func:`~repro.check.differential.differential_replay`.  Failures are
shrunk (:func:`~repro.check.shrink.shrink_trace`) and dumped as JSON
counterexamples that ``repro check --replay`` re-runs.

Everything is seed-driven: ``run_fuzz(n, seed=s)`` explores the same
``n`` cases every time, which is what lets CI run a bounded budget and
a developer reproduce case ``i`` locally with the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

import numpy as np

from ..config import SCHEMES, SimConfig, SSDConfig
from ..traces.model import OP_TRIM, OP_WRITE, Trace
from ..traces.synthetic import SyntheticSpec, VDIWorkloadGenerator
from ..units import MIB
from .differential import DifferentialResult, differential_replay
from .shrink import dump_counterexample, shrink_trace


def random_spec(
    rng: np.random.Generator,
    *,
    footprint_sectors: int,
    requests: int = 400,
    name: str = "fuzz",
) -> SyntheticSpec:
    """A random workload spec with every knob inside its valid range."""
    p_overwrite = 0.35 + 0.45 * rng.random()
    p_extend = (1.0 - p_overwrite) * 0.5 * rng.random()
    spec = SyntheticSpec(
        name=name,
        requests=requests,
        write_ratio=0.35 + 0.55 * rng.random(),
        across_ratio=0.05 + 0.35 * rng.random(),
        mean_write_kb=4.0 + 8.0 * rng.random(),
        footprint_sectors=footprint_sectors,
        seed=int(rng.integers(1, 1 << 30)),
        interarrival_ms=float(2.0 + 8.0 * rng.random()),
        site_reuse=0.2 + 0.7 * rng.random(),
        p_overwrite=p_overwrite,
        p_extend=p_extend,
        small_unaligned=0.1 + 0.5 * rng.random(),
        p_read_beyond=0.02 * rng.random(),
    )
    spec.validate()
    return spec


def with_trims(
    trace: Trace, ratio: float, rng: np.random.Generator
) -> Trace:
    """Flip ``ratio`` of the trace's writes to TRIMs (same extents)."""
    if ratio <= 0:
        return trace
    ops = trace.ops.copy()
    writes = np.nonzero(ops == OP_WRITE)[0]
    flip = writes[rng.random(writes.size) < ratio]
    ops[flip] = OP_TRIM
    return Trace(trace.name, trace.times, ops, trace.offsets, trace.sizes)


@dataclass
class FuzzOutcome:
    """Result of one :func:`run_fuzz` campaign."""

    cases: int = 0
    #: (case index, result) for every failing case
    failures: list[tuple[int, DifferentialResult]] = field(
        default_factory=list
    )
    #: counterexample files written (one per failing case, when an
    #: output directory was given)
    artifacts: list[Path] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def run_fuzz(
    n: int,
    *,
    seed: int = 2023,
    cfg: SSDConfig | None = None,
    schemes=SCHEMES,
    every: int = 256,
    requests: int = 400,
    trim_ratio: float = 0.04,
    out_dir=None,
    shrink_budget: int = 64,
    compare_jobs_case: int | None = 0,
    attribution: bool = False,
    frontend: bool = False,
    batch: bool = False,
    policies: tuple = (),
    log: Optional[Callable[[str], None]] = None,
) -> FuzzOutcome:
    """Run ``n`` seeded differential fuzz cases on a small geometry.

    Case ``i`` derives its RNG from ``seed + 1000 * i``; odd cases run
    on a pre-aged (GC-pressured) device.  The expensive process-pool
    comparison runs only for ``compare_jobs_case`` (None disables it).
    ``attribution`` turns on latency attribution in every leg, arming
    the per-request phase-conservation invariant.  ``frontend`` adds a
    per-scheme replay through the event-driven frontend and compares
    its oracle read digest against the sequential leg; ``batch`` does
    the same with the batch execution layer on (plus a batch+frontend
    leg when both are set); ``policies`` adds one leg per listed GC
    policy, comparing each oracle read digest against the
    default-policy leg.  Failing cases
    are shrunk within ``shrink_budget`` replays and, when ``out_dir``
    is given, dumped there as JSON reproducers.
    """
    if cfg is None:
        # tiny geometry with the write buffer on, so the cache-off leg
        # is a real comparison; GC triggers within a few hundred writes
        cfg = SSDConfig.tiny().replace(write_buffer_bytes=2 * MIB)
    footprint = int(cfg.logical_sectors * 0.8)
    outcome = FuzzOutcome()
    emit = log if log is not None else (lambda _msg: None)
    for i in range(n):
        rng = np.random.default_rng(seed + 1000 * i)
        spec = random_spec(
            rng,
            footprint_sectors=footprint,
            requests=requests,
            name=f"fuzz-{seed}-{i}",
        )
        trace = with_trims(
            VDIWorkloadGenerator(spec).generate(), trim_ratio, rng
        )
        aged = i % 2 == 1
        sim_cfg = SimConfig(
            aged_used=0.55 if aged else 0.0,
            aged_valid=0.30 if aged else 0.0,
            seed=seed + i,
        )
        result = differential_replay(
            trace,
            cfg,
            sim_cfg,
            schemes=schemes,
            every=every,
            compare_jobs=(compare_jobs_case == i),
            attribution=attribution,
            frontend=frontend,
            batch=batch,
            policies=policies,
        )
        outcome.cases += 1
        if result.ok:
            emit(f"case {i}: ok ({trace.name}, {len(trace)} requests)")
            continue
        emit(f"case {i}: FAIL\n{result.summary()}")
        outcome.failures.append((i, result))

        def probe(candidate: Trace) -> bool:
            try:
                res = differential_replay(
                    candidate,
                    cfg,
                    sim_cfg,
                    schemes=schemes,
                    every=every,
                    compare_jobs=False,
                    attribution=attribution,
                    frontend=frontend,
                    batch=batch,
                    policies=policies,
                )
            except Exception:
                return True
            return not res.ok

        shrunk = shrink_trace(trace, probe, max_probes=shrink_budget)
        final = result if len(shrunk) == len(trace) else differential_replay(
            shrunk, cfg, sim_cfg, schemes=schemes, every=every,
            compare_jobs=False, attribution=attribution, frontend=frontend,
            batch=batch, policies=policies,
        )
        if out_dir is not None:
            path = dump_counterexample(
                Path(out_dir) / f"counterexample-{seed}-{i}.json",
                trace=shrunk,
                cfg=cfg,
                sim_cfg=sim_cfg,
                failures=final.failures or result.failures,
                schemes=schemes,
                spec=spec,
                seed=seed + i,
            )
            outcome.artifacts.append(path)
            emit(
                f"case {i}: shrunk to {len(shrunk)} requests -> {path}"
            )
    return outcome
