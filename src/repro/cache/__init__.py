"""Controller DRAM data cache (Table 1's cache, 0.001 ms access)."""

from .buffer import DataCache

__all__ = ["DataCache"]
