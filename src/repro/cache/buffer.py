"""Write-through DRAM data cache.

Models the SSD controller's data buffer (Table 1: 0.001 ms access).
Writes always continue to the FTL (write-through — the paper's write
latencies are flash-bound, so the buffer does not absorb programs), but
the written sectors stay cached and subsequent reads that are fully
covered by cached sectors complete at DRAM speed without any flash
read.  Reads allocate into the cache as well.

Granularity is the logical page: the cache tracks, per LPN, a bitmask
of cached sectors plus their oracle stamps when data tracking is on.
Eviction is LRU over LPNs and free (write-through means nothing is
dirty).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from ..obs.events import BufferEvict
from ..units import split_extent


class DataCache:
    """LRU, write-through sector cache keyed by LPN."""

    def __init__(self, capacity_pages: int, spp: int):
        if capacity_pages <= 0:
            raise ValueError("capacity_pages must be positive")
        self.capacity_pages = capacity_pages
        self.spp = spp
        #: lpn -> [sector bitmask, stamps dict | None]
        self._entries: OrderedDict[int, list] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        #: observability event bus, installed by the engine (the buffer
        #: has no clock, so events are stamped with the bus's ``now``)
        self.obs = None

    # ------------------------------------------------------------------
    def put(self, offset: int, size: int, stamps: Optional[dict]) -> None:
        """Cache the sectors of a write (or of a completed read)."""
        spp = self.spp
        entries = self._entries
        # single-page extents dominate replays: build the piece tuple
        # inline instead of calling split_extent
        lpn = offset // spp
        rel_lo = offset - lpn * spp
        if rel_lo + size <= spp:
            pieces = ((lpn, rel_lo, size),)
        else:
            pieces = split_extent(offset, size, spp)
        for lpn, rel_lo, count in pieces:
            mask = ((1 << count) - 1) << rel_lo
            entry = entries.get(lpn)
            if entry is None:
                entries[lpn] = entry = [mask, {} if stamps is not None else None]
                self.insertions += 1
            else:
                entries.move_to_end(lpn)
                entry[0] |= mask
            if stamps is not None:
                if entry[1] is None:
                    entry[1] = {}
                base = lpn * spp
                for i in range(count):
                    sec = base + rel_lo + i
                    if sec in stamps:
                        entry[1][sec] = stamps[sec]
        while len(entries) > self.capacity_pages:
            evicted, _ = entries.popitem(last=False)
            self.evictions += 1
            if self.obs is not None:
                self.obs.emit(BufferEvict(self.obs.now, evicted))

    def put_found(self, offset: int, size: int, found: Optional[dict]) -> None:
        """Read-allocate: cache only the sectors the flash read actually
        returned data for.

        Marking the whole requested extent cached (the old behaviour)
        invented DRAM copies of sectors that hold no data — a later
        read of an unwritten/trimmed extent then "hit" and skipped
        flash, changing both timing and, with the oracle on, what
        ``get_stamps`` could return.  ``found`` is only populated when
        payload tracking is on (oracle runs); with ``found is None``
        the service path reports nothing about per-sector validity, so
        the legacy full-extent allocation is the only option (and keeps
        oracle-off replays — the pinned bench digests — unchanged).
        """
        if found is None:
            self.put(offset, size, None)
            return
        if not found:
            return
        end = offset + size
        run_start = -1
        prev = -2
        for sec in sorted(found):
            if sec < offset or sec >= end:
                continue
            if sec != prev + 1:
                if run_start >= 0:
                    self.put(run_start, prev - run_start + 1, found)
                run_start = sec
            prev = sec
        if run_start >= 0:
            self.put(run_start, prev - run_start + 1, found)

    # ------------------------------------------------------------------
    def full_hit(self, offset: int, size: int) -> bool:
        """True when every requested sector is cached (the only case we
        serve from DRAM; partial hits go to flash for simplicity)."""
        spp = self.spp
        entries = self._entries
        lpn = offset // spp
        rel_lo = offset - lpn * spp
        if rel_lo + size <= spp:
            entry = entries.get(lpn)
            if entry is None:
                self.misses += 1
                return False
            mask = ((1 << size) - 1) << rel_lo
            if entry[0] & mask != mask:
                self.misses += 1
                return False
            entries.move_to_end(lpn)
            self.hits += 1
            return True
        pieces = split_extent(offset, size, spp)
        for lpn, rel_lo, count in pieces:
            entry = entries.get(lpn)
            if entry is None:
                self.misses += 1
                return False
            mask = ((1 << count) - 1) << rel_lo
            if entry[0] & mask != mask:
                self.misses += 1
                return False
        # refresh LRU recency here, not only in get_stamps: a read
        # served from DRAM must keep its pages hot even when the oracle
        # is off (otherwise hot read-only pages are evicted as if cold)
        for lpn, _rel_lo, _count in pieces:
            entries.move_to_end(lpn)
        self.hits += 1
        return True

    def get_stamps(self, offset: int, size: int) -> dict:
        """Stamps of the requested sectors; caller checked full_hit."""
        out: dict = {}
        for lpn, rel_lo, count in split_extent(offset, size, self.spp):
            entry = self._entries.get(lpn)
            if entry is None:
                continue
            self._entries.move_to_end(lpn)
            if entry[1]:
                base = lpn * self.spp
                for i in range(count):
                    sec = base + rel_lo + i
                    if sec in entry[1]:
                        out[sec] = entry[1][sec]
        return out

    def discard(self, offset: int, size: int) -> None:
        """Drop cached copies of a trimmed extent."""
        for lpn, rel_lo, count in split_extent(offset, size, self.spp):
            entry = self._entries.get(lpn)
            if entry is None:
                continue
            mask = ((1 << count) - 1) << rel_lo
            entry[0] &= ~mask
            if entry[1]:
                base = lpn * self.spp
                for i in range(count):
                    entry[1].pop(base + rel_lo + i, None)
            if entry[0] == 0:
                del self._entries[lpn]

    def __len__(self) -> int:
        return len(self._entries)
