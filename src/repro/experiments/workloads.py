"""The six LUN workload presets (paper Table 2) and their generators.

``TABLE2_SPECS`` records the published per-trace statistics; the
``lun_specs`` factory turns them into calibrated synthetic-workload
specs scaled to a target device (request count and footprint shrink
together with the simulated SSD so GC pressure matches the paper's
aged-device setup).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SSDConfig
from ..traces.model import Trace
from ..traces.synthetic import SyntheticSpec, generate_trace


@dataclass(frozen=True)
class Table2Row:
    """One published row of Table 2."""

    name: str
    requests: int
    write_ratio: float
    mean_write_kb: float
    across_ratio: float


#: Paper Table 2 — specifications of the selected traces (8 KiB pages).
TABLE2_SPECS: tuple[Table2Row, ...] = (
    Table2Row("lun1", 749_806, 0.615, 8.9, 0.247),
    Table2Row("lun2", 867_967, 0.528, 11.3, 0.164),
    Table2Row("lun3", 672_580, 0.506, 8.6, 0.234),
    Table2Row("lun4", 824_068, 0.454, 11.2, 0.187),
    Table2Row("lun5", 639_558, 0.411, 9.2, 0.235),
    Table2Row("lun6", 633_234, 0.347, 7.6, 0.275),
)


def lun_specs(
    cfg: SSDConfig,
    *,
    scale: float = 0.05,
    footprint_fraction: float = 0.8,
    seed_base: int = 2023,
) -> list[SyntheticSpec]:
    """Synthetic specs for lun1-lun6 scaled to ``cfg``.

    ``scale`` multiplies the published request counts (the default 5%
    keeps a full 6-trace x 3-scheme sweep to minutes of pure Python);
    ``footprint_fraction`` is the share of the device's logical space
    the workload addresses, so an aged device stays under GC pressure
    like the paper's 90%-used setup.
    """
    footprint = int(cfg.logical_sectors * footprint_fraction)
    specs = []
    for i, row in enumerate(TABLE2_SPECS):
        specs.append(
            SyntheticSpec(
                name=row.name,
                requests=max(1, int(row.requests * scale)),
                write_ratio=row.write_ratio,
                across_ratio=row.across_ratio,
                mean_write_kb=row.mean_write_kb,
                footprint_sectors=footprint,
                seed=seed_base + 31 * i,
            )
        )
    return specs


def lun_traces(cfg: SSDConfig, **kw) -> list[Trace]:
    """Generate the six calibrated traces for a device config."""
    return [generate_trace(spec) for spec in lun_specs(cfg, **kw)]
