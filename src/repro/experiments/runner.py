"""Scheme-comparison runner with result memoisation.

``run_trace`` wires config -> flash service -> FTL -> simulator for a
single (scheme, trace) pair.  ``ExperimentContext`` memoises runs so
the figures that share the same sweep (Figs. 9, 10, 11, 12 all come
from the lun1-lun6 x {ftl, mrsm, across} sweep at 8 KiB) only simulate
once per benchmark session.  With ``jobs`` > 1 the context fans sweep
points out across a process pool, and with a ``store`` it reuses runs
persisted by earlier sessions (see :mod:`repro.experiments.parallel`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import SCHEMES, SimConfig, SSDConfig
from ..flash.service import FlashService
from ..ftl import make_ftl
from ..metrics.report import SimulationReport
from ..sim.engine import Simulator
from ..traces.model import Trace
from ..traces.synthetic import generate_trace
from .parallel import ResultStore, RunSpec, execute_runs, run_filename


def run_trace(
    scheme: str,
    trace: Trace,
    cfg: SSDConfig,
    sim_cfg: SimConfig | None = None,
    **ftl_kw,
) -> SimulationReport:
    """Simulate one trace under one scheme on a fresh device."""
    service = FlashService(cfg)
    ftl = make_ftl(scheme, service, **ftl_kw)
    sim = Simulator(ftl, sim_cfg)
    return sim.run(trace)


def compare_schemes(
    trace: Trace,
    cfg: SSDConfig,
    sim_cfg: SimConfig | None = None,
    schemes=SCHEMES,
    **ftl_kw,
) -> dict[str, SimulationReport]:
    """Run the same trace under each scheme (fresh device each time)."""
    return {s: run_trace(s, trace, cfg, sim_cfg, **ftl_kw) for s in schemes}


@dataclass
class ExperimentContext:
    """Shared state for a figure-reproduction session.

    Holds the device config, aging settings and workload scale, plus a
    memo of completed runs keyed by (trace, scheme, page size) so
    multiple figures reuse the same simulations.
    """

    cfg: SSDConfig = field(default_factory=SSDConfig.bench_default)
    sim_cfg: SimConfig = field(
        default_factory=lambda: SimConfig(
            aged_used=0.90, aged_valid=0.398, aging_style="vdi"
        )
    )
    scale: float = 0.05
    footprint_fraction: float = 0.8
    seed_base: int = 2023
    #: worker processes for sweep fan-out (1 = in-process, serial)
    jobs: int = 1
    #: persistent cross-session run cache (None = memoise in memory only)
    store: ResultStore | None = None
    #: render a sweep-level progress line while fanning out
    progress: bool = False
    _traces: dict[str, Trace] = field(default_factory=dict)
    _runs: dict[tuple, SimulationReport] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def config_for_page(self, page_size_bytes: int) -> SSDConfig:
        """The device config at a given page size (Fig. 13/14 sweeps)."""
        if page_size_bytes == self.cfg.page_size_bytes:
            return self.cfg
        return self.cfg.with_page_size(page_size_bytes)

    def lun_trace(self, name: str) -> Trace:
        """The calibrated synthetic trace for a lun preset (cached)."""
        if name not in self._traces:
            from .workloads import lun_specs

            for spec in lun_specs(
                self.cfg,
                scale=self.scale,
                footprint_fraction=self.footprint_fraction,
                seed_base=self.seed_base,
            ):
                if spec.name not in self._traces:
                    self._traces[spec.name] = generate_trace(spec)
            if name not in self._traces:
                raise KeyError(f"unknown lun preset {name!r}")
        return self._traces[name]

    def lun_names(self) -> list[str]:
        """The six Table 2 preset names, in paper order."""
        from .workloads import TABLE2_SPECS

        return [row.name for row in TABLE2_SPECS]

    # ------------------------------------------------------------------
    def _memo_key(
        self, trace_name: str, scheme: str, page: int, ftl_kw: dict
    ) -> tuple:
        return (trace_name, scheme, page, tuple(sorted(ftl_kw.items())))

    def _spec(
        self, trace_name: str, scheme: str, page: int, ftl_kw: dict
    ) -> RunSpec:
        """The :class:`RunSpec` describing one memo point."""
        return RunSpec.make(
            scheme,
            self.lun_trace(trace_name),
            self.config_for_page(page),
            self.sim_cfg,
            **ftl_kw,
        )

    def run(
        self,
        trace_name: str,
        scheme: str,
        *,
        page_size_bytes: int | None = None,
        **ftl_kw,
    ) -> SimulationReport:
        """Memoised simulation of (lun trace, scheme, page size).

        Misses consult the persistent ``store`` (when configured) before
        simulating, and fresh results are written back to it.
        """
        page = page_size_bytes or self.cfg.page_size_bytes
        key = self._memo_key(trace_name, scheme, page, ftl_kw)
        if key not in self._runs:
            spec = self._spec(trace_name, scheme, page, ftl_kw)
            outcome = execute_runs([spec], jobs=1, store=self.store)
            self._runs[key] = outcome.reports[0]
        return self._runs[key]

    def run_many(
        self, points, *, page_size_bytes: int | None = None
    ) -> list[SimulationReport]:
        """Run a batch of (trace_name, scheme) points, fanning cache
        misses out across ``self.jobs`` worker processes.

        ``points`` may also carry a per-point page size and FTL kwargs:
        ``(trace_name, scheme)``, ``(trace_name, scheme, page)`` or
        ``(trace_name, scheme, page, ftl_kw_dict)``.  Results land in
        the in-memory memo (and the store) exactly as :meth:`run`'s do.
        """
        default_page = page_size_bytes or self.cfg.page_size_bytes
        normal = []
        for point in points:
            name, scheme, page, kw = (tuple(point) + (None, None))[:4]
            normal.append(
                (name, scheme, page or default_page, dict(kw or {}))
            )
        missing = [
            p for p in normal if self._memo_key(*p) not in self._runs
        ]
        if missing:
            specs = [self._spec(*p) for p in missing]
            outcome = execute_runs(
                specs, jobs=self.jobs, store=self.store, progress=self.progress
            )
            for p, report in zip(missing, outcome.reports):
                self._runs[self._memo_key(*p)] = report
        return [self._runs[self._memo_key(*p)] for p in normal]

    def prewarm(
        self,
        *,
        schemes=SCHEMES,
        page_sizes=None,
        **ftl_kw,
    ) -> int:
        """Fill the memo for every (lun, scheme, page) point in one
        parallel batch; returns how many points are now resident.

        The figure functions call :meth:`run` point by point — serially.
        Prewarming first turns a whole figure session into one fan-out.
        """
        pages = list(page_sizes) if page_sizes else [self.cfg.page_size_bytes]
        points = [
            (name, scheme, page, ftl_kw)
            for page in pages
            for name in self.lun_names()
            for scheme in schemes
        ]
        return len(self.run_many(points))

    def save_results(self, directory) -> int:
        """Archive every memoised run as JSON under ``directory``.

        Writes one ``<trace>__<scheme>__<pageKiB>[__kwargs].json`` per
        run (same naming scheme as :class:`ResultStore`, with raw kwarg
        values sanitised and colliding names de-collided by a numeric
        suffix) plus an ``index.json`` listing them; returns the number
        of runs saved.
        """
        import json
        from pathlib import Path

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        index = []
        used: set[str] = set()
        for (trace, scheme, page, kw), report in self._runs.items():
            stem = run_filename(trace, scheme, page, dict(kw))
            fname = f"{stem}.json"
            serial = 2
            while fname in used:
                fname = f"{stem}__{serial}.json"
                serial += 1
            used.add(fname)
            (directory / fname).write_text(report.to_json(indent=1))
            index.append(
                {
                    "file": fname,
                    "trace": trace,
                    "scheme": scheme,
                    "page_size_bytes": page,
                    "ftl_kwargs": {k: repr(v) for k, v in kw},
                }
            )
        (directory / "index.json").write_text(json.dumps(index, indent=1))
        return len(index)

    def sweep(
        self,
        *,
        schemes=SCHEMES,
        page_size_bytes: int | None = None,
        **ftl_kw,
    ) -> dict[str, dict[str, SimulationReport]]:
        """All lun traces x schemes; returns {trace: {scheme: report}}.

        The whole grid executes as one batch, so with ``jobs`` > 1 the
        18 independent simulations behind Figs. 9-12 run concurrently.
        """
        names = self.lun_names()
        points = [
            (name, s, page_size_bytes or self.cfg.page_size_bytes, ftl_kw)
            for name in names
            for s in schemes
        ]
        reports = self.run_many(points)
        it = iter(reports)
        return {
            name: {s: next(it) for s in schemes} for name in names
        }
