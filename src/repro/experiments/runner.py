"""Scheme-comparison runner with result memoisation.

``run_trace`` wires config -> flash service -> FTL -> simulator for a
single (scheme, trace) pair.  ``ExperimentContext`` memoises runs so
the figures that share the same sweep (Figs. 9, 10, 11, 12 all come
from the lun1-lun6 x {ftl, mrsm, across} sweep at 8 KiB) only simulate
once per benchmark session.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import SCHEMES, SimConfig, SSDConfig
from ..flash.service import FlashService
from ..ftl import make_ftl
from ..metrics.report import SimulationReport
from ..sim.engine import Simulator
from ..traces.model import Trace
from ..traces.synthetic import SyntheticSpec, VDIWorkloadGenerator


def run_trace(
    scheme: str,
    trace: Trace,
    cfg: SSDConfig,
    sim_cfg: SimConfig | None = None,
    **ftl_kw,
) -> SimulationReport:
    """Simulate one trace under one scheme on a fresh device."""
    service = FlashService(cfg)
    ftl = make_ftl(scheme, service, **ftl_kw)
    sim = Simulator(ftl, sim_cfg)
    return sim.run(trace)


def compare_schemes(
    trace: Trace,
    cfg: SSDConfig,
    sim_cfg: SimConfig | None = None,
    schemes=SCHEMES,
    **ftl_kw,
) -> dict[str, SimulationReport]:
    """Run the same trace under each scheme (fresh device each time)."""
    return {s: run_trace(s, trace, cfg, sim_cfg, **ftl_kw) for s in schemes}


@dataclass
class ExperimentContext:
    """Shared state for a figure-reproduction session.

    Holds the device config, aging settings and workload scale, plus a
    memo of completed runs keyed by (trace, scheme, page size) so
    multiple figures reuse the same simulations.
    """

    cfg: SSDConfig = field(default_factory=SSDConfig.bench_default)
    sim_cfg: SimConfig = field(
        default_factory=lambda: SimConfig(
            aged_used=0.90, aged_valid=0.398, aging_style="vdi"
        )
    )
    scale: float = 0.05
    footprint_fraction: float = 0.8
    seed_base: int = 2023
    _traces: dict[str, Trace] = field(default_factory=dict)
    _runs: dict[tuple, SimulationReport] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def config_for_page(self, page_size_bytes: int) -> SSDConfig:
        """The device config at a given page size (Fig. 13/14 sweeps)."""
        if page_size_bytes == self.cfg.page_size_bytes:
            return self.cfg
        return self.cfg.with_page_size(page_size_bytes)

    def lun_trace(self, name: str) -> Trace:
        """The calibrated synthetic trace for a lun preset (cached)."""
        if name not in self._traces:
            from .workloads import lun_specs

            for spec in lun_specs(
                self.cfg,
                scale=self.scale,
                footprint_fraction=self.footprint_fraction,
                seed_base=self.seed_base,
            ):
                if spec.name not in self._traces:
                    self._traces[spec.name] = VDIWorkloadGenerator(spec).generate()
            if name not in self._traces:
                raise KeyError(f"unknown lun preset {name!r}")
        return self._traces[name]

    def lun_names(self) -> list[str]:
        """The six Table 2 preset names, in paper order."""
        from .workloads import TABLE2_SPECS

        return [row.name for row in TABLE2_SPECS]

    # ------------------------------------------------------------------
    def run(
        self,
        trace_name: str,
        scheme: str,
        *,
        page_size_bytes: int | None = None,
        **ftl_kw,
    ) -> SimulationReport:
        """Memoised simulation of (lun trace, scheme, page size)."""
        page = page_size_bytes or self.cfg.page_size_bytes
        key = (trace_name, scheme, page, tuple(sorted(ftl_kw.items())))
        if key not in self._runs:
            cfg = self.config_for_page(page)
            trace = self.lun_trace(trace_name)
            self._runs[key] = run_trace(scheme, trace, cfg, self.sim_cfg, **ftl_kw)
        return self._runs[key]

    def save_results(self, directory) -> int:
        """Archive every memoised run as JSON under ``directory``.

        Writes one ``<trace>__<scheme>__<pageKiB>.json`` per run plus an
        ``index.json`` listing them; returns the number of runs saved.
        """
        import json
        from pathlib import Path

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        index = []
        for (trace, scheme, page, kw), report in self._runs.items():
            fname = f"{trace}__{scheme}__{page // 1024}k"
            if kw:
                fname += "__" + "_".join(f"{k}-{v}" for k, v in kw)
            fname += ".json"
            (directory / fname).write_text(report.to_json(indent=1))
            index.append(
                {
                    "file": fname,
                    "trace": trace,
                    "scheme": scheme,
                    "page_size_bytes": page,
                    "ftl_kwargs": dict(kw),
                }
            )
        (directory / "index.json").write_text(json.dumps(index, indent=1))
        return len(index)

    def sweep(
        self,
        *,
        schemes=SCHEMES,
        page_size_bytes: int | None = None,
        **ftl_kw,
    ) -> dict[str, dict[str, SimulationReport]]:
        """All lun traces x schemes; returns {trace: {scheme: report}}."""
        return {
            name: {
                s: self.run(
                    name, s, page_size_bytes=page_size_bytes, **ftl_kw
                )
                for s in schemes
            }
            for name in self.lun_names()
        }
