"""Experiment harness: lun1-lun6 workload presets, the scheme-comparison
runner with result memoisation, and one function per paper figure/table."""

from .charts import render_report_html
from .endurance import (
    EnduranceCell,
    EnduranceResult,
    endurance_specs,
    run_endurance,
)
from .parallel import (
    ResultStore,
    RunSpec,
    SweepOutcome,
    execute_runs,
    run_key,
)
from .runner import ExperimentContext, compare_schemes, run_trace
from .summary import render_experiments_md
from .sweeps import SweepResult, sweep_config, sweep_sim, sweep_workload
from .workloads import TABLE2_SPECS, lun_specs, lun_traces

__all__ = [
    "EnduranceCell",
    "EnduranceResult",
    "ExperimentContext",
    "endurance_specs",
    "run_endurance",
    "run_trace",
    "compare_schemes",
    "TABLE2_SPECS",
    "lun_specs",
    "lun_traces",
    "SweepResult",
    "sweep_config",
    "sweep_sim",
    "sweep_workload",
    "render_report_html",
    "render_experiments_md",
    "ResultStore",
    "RunSpec",
    "SweepOutcome",
    "execute_runs",
    "run_key",
]
