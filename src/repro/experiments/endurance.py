"""Full-lifetime endurance scenarios: GC policy zoo × device aging.

Composes the pluggable GC policies (:mod:`repro.ftl.gc_policy`) with
the :mod:`repro.faults` RBER/wear model into endurance sweeps: the
device fills, ages under fault injection (blocks retire, OP shrinks)
and every policy is scored on the three axes the zoo exists to trade
off —

* **write amplification** (WAF: flash programs per host data program,
  the paper's Fig. 10 pressure made scalar);
* **wear variance** (erase-count std / Gini over the block population,
  the Fig. 11 endurance concern);
* **tail latency** (p99 per request class — GC interference with host
  traffic, which preemptive/partial GC is designed to bound).

The grid runs through the parallel runner (:func:`execute_runs`), so
``--jobs`` fan-out and :class:`ResultStore` memoisation apply; every
cell sets ``SimConfig.record_wear`` so the wear statistics ride the
report's ``extra`` block and survive the store round trip.  The
``repro endure`` CLI is a thin wrapper over this module.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from ..config import GC_POLICIES, FaultConfig, SSDConfig, SimConfig
from ..metrics.report import SimulationReport
from ..traces.model import Trace
from .parallel import ResultStore, RunSpec, execute_runs

__all__ = [
    "EnduranceCell",
    "EnduranceResult",
    "endurance_specs",
    "run_endurance",
]


@dataclass(frozen=True)
class EnduranceCell:
    """One scored grid point of an endurance sweep."""

    policy: str
    fault_level: float
    report: SimulationReport

    # -- the three scoring axes ----------------------------------------
    @property
    def waf(self) -> float:
        """Write amplification: flash programs per host data program."""
        c = self.report.counters
        host = c.data_writes
        return c.total_writes / host if host else 0.0

    @property
    def wear_std(self) -> float:
        return float(self.report.extra.get("wear_std", 0.0))

    @property
    def wear_gini(self) -> float:
        return float(self.report.extra.get("wear_gini", 0.0))

    @property
    def total_erases(self) -> int:
        return int(self.report.extra.get("wear_total_erases", 0))

    @property
    def p99_read_ms(self) -> float:
        return self.report.latency.summary("read_normal").p99_ms

    @property
    def p99_write_ms(self) -> float:
        return self.report.latency.summary("write_normal").p99_ms

    @property
    def retired_blocks(self) -> int:
        return int(self.report.extra.get("retired_blocks", 0))

    def row(self) -> list:
        """Table row for the CLI rendering (column order matches
        :data:`ROW_HEADERS`)."""
        c = self.report.counters
        return [
            round(self.waf, 3),
            self.total_erases,
            round(self.wear_std, 2),
            round(self.wear_gini, 3),
            c.gc_stalls,
            self.retired_blocks,
            round(self.p99_read_ms, 3),
            round(self.p99_write_ms, 3),
        ]


#: column headers matching :meth:`EnduranceCell.row`
ROW_HEADERS = [
    "WAF", "erases", "wear std", "gini", "stalls", "bad blk",
    "p99 rd ms", "p99 wr ms",
]


@dataclass(frozen=True)
class EnduranceResult:
    """All cells of one sweep, in (policy-major, level-minor) order."""

    scheme: str
    trace_name: str
    cells: tuple[EnduranceCell, ...]

    def rows(self) -> dict[str, list]:
        """``{label: row}`` for :func:`repro.cli.render_table`."""
        return {
            f"{c.policy} x{c.fault_level:g}": c.row() for c in self.cells
        }


def endurance_specs(
    trace: Trace,
    cfg: SSDConfig,
    sim_cfg: SimConfig,
    *,
    scheme: str = "across",
    policies: Sequence[str] = GC_POLICIES,
    fault_levels: Sequence[float] = (1.0,),
    fault_seed: int = 7,
    fault_base: FaultConfig | None = None,
) -> list[RunSpec]:
    """Build the (policy × fault level) grid of run specs.

    Level 0 disables injection entirely (the aging-free control);
    nonzero levels scale ``fault_base`` (default: the
    :meth:`FaultConfig.stress` preset seeded with ``fault_seed``).
    Every spec records wear statistics into the report extras.
    """
    for policy in policies:
        if policy not in GC_POLICIES:
            raise ValueError(
                f"unknown GC policy {policy!r}; expected one of {GC_POLICIES}"
            )
    base = fault_base if fault_base is not None else FaultConfig.stress(
        seed=fault_seed
    )
    specs = []
    for policy in policies:
        pol_cfg = cfg.replace(gc_policy=policy)
        for lvl in fault_levels:
            specs.append(RunSpec.make(
                scheme,
                trace,
                pol_cfg,
                replace(sim_cfg, faults=base.scaled(lvl), record_wear=True),
            ))
    return specs


def run_endurance(
    trace: Trace,
    cfg: SSDConfig,
    sim_cfg: SimConfig,
    *,
    scheme: str = "across",
    policies: Sequence[str] = GC_POLICIES,
    fault_levels: Sequence[float] = (1.0,),
    fault_seed: int = 7,
    fault_base: FaultConfig | None = None,
    jobs: int = 1,
    store: ResultStore | None = None,
    progress: bool = False,
) -> EnduranceResult:
    """Execute the endurance grid and score every cell."""
    specs = endurance_specs(
        trace, cfg, sim_cfg,
        scheme=scheme, policies=policies,
        fault_levels=fault_levels, fault_seed=fault_seed,
        fault_base=fault_base,
    )
    outcome = execute_runs(specs, jobs=jobs, store=store, progress=progress)
    cells = []
    it = iter(outcome.reports)
    for policy in policies:
        for lvl in fault_levels:
            cells.append(EnduranceCell(policy, float(lvl), next(it)))
    return EnduranceResult(scheme, trace.name, tuple(cells))
