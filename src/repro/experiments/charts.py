"""SVG chart rendering for the figure-reproduction HTML report.

Hand-rolled SVG (no plotting dependency), following a fixed set of
chart conventions:

* grouped bars for the scheme comparisons (the three schemes are the
  *identity* being compared → categorical color), one per paper figure;
* bars are thin (<= 24 px), with a rounded data-end and a square
  baseline, separated by surface gaps; gridlines are recessive
  hairlines; one y-axis only;
* the categorical palette (blue / aqua / yellow for ftl / mrsm /
  across) is CVD-validated; because two slots sit below 3:1 contrast
  on the light surface, every chart ships the *relief*: a legend, and
  a full data table under the chart (`table_html`);
* text never wears a series color — labels and ticks use ink tokens;
  identity comes from the swatch beside the text;
* dark mode is a selected variant of the same hues via CSS custom
  properties, not an automatic inversion.

The public entry point is :func:`render_report_html`, wired to
``python -m repro report``.
"""

from __future__ import annotations

import html as _html
import math
from typing import Mapping, Sequence

#: categorical slots (validated light/dark pairs); order is fixed —
#: scheme identity keeps its hue regardless of which schemes a chart shows
SERIES_VARS = {
    "ftl": "--series-1",
    "mrsm": "--series-2",
    "across": "--series-3",
}

_CSS = """
.viz-root {
  --surface-1: #fcfcfb;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --grid: #e4e3df;
  --series-1: #2a78d6;  /* blue   — ftl   */
  --series-2: #1baf7a;  /* aqua   — mrsm  */
  --series-3: #eda100;  /* yellow — across */
  background: var(--surface-1);
  color: var(--text-primary);
  font: 14px/1.45 system-ui, sans-serif;
  max-width: 960px;
  margin: 0 auto;
  padding: 24px;
}
@media (prefers-color-scheme: dark) {
  .viz-root {
    --surface-1: #1a1a19;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --grid: #34332f;
    --series-1: #3987e5;
    --series-2: #199e70;
    --series-3: #c98500;
  }
}
.viz-root h1 { font-size: 22px; }
.viz-root h2 { font-size: 16px; margin: 28px 0 4px; }
.viz-root p.note { color: var(--text-secondary); margin: 2px 0 10px; }
.viz-legend { display: flex; gap: 16px; margin: 6px 0; }
.viz-legend span { display: inline-flex; align-items: center; gap: 6px;
                   color: var(--text-secondary); }
.viz-legend i { width: 10px; height: 10px; border-radius: 3px;
                display: inline-block; }
table.viz-table { border-collapse: collapse; margin: 8px 0 20px;
                  font-variant-numeric: tabular-nums; }
table.viz-table th, table.viz-table td {
  padding: 3px 10px; text-align: right;
  border-bottom: 1px solid var(--grid); }
table.viz-table th:first-child, table.viz-table td:first-child {
  text-align: left; }
"""


def _fmt(v: float) -> str:
    if not math.isfinite(v):
        return "—"
    return f"{v:.3f}" if abs(v) < 100 else f"{v:,.0f}"


def _nice_max(values: Sequence[float]) -> float:
    finite = [v for v in values if math.isfinite(v)]
    peak = max(finite) if finite else 1.0
    for candidate in (0.5, 1.0, 1.2, 1.5, 2.0, 3.0, 5.0, 10.0):
        if peak <= candidate:
            return candidate
    mag = 10 ** math.floor(math.log10(peak))
    for mult in (1, 2, 5, 10):
        if peak <= mag * mult:
            return mag * mult
    return peak


def _series_var(name: str, index: int) -> str:
    """CSS var for a series: schemes keep their fixed slot (color
    follows the entity); other series take slots in order."""
    if name in SERIES_VARS:
        return SERIES_VARS[name]
    return f"--series-{(index % 3) + 1}"


def grouped_bar_svg(
    categories: Sequence[str],
    series: Mapping[str, Sequence[float]],
    *,
    baseline: float | None = None,
    width: int = 720,
    height: int = 260,
) -> str:
    """A grouped bar chart: one group per category, one bar per series.

    ``baseline`` draws a reference hairline (e.g. 1.0 for normalised
    charts).  Returns an ``<svg>`` string that inherits the CSS custom
    properties of an enclosing ``.viz-root``.
    """
    margin_l, margin_r, margin_t, margin_b = 46, 12, 8, 26
    plot_w = width - margin_l - margin_r
    plot_h = height - margin_t - margin_b
    all_vals = [v for vals in series.values() for v in vals]
    y_max = _nice_max(all_vals + ([baseline] if baseline else []))

    def y(v: float) -> float:
        return margin_t + plot_h * (1 - v / y_max)

    n_groups = max(1, len(categories))
    n_series = max(1, len(series))
    group_w = plot_w / n_groups
    gap = 2  # surface gap between adjacent bars
    bar_w = min(24.0, (group_w * 0.7 - gap * (n_series - 1)) / n_series)
    cluster_w = bar_w * n_series + gap * (n_series - 1)

    parts = [
        f'<svg role="img" xmlns="http://www.w3.org/2000/svg" '
        f'viewBox="0 0 {width} {height}" '
        f'width="{width}" height="{height}">'
    ]
    # recessive hairline grid + ticks (4 steps)
    for i in range(5):
        gv = y_max * i / 4
        gy = y(gv)
        parts.append(
            f'<line x1="{margin_l}" y1="{gy:.1f}" x2="{width - margin_r}" '
            f'y2="{gy:.1f}" stroke="var(--grid)" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{margin_l - 6}" y="{gy + 4:.1f}" text-anchor="end" '
            f'font-size="11" fill="var(--text-secondary)">{gv:g}</text>'
        )
    if baseline is not None:
        by = y(baseline)
        parts.append(
            f'<line x1="{margin_l}" y1="{by:.1f}" x2="{width - margin_r}" '
            f'y2="{by:.1f}" stroke="var(--text-secondary)" '
            f'stroke-width="1" stroke-dasharray="none"/>'
        )
    base_y = y(0)
    for gi, cat in enumerate(categories):
        x0 = margin_l + gi * group_w + (group_w - cluster_w) / 2
        for si, (sname, vals) in enumerate(series.items()):
            v = vals[gi]
            if not math.isfinite(v):
                continue  # degenerate normalisation; the table shows it
            bx = x0 + si * (bar_w + gap)
            top = y(v)
            h = max(0.0, base_y - top)
            r = min(4.0, bar_w / 2, h)  # rounded data-end, square baseline
            var = _series_var(sname, si)
            label = _html.escape(f"{cat} · {sname}: {_fmt(v)}")
            parts.append(
                f'<path d="M{bx:.1f},{base_y:.1f} V{top + r:.1f} '
                f"Q{bx:.1f},{top:.1f} {bx + r:.1f},{top:.1f} "
                f"H{bx + bar_w - r:.1f} "
                f"Q{bx + bar_w:.1f},{top:.1f} {bx + bar_w:.1f},{top + r:.1f} "
                f'V{base_y:.1f} Z" fill="var({var})">'
                f"<title>{label}</title></path>"
            )
        parts.append(
            f'<text x="{margin_l + gi * group_w + group_w / 2:.1f}" '
            f'y="{height - 8}" text-anchor="middle" font-size="11" '
            f'fill="var(--text-secondary)">{_html.escape(str(cat))}</text>'
        )
    # baseline axis
    parts.append(
        f'<line x1="{margin_l}" y1="{base_y:.1f}" x2="{width - margin_r}" '
        f'y2="{base_y:.1f}" stroke="var(--text-secondary)" stroke-width="1"/>'
    )
    parts.append("</svg>")
    return "".join(parts)


#: fixed palette for stacked segments (phases are an 11-way vocabulary,
#: beyond the three scheme slots); standalone SVGs can't rely on the
#: report's CSS custom properties, so these are literal hex values
_STACK_PALETTE = (
    "#2a78d6", "#1baf7a", "#eda100", "#d0582b", "#7b5cd6",
    "#2aa8c4", "#c23f86", "#7a8b2a", "#8a6d4f", "#5b6770", "#9aa53f",
)

#: standalone-SVG ink colors (no enclosing .viz-root to inherit from)
_INK = "#0b0b0b"
_INK_SOFT = "#52514e"
_GRID = "#e4e3df"


def stacked_bar_svg(
    categories: Sequence[str],
    series: Mapping[str, Sequence[float]],
    *,
    title: str = "",
    unit: str = "ms",
    width: int = 760,
    height: int = 300,
) -> str:
    """A stacked bar chart: one bar per category, one segment per series
    (the paper's Fig. 4 latency-breakdown view).

    ``series`` maps a segment name (e.g. an attribution phase) to one
    value per category; segments stack bottom-up in mapping order.
    Returns a *self-contained* ``<svg>`` string — colors are literal,
    not CSS custom properties, so the file renders outside the HTML
    report (``repro profile`` writes it standalone).
    """
    margin_l, margin_r, margin_t, margin_b = 56, 160, 26, 26
    plot_w = width - margin_l - margin_r
    plot_h = height - margin_t - margin_b
    totals = [
        sum(vals[gi] for vals in series.values() if math.isfinite(vals[gi]))
        for gi in range(len(categories))
    ]
    y_max = _nice_max(totals)

    def y(v: float) -> float:
        return margin_t + plot_h * (1 - v / y_max)

    n_groups = max(1, len(categories))
    group_w = plot_w / n_groups
    bar_w = min(40.0, group_w * 0.6)

    parts = [
        f'<svg role="img" xmlns="http://www.w3.org/2000/svg" '
        f'viewBox="0 0 {width} {height}" '
        f'width="{width}" height="{height}">'
    ]
    if title:
        parts.append(
            f'<text x="{margin_l}" y="16" font-size="13" '
            f'font-family="system-ui, sans-serif" fill="{_INK}">'
            f"{_html.escape(title)}</text>"
        )
    for i in range(5):
        gv = y_max * i / 4
        gy = y(gv)
        parts.append(
            f'<line x1="{margin_l}" y1="{gy:.1f}" x2="{width - margin_r}" '
            f'y2="{gy:.1f}" stroke="{_GRID}" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{margin_l - 6}" y="{gy + 4:.1f}" text-anchor="end" '
            f'font-size="11" font-family="system-ui, sans-serif" '
            f'fill="{_INK_SOFT}">{gv:g}</text>'
        )
    base_y = y(0)
    names = list(series)
    for gi, cat in enumerate(categories):
        bx = margin_l + gi * group_w + (group_w - bar_w) / 2
        level = 0.0
        for si, sname in enumerate(names):
            v = series[sname][gi]
            if not math.isfinite(v) or v <= 0:
                continue
            y1 = y(level + v)
            h = y(level) - y1
            color = _STACK_PALETTE[si % len(_STACK_PALETTE)]
            label = _html.escape(f"{cat} · {sname}: {_fmt(v)} {unit}")
            parts.append(
                f'<rect x="{bx:.1f}" y="{y1:.1f}" width="{bar_w:.1f}" '
                f'height="{h:.1f}" fill="{color}">'
                f"<title>{label}</title></rect>"
            )
            level += v
        parts.append(
            f'<text x="{margin_l + gi * group_w + group_w / 2:.1f}" '
            f'y="{height - 8}" text-anchor="middle" font-size="11" '
            f'font-family="system-ui, sans-serif" fill="{_INK_SOFT}">'
            f"{_html.escape(str(cat))}</text>"
        )
    parts.append(
        f'<line x1="{margin_l}" y1="{base_y:.1f}" x2="{width - margin_r}" '
        f'y2="{base_y:.1f}" stroke="{_INK_SOFT}" stroke-width="1"/>'
    )
    lx = width - margin_r + 14
    for si, sname in enumerate(names):
        ly = margin_t + si * 17
        color = _STACK_PALETTE[si % len(_STACK_PALETTE)]
        parts.append(
            f'<rect x="{lx}" y="{ly:.1f}" width="10" height="10" rx="3" '
            f'fill="{color}"/>'
        )
        parts.append(
            f'<text x="{lx + 15}" y="{ly + 9:.1f}" font-size="11" '
            f'font-family="system-ui, sans-serif" fill="{_INK_SOFT}">'
            f"{_html.escape(sname)}</text>"
        )
    parts.append("</svg>")
    return "".join(parts)


def legend_html(series_names: Sequence[str]) -> str:
    """Swatch legend (always present for two or more series)."""
    if len(series_names) < 2:
        return ""
    spans = [
        f'<span><i style="background:var({_series_var(s, i)})"></i>'
        f"{_html.escape(s)}</span>"
        for i, s in enumerate(series_names)
    ]
    return f'<div class="viz-legend">{"".join(spans)}</div>'


def table_html(
    categories: Sequence[str], series: Mapping[str, Sequence[float]]
) -> str:
    """The data table under each chart (the contrast-relief channel)."""
    head = "".join(f"<th>{_html.escape(s)}</th>" for s in series)
    rows = []
    for gi, cat in enumerate(categories):
        cells = "".join(f"<td>{_fmt(vals[gi])}</td>" for vals in series.values())
        rows.append(f"<tr><td>{_html.escape(str(cat))}</td>{cells}</tr>")
    return (
        f'<table class="viz-table"><thead><tr><th></th>{head}</tr></thead>'
        f'<tbody>{"".join(rows)}</tbody></table>'
    )


def chart_section(
    title: str,
    note: str,
    categories: Sequence[str],
    series: Mapping[str, Sequence[float]],
    *,
    baseline: float | None = None,
) -> str:
    """One report section: heading, note, legend, chart, data table."""
    return (
        f"<h2>{_html.escape(title)}</h2>"
        f'<p class="note">{_html.escape(note)}</p>'
        + legend_html(list(series))
        + grouped_bar_svg(categories, series, baseline=baseline)
        + table_html(categories, series)
    )


def render_report_html(ctx) -> str:
    """Build the full figure-reproduction HTML report for a context.

    Covers the normalised scheme comparisons (Figs. 9, 10, 11, 12b),
    the across-page ratio sweeps (Figs. 2 summary and 13) and the
    page-size sweep (Fig. 14a).
    """
    from ..config import SCHEMES
    from ..units import KIB
    from . import figures as F

    fig9 = F.fig9(ctx)
    fig10 = F.fig10(ctx)
    fig11 = F.fig11(ctx)
    fig12 = F.fig12(ctx)
    fig13 = F.fig13(ctx)
    fig14 = F.fig14(ctx)

    luns = ctx.lun_names()

    def rows_from(norm_rows, order=SCHEMES):
        return {s: [norm_rows[n][s] for n in luns] for s in order}

    def rows_from_lists(list_rows, order=SCHEMES):
        return {
            s: [list_rows[n][list(SCHEMES).index(s)] for n in luns]
            for s in order
        }

    sections = [
        chart_section(
            "Fig. 9c — normalised overall I/O time",
            "Lower is better; the hairline marks the baseline FTL (1.0).",
            luns,
            rows_from(fig9.series["io"]),
            baseline=1.0,
        ),
        chart_section(
            "Fig. 10a — normalised flash write count",
            "Across-FTL issues the fewest programs; MRSM adds map writes.",
            luns,
            rows_from_lists(fig10.series["writes"]),
            baseline=1.0,
        ),
        chart_section(
            "Fig. 11 — normalised erase count",
            "The SSD-lifetime indicator (paper: across -13.3% vs FTL).",
            luns,
            rows_from(fig11.series),
            baseline=1.0,
        ),
        chart_section(
            "Fig. 12b — normalised DRAM accesses",
            "MRSM's tree lookups cost ~32x the flat tables' touches.",
            luns,
            rows_from_lists(fig12.series["dram"]),
            baseline=1.0,
        ),
        chart_section(
            "Fig. 13 — across-page ratio vs flash page size",
            "The ratio falls as pages grow (8 KiB column = Table 2).",
            luns,
            {
                "4KB": [fig13.series[n][0] for n in luns],
                "8KB": [fig13.series[n][1] for n in luns],
                "16KB": [fig13.series[n][2] for n in luns],
            },
        ),
        chart_section(
            "Fig. 14a — Across-FTL normalised I/O time per page size",
            "The re-alignment advantage holds at every page size.",
            [f"{p // KIB}KB" for p in F.PAGE_SIZES],
            {
                "across": [
                    _geomean_across(fig14.series[f"{p // KIB}KB"]["io"])
                    for p in F.PAGE_SIZES
                ]
            },
            baseline=1.0,
        ),
    ]
    body = "".join(sections)
    return (
        "<!doctype html><html><head><meta charset='utf-8'>"
        "<title>Across-FTL reproduction report</title>"
        f"<style>{_CSS}</style></head>"
        '<body><div class="viz-root">'
        "<h1>Across-FTL reproduction — figure report</h1>"
        f'<p class="note">Device: {_html.escape(ctx.cfg.summary())}. '
        f"Workload scale {ctx.scale:g}. Values normalised to the baseline "
        "FTL where a 1.0 hairline is drawn.</p>"
        f"{body}</div></body></html>"
    )


def _geomean_across(io_rows) -> float:
    from ..metrics.report import geomean

    return geomean([io_rows[n]["across"] for n in io_rows])
