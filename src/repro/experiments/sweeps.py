"""Generic parameter sweeps over device/workload knobs.

The paper sweeps the flash page size (Figs. 13/14); a library user
will want to sweep more — over-provisioning, GC threshold, cache size,
across-page share, queue depth — and see how each scheme responds.
:func:`sweep_config` handles any :class:`SSDConfig` field;
:func:`sweep_workload` any :class:`SyntheticSpec` field; both return a
:class:`SweepResult` whose table renders like the paper's figures.

Every sweep point is an independent fresh-device run, so all sweeps
accept ``jobs`` (process-pool fan-out) and ``store`` (persistent run
cache) and dispatch through
:func:`repro.experiments.parallel.execute_runs`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Sequence

from ..config import SCHEMES, SimConfig, SSDConfig
from ..metrics.report import SimulationReport, render_table
from ..traces.model import Trace
from ..traces.synthetic import SyntheticSpec, generate_trace
from .parallel import ResultStore, RunSpec, execute_runs

MetricFn = Callable[[SimulationReport], float]


@dataclass
class SweepResult:
    """Outcome of one sweep: metric values per (point, scheme)."""

    parameter: str
    points: list[Any]
    metric: str
    #: values[point_label][scheme]
    values: dict[str, dict[str, float]]

    def rendered(self) -> str:
        """ASCII table of the sweep (points x schemes)."""
        schemes = list(next(iter(self.values.values()))) if self.values else []
        rows = {
            label: [vals[s] for s in schemes]
            for label, vals in self.values.items()
        }
        return render_table(
            f"sweep of {self.parameter} — {self.metric}",
            schemes,
            rows,
        )

    def scheme_series(self, scheme: str) -> list[float]:
        """One scheme's metric values in sweep-point order."""
        return [self.values[str(p)][scheme] for p in self.points]


def _metric_fn(metric: str | MetricFn) -> MetricFn:
    if callable(metric):
        return metric
    return lambda rep: rep.metric(metric)


def _run_grid(
    field: str,
    points: Sequence[Any],
    grid: Sequence[tuple[str, RunSpec]],
    schemes: Sequence[str],
    metric: str | MetricFn,
    jobs: int,
    store: ResultStore | None,
    progress: bool,
) -> SweepResult:
    """Execute a (point x scheme) spec grid and tabulate the metric."""
    fn = _metric_fn(metric)
    outcome = execute_runs(
        [spec for _, spec in grid], jobs=jobs, store=store, progress=progress
    )
    values: dict[str, dict[str, float]] = {}
    for (label, spec), report in zip(grid, outcome.reports):
        values.setdefault(label, {})[spec.scheme] = fn(report)
    return SweepResult(
        field, list(points), getattr(metric, "__name__", str(metric)), values
    )


def sweep_config(
    field: str,
    points: Sequence[Any],
    trace: Trace,
    base_cfg: SSDConfig,
    sim_cfg: SimConfig | None = None,
    *,
    metric: str | MetricFn = "total_io_ms",
    schemes: Sequence[str] = SCHEMES,
    jobs: int = 1,
    store: ResultStore | None = None,
    progress: bool = False,
) -> SweepResult:
    """Run every scheme at every value of one ``SSDConfig`` field."""
    grid = []
    for point in points:
        cfg = base_cfg.replace(**{field: point})
        for s in schemes:
            grid.append((str(point), RunSpec.make(s, trace, cfg, sim_cfg)))
    return _run_grid(
        field, points, grid, schemes, metric, jobs, store, progress
    )


def sweep_sim(
    field: str,
    points: Sequence[Any],
    trace: Trace,
    cfg: SSDConfig,
    base_sim: SimConfig | None = None,
    *,
    metric: str | MetricFn = "total_io_ms",
    schemes: Sequence[str] = SCHEMES,
    jobs: int = 1,
    store: ResultStore | None = None,
    progress: bool = False,
) -> SweepResult:
    """Sweep one :class:`SimConfig` field (queue depth, aging, ...)."""
    base = base_sim if base_sim is not None else SimConfig()
    grid = []
    for point in points:
        sim_cfg = replace(base, **{field: point})
        sim_cfg.validate()
        for s in schemes:
            grid.append((str(point), RunSpec.make(s, trace, cfg, sim_cfg)))
    return _run_grid(
        field, points, grid, schemes, metric, jobs, store, progress
    )


def sweep_workload(
    field: str,
    points: Sequence[Any],
    base_spec: SyntheticSpec,
    cfg: SSDConfig,
    sim_cfg: SimConfig | None = None,
    *,
    metric: str | MetricFn = "total_io_ms",
    schemes: Sequence[str] = SCHEMES,
    jobs: int = 1,
    store: ResultStore | None = None,
    progress: bool = False,
) -> SweepResult:
    """Sweep one workload knob (e.g. ``across_ratio``), regenerating
    the trace at each point."""
    grid = []
    for point in points:
        spec = replace(base_spec, **{field: point})
        spec.validate()
        trace = generate_trace(spec)
        for s in schemes:
            grid.append((str(point), RunSpec.make(s, trace, cfg, sim_cfg)))
    return _run_grid(
        field, points, grid, schemes, metric, jobs, store, progress
    )
