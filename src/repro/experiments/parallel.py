"""Parallel sweep execution and the persistent result store.

The paper's figures all come from embarrassingly parallel sweeps —
every (trace, scheme, page size) point runs on a fresh device with no
shared state — yet the runner executed them strictly serially.  This
module supplies the missing execution layer:

* :func:`run_key` — a stable content hash of everything that determines
  a run's outcome (device config, sim config, the trace bytes, scheme,
  FTL kwargs).  Two runs with equal keys produce equal reports.
* :class:`ResultStore` — an on-disk JSON store of completed
  :class:`~repro.metrics.report.SimulationReport` objects keyed by
  :func:`run_key`, shared across processes *and* sessions, so repeated
  bench invocations and figure regeneration reuse finished runs.
* :func:`execute_runs` — fans a batch of :class:`RunSpec` out across
  cores with :class:`concurrent.futures.ProcessPoolExecutor`.  Workers
  are plain fresh-device replays (same seeds, no shared mutable state),
  so their reports are identical to in-process runs; a determinism test
  enforces this.  Workers run with ``progress`` forced off and the
  parent renders a single sweep-level progress line instead.

Filename helpers (:func:`sanitize_fragment`, :func:`run_filename`) are
shared with :meth:`ExperimentContext.save_results` so archives and the
store speak one naming scheme.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
import re
import sys
import tempfile
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping, Optional, Sequence

import numpy as np

from ..config import SimConfig, SSDConfig
from ..errors import SweepError
from ..metrics.report import SimulationReport
from ..traces.model import Trace

__all__ = [
    "RunSpec",
    "ResultStore",
    "SweepError",
    "SweepOutcome",
    "execute_runs",
    "run_key",
    "run_filename",
    "sanitize_fragment",
    "trace_fingerprint",
]


# ----------------------------------------------------------------------
# naming
# ----------------------------------------------------------------------
_FRAGMENT_RE = re.compile(r"[^A-Za-z0-9._-]+")


def sanitize_fragment(value: Any) -> str:
    """File-name-safe rendering of one config/kwarg value.

    Anything outside ``[A-Za-z0-9._-]`` collapses to a single ``-`` so
    raw FTL kwargs (floats, tuples, paths...) can never produce an
    invalid or directory-escaping archive filename.
    """
    text = _FRAGMENT_RE.sub("-", str(value)).strip("-.")
    return text or "x"


def run_filename(
    trace_name: str,
    scheme: str,
    page_size_bytes: int,
    ftl_kw: Mapping[str, Any] | None = None,
) -> str:
    """The shared ``<trace>__<scheme>__<pageKiB>[__kwargs]`` stem used
    by both :class:`ResultStore` files and ``save_results`` archives."""
    stem = (
        f"{sanitize_fragment(trace_name)}__{sanitize_fragment(scheme)}"
        f"__{page_size_bytes // 1024}k"
    )
    if ftl_kw:
        stem += "__" + "_".join(
            f"{sanitize_fragment(k)}-{sanitize_fragment(v)}"
            for k, v in sorted(ftl_kw.items())
        )
    return stem


# ----------------------------------------------------------------------
# run identity
# ----------------------------------------------------------------------
def trace_fingerprint(trace: Trace) -> str:
    """Content hash of a trace (name + the four request arrays)."""
    h = hashlib.sha256()
    h.update(trace.name.encode())
    for arr in (trace.times, trace.ops, trace.offsets, trace.sizes):
        h.update(b"|")
        h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


def _sim_cfg_doc(sim_cfg: SimConfig | None) -> dict | None:
    """Canonical dict of a SimConfig, minus output-only knobs.

    ``progress`` is cosmetic (a stderr line) and must not split the
    cache key; everything else — aging, seed, queue depth, oracle,
    observability — can change the report and stays in.
    """
    if sim_cfg is None:
        return None
    doc = dataclasses.asdict(sim_cfg)
    doc.pop("progress", None)
    return doc


def run_key(
    scheme: str,
    trace: Trace,
    cfg: SSDConfig,
    sim_cfg: SimConfig | None = None,
    ftl_kw: Mapping[str, Any] | None = None,
) -> str:
    """Stable hash of everything that determines a run's outcome."""
    doc = {
        "scheme": scheme,
        "trace": trace_fingerprint(trace),
        "cfg": dataclasses.asdict(cfg),
        "sim_cfg": _sim_cfg_doc(sim_cfg),
        "ftl_kw": {str(k): repr(v) for k, v in (ftl_kw or {}).items()},
    }
    blob = json.dumps(doc, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()


# ----------------------------------------------------------------------
# run specification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunSpec:
    """One independent (trace, scheme, config) simulation to execute.

    ``ftl_kw`` is a sorted tuple of (name, value) pairs so the spec is
    hashable and pickles compactly to worker processes.
    """

    scheme: str
    trace: Trace
    cfg: SSDConfig
    sim_cfg: SimConfig | None = None
    ftl_kw: tuple = ()

    @classmethod
    def make(
        cls,
        scheme: str,
        trace: Trace,
        cfg: SSDConfig,
        sim_cfg: SimConfig | None = None,
        **ftl_kw,
    ) -> "RunSpec":
        return cls(scheme, trace, cfg, sim_cfg, tuple(sorted(ftl_kw.items())))

    @property
    def kwargs(self) -> dict:
        return dict(self.ftl_kw)

    @property
    def label(self) -> str:
        """Human-readable stem (also the store filename prefix)."""
        return run_filename(
            self.trace.name, self.scheme, self.cfg.page_size_bytes, self.kwargs
        )

    def key(self) -> str:
        """The run's :func:`run_key` (the store / dedup identity)."""
        return run_key(
            self.scheme, self.trace, self.cfg, self.sim_cfg, self.kwargs
        )


def _execute_spec(spec: RunSpec) -> SimulationReport:
    """Run one spec on a fresh device (the worker entry point).

    Workers force ``progress`` off: with N processes interleaving on one
    stderr the per-run line would be garbage — the parent renders a
    single sweep-level progress bar instead.
    """
    from .runner import run_trace  # deferred: runner imports this module

    sim_cfg = spec.sim_cfg
    if sim_cfg is not None and sim_cfg.progress:
        sim_cfg = dataclasses.replace(sim_cfg, progress=False)
    return run_trace(spec.scheme, spec.trace, spec.cfg, sim_cfg, **spec.kwargs)


# ----------------------------------------------------------------------
# the persistent result store
# ----------------------------------------------------------------------
class ResultStore:
    """On-disk cache of completed runs, keyed by :func:`run_key`.

    One JSON document per run under ``root``, named
    ``<trace>__<scheme>__<pageKiB>[__kwargs]__<key12>.json`` — the same
    human-readable stem ``save_results`` archives use, suffixed with the
    key prefix so distinct configurations of the same (trace, scheme,
    page) never collide.  Writes are atomic (temp file + ``os.replace``)
    so concurrent workers and parallel bench sessions can share a store
    directory safely.
    """

    STORE_VERSION = 1
    #: hex digits of the run key carried in the filename
    KEY_DIGITS = 12

    def __init__(self, root):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.puts = 0
        #: results served after waiting on another thread's in-flight
        #: simulation of the same key (single-flight dedup)
        self.coalesced = 0
        #: guards the stats counters and the in-flight registry; the
        #: store is shared by threaded callers (the serve layer fans
        #: requests out across a thread pool onto one store)
        self._lock = threading.Lock()
        #: run key -> Event set when the in-flight computation finishes
        self._inflight: dict[str, threading.Event] = {}

    # -- paths -----------------------------------------------------------
    def path_for(self, spec: RunSpec) -> Path:
        """Where ``spec``'s report lives (whether or not it exists)."""
        return self._path(spec.label, spec.key())

    def _path(self, label: str, key: str) -> Path:
        return self.root / f"{label}__{key[: self.KEY_DIGITS]}.json"

    # -- access ----------------------------------------------------------
    def _load(self, spec: RunSpec) -> Optional[dict]:
        """The one shared lookup path: the parsed document for ``spec``,
        or None on anything wrong (missing, corrupt, key mismatch)."""
        path = self.path_for(spec)
        try:
            doc = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if doc.get("key") != spec.key():
            return None
        return doc

    def get(self, spec: RunSpec) -> Optional[SimulationReport]:
        """The stored report for ``spec``, or None (corrupt or
        key-mismatched files count as misses, never as errors)."""
        doc = self._load(spec)
        if doc is not None:
            try:
                report = SimulationReport.from_dict(doc["report"])
            except (KeyError, TypeError, ValueError):
                report = None
        else:
            report = None
        with self._lock:
            if report is None:
                self.misses += 1
            else:
                self.hits += 1
        return report

    def put(self, spec: RunSpec, report: SimulationReport) -> Path:
        """Persist one finished run (atomic, last-writer-wins)."""
        path = self.path_for(spec)
        doc = {
            "store_version": self.STORE_VERSION,
            "key": spec.key(),
            "label": spec.label,
            "scheme": spec.scheme,
            "trace": spec.trace.name,
            "page_size_bytes": spec.cfg.page_size_bytes,
            "ftl_kwargs": {k: repr(v) for k, v in spec.ftl_kw},
            "report": report.to_dict(),
        }
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(doc, fh, indent=1)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        with self._lock:
            self.puts += 1
        return path

    def __contains__(self, spec: RunSpec) -> bool:
        return self._load(spec) is not None

    # -- single-flight ---------------------------------------------------
    def _claim(self, key: str) -> Optional[threading.Event]:
        """Try to become the computing thread for ``key``.

        Returns None when the caller now owns the computation (it must
        call :meth:`_release` when done, success or not), or the Event
        of the thread already computing it (wait on it, then re-check
        the store)."""
        with self._lock:
            ev = self._inflight.get(key)
            if ev is None:
                self._inflight[key] = threading.Event()
                return None
            return ev

    def _release(self, key: str) -> None:
        """Drop the in-flight claim on ``key`` and wake every waiter."""
        with self._lock:
            ev = self._inflight.pop(key, None)
        if ev is not None:
            ev.set()

    def get_or_run(
        self,
        spec: RunSpec,
        runner: Callable[["RunSpec"], SimulationReport] | None = None,
    ) -> tuple[SimulationReport, bool]:
        """Memoised execution with single-flight dedup.

        Returns ``(report, cached)``.  When several threads ask for the
        same key concurrently, exactly one simulates (``runner``,
        default: the in-process worker entry point) while the rest wait
        on its completion and then read the stored result — two
        in-flight identical requests never simulate twice.  If the
        computing thread fails, one waiter takes over (a deterministic
        failure then propagates to it too).
        """
        run = runner if runner is not None else _execute_spec
        key = spec.key()
        waited = False
        while True:
            report = self.get(spec)
            if report is not None:
                if waited:
                    with self._lock:
                        self.coalesced += 1
                return report, True
            ev = self._claim(key)
            if ev is not None:
                ev.wait()
                waited = True
                continue
            try:
                report = run(spec)
                self.put(spec, report)
                return report, False
            finally:
                self._release(key)

    def stats(self) -> dict[str, int]:
        """Thread-safe snapshot of the access counters."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "puts": self.puts,
                "coalesced": self.coalesced,
                "inflight": len(self._inflight),
            }

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def index(self) -> list[dict]:
        """Metadata of every stored run (no reports parsed)."""
        out = []
        for path in sorted(self.root.glob("*.json")):
            try:
                doc = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            out.append(
                {
                    "file": path.name,
                    "key": doc.get("key"),
                    "scheme": doc.get("scheme"),
                    "trace": doc.get("trace"),
                    "page_size_bytes": doc.get("page_size_bytes"),
                    "ftl_kwargs": doc.get("ftl_kwargs", {}),
                }
            )
        return out

    def clear(self) -> int:
        """Delete every stored run; returns how many were removed."""
        n = 0
        for path in self.root.glob("*.json"):
            try:
                path.unlink()
                n += 1
            except OSError:
                pass
        return n


# ----------------------------------------------------------------------
# fan-out execution
# ----------------------------------------------------------------------
@dataclass
class SweepOutcome:
    """Reports of one batch, in spec order, plus execution accounting.

    ``reports[i]`` is None when spec ``i`` failed — its ``(label,
    exception)`` pair is in ``failures``.  With the default
    ``on_error="raise"`` a failing batch raises :class:`SweepError`
    instead of returning, but only *after* every sibling finished and
    was persisted, so the outcome is only ever partially populated for
    ``on_error="continue"`` callers who asked to inspect failures.
    """

    reports: list[Optional[SimulationReport]] = field(default_factory=list)
    #: simulations actually executed in this call
    executed: int = 0
    #: results served from the :class:`ResultStore`
    cached: int = 0
    #: ``(RunSpec.label, exception)`` of every failed spec, in
    #: completion order
    failures: list[tuple[str, BaseException]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every spec produced a report."""
        return not self.failures

    def raise_if_failed(self) -> None:
        """Raise :class:`SweepError` when any spec failed."""
        if self.failures:
            err = SweepError(self.failures)
            raise err from self.failures[0][1]

    def __iter__(self):
        return iter(self.reports)

    def __len__(self) -> int:
        return len(self.reports)

    def __getitem__(self, i):
        return self.reports[i]


def _sweep_progress(done: int, total: int, label: str, final: bool = False):
    """One-line sweep progress bar on stderr (the parent's view while
    workers run with their own progress suppressed)."""
    width = 24
    filled = int(width * done / total) if total else width
    bar = "#" * filled + "-" * (width - filled)
    sys.stderr.write(f"\r[sweep {bar}] {done}/{total} {label:<40.40s}")
    if final:
        sys.stderr.write("\n")
    sys.stderr.flush()


def execute_runs(
    specs: Sequence[RunSpec],
    *,
    jobs: int = 1,
    store: ResultStore | None = None,
    progress: bool = False,
    fresh: bool = False,
    on_error: str = "raise",
) -> SweepOutcome:
    """Execute a batch of independent runs, reusing and filling ``store``.

    ``jobs`` > 1 fans the cache-missing specs out across a process pool
    (pinned to the ``spawn`` start method so Linux and macOS replay
    identically and fork-under-threads never happens); ``jobs`` <= 1
    runs them in-process (identical results either way — each run is a
    fresh seeded device).  ``fresh=True`` skips store lookups (but
    still persists results), for forced re-measurement.  Reports come
    back in spec order.

    Worker exceptions are caught per-future and recorded as
    ``(spec.label, exception)`` in :attr:`SweepOutcome.failures`;
    completed sibling results are always stored first.  With the
    default ``on_error="raise"`` a failing batch then raises
    :class:`~repro.errors.SweepError`; ``on_error="continue"`` returns
    the partial outcome (failed slots hold None) for callers — like the
    fleet serve loop — that must survive poisoned specs.

    When ``store`` is set, in-flight keys are deduplicated against
    concurrent callers of the same store (single-flight): a spec
    another thread is already simulating is awaited and then served
    from the store instead of being simulated twice.
    """
    if on_error not in ("raise", "continue"):
        raise ValueError(
            f"on_error must be 'raise' or 'continue', got {on_error!r}"
        )
    specs = list(specs)
    out = SweepOutcome(reports=[None] * len(specs))
    pending: list[int] = []
    for i, spec in enumerate(specs):
        report = None
        if store is not None and not fresh:
            report = store.get(spec)
        if report is not None:
            out.reports[i] = report
            out.cached += 1
        else:
            pending.append(i)
    total = len(specs)
    done = total - len(pending)
    if progress and total:
        _sweep_progress(done, total, "cached" if done else "starting")

    #: index -> exception, so same-batch duplicates of a failed leader
    #: can mirror its failure
    failed: dict[int, BaseException] = {}

    def _finish(i: int, report: SimulationReport) -> None:
        out.reports[i] = report
        out.executed += 1
        if store is not None:
            store.put(specs[i], report)

    def _fail(i: int, exc: BaseException) -> None:
        failed[i] = exc
        out.failures.append((specs[i].label, exc))

    # -- split pending into leaders (we simulate), waiters (another
    #    thread on this store is already simulating the key) and
    #    same-batch duplicates (resolved from their leader's slot)
    leaders: list[int] = []
    waiters: list[tuple[int, str, threading.Event]] = []
    dup_of: dict[int, int] = {}
    if store is not None and not fresh:
        first_for_key: dict[str, int] = {}
        for i in pending:
            key = specs[i].key()
            if key in first_for_key:
                dup_of[i] = first_for_key[key]
                continue
            ev = store._claim(key)
            if ev is None:
                first_for_key[key] = i
                leaders.append(i)
            else:
                waiters.append((i, key, ev))
    else:
        leaders = pending

    def _release(i: int) -> None:
        if store is not None and not fresh:
            store._release(specs[i].key())

    def _run_leader_inprocess(i: int) -> None:
        try:
            report = _execute_spec(specs[i])
        except Exception as exc:
            _fail(i, exc)
        else:
            _finish(i, report)
        finally:
            _release(i)

    if jobs > 1 and len(leaders) > 1:
        from concurrent.futures import ProcessPoolExecutor, as_completed

        workers = min(jobs, len(leaders))
        ctx = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(max_workers=workers, mp_context=ctx) as pool:
            futures = {
                pool.submit(_execute_spec, specs[i]): i for i in leaders
            }
            for fut in as_completed(futures):
                i = futures[fut]
                try:
                    report = fut.result()
                except Exception as exc:
                    _fail(i, exc)
                else:
                    _finish(i, report)
                finally:
                    _release(i)
                done += 1
                if progress:
                    _sweep_progress(done, total, specs[i].label)
    else:
        for i in leaders:
            _run_leader_inprocess(i)
            done += 1
            if progress:
                _sweep_progress(done, total, specs[i].label)

    # -- waiters: the other thread finished (or died); read its result
    #    from the store, taking over the computation if it failed
    for i, key, ev in waiters:
        while True:
            ev.wait()
            report = store.get(specs[i])
            if report is not None:
                out.reports[i] = report
                out.cached += 1
                with store._lock:
                    store.coalesced += 1
                break
            next_ev = store._claim(key)
            if next_ev is not None:
                ev = next_ev
                continue
            _run_leader_inprocess(i)
            break
        done += 1
        if progress:
            _sweep_progress(done, total, specs[i].label)

    # -- same-batch duplicates mirror their leader's outcome
    for i, leader in dup_of.items():
        if leader in failed:
            _fail(i, failed[leader])
        else:
            out.reports[i] = out.reports[leader]
            out.cached += 1
        done += 1
        if progress:
            _sweep_progress(done, total, specs[i].label)

    if progress and total:
        _sweep_progress(total, total, "done", final=True)
    if on_error == "raise":
        out.raise_if_failed()
    return out
