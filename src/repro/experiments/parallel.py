"""Parallel sweep execution and the persistent result store.

The paper's figures all come from embarrassingly parallel sweeps —
every (trace, scheme, page size) point runs on a fresh device with no
shared state — yet the runner executed them strictly serially.  This
module supplies the missing execution layer:

* :func:`run_key` — a stable content hash of everything that determines
  a run's outcome (device config, sim config, the trace bytes, scheme,
  FTL kwargs).  Two runs with equal keys produce equal reports.
* :class:`ResultStore` — an on-disk JSON store of completed
  :class:`~repro.metrics.report.SimulationReport` objects keyed by
  :func:`run_key`, shared across processes *and* sessions, so repeated
  bench invocations and figure regeneration reuse finished runs.
* :func:`execute_runs` — fans a batch of :class:`RunSpec` out across
  cores with :class:`concurrent.futures.ProcessPoolExecutor`.  Workers
  are plain fresh-device replays (same seeds, no shared mutable state),
  so their reports are identical to in-process runs; a determinism test
  enforces this.  Workers run with ``progress`` forced off and the
  parent renders a single sweep-level progress line instead.

Filename helpers (:func:`sanitize_fragment`, :func:`run_filename`) are
shared with :meth:`ExperimentContext.save_results` so archives and the
store speak one naming scheme.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import re
import sys
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Optional, Sequence

import numpy as np

from ..config import SimConfig, SSDConfig
from ..metrics.report import SimulationReport
from ..traces.model import Trace

__all__ = [
    "RunSpec",
    "ResultStore",
    "SweepOutcome",
    "execute_runs",
    "run_key",
    "run_filename",
    "sanitize_fragment",
    "trace_fingerprint",
]


# ----------------------------------------------------------------------
# naming
# ----------------------------------------------------------------------
_FRAGMENT_RE = re.compile(r"[^A-Za-z0-9._-]+")


def sanitize_fragment(value: Any) -> str:
    """File-name-safe rendering of one config/kwarg value.

    Anything outside ``[A-Za-z0-9._-]`` collapses to a single ``-`` so
    raw FTL kwargs (floats, tuples, paths...) can never produce an
    invalid or directory-escaping archive filename.
    """
    text = _FRAGMENT_RE.sub("-", str(value)).strip("-.")
    return text or "x"


def run_filename(
    trace_name: str,
    scheme: str,
    page_size_bytes: int,
    ftl_kw: Mapping[str, Any] | None = None,
) -> str:
    """The shared ``<trace>__<scheme>__<pageKiB>[__kwargs]`` stem used
    by both :class:`ResultStore` files and ``save_results`` archives."""
    stem = (
        f"{sanitize_fragment(trace_name)}__{sanitize_fragment(scheme)}"
        f"__{page_size_bytes // 1024}k"
    )
    if ftl_kw:
        stem += "__" + "_".join(
            f"{sanitize_fragment(k)}-{sanitize_fragment(v)}"
            for k, v in sorted(ftl_kw.items())
        )
    return stem


# ----------------------------------------------------------------------
# run identity
# ----------------------------------------------------------------------
def trace_fingerprint(trace: Trace) -> str:
    """Content hash of a trace (name + the four request arrays)."""
    h = hashlib.sha256()
    h.update(trace.name.encode())
    for arr in (trace.times, trace.ops, trace.offsets, trace.sizes):
        h.update(b"|")
        h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


def _sim_cfg_doc(sim_cfg: SimConfig | None) -> dict | None:
    """Canonical dict of a SimConfig, minus output-only knobs.

    ``progress`` is cosmetic (a stderr line) and must not split the
    cache key; everything else — aging, seed, queue depth, oracle,
    observability — can change the report and stays in.
    """
    if sim_cfg is None:
        return None
    doc = dataclasses.asdict(sim_cfg)
    doc.pop("progress", None)
    return doc


def run_key(
    scheme: str,
    trace: Trace,
    cfg: SSDConfig,
    sim_cfg: SimConfig | None = None,
    ftl_kw: Mapping[str, Any] | None = None,
) -> str:
    """Stable hash of everything that determines a run's outcome."""
    doc = {
        "scheme": scheme,
        "trace": trace_fingerprint(trace),
        "cfg": dataclasses.asdict(cfg),
        "sim_cfg": _sim_cfg_doc(sim_cfg),
        "ftl_kw": {str(k): repr(v) for k, v in (ftl_kw or {}).items()},
    }
    blob = json.dumps(doc, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()


# ----------------------------------------------------------------------
# run specification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunSpec:
    """One independent (trace, scheme, config) simulation to execute.

    ``ftl_kw`` is a sorted tuple of (name, value) pairs so the spec is
    hashable and pickles compactly to worker processes.
    """

    scheme: str
    trace: Trace
    cfg: SSDConfig
    sim_cfg: SimConfig | None = None
    ftl_kw: tuple = ()

    @classmethod
    def make(
        cls,
        scheme: str,
        trace: Trace,
        cfg: SSDConfig,
        sim_cfg: SimConfig | None = None,
        **ftl_kw,
    ) -> "RunSpec":
        return cls(scheme, trace, cfg, sim_cfg, tuple(sorted(ftl_kw.items())))

    @property
    def kwargs(self) -> dict:
        return dict(self.ftl_kw)

    @property
    def label(self) -> str:
        """Human-readable stem (also the store filename prefix)."""
        return run_filename(
            self.trace.name, self.scheme, self.cfg.page_size_bytes, self.kwargs
        )

    def key(self) -> str:
        """The run's :func:`run_key` (the store / dedup identity)."""
        return run_key(
            self.scheme, self.trace, self.cfg, self.sim_cfg, self.kwargs
        )


def _execute_spec(spec: RunSpec) -> SimulationReport:
    """Run one spec on a fresh device (the worker entry point).

    Workers force ``progress`` off: with N processes interleaving on one
    stderr the per-run line would be garbage — the parent renders a
    single sweep-level progress bar instead.
    """
    from .runner import run_trace  # deferred: runner imports this module

    sim_cfg = spec.sim_cfg
    if sim_cfg is not None and sim_cfg.progress:
        sim_cfg = dataclasses.replace(sim_cfg, progress=False)
    return run_trace(spec.scheme, spec.trace, spec.cfg, sim_cfg, **spec.kwargs)


# ----------------------------------------------------------------------
# the persistent result store
# ----------------------------------------------------------------------
class ResultStore:
    """On-disk cache of completed runs, keyed by :func:`run_key`.

    One JSON document per run under ``root``, named
    ``<trace>__<scheme>__<pageKiB>[__kwargs]__<key12>.json`` — the same
    human-readable stem ``save_results`` archives use, suffixed with the
    key prefix so distinct configurations of the same (trace, scheme,
    page) never collide.  Writes are atomic (temp file + ``os.replace``)
    so concurrent workers and parallel bench sessions can share a store
    directory safely.
    """

    STORE_VERSION = 1
    #: hex digits of the run key carried in the filename
    KEY_DIGITS = 12

    def __init__(self, root):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.puts = 0

    # -- paths -----------------------------------------------------------
    def path_for(self, spec: RunSpec) -> Path:
        """Where ``spec``'s report lives (whether or not it exists)."""
        return self._path(spec.label, spec.key())

    def _path(self, label: str, key: str) -> Path:
        return self.root / f"{label}__{key[: self.KEY_DIGITS]}.json"

    # -- access ----------------------------------------------------------
    def get(self, spec: RunSpec) -> Optional[SimulationReport]:
        """The stored report for ``spec``, or None (corrupt or
        key-mismatched files count as misses, never as errors)."""
        path = self.path_for(spec)
        try:
            doc = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if doc.get("key") != spec.key():
            self.misses += 1
            return None
        try:
            report = SimulationReport.from_dict(doc["report"])
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return report

    def put(self, spec: RunSpec, report: SimulationReport) -> Path:
        """Persist one finished run (atomic, last-writer-wins)."""
        path = self.path_for(spec)
        doc = {
            "store_version": self.STORE_VERSION,
            "key": spec.key(),
            "label": spec.label,
            "scheme": spec.scheme,
            "trace": spec.trace.name,
            "page_size_bytes": spec.cfg.page_size_bytes,
            "ftl_kwargs": {k: repr(v) for k, v in spec.ftl_kw},
            "report": report.to_dict(),
        }
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(doc, fh, indent=1)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.puts += 1
        return path

    def __contains__(self, spec: RunSpec) -> bool:
        path = self.path_for(spec)
        try:
            return json.loads(path.read_text()).get("key") == spec.key()
        except (OSError, ValueError):
            return False

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def index(self) -> list[dict]:
        """Metadata of every stored run (no reports parsed)."""
        out = []
        for path in sorted(self.root.glob("*.json")):
            try:
                doc = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            out.append(
                {
                    "file": path.name,
                    "key": doc.get("key"),
                    "scheme": doc.get("scheme"),
                    "trace": doc.get("trace"),
                    "page_size_bytes": doc.get("page_size_bytes"),
                    "ftl_kwargs": doc.get("ftl_kwargs", {}),
                }
            )
        return out

    def clear(self) -> int:
        """Delete every stored run; returns how many were removed."""
        n = 0
        for path in self.root.glob("*.json"):
            try:
                path.unlink()
                n += 1
            except OSError:
                pass
        return n


# ----------------------------------------------------------------------
# fan-out execution
# ----------------------------------------------------------------------
@dataclass
class SweepOutcome:
    """Reports of one batch, in spec order, plus execution accounting."""

    reports: list[SimulationReport] = field(default_factory=list)
    #: simulations actually executed in this call
    executed: int = 0
    #: results served from the :class:`ResultStore`
    cached: int = 0

    def __iter__(self):
        return iter(self.reports)

    def __len__(self) -> int:
        return len(self.reports)

    def __getitem__(self, i):
        return self.reports[i]


def _sweep_progress(done: int, total: int, label: str, final: bool = False):
    """One-line sweep progress bar on stderr (the parent's view while
    workers run with their own progress suppressed)."""
    width = 24
    filled = int(width * done / total) if total else width
    bar = "#" * filled + "-" * (width - filled)
    sys.stderr.write(f"\r[sweep {bar}] {done}/{total} {label:<40.40s}")
    if final:
        sys.stderr.write("\n")
    sys.stderr.flush()


def execute_runs(
    specs: Sequence[RunSpec],
    *,
    jobs: int = 1,
    store: ResultStore | None = None,
    progress: bool = False,
    fresh: bool = False,
) -> SweepOutcome:
    """Execute a batch of independent runs, reusing and filling ``store``.

    ``jobs`` > 1 fans the cache-missing specs out across a process pool;
    ``jobs`` <= 1 runs them in-process (identical results either way —
    each run is a fresh seeded device).  ``fresh=True`` skips store
    lookups (but still persists results), for forced re-measurement.
    Reports come back in spec order.
    """
    specs = list(specs)
    out = SweepOutcome(reports=[None] * len(specs))
    pending: list[int] = []
    for i, spec in enumerate(specs):
        report = None
        if store is not None and not fresh:
            report = store.get(spec)
        if report is not None:
            out.reports[i] = report
            out.cached += 1
        else:
            pending.append(i)
    total = len(specs)
    done = total - len(pending)
    if progress and total:
        _sweep_progress(done, total, "cached" if done else "starting")

    def _finish(i: int, report: SimulationReport) -> None:
        out.reports[i] = report
        out.executed += 1
        if store is not None:
            store.put(specs[i], report)

    if jobs > 1 and len(pending) > 1:
        from concurrent.futures import ProcessPoolExecutor, as_completed

        workers = min(jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_execute_spec, specs[i]): i for i in pending
            }
            for fut in as_completed(futures):
                i = futures[fut]
                _finish(i, fut.result())
                done += 1
                if progress:
                    _sweep_progress(done, total, specs[i].label)
    else:
        for i in pending:
            _finish(i, _execute_spec(specs[i]))
            done += 1
            if progress:
                _sweep_progress(done, total, specs[i].label)
    if progress and total:
        _sweep_progress(total, total, "done", final=True)
    return out
