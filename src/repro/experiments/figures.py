"""One function per paper figure/table.

Every ``figXX`` function takes an :class:`ExperimentContext`, runs (or
reuses) the simulations it needs, and returns a :class:`FigureResult`
whose ``series`` holds the same rows/series the paper plots and whose
``rendered`` string prints them side by side with the paper's reported
values where the paper states them.  The benchmark harness in
``benchmarks/`` wraps these, and EXPERIMENTS.md records the
paper-vs-measured comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..config import SCHEMES
from ..metrics.report import geomean, normalize, render_table
from ..traces.stats import across_page_ratio, characterize
from ..traces.synthetic import generate_trace, trace_collection
from ..units import KIB
from .runner import ExperimentContext
from .workloads import TABLE2_SPECS

PAGE_SIZES = (4 * KIB, 8 * KIB, 16 * KIB)


@dataclass
class FigureResult:
    """Structured output of one reproduced figure/table."""

    figure: str
    title: str
    series: dict[str, Any]
    rendered: str
    #: headline scalar(s) the paper quotes, paired with our measurement
    paper_vs_measured: dict[str, tuple[Any, Any]] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.rendered


# ----------------------------------------------------------------------
# Figure 2 — across-page access ratio over a trace collection
# ----------------------------------------------------------------------
def fig2(ctx: ExperimentContext, count: int = 61) -> FigureResult:
    """Across-page request ratio of ``count`` VDI-like traces at 8 KiB
    pages (paper Fig. 2: a significant share of requests — up to ~35%
    — is across-page)."""
    specs = trace_collection(
        count,
        footprint_sectors=int(ctx.cfg.logical_sectors * ctx.footprint_fraction),
        requests=max(2_000, int(4_000 * ctx.scale / 0.05)),
        base_seed=ctx.seed_base,
    )
    ratios = []
    for spec in specs:
        trace = generate_trace(spec)
        ratios.append(across_page_ratio(trace, 8 * KIB))
    mean = sum(ratios) / len(ratios)
    rows = {
        f"{i + 1}": [r] for i, r in enumerate(ratios)
    }
    rendered = render_table(
        "Fig. 2 — across-page access ratio per trace (8 KiB pages)",
        ["across_ratio"],
        rows,
    )
    rendered += (
        f"\nmean {mean:.3f}, min {min(ratios):.3f}, max {max(ratios):.3f}"
        " (paper: a significant portion, roughly 0.05-0.35)"
    )
    return FigureResult(
        "fig2",
        "Across-page access ratio over the trace collection",
        {"ratios": ratios},
        rendered,
        {"ratio range": ("~0.05-0.35", f"{min(ratios):.2f}-{max(ratios):.2f}")},
    )


# ----------------------------------------------------------------------
# Figure 4 — motivation: across-page vs normal request cost (baseline)
# ----------------------------------------------------------------------
def fig4(ctx: ExperimentContext) -> FigureResult:
    """Per-sector latency and flush count of across-page vs normal
    requests under the baseline FTL (paper Fig. 4: across-page reads
    1.61x, writes 1.49x, flushes 2.69x their normal counterparts)."""
    rows: dict[str, list] = {}
    ratios_r, ratios_w, ratios_f = [], [], []
    for name in ctx.lun_names():
        rep = ctx.run(name, "ftl")
        lat = rep.latency
        ra = lat.summary(lat.READ_ACROSS).per_sector_ms
        rn = lat.summary(lat.READ_NORMAL).per_sector_ms
        wa = lat.summary(lat.WRITE_ACROSS).per_sector_ms
        wn = lat.summary(lat.WRITE_NORMAL).per_sector_ms
        fa = rep.extra["flush_writes_across"] / max(
            1, rep.extra["flush_sectors_across"]
        )
        fn = rep.extra["flush_writes_normal"] / max(
            1, rep.extra["flush_sectors_normal"]
        )
        rows[name] = [ra, rn, wa, wn, fa, fn]
        if rn > 0:
            ratios_r.append(ra / rn)
        if wn > 0:
            ratios_w.append(wa / wn)
        if fn > 0:
            ratios_f.append(fa / fn)
    mr, mw, mf = (
        geomean(ratios_r),
        geomean(ratios_w),
        geomean(ratios_f),
    )
    rendered = render_table(
        "Fig. 4 — per-sector cost of across-page vs normal requests (baseline FTL)",
        [
            "read_across",
            "read_normal",
            "write_across",
            "write_normal",
            "flush_across",
            "flush_normal",
        ],
        rows,
        float_fmt="{:.4f}",
    )
    rendered += (
        f"\nacross/normal ratios: read {mr:.2f}x (paper 1.61x), "
        f"write {mw:.2f}x (paper 1.49x), flush {mf:.2f}x (paper 2.69x)"
    )
    return FigureResult(
        "fig4",
        "Motivation: cost of across-page requests",
        {"rows": rows},
        rendered,
        {
            "read ratio": (1.61, round(mr, 2)),
            "write ratio": (1.49, round(mw, 2)),
            "flush ratio": (2.69, round(mf, 2)),
        },
    )


# ----------------------------------------------------------------------
# Table 2 — trace specifications
# ----------------------------------------------------------------------
def table2(ctx: ExperimentContext) -> FigureResult:
    """Characterisation of the calibrated traces vs the published
    Table 2 rows."""
    rows: dict[str, list] = {}
    for row in TABLE2_SPECS:
        trace = ctx.lun_trace(row.name)
        st = characterize(trace, 8 * KIB)
        rows[row.name] = [
            st.requests,
            f"{st.write_ratio:.1%} ({row.write_ratio:.1%})",
            f"{st.mean_write_kb:.1f}KB ({row.mean_write_kb}KB)",
            f"{st.across_ratio:.1%} ({row.across_ratio:.1%})",
        ]
    rendered = render_table(
        "Table 2 — generated traces, (paper values) in parentheses; request "
        f"counts scaled by {ctx.scale:g}",
        ["# of Req.", "Write R", "Write SZ", "Across R"],
        rows,
    )
    return FigureResult("table2", "Trace specifications", {"rows": rows}, rendered)


# ----------------------------------------------------------------------
# Figure 8 — across-page statistics under Across-FTL
# ----------------------------------------------------------------------
def fig8(ctx: ExperimentContext) -> FigureResult:
    """(a) ARollback ratio (paper avg 3.9%); (b) across-write class
    distribution (paper: only 8.9% Unprofitable-AMerge on average);
    plus the merged-read share of reads (paper avg 0.12%)."""
    rows: dict[str, list] = {}
    rollback_ratios, unprofitable_shares, merged_shares = [], [], []
    for name in ctx.lun_names():
        rep = ctx.run(name, "across")
        e = rep.extra
        total_w = (
            e["across_direct_writes"]
            + e["across_profitable_amerge"]
            + e["across_unprofitable_amerge"]
        )
        dist = {
            "direct": e["across_direct_writes"] / total_w if total_w else 0.0,
            "profitable": e["across_profitable_amerge"] / total_w
            if total_w
            else 0.0,
            "unprofitable": e["across_unprofitable_amerge"] / total_w
            if total_w
            else 0.0,
        }
        merged_share = rep.counters.merged_reads / max(
            1, rep.counters.total_reads
        )
        rows[name] = [
            e["across_rollback_ratio"],
            dist["direct"],
            dist["profitable"],
            dist["unprofitable"],
            merged_share,
        ]
        rollback_ratios.append(e["across_rollback_ratio"])
        unprofitable_shares.append(dist["unprofitable"])
        merged_shares.append(merged_share)
    avg_rb = sum(rollback_ratios) / len(rollback_ratios)
    avg_up = sum(unprofitable_shares) / len(unprofitable_shares)
    avg_mr = sum(merged_shares) / len(merged_shares)
    rendered = render_table(
        "Fig. 8 — across-page access statistics (Across-FTL)",
        [
            "rollback_ratio",
            "direct_write",
            "profitable_amerge",
            "unprofitable_amerge",
            "merged_read_share",
        ],
        rows,
        float_fmt="{:.4f}",
    )
    rendered += (
        f"\naverages: rollback {avg_rb:.1%} (paper 3.9%), unprofitable "
        f"{avg_up:.1%} (paper 8.9%), merged-read share {avg_mr:.2%} "
        "(paper 0.12%)"
    )
    return FigureResult(
        "fig8",
        "Across-page statistics",
        {"rows": rows},
        rendered,
        {
            "rollback ratio": (0.039, round(avg_rb, 3)),
            "unprofitable share": (0.089, round(avg_up, 3)),
            "merged read share": (0.0012, round(avg_mr, 4)),
        },
    )


# ----------------------------------------------------------------------
# Figure 9 — I/O response time
# ----------------------------------------------------------------------
def _normalized_rows(ctx: ExperimentContext, metric: str, page=None):
    rows: dict[str, dict[str, float]] = {}
    for name in ctx.lun_names():
        vals = {
            s: ctx.run(name, s, page_size_bytes=page).metric(metric)
            for s in SCHEMES
        }
        rows[name] = normalize(vals)
    return rows


def _scheme_geomeans(rows: dict[str, dict[str, float]]) -> dict[str, float]:
    return {
        s: geomean([rows[name][s] for name in rows]) for s in SCHEMES
    }


def fig9(ctx: ExperimentContext) -> FigureResult:
    """Normalised read/write/overall response time for the three
    schemes (paper: Across-FTL cuts write time 8.9% vs FTL and 3.7% vs
    MRSM, reads >5%, overall 4.6-11.6%)."""
    out = {}
    rendered_parts = []
    for key, metric, label in (
        ("read", "mean_read_ms", "(a) read response time"),
        ("write", "mean_write_ms", "(b) write response time"),
        ("io", "total_io_ms", "(c) overall I/O time"),
    ):
        rows = _normalized_rows(ctx, metric)
        out[key] = rows
        means = _scheme_geomeans(rows)
        table = render_table(
            f"Fig. 9{label[1]} — normalised {label[4:]} (baseline FTL = 1.0)",
            list(SCHEMES),
            {n: [rows[n][s] for s in SCHEMES] for n in rows},
        )
        rendered_parts.append(
            table
            + "\ngeomean: "
            + ", ".join(f"{s} {v:.3f}" for s, v in means.items())
        )
    io_means = _scheme_geomeans(out["io"])
    wr_means = _scheme_geomeans(out["write"])
    rendered = "\n\n".join(rendered_parts)
    rendered += (
        f"\n\nAcross-FTL vs FTL: write -{(1 - wr_means['across']):.1%} "
        f"(paper -8.9%), overall -{(1 - io_means['across']):.1%} "
        "(paper 4.6%-11.6%)"
    )
    return FigureResult(
        "fig9",
        "I/O response time",
        out,
        rendered,
        {
            "write vs FTL": ("-8.9%", f"-{(1 - wr_means['across']):.1%}"),
            "overall vs FTL": (
                "-4.6%..-11.6%",
                f"-{(1 - io_means['across']):.1%}",
            ),
        },
    )


# ----------------------------------------------------------------------
# Figure 10 — flash read/write counts with Map/Data split
# ----------------------------------------------------------------------
def fig10(ctx: ExperimentContext) -> FigureResult:
    """Normalised flash write (a) and read (b) counts, split into Data
    and Map parts (paper: Across-FTL writes -15.9% vs FTL, -30.9% vs
    MRSM; reads -9.7% / -16.1%; map shares MRSM 36.9%W/34.4%R,
    Across 2.6%/0.74%)."""
    rows_w, rows_r = {}, {}
    map_w_share = {s: [] for s in SCHEMES}
    map_r_share = {s: [] for s in SCHEMES}
    upd_reduction = []
    for name in ctx.lun_names():
        reps = {s: ctx.run(name, s) for s in SCHEMES}
        wr = normalize({s: r.counters.total_writes for s, r in reps.items()})
        rd = normalize({s: r.counters.total_reads for s, r in reps.items()})
        rows_w[name] = [wr[s] for s in SCHEMES]
        rows_r[name] = [rd[s] for s in SCHEMES]
        for s, r in reps.items():
            map_w_share[s].append(r.counters.map_write_share())
            map_r_share[s].append(r.counters.map_read_share())
        if reps["ftl"].counters.update_reads:
            upd_reduction.append(
                1
                - reps["across"].counters.update_reads
                / reps["ftl"].counters.update_reads
            )
    gw = _scheme_geomeans({n: dict(zip(SCHEMES, v)) for n, v in rows_w.items()})
    gr = _scheme_geomeans({n: dict(zip(SCHEMES, v)) for n, v in rows_r.items()})
    avg = lambda xs: sum(xs) / len(xs) if xs else 0.0
    rendered = render_table(
        "Fig. 10a — normalised flash write count (FTL = 1.0)",
        list(SCHEMES),
        rows_w,
    )
    rendered += "\n\n" + render_table(
        "Fig. 10b — normalised flash read count (FTL = 1.0)",
        list(SCHEMES),
        rows_r,
    )
    rendered += (
        f"\n\nwrite geomeans: {', '.join(f'{s} {v:.3f}' for s, v in gw.items())}"
        f"\nread geomeans:  {', '.join(f'{s} {v:.3f}' for s, v in gr.items())}"
        f"\nmap write share: mrsm {avg(map_w_share['mrsm']):.1%} "
        f"(paper 36.9%), across {avg(map_w_share['across']):.2%} (paper 2.6%)"
        f"\nmap read share:  mrsm {avg(map_r_share['mrsm']):.1%} "
        f"(paper 34.4%), across {avg(map_r_share['across']):.2%} (paper 0.74%)"
        f"\nupdate-read reduction across vs ftl: {avg(upd_reduction):.1%} "
        "(paper 62.2%)"
    )
    return FigureResult(
        "fig10",
        "Flash operation counts",
        {"writes": rows_w, "reads": rows_r},
        rendered,
        {
            "across writes vs FTL": ("-15.9%", f"-{1 - gw['across']:.1%}"),
            "across reads vs FTL": ("-9.7%", f"-{1 - gr['across']:.1%}"),
            "mrsm map write share": ("36.9%", f"{avg(map_w_share['mrsm']):.1%}"),
            "across map write share": (
                "2.6%",
                f"{avg(map_w_share['across']):.2%}",
            ),
        },
    )


# ----------------------------------------------------------------------
# Figure 11 — erase counts
# ----------------------------------------------------------------------
def fig11(ctx: ExperimentContext) -> FigureResult:
    """Normalised erase counts (paper: Across-FTL -13.3% vs FTL,
    -24.6% vs MRSM)."""
    rows = _normalized_rows(ctx, "erase_count")
    means = _scheme_geomeans(rows)
    rendered = render_table(
        "Fig. 11 — normalised erase count (FTL = 1.0)",
        list(SCHEMES),
        {n: [rows[n][s] for s in SCHEMES] for n in rows},
    )
    vs_ftl = 1 - means["across"]
    vs_mrsm = 1 - means["across"] / means["mrsm"] if means["mrsm"] else 0.0
    rendered += (
        f"\ngeomean: {', '.join(f'{s} {v:.3f}' for s, v in means.items())}"
        f"\nAcross-FTL erases: -{vs_ftl:.1%} vs FTL (paper -13.3%), "
        f"-{vs_mrsm:.1%} vs MRSM (paper -24.6%)"
    )
    return FigureResult(
        "fig11",
        "Erase count",
        rows,
        rendered,
        {
            "vs FTL": ("-13.3%", f"-{vs_ftl:.1%}"),
            "vs MRSM": ("-24.6%", f"-{vs_mrsm:.1%}"),
        },
    )


# ----------------------------------------------------------------------
# Figure 12 — space and time overhead of the mapping tables
# ----------------------------------------------------------------------
def fig12(ctx: ExperimentContext) -> FigureResult:
    """(a) mapping-table size (paper: Across 1.4x FTL, MRSM 2.4x);
    (b) DRAM access count (paper: MRSM 32.6x FTL, Across within 1.1%
    of FTL)."""
    rows_sz, rows_dram = {}, {}
    for name in ctx.lun_names():
        reps = {s: ctx.run(name, s) for s in SCHEMES}
        sz = {s: r.mapping_table_bytes for s, r in reps.items()}
        dram = normalize({s: r.counters.dram_accesses for s, r in reps.items()})
        rows_sz[name] = [sz[s] / (1024 * 1024) for s in SCHEMES]
        rows_dram[name] = [dram[s] for s in SCHEMES]
    sz_ratio = {
        s: geomean(
            [rows_sz[n][SCHEMES.index(s)] / rows_sz[n][0] for n in rows_sz]
        )
        for s in SCHEMES
    }
    dram_means = _scheme_geomeans(
        {n: dict(zip(SCHEMES, v)) for n, v in rows_dram.items()}
    )
    rendered = render_table(
        "Fig. 12a — mapping table size (MiB)",
        list(SCHEMES),
        rows_sz,
    )
    rendered += "\n\n" + render_table(
        "Fig. 12b — normalised DRAM access count (FTL = 1.0)",
        list(SCHEMES),
        rows_dram,
    )
    rendered += (
        f"\n\ntable size ratios: across {sz_ratio['across']:.2f}x FTL "
        f"(paper 1.4x), mrsm {sz_ratio['mrsm']:.2f}x (paper 2.4x)"
        f"\nDRAM accesses: mrsm {dram_means['mrsm']:.1f}x FTL (paper 32.6x), "
        f"across {dram_means['across']:.3f}x (paper <=1.011x)"
    )
    return FigureResult(
        "fig12",
        "Mapping overheads",
        {"size_mib": rows_sz, "dram": rows_dram},
        rendered,
        {
            "across table size": ("1.4x", f"{sz_ratio['across']:.2f}x"),
            "mrsm table size": ("2.4x", f"{sz_ratio['mrsm']:.2f}x"),
            "mrsm DRAM": ("32.6x", f"{dram_means['mrsm']:.1f}x"),
            "across DRAM": ("<=1.011x", f"{dram_means['across']:.3f}x"),
        },
    )


# ----------------------------------------------------------------------
# Figure 13 — across-page ratio vs page size
# ----------------------------------------------------------------------
def fig13(ctx: ExperimentContext) -> FigureResult:
    """Across-page request ratio at 4/8/16 KiB pages (paper: the ratio
    decreases as the page grows)."""
    rows = {}
    for name in ctx.lun_names():
        trace = ctx.lun_trace(name)
        rows[name] = [across_page_ratio(trace, p) for p in PAGE_SIZES]
    rendered = render_table(
        "Fig. 13 — across-page access ratio vs flash page size",
        [f"{p // KIB}KB" for p in PAGE_SIZES],
        rows,
    )
    monotone = all(r[0] >= r[1] >= r[2] for r in rows.values())
    rendered += f"\nmonotone decreasing in page size: {monotone} (paper: yes)"
    return FigureResult(
        "fig13",
        "Across ratio vs page size",
        rows,
        rendered,
        {"monotone decreasing": (True, monotone)},
    )


# ----------------------------------------------------------------------
# Figure 14 — I/O time and erase count vs page size
# ----------------------------------------------------------------------
def fig14(ctx: ExperimentContext) -> FigureResult:
    """Overall I/O time (a) and erase count (b) for 4/8/16 KiB pages,
    all three schemes (paper: Across-FTL wins at every page size and
    its advantage does not shrink as pages grow)."""
    out = {}
    rendered_parts = []
    wins = {}
    for page in PAGE_SIZES:
        label = f"{page // KIB}KB"
        io_rows = _normalized_rows(ctx, "total_io_ms", page=page)
        er_rows = _normalized_rows(ctx, "erase_count", page=page)
        out[label] = {"io": io_rows, "erase": er_rows}
        io_means = _scheme_geomeans(io_rows)
        er_means = _scheme_geomeans(er_rows)
        wins[label] = io_means["across"]
        rendered_parts.append(
            render_table(
                f"Fig. 14 ({label}) — normalised I/O time (FTL = 1.0)",
                list(SCHEMES),
                {n: [io_rows[n][s] for s in SCHEMES] for n in io_rows},
            )
            + "\ngeomean io:    "
            + ", ".join(f"{s} {v:.3f}" for s, v in io_means.items())
            + "\n"
            + render_table(
                f"Fig. 14 ({label}) — normalised erase count (FTL = 1.0)",
                list(SCHEMES),
                {n: [er_rows[n][s] for s in SCHEMES] for n in er_rows},
            )
            + "\ngeomean erase: "
            + ", ".join(f"{s} {v:.3f}" for s, v in er_means.items())
        )
    rendered = "\n\n".join(rendered_parts)
    rendered += "\n\nAcross-FTL I/O-time geomean per page size: " + ", ".join(
        f"{k} {v:.3f}" for k, v in wins.items()
    )
    return FigureResult(
        "fig14",
        "Page-size sweep",
        out,
        rendered,
        {"across wins at all sizes": (True, all(v < 1.0 for v in wins.values()))},
    )


ALL_FIGURES = {
    "fig2": fig2,
    "fig4": fig4,
    "table2": table2,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
}
