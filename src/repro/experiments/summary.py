"""Paper-vs-measured summary: the EXPERIMENTS.md generator.

Runs (or reuses, via the context's memo) every figure reproduction and
assembles one markdown document: a headline table collecting every
scalar the paper states next to our measurement, followed by each
figure's rendered series.  The repository's EXPERIMENTS.md is this
output plus a hand-written preamble; refresh it with::

    python -m repro summary --out EXPERIMENTS.generated.md
"""

from __future__ import annotations

from . import figures as F
from .runner import ExperimentContext


def headline_table(results: dict[str, "F.FigureResult"]) -> str:
    """Markdown table of every paper-stated scalar vs our measurement."""
    lines = [
        "| Experiment | Quantity | Paper | Measured |",
        "| --- | --- | --- | --- |",
    ]
    for name, result in results.items():
        for quantity, (paper, measured) in result.paper_vs_measured.items():
            lines.append(
                f"| {name} | {quantity} | {paper} | {measured} |"
            )
    return "\n".join(lines)


def render_experiments_md(
    ctx: ExperimentContext, figures: list[str] | None = None
) -> str:
    """Full paper-vs-measured markdown for the given context."""
    names = figures or list(F.ALL_FIGURES)
    results = {name: F.ALL_FIGURES[name](ctx) for name in names}
    parts = [
        "# Paper vs measured (generated)",
        "",
        f"Device: {ctx.cfg.summary()}",
        f"Workload scale: {ctx.scale:g} x the paper's request counts; "
        f"aging: {ctx.sim_cfg.aging_style} to "
        f"{ctx.sim_cfg.aged_used:.0%} used.",
        "",
        "## Headline comparison",
        "",
        headline_table(results),
        "",
        "## Per-figure series",
        "",
    ]
    for name, result in results.items():
        parts.append(f"### {name} — {result.title}")
        parts.append("")
        parts.append("```")
        parts.append(result.rendered)
        parts.append("```")
        parts.append("")
    return "\n".join(parts)
