"""Benchmark-regression gate: pinned scenarios, digests and baselines.

The performance contract of the simulation core is enforced by two
artifacts built from the *same* pinned scenario set:

* the **golden fixture** (``tests/data/golden_hotpath.json``) pins the
  full :class:`~repro.metrics.report.SimulationReport` of every
  scenario, so a performance refactor can prove bit-identical
  simulation output (``tests/test_golden_hotpath.py``);
* the **bench baseline** (``BENCH_baseline.json`` at the repo root)
  pins output digests plus calibrated throughput, and
  ``scripts/bench_gate.py --check`` (or ``repro bench --check``) fails
  when output drifts *at all* or throughput regresses beyond
  ``THROUGHPUT_TOLERANCE``.

Raw requests/second is machine-dependent, so the gate normalises it by
a small pure-Python calibration loop measured in the same process
(:func:`calibrate`): the stored ``normalized_throughput`` is
``requests_per_second / calibration_score``, which is stable enough
across container generations for a 15% gate.

Scenario set (never reorder or edit in place — add new entries and
regenerate both artifacts if coverage must grow):

* ``fig09-lun1-{ftl,mrsm,across}`` — the Fig. 9/10/11 pipeline at tiny
  scale: VDI-aged bench device, lun1 replay, one run per scheme
  (latency distributions cover Fig. 9, flash-op counters Fig. 10,
  erase counts Fig. 11);
* ``faults-stress-ftl`` — the reliability stress preset on the tiny
  device (read retries, reprogram pulses, bad-block retirement);
* ``hotpath-lun1-across`` — a larger un-aged across-scheme replay that
  isolates measured-path throughput from aging throughput.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from ..config import FaultConfig, SimConfig, SSDConfig
from ..metrics.report import SimulationReport

#: allowed relative drop of normalized throughput before --check fails
THROUGHPUT_TOLERANCE = 0.15

#: report keys that vary run-to-run without any behaviour change
_VOLATILE_KEYS = ("wall_seconds",)


@dataclass(frozen=True)
class Scenario:
    """One pinned (device, trace, scheme, sim-options) point."""

    name: str
    scheme: str
    #: builders keep the dataclass hashable and the configs immutable
    make_cfg: Callable[[], SSDConfig]
    make_trace: Callable[[SSDConfig], Any]
    make_sim_cfg: Callable[[], SimConfig]

    def run(self, *, batch: bool = False) -> SimulationReport:
        """Simulate the scenario on a fresh device.

        ``batch`` replays through the batch execution layer
        (``SimConfig.batch``): the report — and hence the pinned digest
        and flash-op counts — must come out identical, only the wall
        time may differ.  That is exactly what the gate checks when
        ``repro bench --batch`` compares against the committed
        baseline."""
        from .runner import run_trace

        cfg = self.make_cfg()
        trace = self.make_trace(cfg)
        sim_cfg = self.make_sim_cfg()
        if batch:
            sim_cfg = sim_cfg.replace_batch(enabled=True)
        return run_trace(self.scheme, trace, cfg, sim_cfg)


def _lun1_trace(cfg: SSDConfig, scale: float):
    from ..traces.synthetic import generate_trace
    from .workloads import lun_specs

    spec = next(
        s for s in lun_specs(cfg, scale=scale, footprint_fraction=0.8)
        if s.name == "lun1"
    )
    return generate_trace(spec)


def _faults_trace(cfg: SSDConfig):
    from ..traces.synthetic import SyntheticSpec, generate_trace

    spec = SyntheticSpec(
        name="faults-stress",
        requests=2_000,
        write_ratio=0.6,
        across_ratio=0.25,
        mean_write_kb=9.0,
        footprint_sectors=int(cfg.logical_sectors * 0.6),
        seed=77,
    )
    return generate_trace(spec)


def _aged_sim_cfg() -> SimConfig:
    return SimConfig(aged_used=0.30, aged_valid=0.10, aging_style="vdi")


def scenarios() -> tuple[Scenario, ...]:
    """The pinned gate scenario set, in stable order."""
    points = [
        Scenario(
            name=f"fig09-lun1-{scheme}",
            scheme=scheme,
            make_cfg=SSDConfig.bench_default,
            make_trace=lambda cfg: _lun1_trace(cfg, scale=0.005),
            make_sim_cfg=_aged_sim_cfg,
        )
        for scheme in ("ftl", "mrsm", "across")
    ]
    points.append(
        Scenario(
            name="faults-stress-ftl",
            scheme="ftl",
            make_cfg=SSDConfig.tiny,
            make_trace=_faults_trace,
            make_sim_cfg=lambda: SimConfig(faults=FaultConfig.stress()),
        )
    )
    points.append(
        Scenario(
            name="hotpath-lun1-across",
            scheme="across",
            make_cfg=SSDConfig.bench_default,
            make_trace=lambda cfg: _lun1_trace(cfg, scale=0.02),
            make_sim_cfg=SimConfig,
        )
    )
    return tuple(points)


# ----------------------------------------------------------------------
# digests
# ----------------------------------------------------------------------
def canonical_report_dict(report: SimulationReport) -> dict:
    """``report.to_dict()`` with volatile (wall-clock) keys removed."""
    doc = report.to_dict()
    for key in _VOLATILE_KEYS:
        doc.pop(key, None)
    return doc


def report_digest(report: SimulationReport) -> str:
    """Stable SHA-256 over the canonical report JSON."""
    blob = json.dumps(canonical_report_dict(report), sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


# ----------------------------------------------------------------------
# calibration
# ----------------------------------------------------------------------
def calibrate(rounds: int = 5) -> float:
    """Machine-speed score from a fixed pure-Python workload.

    Returns iterations/second of a small integer/dict workload that
    exercises the same interpreter operations the simulator hot path
    does.  The best of ``rounds`` runs is used so a background blip
    cannot depress the score.
    """
    n = 200_000

    def one_round() -> float:
        table = [0] * 512
        d: dict[int, int] = {}
        t0 = time.perf_counter()
        acc = 0
        for i in range(n):
            j = i & 511
            table[j] = i
            acc += table[j] & 0xFF
            d[j] = acc
        elapsed = time.perf_counter() - t0
        if acc < 0 or len(d) != 512:  # keep the loop un-eliminable
            raise RuntimeError("calibration loop broken")
        return n / elapsed

    return max(one_round() for _ in range(rounds))


# ----------------------------------------------------------------------
# measurement
# ----------------------------------------------------------------------
#: full-suite measurement passes; each scenario's best wall is kept
#: (same best-of-rounds rationale as :func:`calibrate` — a background
#: blip on a shared host must not read as a throughput regression)
MEASURE_PASSES = 3


def measure(
    progress: Callable[[str], None] | None = None,
    *,
    batch: bool = False,
    passes: int = MEASURE_PASSES,
) -> dict:
    """Run every pinned scenario; returns the bench document.

    ``batch`` runs every scenario through the batch execution layer —
    same digests by contract, different wall times by design.

    The whole suite runs ``passes`` times — each pass identical to a
    single-shot run, including a cleared trace memo so every pass pays
    the same generation cost — and each scenario keeps its best wall.
    Simulation is deterministic, so the repeats double as a free
    determinism check: a digest that changes between passes is a bug
    and raises immediately."""
    from ..traces.synthetic import _TRACE_MEMO

    calibration = calibrate()
    best: dict[str, dict] = {}
    order: list[str] = []
    for rep in range(max(1, passes)):
        _TRACE_MEMO.clear()
        for sc in scenarios():
            if progress is not None:
                progress(f"running {sc.name} (pass {rep + 1}) ...")
            t0 = time.perf_counter()
            report = sc.run(batch=batch)
            wall = time.perf_counter() - t0
            rps = report.requests / wall if wall > 0 else 0.0
            entry = {
                "name": sc.name,
                "scheme": sc.scheme,
                "requests": report.requests,
                "wall_seconds": round(wall, 4),
                "requests_per_second": round(rps, 2),
                "normalized_throughput": rps / calibration,
                "digest": report_digest(report),
                "total_flash_reads": report.counters.total_reads,
                "total_flash_writes": report.counters.total_writes,
                "erases": report.counters.erases,
            }
            prev = best.get(sc.name)
            if prev is None:
                best[sc.name] = entry
                order.append(sc.name)
                continue
            if prev["digest"] != entry["digest"]:
                raise RuntimeError(
                    f"{sc.name}: non-deterministic report digest across "
                    f"measurement passes — {prev['digest'][:12]} vs "
                    f"{entry['digest'][:12]}"
                )
            if entry["wall_seconds"] < prev["wall_seconds"]:
                best[sc.name] = entry
    return {
        "format": 1,
        "calibration_score": round(calibration, 2),
        "tolerance": THROUGHPUT_TOLERANCE,
        "scenarios": [best[name] for name in order],
    }


# ----------------------------------------------------------------------
# comparison
# ----------------------------------------------------------------------
def compare(baseline: dict, current: dict) -> list[str]:
    """Problems in ``current`` vs ``baseline`` (empty = gate passes).

    Simulation-output drift (digest or flash-op-count mismatch) always
    fails; normalized throughput may drop by at most
    ``THROUGHPUT_TOLERANCE`` relative to the baseline.
    """
    problems: list[str] = []
    base_by_name = {e["name"]: e for e in baseline.get("scenarios", [])}
    tolerance = float(baseline.get("tolerance", THROUGHPUT_TOLERANCE))
    for entry in current.get("scenarios", []):
        name = entry["name"]
        base = base_by_name.pop(name, None)
        if base is None:
            problems.append(f"{name}: not present in baseline")
            continue
        for key in (
            "digest", "requests", "total_flash_reads",
            "total_flash_writes", "erases",
        ):
            if entry[key] != base[key]:
                problems.append(
                    f"{name}: simulation output drift — {key} "
                    f"{base[key]!r} -> {entry[key]!r}"
                )
        b = float(base["normalized_throughput"])
        c = float(entry["normalized_throughput"])
        if b > 0 and c < b * (1.0 - tolerance):
            problems.append(
                f"{name}: throughput regression — normalized "
                f"{c:.4f} vs baseline {b:.4f} "
                f"({100 * (1 - c / b):.1f}% drop > {100 * tolerance:.0f}%)"
            )
    for name in base_by_name:
        problems.append(f"{name}: scenario missing from current run")
    return problems


# ----------------------------------------------------------------------
# CLI entry point (shared by scripts/bench_gate.py and `repro bench`)
# ----------------------------------------------------------------------
def default_output_name() -> str:
    """``BENCH_<rev>.json`` from the git revision, or a fixed fallback."""
    import subprocess

    try:
        rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip()
    except Exception:
        rev = "worktree"
    return f"BENCH_{rev or 'worktree'}.json"


def main(argv: list[str] | None = None) -> int:
    """Run the gate; returns a process exit code."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="bench_gate",
        description="Run the pinned bench scenarios and optionally "
        "compare against a committed baseline.",
    )
    parser.add_argument(
        "--baseline", default="BENCH_baseline.json",
        help="baseline JSON to compare against (default: %(default)s)",
    )
    parser.add_argument(
        "--out", default=None,
        help="output JSON path (default: BENCH_<git rev>.json)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="fail (exit 1) on output drift or throughput regression "
        "against the baseline",
    )
    parser.add_argument(
        "--batch", action="store_true",
        help="run every scenario through the batch execution layer "
        "(SimConfig.batch); digests must still match the scalar "
        "baseline bit for bit",
    )
    args = parser.parse_args(argv)

    doc = measure(
        progress=lambda msg: print(f"[bench] {msg}", flush=True),
        batch=args.batch,
    )
    out_path = Path(args.out or default_output_name())
    out_path.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    print(f"[bench] wrote {out_path}")
    for entry in doc["scenarios"]:
        print(
            f"[bench] {entry['name']}: "
            f"{entry['requests_per_second']:.0f} req/s "
            f"(normalized {entry['normalized_throughput']:.4f}), "
            f"digest {entry['digest'][:12]}"
        )

    if not args.check:
        return 0
    baseline_path = Path(args.baseline)
    if not baseline_path.exists():
        print(f"[bench] FAIL: baseline {baseline_path} not found")
        return 1
    baseline = json.loads(baseline_path.read_text())
    problems = compare(baseline, doc)
    if problems:
        for p in problems:
            print(f"[bench] FAIL: {p}")
        return 1
    print(f"[bench] OK: all scenarios within gate vs {baseline_path}")
    return 0
