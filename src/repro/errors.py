"""Exception hierarchy for the Across-FTL reproduction.

Every error raised on purpose by the library derives from
:class:`ReproError`, so callers can catch library failures without
swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent."""


class GeometryError(ReproError):
    """A physical address is outside the flash geometry."""


class FlashProtocolError(ReproError):
    """A NAND protocol rule was violated (re-program, out-of-order
    program within a block, erase of a block holding valid pages, ...).

    These indicate FTL bugs, never workload problems, and are therefore
    raised eagerly rather than recorded as statistics.
    """


class OutOfSpaceError(ReproError):
    """The flash array has no free page/block left even after GC.

    Raised when the workload's footprint exceeds usable capacity (e.g.
    over-provisioning was configured too small for the trace).
    """


class MappingError(ReproError):
    """An FTL mapping-table invariant was violated."""


class TraceFormatError(ReproError):
    """A trace file could not be parsed."""


class SimulationError(ReproError):
    """The simulator was driven incorrectly (e.g. time going backwards)."""
