"""Exception hierarchy for the Across-FTL reproduction.

Every error raised on purpose by the library derives from
:class:`ReproError`, so callers can catch library failures without
swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent."""


class GeometryError(ReproError):
    """A physical address is outside the flash geometry."""


class FlashProtocolError(ReproError):
    """A NAND protocol rule was violated (re-program, out-of-order
    program within a block, erase of a block holding valid pages,
    touching a retired bad block, ...).

    These indicate FTL bugs — never workload problems, and never
    *media* failures — and are therefore raised eagerly rather than
    recorded as statistics.  Failures of the NAND medium itself
    (injected by :mod:`repro.faults`: read-retry exhaustion,
    program/erase failure, block wear-out) are a separate
    :class:`MediaError` branch: they are expected device behaviour,
    normally absorbed by the controller model and surfaced as counters
    and events, not exceptions.
    """


class MediaError(ReproError):
    """The NAND medium itself failed in a way the modelled controller
    could not hide (:mod:`repro.faults`).

    Distinct from :class:`FlashProtocolError` on purpose: a protocol
    error is a simulator/FTL *bug*; a media error is injected,
    *expected* device wear-out.  Only raised when the fault config asks
    for hard failure semantics (``FaultConfig.halt_on_uncorrectable``);
    the default is graceful degradation — uncorrectable reads, program
    and erase failures, and retired bad blocks are counted in
    :class:`~repro.metrics.counters.FlashOpCounters` and published as
    :mod:`repro.obs` events while the run continues.
    """


class OutOfSpaceError(ReproError):
    """The flash array has no free page/block left even after GC.

    Raised when the workload's footprint exceeds usable capacity (e.g.
    over-provisioning was configured too small for the trace).
    """


class MappingError(ReproError):
    """An FTL mapping-table invariant was violated."""


class InvariantViolation(ReproError):
    """A cross-layer consistency law failed (:mod:`repro.check`).

    Raised by the runtime invariant checker when two subsystems that
    must agree — mapping tables vs. flash state, counters vs. the
    array's lifetime totals, the free pool vs. per-block write
    pointers, chip timelines vs. their previous sweep — have drifted
    apart.  Like :class:`FlashProtocolError` this always indicates a
    simulator bug, never a workload problem, so it is raised eagerly
    with a message naming both sides of the disagreement.
    """


class TraceFormatError(ReproError):
    """A trace file could not be parsed."""


class SimulationError(ReproError):
    """The simulator was driven incorrectly (e.g. time going backwards)."""


class SweepError(ReproError):
    """One or more runs of a parallel sweep failed.

    Raised by :func:`repro.experiments.parallel.execute_runs` (in the
    default fail-fast mode) *after* every sibling run has completed and
    been persisted, so a single poisoned spec never discards finished
    work.  ``failures`` holds ``(spec_label, exception)`` pairs.
    """

    def __init__(self, failures):
        self.failures = list(failures)
        labels = ", ".join(label for label, _ in self.failures)
        super().__init__(
            f"{len(self.failures)} sweep run(s) failed: {labels}"
        )
