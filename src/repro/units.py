"""Unit constants and sector/page arithmetic helpers.

Throughout the library, I/O request offsets and sizes are expressed in
**sectors** (512 bytes), which is the granularity of the SYSTOR'17 block
traces the paper replays.  Flash operations are expressed in **pages**
(``SSDConfig.page_size_bytes``), the basic NAND program/read unit.

The across-page predicate used everywhere is :func:`is_across_page`: a
request is *across-page* when its size is **at most** one page but its
sector range spans **exactly two** logical pages (paper §1, Figure 1).
"""

from __future__ import annotations

SECTOR_BYTES = 512
"""Bytes per disk sector — the trace-level addressing unit."""

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

MS = 1.0
"""All simulator timestamps and latencies are in milliseconds."""

US = 1e-3
NS = 1e-6


def sectors_per_page(page_size_bytes: int) -> int:
    """Number of 512-byte sectors in one flash page.

    >>> sectors_per_page(8192)
    16
    """
    if page_size_bytes % SECTOR_BYTES != 0:
        raise ValueError(
            f"page size {page_size_bytes} is not a multiple of {SECTOR_BYTES}"
        )
    return page_size_bytes // SECTOR_BYTES


def lpn_of_sector(sector: int, spp: int) -> int:
    """Logical page number containing ``sector`` (``spp`` sectors/page)."""
    return sector // spp


def lpn_range(offset: int, size: int, spp: int) -> tuple[int, int]:
    """Inclusive-exclusive LPN span ``[first, last)`` of a sector extent.

    ``offset`` and ``size`` are in sectors; ``size`` must be positive.

    >>> lpn_range(8, 12, 16)   # write(4K, 6K) with 8K pages
    (0, 2)
    """
    if size <= 0:
        raise ValueError(f"extent size must be positive, got {size}")
    first = offset // spp
    last = (offset + size - 1) // spp + 1
    return first, last


def spans_pages(offset: int, size: int, spp: int) -> int:
    """Number of logical pages touched by a sector extent."""
    first, last = lpn_range(offset, size, spp)
    return last - first


def is_across_page(offset: int, size: int, spp: int) -> bool:
    """True when the extent is an *across-page* request (paper §1).

    The extent must (a) be no larger than one page and (b) span exactly
    two consecutive logical pages.

    >>> is_across_page(8, 12, 16)    # 6K at 4K offset, 8K page: across
    True
    >>> is_across_page(0, 16, 16)    # perfectly aligned page write
    False
    >>> is_across_page(8, 24, 16)    # larger than a page: merely unaligned
    False
    """
    if size <= 0:
        raise ValueError(f"extent size must be positive, got {size}")
    return size <= spp and (offset + size - 1) // spp == offset // spp + 1


def is_aligned(offset: int, size: int, spp: int) -> bool:
    """True when the extent starts and ends on page boundaries."""
    return offset % spp == 0 and (offset + size) % spp == 0


def split_extent(offset: int, size: int, spp: int):
    """Split a sector extent into per-LPN pieces.

    Returns ``(lpn, sector_offset_in_page, sector_count)`` tuples
    covering the extent in LPN order.  This is how the simulator turns a
    macro request into page-level sub-requests (paper §2.1).  It is the
    single hottest helper of the replay path, so the common cases — one
    or two pages touched — are built without a loop.

    >>> list(split_extent(8, 20, 16))
    [(0, 8, 8), (1, 0, 12)]
    """
    if size <= 0:
        raise ValueError(f"extent size must be positive, got {size}")
    end = offset + size
    first = offset // spp
    last = (end - 1) // spp
    rel = offset - first * spp
    if first == last:
        return [(first, rel, size)]
    if last == first + 1:
        head = spp - rel
        return [(first, rel, head), (last, 0, size - head)]
    pieces = [(first, rel, spp - rel)]
    page_start = (first + 1) * spp
    for lpn in range(first + 1, last):
        pieces.append((lpn, 0, spp))
        page_start += spp
    pieces.append((last, 0, end - page_start))
    return pieces


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division for non-negative operands."""
    return -(-a // b)
