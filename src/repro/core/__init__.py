"""The paper's primary contribution: Across-FTL.

:class:`~repro.core.across.AcrossFTL` re-aligns across-page requests —
requests no larger than one SSD page whose sector range spans two
logical pages — onto a single physical page tracked by the
:class:`~repro.core.amt.AcrossMappingTable`, with the AMerge/ARollback
update policies and direct/merged read routines of paper §3.
"""

from .across import AcrossFTL, AcrossStats
from .amt import AcrossMappingTable, AMTEntry

__all__ = ["AcrossFTL", "AcrossStats", "AcrossMappingTable", "AMTEntry"]
