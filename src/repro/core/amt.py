"""The across-page mapping table (AMT), paper §3.2.

Each entry records one *across-page area*: a physical page (``appn``)
holding a sector extent (``start``, ``size``) that spans logical pages
``lpn0`` and ``lpn0 + 1``.  The PMT references entries by index via its
``AIdx`` field (we keep that association in the FTL as a sparse dict,
equivalent to the paper's in-entry field but cheaper for the common
case AIdx = -1).

Indices are recycled through a free list so the table stays dense and
its working set — which is what the AMT's mapping cache moves between
DRAM and flash — tracks the number of *live* areas.
"""

from __future__ import annotations

from typing import Iterator

from ..errors import MappingError

#: modelled bytes per AMT entry (AIdx back-ref, Off, Size, APPN — Fig. 5)
AMT_ENTRY_BYTES = 16


class AMTEntry:
    """One across-page area."""

    __slots__ = ("aidx", "lpn0", "start", "size", "appn")

    def __init__(self, aidx: int, lpn0: int, start: int, size: int, appn: int):
        self.aidx = aidx
        #: first of the two consecutive LPNs the area spans
        self.lpn0 = lpn0
        #: absolute first sector of the re-aligned extent
        self.start = start
        #: extent length in sectors (2 <= size <= sectors per page)
        self.size = size
        #: physical page holding the extent
        self.appn = appn

    @property
    def end(self) -> int:
        return self.start + self.size

    @property
    def lpns(self) -> tuple[int, int]:
        return (self.lpn0, self.lpn0 + 1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AMTEntry(aidx={self.aidx}, lpn0={self.lpn0}, "
            f"start={self.start}, size={self.size}, appn={self.appn})"
        )


class AcrossMappingTable:
    """Dense, index-recycling table of live across-page areas."""

    def __init__(self):
        self._entries: dict[int, AMTEntry] = {}
        self._free: list[int] = []
        self._next = 0
        #: lifetime count of areas ever created (Fig. 8a denominator)
        self.total_created = 0
        #: high-water mark of simultaneously live areas
        self.peak_live = 0

    def create(self, lpn0: int, start: int, size: int, appn: int) -> AMTEntry:
        """Allocate an entry for a new across-page area."""
        aidx = self._free.pop() if self._free else self._next
        if aidx == self._next:
            self._next += 1
        entry = AMTEntry(aidx, lpn0, start, size, appn)
        self._entries[aidx] = entry
        self.total_created += 1
        self.peak_live = max(self.peak_live, len(self._entries))
        return entry

    def get(self, aidx: int) -> AMTEntry:
        """Live entry at ``aidx``; :class:`MappingError` if not live."""
        try:
            return self._entries[aidx]
        except KeyError:
            raise MappingError(f"AMT index {aidx} is not live") from None

    def restore(
        self, aidx: int, lpn0: int, start: int, size: int, appn: int
    ) -> AMTEntry:
        """Re-insert an entry at a fixed index during a post-power-loss
        rebuild; call :meth:`rebuild_done` after the scan."""
        if aidx in self._entries:
            raise MappingError(f"AMT index {aidx} restored twice")
        entry = AMTEntry(aidx, lpn0, start, size, appn)
        self._entries[aidx] = entry
        self._next = max(self._next, aidx + 1)
        self.peak_live = max(self.peak_live, len(self._entries))
        return entry

    def rebuild_done(self) -> None:
        """Recompute the free list after :meth:`restore` calls."""
        self._free = [i for i in range(self._next) if i not in self._entries]

    def clear(self) -> None:
        """Drop every entry (start of a rebuild scan)."""
        self._entries.clear()
        self._free.clear()
        self._next = 0

    def release(self, aidx: int) -> None:
        """Free an entry (area rolled back)."""
        if aidx not in self._entries:
            raise MappingError(f"double release of AMT index {aidx}")
        del self._entries[aidx]
        self._free.append(aidx)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, aidx: int) -> bool:
        return aidx in self._entries

    def entries(self) -> Iterator[AMTEntry]:
        """Iterate the live entries (order unspecified)."""
        return iter(self._entries.values())

    @property
    def index_space(self) -> int:
        """Size of the index range in use (cache key space)."""
        return self._next

    def check_invariants(self) -> None:
        """Verify table density: the free list and the live entries
        must partition ``range(index_space)`` exactly, with every entry
        stored under its own index (:mod:`repro.check` sweeps)."""
        free = set(self._free)
        if len(free) != len(self._free):
            raise MappingError("AMT free list holds duplicate indices")
        live = self._entries.keys()
        overlap = free & live
        if overlap:
            raise MappingError(
                f"AMT index {min(overlap)} is both free and live"
            )
        if len(free) + len(live) != self._next:
            raise MappingError(
                f"AMT index space {self._next} != {len(live)} live + "
                f"{len(free)} free entries"
            )
        for aidx, entry in self._entries.items():
            if entry.aidx != aidx:
                raise MappingError(
                    f"AMT entry at index {aidx} claims aidx {entry.aidx}"
                )
