"""Across-FTL: re-aligning across-page requests (paper §3).

The scheme extends the baseline page-mapping FTL with a second-level
**across-page mapping table** (AMT).  An across-page write — size at
most one page, spanning two logical pages — is *re-aligned*: its whole
extent goes to one freshly allocated physical page (the *across-page
area*), and both spanned LPNs gain an ``AIdx`` reference to the AMT
entry.  Reads falling inside the area are served with a single flash
read (*direct read*); reads exceeding it also fetch the normally-mapped
pages (*merged read*).

Updates that overlap a live area follow paper §3.3.1:

* **AMerge** — if the union of the area and the update still fits one
  page, merge and re-program the area (a *Profitable* AMerge when the
  update itself is an across-page request, otherwise *Unprofitable*);
* **ARollback** — otherwise, fold the area's data back into the two
  normally-mapped pages, clear the AMT entry, and service the update
  the normal way.

Sector bookkeeping invariant (checked by ``check_invariants``): for any
LPN, the bits of ``pmt_mask`` (newest copy in the normal page) and of
its area range (newest copy in the across page) are disjoint, and their
union is exactly the set of sectors ever written.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import MappingError
from ..ftl.allocator import STREAM_GC
from ..ftl.base import BaseFTL, iter_bits, mask_range
from ..ftl.meta import AcrossPageMeta
from ..metrics.counters import OpKind
from ..units import lpn_range, split_extent
from .amt import AMT_ENTRY_BYTES, AcrossMappingTable

#: modelled bytes of the AIdx field added to every PMT entry (Fig. 5)
AIDX_FIELD_BYTES = 4


@dataclass
class AcrossStats:
    """Across-path statistics behind Fig. 8 and §4.2.1."""

    direct_writes: int = 0
    profitable_amerge: int = 0
    unprofitable_amerge: int = 0
    rollbacks: int = 0
    direct_reads: int = 0
    merged_read_requests: int = 0
    #: areas created during the measured run (aging-time creations are
    #: excluded, like every other measured statistic)
    areas_created: int = 0

    @property
    def across_writes(self) -> int:
        return self.direct_writes + self.profitable_amerge + self.unprofitable_amerge

    def rollback_ratio(self, areas_created: int) -> float:
        """Areas rolled back / areas created (paper avg 3.9%)."""
        return self.rollbacks / areas_created if areas_created else 0.0

    def distribution(self) -> dict[str, float]:
        """Fig. 8(b): share of each across-write class."""
        total = self.across_writes
        if not total:
            return {"direct": 0.0, "profitable": 0.0, "unprofitable": 0.0}
        return {
            "direct": self.direct_writes / total,
            "profitable": self.profitable_amerge / total,
            "unprofitable": self.unprofitable_amerge / total,
        }


class AcrossFTL(BaseFTL):
    """The paper's FTL scheme with across-page re-alignment."""

    name = "across"

    def __init__(
        self,
        service,
        *,
        amerge_enabled: bool = True,
        amt_cache_entries: int | None = -1,
        **kw,
    ):
        super().__init__(service, **kw)
        if amt_cache_entries == -1:
            # default: the AMT gets a slice of DRAM proportional to the
            # device (the paper's Fig. 12a space overhead of ~1.4x the
            # baseline table includes the AMT); spill still happens on
            # area-heavy workloads, giving the small Map shares of
            # Fig. 10 (2.6% writes / 0.74% reads)
            amt_cache_entries = max(4096, self.dram_entries // 16)
        #: ablation knob (bench_ablation_amerge): with AMerge disabled,
        #: every overlapping update rolls the area back.
        self.amerge_enabled = amerge_enabled
        self.amt = AcrossMappingTable()
        #: LPN -> AIdx of the area covering it (the PMT AIdx field;
        #: absent means AIdx = -1)
        self.aidx_of_lpn: dict[int, int] = {}
        #: flat mirror of ``aidx_of_lpn`` (-1 = no area), same raw-buffer
        #: + zero-copy-view layout as the PMT: the batched read kernel
        #: screens whole request runs for area overlap with one
        #: vectorised gather instead of a dict probe per LPN.  Kept in
        #: lockstep at every mutation site of ``aidx_of_lpn``
        #: (tests assert the two stay equal).
        self._aidx = array("q", [-1]) * self.logical_pages
        self.aidx = np.frombuffer(self._aidx, dtype=np.int64)
        self.across_stats = AcrossStats()

        entries_per_page = max(1, self.cfg.page_size_bytes // self.PMT_ENTRY_BYTES)
        self._pmt_cache = self._make_cache(
            table_id=0,
            entries_per_page=entries_per_page,
            capacity_entries=self.dram_entries,
        )
        amt_epp = max(1, self.cfg.page_size_bytes // AMT_ENTRY_BYTES)
        self._amt_cache = self._make_cache(
            table_id=2,
            entries_per_page=amt_epp,
            capacity_entries=amt_cache_entries,
        )

    # ==================================================================
    # mask helpers
    # ==================================================================
    def _area_rel_mask(self, lpn: int, start: int, end: int) -> int:
        """Page-relative mask of sectors of ``lpn`` inside [start, end)."""
        page_lo = lpn * self.spp
        page_hi = page_lo + self.spp
        lo = max(start, page_lo)
        hi = min(end, page_hi)
        if lo >= hi:
            return 0
        return mask_range(lo - page_lo, hi - page_lo)

    def _shadow_pmt(self, lpn: int, rel_mask: int) -> None:
        """Remove sectors now living in an across area from the normal
        page's live set; drop the normal page entirely if emptied."""
        remaining = self._pmt_mask[lpn] & ~rel_mask
        self._pmt_mask[lpn] = remaining
        if remaining == 0 and self._pmt[lpn] >= 0:
            self.service.invalidate(self._pmt[lpn])
            self._pmt[lpn] = -1

    # ==================================================================
    # write routine (paper §3.3.1)
    # ==================================================================
    def write(
        self, offset: int, size: int, now: float, stamps: Optional[dict] = None
    ) -> float:
        """Service a write: across-page requests take the re-alignment
        path; everything else is page-mapped with area interactions
        (AMerge/ARollback) handled per overlapping piece."""
        spp = self.spp
        if size <= 0:
            raise ValueError(f"extent size must be positive, got {size}")
        lpn = offset // spp
        rel_lo = offset - lpn * spp
        rel_end = rel_lo + size
        if rel_end <= spp:
            # single-page piece (the dominant replay case)
            return self._write_piece(lpn, rel_lo, rel_end, now, stamps)
        if size <= spp:
            # spans exactly two pages: the across-page path
            return self._write_across(offset, size, now, stamps)
        finish = now
        for lpn, rel_lo, count in split_extent(offset, size, spp):
            t = self._write_piece(lpn, rel_lo, rel_lo + count, now, stamps)
            if t > finish:
                finish = t
        return finish

    # ------------------------------------------------------------------
    def write_run(self, offsets, sizes, target: int) -> int:
        """Fused aging-write kernel (SimConfig.batch).

        An aging write whose touched pages carry no across area —
        screened through the flat ``_aidx`` mirror before any state is
        touched — is exactly a plain page-mapped update, so it runs
        the same inlined per-piece pipeline as
        :meth:`~repro.ftl.pagemap.PageMapFTL.write_run`.  Anything the
        screen cannot prove equivalent — an across-page request
        (re-alignment may create an area), an extent overlapping a
        live area (AMerge/ARollback), a non-positive size — goes
        through the real :meth:`write` for that one request, which
        keeps the whole run bit-identical to the scalar loop while
        still fast-pathing the ~99% of warm-up writes that never meet
        an area.
        """
        if self._write_run_fallback():
            return super().write_run(offsets, sizes, target)
        from ..errors import FlashProtocolError
        from ..flash.array import PAGE_FREE, PAGE_INVALID, PAGE_VALID
        from ..ftl.meta import DataPageMeta

        c = self.counters
        writes = c.writes
        reads = c.reads
        aging = OpKind.AGING
        spp = self.spp
        pmt = self._pmt
        pmt_mask = self._pmt_mask
        cache = self._pmt_cache
        unlimited = cache.unlimited
        epp = cache.entries_per_page
        cached = cache._cached
        move_to_end = cached.move_to_end
        access = cache.access
        aidx_of = self._aidx
        write = self.write
        service = self.service
        arr = service.array
        state = arr._state
        wp = arr._write_ptr
        valid_count = arr._valid_count
        last_mod = arr._last_mod
        meta_of = arr._meta
        allocator = self.allocator
        allocate = allocator.allocate
        order = allocator._plane_order
        active = allocator._active[0]
        n_planes = len(order)
        ppb = allocator._ppb
        gc = self.gc
        maybe_collect = gc.maybe_collect
        retire_pending = gc._retire_pending
        free_blocks = gc._free_blocks
        ok_free = gc._ok_free_count
        pages_per_plane = self.geom.pages_per_plane

        consumed = 0
        for offset, size in zip(offsets, sizes):
            end = offset + size
            first = offset // spp
            last = (end - 1) // spp
            # --- screen: across-page requests and area overlaps take
            # the real write path (pure mirror probes, no mutation)
            fallback = size <= 0 or (size <= spp and last == first + 1)
            if not fallback:
                for lpn in range(first, last + 1):
                    if aidx_of[lpn] != -1:
                        fallback = True
                        break
            if fallback:
                write(offset, size, 0.0, None)
                consumed += 1
                if writes[aging] >= target:
                    break
                continue
            for lpn in range(first, last + 1):
                page_lo = lpn * spp
                rel_lo = offset - page_lo if offset > page_lo else 0
                rel_hi = end - page_lo if end < page_lo + spp else spp
                # --- mapping-cache touch (dirty, untimed, hit inlined)
                if unlimited:
                    c.dram_accesses += 1
                    cache.hits += 1
                else:
                    tvpn = lpn // epp
                    if tvpn in cached:
                        c.dram_accesses += 1
                        cache.hits += 1
                        move_to_end(tvpn)
                        cached[tvpn] = True
                    else:
                        access(lpn, 0.0, dirty=True, timed=False)
                # --- _write_data_page, untimed / no payload / no obs
                new_mask = ((1 << (rel_hi - rel_lo)) - 1) << rel_lo
                old_ppn = pmt[lpn]
                old_mask = pmt_mask[lpn]
                if old_mask & ~new_mask and old_ppn >= 0:
                    # RMW read of the old page (untimed aging read)
                    if state[old_ppn] != PAGE_VALID:
                        raise FlashProtocolError(
                            f"read of non-valid PPN {old_ppn}"
                        )
                    arr.total_page_reads += 1
                    reads[aging] += 1
                if old_ppn >= 0:
                    if state[old_ppn] != PAGE_VALID:
                        raise FlashProtocolError(
                            f"invalidate of non-valid PPN {old_ppn}"
                        )
                    state[old_ppn] = PAGE_INVALID
                    old_block = old_ppn // ppb
                    valid_count[old_block] -= 1
                    del meta_of[old_ppn]
                    seq = arr.mod_seq + 1
                    arr.mod_seq = seq
                    last_mod[old_block] = seq
                full_mask = old_mask | new_mask
                # --- allocate (round-robin fast path, exact fallback)
                cur = allocator._cursor
                plane = order[cur]
                block = active[plane]
                ppn = -1
                if block is not None:
                    p = wp[block]
                    if p < ppb:
                        ppn = block * ppb + p
                        allocator._cursor = cur + 1 if cur + 1 < n_planes else 0
                if ppn < 0:
                    ppn = allocate(0)
                # --- program (untimed, AGING kind)
                if state[ppn] != PAGE_FREE:
                    raise FlashProtocolError(f"program of non-free PPN {ppn}")
                block = ppn // ppb
                page = ppn - block * ppb
                if page != wp[block]:
                    raise FlashProtocolError(
                        f"out-of-order program: block {block} expects page "
                        f"{wp[block]}, got {page}"
                    )
                state[ppn] = PAGE_VALID
                wp[block] = page + 1
                valid_count[block] += 1
                arr.total_programs += 1
                meta_of[ppn] = DataPageMeta(lpn, full_mask, None)
                seq = arr.mod_seq + 1
                arr.mod_seq = seq
                last_mod[block] = seq
                writes[aging] += 1
                # --- GC check on the written plane
                plane = ppn // pages_per_plane
                if retire_pending or len(free_blocks[plane]) < ok_free:
                    maybe_collect(plane, 0.0, timed=False)
                pmt[lpn] = ppn
                pmt_mask[lpn] = full_mask
            consumed += 1
            if writes[aging] >= target:
                break
        return consumed

    # ------------------------------------------------------------------
    def _write_piece(
        self, lpn: int, rel_lo: int, rel_hi: int, now: float, stamps: Optional[dict]
    ) -> float:
        """One per-LPN piece of a non-across write."""
        t = self._pmt_cache.access(lpn, now, dirty=True, timed=self.timed)
        if t > now:
            now = t
        aidx = self.aidx_of_lpn.get(lpn)
        if aidx is not None:
            entry = self.amt.get(aidx)
            amask = self._area_rel_mask(lpn, entry.start, entry.end)
            piece_mask = ((1 << (rel_hi - rel_lo)) - 1) << rel_lo
            if piece_mask & amask:
                # the update overlaps the remapped across-page data
                abs_lo = lpn * self.spp + rel_lo
                abs_hi = lpn * self.spp + rel_hi
                u_lo = min(entry.start, abs_lo)
                u_hi = max(entry.end, abs_hi)
                if self.amerge_enabled and u_hi - u_lo <= self.spp:
                    return self._amerge(
                        entry, abs_lo, abs_hi, now, stamps, profitable=False
                    )
                return self._rollback(
                    entry, now, stamps, new_pieces={lpn: (rel_lo, rel_hi)}
                )
        # plain page-mapped update, possibly with read-modify-write
        return self._write_data_page(lpn, rel_lo, rel_hi, now, stamps)

    # ------------------------------------------------------------------
    def _write_across(
        self, offset: int, size: int, now: float, stamps: Optional[dict]
    ) -> float:
        l0, l_end = lpn_range(offset, size, self.spp)
        l1 = l0 + 1
        t0 = self._pmt_cache.access(l0, now, dirty=True, timed=self.timed)
        t1 = self._pmt_cache.access(l1, now, dirty=True, timed=self.timed)
        now = max(now, t0, t1)
        a0 = self.aidx_of_lpn.get(l0)
        a1 = self.aidx_of_lpn.get(l1)

        if a0 is not None and a0 == a1:
            # an area already covers exactly this LPN pair: update it
            entry = self.amt.get(a0)
            u_lo = min(entry.start, offset)
            u_hi = max(entry.end, offset + size)
            if self.amerge_enabled and u_hi - u_lo <= self.spp:
                return self._amerge(
                    entry, offset, offset + size, now, stamps, profitable=True
                )
            return self._rollback(
                entry,
                now,
                stamps,
                new_pieces=self._pieces_by_lpn(offset, size),
            )

        # conflicting neighbour areas (an LPN can hold only one AIdx):
        # roll them back, then re-align the new request
        finish = now
        for aidx in {a for a in (a0, a1) if a is not None}:
            entry = self.amt.get(aidx)
            finish = max(finish, self._rollback(entry, now, None))
        return max(finish, self._direct_write(offset, size, finish, stamps))

    def _pieces_by_lpn(self, offset: int, size: int) -> dict[int, tuple[int, int]]:
        return {
            lpn: (rel_lo, rel_lo + count)
            for lpn, rel_lo, count in split_extent(offset, size, self.spp)
        }

    # ------------------------------------------------------------------
    def _direct_write(
        self, offset: int, size: int, now: float, stamps: Optional[dict]
    ) -> float:
        """Across-page *direct write*: re-align onto one fresh page."""
        l0 = offset // self.spp
        payload = None
        if self.track_payload:
            payload = {}
            if stamps:
                for sec in range(offset, offset + size):
                    if sec in stamps:
                        payload[sec] = stamps[sec]
        if self.service.obs is not None:
            self._emit_decision("direct", l0, now)
        meta = AcrossPageMeta(-1, offset, size, payload)
        ppn, finish = self._program_page(meta, now, OpKind.DATA)
        entry = self.amt.create(l0, offset, size, ppn)
        meta.aidx = entry.aidx
        self.aidx_of_lpn[l0] = entry.aidx
        self.aidx_of_lpn[l0 + 1] = entry.aidx
        self._aidx[l0] = entry.aidx
        self._aidx[l0 + 1] = entry.aidx
        for lpn in entry.lpns:
            self._shadow_pmt(lpn, self._area_rel_mask(lpn, offset, offset + size))
        t = self._amt_cache.access(entry.aidx, now, dirty=True, timed=self.timed)
        if not self.aging:
            self.across_stats.direct_writes += 1
            self.across_stats.areas_created += 1
        return max(finish, t)

    # ------------------------------------------------------------------
    def _amerge(
        self,
        entry,
        new_lo: int,
        new_hi: int,
        now: float,
        stamps: Optional[dict],
        *,
        profitable: bool,
    ) -> float:
        """Across-page merged write (paper Fig. 6, middle)."""
        u_lo = min(entry.start, new_lo)
        u_hi = max(entry.end, new_hi)
        if u_hi - u_lo > self.spp:
            raise MappingError("AMerge called with a union larger than a page")
        if self.service.obs is not None:
            self._emit_decision("amerge", entry.lpn0, now)
        finish = now
        t = self._amt_cache.access(entry.aidx, now, dirty=True, timed=self.timed)
        finish = max(finish, t)

        retained_lo, retained_hi = entry.start, entry.end
        fully_covered = new_lo <= retained_lo and retained_hi <= new_hi
        payload = None
        if self.track_payload:
            payload = {}
        if not fully_covered:
            # merging needs the old across data
            attr = self.service.attr
            if attr is not None:
                attr.read_label = "update_read"
            t = self.service.read_page(
                entry.appn, now, self._kind(OpKind.DATA), timed=self.timed
            )
            if attr is not None:
                attr.read_label = None
            if not self.aging:
                self.counters.update_reads += 1
            finish = max(finish, t)
            if payload is not None:
                old_meta = self.service.array.meta(entry.appn)
                if old_meta.payload:
                    for sec in range(retained_lo, retained_hi):
                        if (new_lo <= sec < new_hi) or sec not in old_meta.payload:
                            continue
                        payload[sec] = old_meta.payload[sec]
        if payload is not None and stamps:
            for sec in range(new_lo, new_hi):
                if sec in stamps:
                    payload[sec] = stamps[sec]

        self.service.invalidate(entry.appn)
        meta = AcrossPageMeta(entry.aidx, u_lo, u_hi - u_lo, payload)
        ppn, t = self._program_page(meta, finish, OpKind.DATA)
        finish = max(finish, t)
        entry.start, entry.size, entry.appn = u_lo, u_hi - u_lo, ppn
        for lpn in entry.lpns:
            self._shadow_pmt(lpn, self._area_rel_mask(lpn, u_lo, u_hi))
        if not self.aging:
            if profitable:
                self.across_stats.profitable_amerge += 1
            else:
                self.across_stats.unprofitable_amerge += 1
        return finish

    # ------------------------------------------------------------------
    def _rollback(
        self,
        entry,
        now: float,
        stamps: Optional[dict],
        new_pieces: Optional[dict[int, tuple[int, int]]] = None,
    ) -> float:
        """Across-page rollback write (paper Fig. 6, right): merge the
        across data (plus any triggering update data) back into the two
        normally-mapped pages and clear the area."""
        new_pieces = new_pieces or {}
        if self.service.obs is not None:
            self._emit_decision("arollback", entry.lpn0, now)
        t = self._amt_cache.access(entry.aidx, now, dirty=True, timed=self.timed)
        finish = max(now, t)
        # the across page's data is needed for every sector the update
        # does not overwrite
        attr = self.service.attr
        if attr is not None:
            attr.read_label = "update_read"
        t = self.service.read_page(
            entry.appn, now, self._kind(OpKind.DATA), timed=self.timed
        )
        if attr is not None:
            attr.read_label = None
        if not self.aging:
            self.counters.update_reads += 1
        finish = max(finish, t)
        area_meta = self.service.array.meta(entry.appn)

        for lpn in entry.lpns:
            amask = self._area_rel_mask(lpn, entry.start, entry.end)
            rel_lo, rel_hi = new_pieces.get(lpn, (0, 0))
            new_mask = mask_range(rel_lo, rel_hi)
            keep_mask = amask & ~new_mask
            extra_payload = None
            if self.track_payload:
                extra_payload = {}
                if area_meta.payload:
                    base = lpn * self.spp
                    for bit in iter_bits(keep_mask):
                        sec = base + bit
                        if sec in area_meta.payload:
                            extra_payload[sec] = area_meta.payload[sec]
            t = self._write_data_page(
                lpn,
                rel_lo,
                rel_hi,
                finish,
                stamps,
                extra_mask=keep_mask,
                extra_payload=extra_payload,
            )
            finish = max(finish, t)
            del self.aidx_of_lpn[lpn]
            self._aidx[lpn] = -1
        self.service.invalidate(entry.appn)
        self.amt.release(entry.aidx)
        if not self.aging:
            self.across_stats.rollbacks += 1
        return finish

    # ==================================================================
    # read routine (paper §3.3.2)
    # ==================================================================
    def read(
        self, offset: int, size: int, now: float
    ) -> tuple[float, Optional[dict]]:
        """Service a read: direct read when the extent sits inside an
        across area, merged read when it spills beyond (paper §3.3.2)."""
        finish = now
        found: Optional[dict] = {} if self.track_payload else None
        #: ppn -> sectors wanted from it
        plan: dict[int, list[int]] = {}
        touched_area = False
        normal_pages = 0
        seen_aidx: set[int] = set()
        normal_ppns: set[int] = set()

        for lpn, rel_lo, count in split_extent(offset, size, self.spp):
            t = self._pmt_cache.access(lpn, now, dirty=False, timed=self.timed)
            finish = max(finish, t)
            wanted = mask_range(rel_lo, rel_lo + count)
            base = lpn * self.spp
            aidx = self.aidx_of_lpn.get(lpn)
            amask = 0
            if aidx is not None:
                entry = self.amt.get(aidx)
                amask = self._area_rel_mask(lpn, entry.start, entry.end)
                hit = wanted & amask
                if hit:
                    touched_area = True
                    if aidx not in seen_aidx:
                        seen_aidx.add(aidx)
                        t = self._amt_cache.access(
                            aidx, now, dirty=False, timed=self.timed
                        )
                        finish = max(finish, t)
                    plan.setdefault(entry.appn, []).extend(
                        base + bit for bit in iter_bits(hit)
                    )
            rem = wanted & ~amask & self._pmt_mask[lpn]
            if rem:
                ppn = self._pmt[lpn]
                if ppn not in plan:
                    normal_pages += 1
                normal_ppns.add(ppn)
                plan.setdefault(ppn, []).extend(
                    base + bit for bit in iter_bits(rem)
                )

        attr = self.service.attr
        # a merged read's extra normal-page reads are the across-FTL
        # re-align overhead the paper's Fig. 4 quantifies — label them
        merged = attr is not None and touched_area and normal_pages > 0
        for ppn, sectors in plan.items():
            if merged:
                attr.read_label = (
                    "merged_read" if ppn in normal_ppns else None
                )
            t = self.service.read_page(
                ppn, now, self._kind(OpKind.DATA), timed=self.timed
            )
            finish = max(finish, t)
            if found is not None:
                self._read_stamps_from(ppn, sectors, found)
        if attr is not None:
            attr.read_label = None

        if touched_area and not self.aging:
            if normal_pages == 0:
                # served entirely from across areas: the direct read
                self.across_stats.direct_reads += 1
            else:
                self.across_stats.merged_read_requests += 1
                self.counters.merged_reads += normal_pages
            if self.service.obs is not None:
                self._emit_decision(
                    "direct_read" if normal_pages == 0 else "merged_read",
                    offset // self.spp, now,
                )
        return finish, found

    # ==================================================================
    # TRIM (paper extension: deallocation interacts with live areas)
    # ==================================================================
    def trim(self, offset: int, size: int, now: float) -> float:
        """Drop data in the extent.  An across area wholly inside the
        trim is released outright; a partially-trimmed area is first
        rolled back to the normal pages (the surviving sectors move
        there), then trimmed like ordinary data."""
        first, last = lpn_range(offset, size, self.spp)
        end = offset + size
        seen: set[int] = set()
        for lpn in range(first, last):
            aidx = self.aidx_of_lpn.get(lpn)
            if aidx is None or aidx in seen:
                continue
            seen.add(aidx)
            entry = self.amt.get(aidx)
            overlap_lo = max(entry.start, offset)
            overlap_hi = min(entry.end, end)
            if overlap_lo >= overlap_hi:
                continue
            if offset <= entry.start and entry.end <= end:
                # fully trimmed: release the area, no data survives
                self.service.invalidate(entry.appn)
                for alpn in entry.lpns:
                    del self.aidx_of_lpn[alpn]
                    self._aidx[alpn] = -1
                self.amt.release(entry.aidx)
            else:
                # survivors move back to the normal pages, then the
                # base trim below removes the trimmed bits
                self._rollback(entry, now, None)
        return super().trim(offset, size, now)

    # ==================================================================
    # GC relocation of across pages
    # ==================================================================
    def _relocate_extra(self, old_ppn: int, meta, now: float) -> float:
        if meta.kind != "across":
            return super()._relocate_extra(old_ppn, meta, now)
        entry = self.amt.get(meta.aidx)
        if entry.appn != old_ppn:
            raise MappingError(
                f"AMT {meta.aidx} points to {entry.appn}, GC found {old_ppn}"
            )
        plane = self.geom.plane_of_ppn(old_ppn)
        new_ppn, finish = self._program_page(
            meta, now, OpKind.GC, plane=plane, gc_check=False,
            stream=STREAM_GC,
        )
        entry.appn = new_ppn
        self.service.invalidate(old_ppn)
        return finish

    # ==================================================================
    # power-loss recovery
    # ==================================================================
    def _rebuild_reset(self) -> None:
        self.amt.clear()
        self.aidx_of_lpn.clear()
        self.aidx.fill(-1)

    def _rebuild_page(self, ppn: int, meta) -> None:
        if meta.kind != "across":
            return super()._rebuild_page(ppn, meta)
        lpn0 = meta.start // self.spp
        entry = self.amt.restore(meta.aidx, lpn0, meta.start, meta.size, ppn)
        for lpn in entry.lpns:
            if lpn in self.aidx_of_lpn:
                raise MappingError(f"LPN {lpn} claimed by two across areas")
            self.aidx_of_lpn[lpn] = entry.aidx
            self._aidx[lpn] = entry.aidx

    def _rebuild_finish(self) -> None:
        self.amt.rebuild_done()
        # data-page OOB masks are as-of-programming: sectors an area
        # shadowed afterwards must be re-shadowed (without touching
        # flash — the pages were already invalidated when the shadowing
        # emptied them, so masks here stay non-empty)
        for entry in self.amt.entries():
            for lpn in entry.lpns:
                amask = self._area_rel_mask(lpn, entry.start, entry.end)
                self._pmt_mask[lpn] = self._pmt_mask[lpn] & ~amask

    # ==================================================================
    def mapping_table_bytes(self) -> int:
        """Fig. 12a model: PMT entries widened by the AIdx field, plus
        the live AMT (entries are page-granular and demand-allocated)."""
        mapped_lpns = int((self.pmt >= 0).sum()) + sum(
            1 for lpn in self.aidx_of_lpn if self._pmt[lpn] < 0
        )
        return (
            mapped_lpns * (self.PMT_ENTRY_BYTES + AIDX_FIELD_BYTES)
            + len(self.amt) * AMT_ENTRY_BYTES
        )

    def flush_metadata(self, now: float) -> float:
        """Write back dirty PMT and AMT translation pages."""
        t1 = self._pmt_cache.flush(now, timed=self.timed)
        t2 = self._amt_cache.flush(now, timed=self.timed)
        return max(t1, t2)

    def stats(self) -> dict:
        """Across-path statistics (Fig. 8) merged into the report."""
        s = super().stats()
        st = self.across_stats
        s.update(
            across_direct_writes=st.direct_writes,
            across_profitable_amerge=st.profitable_amerge,
            across_unprofitable_amerge=st.unprofitable_amerge,
            across_rollbacks=st.rollbacks,
            across_rollback_ratio=st.rollback_ratio(st.areas_created),
            across_direct_reads=st.direct_reads,
            across_merged_read_requests=st.merged_read_requests,
            amt_live=len(self.amt),
            amt_created=self.amt.total_created,
            amt_peak_live=self.amt.peak_live,
            amt_cache_hits=self._amt_cache.hits,
            amt_cache_misses=self._amt_cache.misses,
        )
        return s

    # ==================================================================
    def referenced_ppns(self):
        """Base tables plus the across-page areas the AMT maps."""
        yield from super().referenced_ppns()
        for entry in self.amt.entries():
            yield entry.appn, f"amt[{entry.aidx}]"

    def check_invariants(self) -> None:
        """Across-specific invariants on top of the base PMT checks."""
        super().check_invariants()
        self.amt.check_invariants()
        mirrored = np.nonzero(self.aidx >= 0)[0]
        if mirrored.size != len(self.aidx_of_lpn) or any(
            self.aidx_of_lpn.get(int(lpn)) != int(self.aidx[lpn])
            for lpn in mirrored
        ):
            raise MappingError("AIdx mirror out of sync with aidx_of_lpn")
        for lpn, aidx in self.aidx_of_lpn.items():
            entry = self.amt.get(aidx)
            if lpn not in entry.lpns:
                raise MappingError(f"AIdx[{lpn}]={aidx} but area spans {entry.lpns}")
            amask = self._area_rel_mask(lpn, entry.start, entry.end)
            if amask & self._pmt_mask[lpn]:
                raise MappingError(
                    f"LPN {lpn}: PMT mask overlaps across area {aidx}"
                )
        for entry in self.amt.entries():
            for lpn in entry.lpns:
                if self.aidx_of_lpn.get(lpn) != entry.aidx:
                    raise MappingError(
                        f"area {entry.aidx} not referenced by LPN {lpn}"
                    )
            if not self.service.array.is_valid(entry.appn):
                raise MappingError(f"area {entry.aidx} -> invalid PPN {entry.appn}")
            meta = self.service.array.meta(entry.appn)
            if meta.kind != "across" or meta.aidx != entry.aidx:
                raise MappingError(f"area {entry.aidx} -> foreign page {meta!r}")
            if not (2 <= entry.size <= self.spp):
                raise MappingError(f"area {entry.aidx} has bad size {entry.size}")
            first, last = lpn_range(entry.start, entry.size, self.spp)
            if (first, last) != (entry.lpn0, entry.lpn0 + 2):
                raise MappingError(f"area {entry.aidx} extent/LPN mismatch")
