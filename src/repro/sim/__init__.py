"""Trace-driven simulation: the engine, device aging, and the
sector-version oracle used to prove data correctness end-to-end."""

from .engine import Simulator
from .oracle import SectorOracle

__all__ = ["Simulator", "SectorOracle"]
