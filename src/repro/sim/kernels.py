"""Vectorised per-batch hot paths for the batch replay loop.

:class:`BatchReadKernel` absorbs runs of *eligible* reads from the
columnar request stream (:mod:`repro.traces.columnar`) and services
them without entering :meth:`Simulator.process`: segment-level vector
screens decide eligibility, the per-request DRAM work (buffer lookup,
mapping-cache touch, sector-mask math, oracle folding) runs fused, and
the flash pass advances each chip's timeline in one tight loop at
``flush()``.

Bit-identical by construction, not by tolerance:

* every counter bump, LRU movement, protocol check and digest fold
  happens with the same values — and in the same request order — as
  the scalar path produces;
* the chip-timeline advance replays ``ChipTimeline._occupy`` exactly
  (``finish = max(busy, now) + read_ms`` per operation).  The closed
  form ``(k+1)*d + cummax(t_k - k*d)`` is algebraically equal but not
  floating-point equal (repeated addition is not multiplication in
  IEEE arithmetic), and finish times feed latency histograms and hence
  report digests — so the advance stays a fused scalar recurrence;
* any request the screens cannot prove equivalent (mapping-cache miss,
  across-area overlap, write, TRIM, invalid extent) flushes the run
  and falls back to the scalar path, which remains the single source
  of truth.

Eligibility is two-level.  Globally (``BatchReadKernel.build`` returns
``None`` otherwise): no observability bus, no latency attribution
(only installed with the bus), no fault injection, no host queue-depth
limit, and no bus-transfer timing.  Per request: the extent is valid,
every translation page it needs is already cached (or the cache is
unlimited) — which on MRSM also rules out the miss-path evictions that
would be flash traffic — and, for Across-FTL, no touched logical page
overlaps a live across area (probed per request against the flat
``aidx`` mirror — live, because a scalar-path write earlier in the
same segment may have created an area).  The page-mapped schemes share
one absorb path; MRSM gets its own (:meth:`_try_read_mrsm`,
region-granular dict lookups and tree-touch DRAM accounting) bound as
``try_read`` at construction."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import FlashProtocolError
from ..flash.array import PAGE_VALID
from ..metrics.counters import OpKind
from ..traces.model import OP_READ

#: minimum length of a consecutive-read run before the kernel starts
#: absorbing it.  Below this, the scalar path is cheaper: a run that a
#: write flushes after one or two requests pays the accumulator and
#: flush machinery without amortising it (write-heavy interleaved
#: workloads like the hotpath gate scenario would regress).  The
#: segment decode makes the lookahead free — one vectorised
#: suffix-scan per segment.
MIN_READ_RUN = 4


class BatchReadKernel:
    """Fused read-run executor bound to one :class:`Simulator`."""

    @classmethod
    def build(cls, sim) -> Optional["BatchReadKernel"]:
        """Return a kernel for ``sim``, or ``None`` when any global
        precondition fails (the batch loop then runs fully scalar)."""
        if sim.sim_cfg.queue_depth is not None:
            return None
        if sim.obs is not None or sim.faults is not None:
            return None
        ftl = sim.ftl
        if ftl.name not in ("ftl", "across", "mrsm"):
            return None
        if ftl.service.timeline._transfer_ms > 0:
            return None
        return cls(sim)

    def __init__(self, sim):
        self.sim = sim
        ftl = sim.ftl
        self.spp = sim.spp
        self.limit = ftl.logical_pages * sim.spp
        self.cache = sim.cache
        self.cache_ms = sim._cache_ms
        self.oracle = sim.oracle
        self.counters = ftl.counters
        self.reads = ftl.counters.reads
        self.mrsm = ftl.name == "mrsm"
        pcache = ftl._cache if self.mrsm else ftl._pmt_cache
        self.pcache = pcache
        self.unlimited = pcache.unlimited
        self.epp = pcache.entries_per_page
        self.cached = pcache._cached
        if self.mrsm:
            self.pmt = None
            self.pmt_mask = None
            self.rs = ftl.region_sectors
            self.region_map = ftl.region_map
            self.mask_get = ftl.region_mask.get
            self.tf = ftl._tree_touches
            self.aidx = None
            # instance attribute shadows the class method: zero-cost
            # per-request dispatch to the region-granular absorb path
            self.try_read = self._try_read_mrsm
        else:
            self.pmt = ftl._pmt
            self.pmt_mask = ftl._pmt_mask
            # Across-FTL: flat area-index mirror (-1 = no area) for the
            # area screen; None on the plain page-mapping scheme.  The
            # screen probes it live per request — a write earlier in
            # the *same* segment can create an area, so a per-segment
            # gather would go stale.
            self.aidx = ftl._aidx if ftl.name == "across" else None
        arr = ftl.service.array
        self.arr = arr
        self.state = arr._state
        self.meta = arr._meta
        tl = ftl.service.timeline
        self.tl = tl
        self.read_ms = tl._read_ms
        self.pages_per_chip = ftl.service._pages_per_chip
        self.recorder = sim.recorder
        self.completions = sim._completions
        self.request_log = sim.request_log
        self.checker = sim.checker
        #: accumulated requests: (index, arrival, across, size,
        #: resolved-finish-or-None, first-op, one-past-last-op)
        self._reqs: list[tuple] = []
        #: flash-read PPNs of the run, in issue order
        self._ppns: list[int] = []
        #: matching issue times (the request's service start)
        self._op_ts: list[float] = []
        # segment-local screen columns (begin_segment)
        self._k_lo: list[int] = []
        self._k_hi: list[int] = []
        self._k_across: list[bool] = []
        self._k_runlen: list[int] = []
        #: lifetime statistics (Simulator attributes only — the report
        #: dict feeds pinned digests and must not change shape)
        self.runs_flushed = 0
        self.requests_vectorised = 0
        self.flash_reads_vectorised = 0

    # ------------------------------------------------------------------
    def pending(self) -> int:
        """Requests absorbed but not yet flushed (progress accounting
        counts *completed* requests, so the replay loop subtracts
        this)."""
        return len(self._reqs)

    # ------------------------------------------------------------------
    def begin_segment(self, seg) -> None:
        """Precompute the segment-level screen columns: the decoded
        page geometry and the forward read-run lengths.  Only columns
        derived from the (immutable) trace may be precomputed — device
        state screens, the Across-FTL area probe included, must run
        live in :meth:`try_read` because a scalar-path write earlier in
        the same segment can change them."""
        self._k_lo = seg.lpn_lo.tolist()
        self._k_hi = seg.lpn_hi.tolist()
        self._k_across = seg.across.tolist()
        # forward run length of consecutive reads starting at each row:
        # suffix-min of the next non-read position, minus the row index
        ops = seg.ops
        idx = np.arange(len(ops))
        nxt = np.where(ops != OP_READ, idx, len(ops))
        sufmin = np.minimum.accumulate(nxt[::-1])[::-1]
        self._k_runlen = (sufmin - idx).tolist()

    # ------------------------------------------------------------------
    def try_read(
        self, k: int, offset: int, size: int, ts: float, index: int
    ) -> bool:
        """Absorb read ``k`` of the current segment (global request
        ``index``) into the run; ``False`` leaves all state untouched
        and sends the request down the scalar path."""
        # too-short read run and not already mid-run: scalar is cheaper
        if not self._reqs and self._k_runlen[k] < MIN_READ_RUN:
            return False
        end = offset + size
        if size <= 0 or offset < 0 or end > self.limit:
            return False  # scalar path raises the canonical error
        lpn_lo = self._k_lo[k]
        lpn_hi = self._k_hi[k]
        # --- screens: pure reads only, no mutation before commitment
        aidx = self.aidx
        if aidx is not None:
            for lpn in range(lpn_lo, lpn_hi + 1):
                if aidx[lpn] != -1:
                    return False
        if not self.unlimited:
            cached = self.cached
            epp = self.epp
            for tvpn in range(lpn_lo // epp, lpn_hi // epp + 1):
                if tvpn not in cached:
                    return False
        # --- committed: replay the scalar read's mutations fused
        counters = self.counters
        cache = self.cache
        oracle = self.oracle
        across = self._k_across[k]
        if cache is not None and cache.full_hit(offset, size):
            counters.cache_hits += 1
            found = (
                cache.get_stamps(offset, size) if oracle is not None else None
            )
            if oracle is not None:
                oracle.verify(offset, size, found)
                if self.sim._read_digest is not None:
                    self.sim._update_read_digest(offset, size, found)
            self._reqs.append(
                (index, ts, across, size, ts + self.cache_ms, 0, 0, offset)
            )
            return True
        # buffer miss (already counted by full_hit): flash read path
        spp = self.spp
        pmt = self.pmt
        pmt_mask = self.pmt_mask
        state = self.state
        meta_of = self.meta
        unlimited = self.unlimited
        cached = self.cached
        epp = self.epp
        pcache = self.pcache
        ppns = self._ppns
        op_ts = self._op_ts
        p_lo = len(ppns)
        found = {} if oracle is not None else None
        for lpn in range(lpn_lo, lpn_hi + 1):
            page_lo = lpn * spp
            rel_lo = offset - page_lo if offset > page_lo else 0
            rel_hi = end - page_lo if end < page_lo + spp else spp
            # mapping-cache touch (read hit, inlined untimed-equivalent)
            counters.dram_accesses += 1
            pcache.hits += 1
            if not unlimited:
                cached.move_to_end(lpn // epp)
            present = pmt_mask[lpn] & (
                ((1 << (rel_hi - rel_lo)) - 1) << rel_lo
            )
            if not present:
                continue  # nothing of this piece was ever written
            ppn = pmt[lpn]
            if state[ppn] != PAGE_VALID:
                raise FlashProtocolError(f"read of non-valid PPN {ppn}")
            ppns.append(ppn)
            op_ts.append(ts)
            if found is not None:
                m = meta_of[ppn]
                if m.payload:
                    payload = m.payload
                    mask = present
                    while mask:
                        low = mask & -mask
                        sec = page_lo + low.bit_length() - 1
                        mask ^= low
                        if sec in payload:
                            found[sec] = payload[sec]
        n_flash = len(ppns) - p_lo
        if n_flash:
            self.reads[OpKind.DATA] += n_flash
            counters._measured_reads += n_flash
            self.arr.total_page_reads += n_flash
        if cache is not None:
            cache.put_found(offset, size, found)
        if oracle is not None:
            oracle.verify(offset, size, found)
            if self.sim._read_digest is not None:
                self.sim._update_read_digest(offset, size, found)
        self._reqs.append(
            (index, ts, across, size, None, p_lo, len(ppns), offset)
        )
        return True

    # ------------------------------------------------------------------
    def _try_read_mrsm(
        self, k: int, offset: int, size: int, ts: float, index: int
    ) -> bool:
        """MRSM absorb path: region-granular split, tree-touch DRAM
        accounting, one deduplicated flash read per distinct region
        page — the exact shape of :meth:`MRSMFTL.read` with every
        touched translation page pre-screened as cached (so the miss /
        eviction flash traffic the scalar path would order can never
        occur inside the run)."""
        # too-short read run and not already mid-run: scalar is cheaper
        if not self._reqs and self._k_runlen[k] < MIN_READ_RUN:
            return False
        end = offset + size
        if size <= 0 or offset < 0 or end > self.limit:
            return False  # scalar path raises the canonical error
        rs = self.rs
        key_lo = offset // rs
        last_key = (end - 1) // rs
        unlimited = self.unlimited
        cached = self.cached
        epp = self.epp
        if not unlimited:
            for tvpn in range(key_lo // epp, last_key // epp + 1):
                if tvpn not in cached:
                    return False
        # --- committed: replay the scalar read's mutations fused
        counters = self.counters
        cache = self.cache
        oracle = self.oracle
        across = self._k_across[k]
        if cache is not None and cache.full_hit(offset, size):
            counters.cache_hits += 1
            found = (
                cache.get_stamps(offset, size) if oracle is not None else None
            )
            if oracle is not None:
                oracle.verify(offset, size, found)
                if self.sim._read_digest is not None:
                    self.sim._update_read_digest(offset, size, found)
            self._reqs.append(
                (index, ts, across, size, ts + self.cache_ms, 0, 0, offset)
            )
            return True
        # buffer miss (already counted by full_hit): flash read path
        tf = self.tf
        pcache = self.pcache
        move_to_end = None if unlimited else cached.move_to_end
        mask_get = self.mask_get
        region_map = self.region_map
        state = self.state
        meta_of = self.meta
        ppns = self._ppns
        op_ts = self._op_ts
        p_lo = len(ppns)
        want_payload = oracle is not None
        found = {} if want_payload else None
        #: ppn -> wanted sectors, in first-wanted order (dedup: one
        #: flash read per distinct region page, as the scalar path does)
        req_ppns: dict = {}
        sec = offset
        while sec < end:
            key = sec // rs
            region_start = key * rs
            hi = region_start + rs
            if hi > end:
                hi = end
            rel_lo = sec - region_start
            rel_hi = hi - region_start
            sec = hi
            # region-cache touch (read hit, dirty flag untouched)
            counters.dram_accesses += tf()
            pcache.hits += 1
            if move_to_end is not None:
                move_to_end(key // epp)
            present = mask_get(key, 0) & (
                ((1 << (rel_hi - rel_lo)) - 1) << rel_lo
            )
            if not present:
                continue
            ppn = region_map[key][0]
            secs = req_ppns.get(ppn)
            if secs is None:
                secs = req_ppns[ppn] = []
            if want_payload:
                mask = present
                while mask:
                    low = mask & -mask
                    secs.append(region_start + low.bit_length() - 1)
                    mask ^= low
        n_flash = 0
        for ppn, secs in req_ppns.items():
            if state[ppn] != PAGE_VALID:
                raise FlashProtocolError(f"read of non-valid PPN {ppn}")
            ppns.append(ppn)
            op_ts.append(ts)
            n_flash += 1
            if want_payload:
                m = meta_of[ppn]
                if m.payloads:
                    payloads = m.payloads
                    for s in secs:
                        if s in payloads:
                            found[s] = payloads[s]
        if n_flash:
            self.reads[OpKind.DATA] += n_flash
            counters._measured_reads += n_flash
            self.arr.total_page_reads += n_flash
        if cache is not None:
            cache.put_found(offset, size, found)
        if oracle is not None:
            oracle.verify(offset, size, found)
            if self.sim._read_digest is not None:
                self.sim._update_read_digest(offset, size, found)
        self._reqs.append(
            (index, ts, across, size, None, p_lo, len(ppns), offset)
        )
        return True

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Complete the accumulated run: advance the chip timelines
        (exact ``_occupy`` recurrence, issue order), then account every
        request in arrival order — completion window, latency buckets,
        request log, invariant sweeps."""
        reqs = self._reqs
        if not reqs:
            return
        ppns = self._ppns
        op_ts = self._op_ts
        n_ops = len(ppns)
        d = self.read_ms
        ppc = self.pages_per_chip
        tl = self.tl
        bu = tl._busy_until
        bt = tl._busy_time
        oc = tl._op_count
        fins = [0.0] * n_ops
        for j in range(n_ops):
            chip = ppns[j] // ppc
            t = op_ts[j]
            s = bu[chip]
            if t > s:
                s = t
            f = s + d
            bu[chip] = f
            bt[chip] += d
            oc[chip] += 1
            fins[j] = f
        record = self.recorder.record
        completions = self.completions
        rlog = self.request_log
        checker = self.checker
        for index, ts, across, size, finish, p_lo, p_hi, offset in reqs:
            if finish is None:
                finish = ts
                for j in range(p_lo, p_hi):
                    if fins[j] > finish:
                        finish = fins[j]
            completions.append(finish)
            latency = finish - ts
            record(False, across, latency, size)
            if rlog is not None:
                rlog.append(ts, OP_READ, across, latency, 0, offset)
            if checker is not None:
                checker.maybe_check(index + 1)
        self.runs_flushed += 1
        self.requests_vectorised += len(reqs)
        self.flash_reads_vectorised += n_ops
        self._reqs = []
        self._ppns = []
        self._op_ts = []
