"""Hazard-aware frontend scheduler for the event-driven replay loop.

The frontend owns every request between its ``arrive`` and ``issue``
events (:mod:`repro.sim.events`).  It enforces the ordering contract a
real NCQ device provides to the host:

* **RAW** — a read must not issue while an earlier-arrived write (or
  TRIM) to an overlapping sector extent is waiting or in flight: it
  would race past data it is supposed to observe.
* **WAW** — overlapping writes issue in arrival order, so the newest
  data always lands last.
* **WAR** — a write must not issue while an earlier-arrived
  overlapping read is waiting or in flight: the read returns the
  pre-write data (its arrival-time snapshot).

Reads never conflict with reads; TRIMs count as writes.  Requests free
of hazards may issue out of arrival order within a bounded scan
``window`` — that reordering freedom is what per-chip read
prioritisation (:mod:`repro.sim.nand_sched`) exploits.

NCQ queue-slot accounting lives here too: at most
``SimConfig.queue_depth`` *NAND-bound* requests are outstanding at
once.  Reads served entirely from the DRAM data cache and
metadata-only TRIMs bypass the NAND queue (they are still tracked as
in-flight for hazard purposes until their ``complete`` event fires).

The scheduler knows nothing about timing: it decides *eligibility*,
the engine decides *what happens* at issue, and the chip schedulers
decide *when* a NAND-bound command leaves its queue.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..traces.model import OP_READ, OP_TRIM
from .nand_sched import NandScheduler


class Request:
    """Mutable per-request state threaded through the event loop."""

    __slots__ = (
        "rid", "op", "offset", "size", "arrival", "across",
        "stamps", "expect", "read_index", "found",
        "cache_probed", "cache_hit", "holds_slot", "chip",
        "issue_t", "finish", "induced", "phases", "stalled",
    )

    def __init__(
        self, rid: int, op: int, offset: int, size: int,
        arrival: float, across: bool,
    ):
        self.rid = rid
        self.op = op
        self.offset = offset
        self.size = size
        self.arrival = arrival
        self.across = across
        #: oracle stamps assigned at arrival (writes)
        self.stamps: Optional[dict] = None
        #: oracle versions snapshotted at arrival (reads)
        self.expect: Optional[dict] = None
        #: arrival-order index among reads (digest folding order)
        self.read_index = -1
        #: stamps the service path returned (reads)
        self.found: Optional[dict] = None
        self.cache_probed = False
        self.cache_hit = False
        #: whether this request occupies a NAND NCQ slot
        self.holds_slot = False
        #: chip scheduler the request was queued on (-1 = none)
        self.chip = -1
        self.issue_t = -1.0
        self.finish = -1.0
        #: flash programs this request induced (service-time delta)
        self.induced = 0
        #: attribution phase dict captured at issue (emitted at complete)
        self.phases: Optional[dict] = None
        #: a HazardStall was already emitted/counted for this request
        self.stalled = False

    def conflicts(self, other: "Request") -> bool:
        """LBA-overlap hazard test: extents intersect and at least one
        side mutates data (TRIM counts as a write)."""
        if self.op == OP_READ and other.op == OP_READ:
            return False
        return (
            self.offset < other.offset + other.size
            and other.offset < self.offset + self.size
        )

    def __repr__(self) -> str:  # debugging aid only
        return (
            f"Request(rid={self.rid}, op={self.op}, "
            f"[{self.offset},{self.offset + self.size}), "
            f"arrival={self.arrival})"
        )


class FrontendScheduler:
    """Admission control: hazards, NCQ slots, and the dispatch scan.

    ``probe_cache(req, now) -> bool`` is the engine hook that performs
    the one-time DRAM-cache lookup for a hazard-clear read (it owns the
    cache, the counters and the ``BufferLookup`` event).  ``on_stall``
    (optional) is called once per request the first time a hazard
    blocks it.  ``checker`` (optional) re-validates every issue
    decision independently
    (:meth:`repro.check.invariants.InvariantChecker.check_hazard_order`).
    """

    def __init__(
        self,
        *,
        queue_depth: int | None,
        window: int,
        nand: NandScheduler,
        predict_chip: Callable[[Request], int],
        probe_cache: Callable[[Request, float], bool],
        issue: Callable[[Request, float], None],
        on_stall: Optional[Callable[[Request, Request, float], None]] = None,
        checker=None,
        batch: bool = False,
    ):
        self.queue_depth = queue_depth
        self.window = window
        self.nand = nand
        self._predict_chip = predict_chip
        self._probe_cache = probe_cache
        self._issue = issue
        self._on_stall = on_stall
        self.checker = checker
        #: batched release (SimConfig.batch composed with the frontend):
        #: the dispatch scan makes the identical eligibility decisions,
        #: but the released requests leave as one hazard-free batch —
        #: ``nand.submit``/``issue`` run after the scan, in scan order
        #: at the same ``now``, so the event heap sees the same sequence
        self.batch = batch
        #: arrival-ordered requests not yet released by the frontend
        self.waiting: list[Request] = []
        #: requests released but not yet complete (hazard set)
        self.inflight: list[Request] = []
        #: NAND NCQ slots currently held
        self.slots_used = 0
        #: requests that were hazard-blocked at least once
        self.hazard_stalls = 0
        #: reads served from DRAM without occupying a NAND slot
        self.cache_bypass = 0
        #: batch-mode statistics (scheduler attributes only: the report
        #: dict feeds pinned digests and must not change shape)
        self.batches_released = 0
        self.batch_requests = 0

    # ------------------------------------------------------------------
    def add(self, req: Request) -> None:
        """Take custody of a newly arrived request."""
        self.waiting.append(req)

    def on_complete(self, req: Request, now: float) -> None:
        """Release the hazard entry, NCQ slot and chip budget of a
        completed request."""
        self.inflight.remove(req)
        if req.holds_slot:
            self.slots_used -= 1
        self.nand.on_complete(req, now)

    def inflight_count(self) -> int:
        """Requests the device has accepted and not yet completed (the
        ``queue_depth`` gauge in frontend mode)."""
        return len(self.inflight)

    # ------------------------------------------------------------------
    def dispatch(self, now: float) -> None:
        """Release every currently eligible waiting request.

        One pass suffices: releasing a request moves it from
        ``waiting`` to ``inflight`` without weakening any hazard it
        imposes, and slots only free on completion events.
        """
        waiting = self.waiting
        if not waiting:
            return
        qd = self.queue_depth
        inflight = self.inflight
        #: batch mode: (request, needs_slot) release list, scan order.
        #: Chip prediction is deferred with the release — an earlier
        #: released trim can move mappings (across-area rollback), and
        #: the scalar path predicts only after such a trim has issued.
        release: Optional[list] = [] if self.batch else None
        #: earlier-scanned requests that stayed in the queue; later
        #: candidates must respect arrival order against them
        held: list[Request] = []
        scanned = 0
        i = 0
        while i < len(waiting) and scanned < self.window:
            req = waiting[i]
            scanned += 1
            blocker = self._hazard(req, held, inflight)
            if blocker is not None:
                if not req.stalled:
                    req.stalled = True
                    self.hazard_stalls += 1
                    if self._on_stall is not None:
                        self._on_stall(req, blocker, now)
                held.append(req)
                i += 1
                continue
            # hazard-clear: classify the service path
            needs_slot = True
            if req.op == OP_READ:
                if not req.cache_probed:
                    req.cache_probed = True
                    req.cache_hit = self._probe_cache(req, now)
                if req.cache_hit:
                    needs_slot = False
            elif req.op == OP_TRIM:
                # metadata-only, completes at DRAM speed
                needs_slot = False
            if needs_slot and qd is not None and self.slots_used >= qd:
                # NCQ full: NAND-bound requests wait, but later
                # DRAM-speed requests may still slip past this one —
                # hold it so arrival order vs conflicting ones survives
                held.append(req)
                i += 1
                continue
            if self.checker is not None:
                self.checker.check_hazard_order(req, held, inflight)
            del waiting[i]
            inflight.append(req)
            if needs_slot:
                req.holds_slot = True
                self.slots_used += 1
                if release is None:
                    req.chip = self._predict_chip(req)
                    self.nand.submit(req, now)
                else:
                    release.append((req, True))
            else:
                if req.op == OP_READ:
                    self.cache_bypass += 1
                if release is None:
                    self._issue(req, now)
                else:
                    release.append((req, False))
        if release:
            self.batches_released += 1
            self.batch_requests += len(release)
            predict_chip = self._predict_chip
            submit = self.nand.submit
            issue = self._issue
            for req, to_nand in release:
                if to_nand:
                    req.chip = predict_chip(req)
                    submit(req, now)
                else:
                    issue(req, now)

    @staticmethod
    def _hazard(
        req: Request, held: list, inflight: list
    ) -> Optional[Request]:
        """First request ``req`` must wait for, or None when clear."""
        for other in inflight:
            if req.conflicts(other):
                return other
        for other in held:
            if req.conflicts(other):
                return other
        return None
