"""Per-chip NAND command schedulers.

Behind the hazard-checking frontend (:mod:`repro.sim.frontend`) every
NAND-bound request is assigned to the command queue of the chip it is
*predicted* to touch first.  Each chip releases at most
``FrontendConfig.per_chip_depth`` requests into service at once and,
when ``read_priority`` is on, pulls the oldest queued *read* ahead of
queued writes — reads are latency-critical while a TLC program is
26x longer, the classic read-priority scheduling argument (LFTL,
arXiv 1302.5502 §4).

The chip prediction is a scheduling heuristic, not ground truth: the
FTL's write allocator picks the actual plane at service time, and a
multi-page request spans several chips.  Mispredicted requests still
time correctly — chip contention is resolved by the
:class:`~repro.flash.timing.ChipTimeline` busy accounting when the
request is serviced — the prediction only shapes *issue order*.  That
is exactly the split a real controller has: its scheduler works from
the queue contents it can see, the flash bus arbitrates the rest.
"""

from __future__ import annotations

from typing import Callable

from ..traces.model import OP_READ


class NandScheduler:
    """``num_chips`` command queues with bounded in-service windows.

    ``issue(req, now)`` is the engine callback that releases a request
    to the FTL (by pushing an ``issue`` event at ``now``).
    """

    def __init__(
        self,
        num_chips: int,
        *,
        per_chip_depth: int = 1,
        read_priority: bool = True,
        issue: Callable[..., None],
    ):
        if num_chips <= 0:
            raise ValueError("num_chips must be positive")
        self.num_chips = num_chips
        self.per_chip_depth = per_chip_depth
        self.read_priority = read_priority
        self._issue = issue
        #: queued (not yet in-service) requests per chip, FIFO order
        self._queues: list[list] = [[] for _ in range(num_chips)]
        #: requests currently released into service per chip
        self._in_service = [0] * num_chips
        #: requests a chip released ahead of an older queued request
        self.reordered = 0

    # ------------------------------------------------------------------
    def submit(self, req, now: float) -> None:
        """Queue ``req`` on its predicted chip; release it immediately
        when the chip's in-service window has room."""
        chip = req.chip
        if self._in_service[chip] < self.per_chip_depth:
            self._in_service[chip] += 1
            self._issue(req, now)
        else:
            self._queues[chip].append(req)

    def on_complete(self, req, now: float) -> None:
        """A released request completed: shrink the chip's in-service
        count and release the next queued command, reads first."""
        chip = req.chip
        if chip < 0:
            return  # cache-hit read or TRIM: never entered a chip queue
        self._in_service[chip] -= 1
        queue = self._queues[chip]
        if not queue:
            return
        pick = 0
        if self.read_priority and queue[0].op != OP_READ:
            for i in range(1, len(queue)):
                if queue[i].op == OP_READ:
                    pick = i
                    self.reordered += 1
                    break
        nxt = queue.pop(pick)
        self._in_service[chip] += 1
        self._issue(nxt, now)

    def queued(self) -> int:
        """Total requests sitting in chip queues (diagnostics)."""
        return sum(len(q) for q in self._queues)
