"""The trace-driven simulation engine.

Drives a block trace through (data cache ->) FTL -> flash array and
produces a :class:`~repro.metrics.report.SimulationReport`.  Latency of
a request is the completion time of its slowest page-level sub-request
minus its arrival time (paper §2.1: a request completes iff all its
sub-requests do).

The engine also implements device *aging* (paper §4.1: the device is
pre-conditioned so 90% of capacity has been programmed with 39.8%
still valid) and the per-request-class accounting behind the
motivation study of Fig. 4 (across-page vs normal latency and flush
counts per sector).
"""

from __future__ import annotations

import heapq
import sys
import time as _time
from collections import deque
from typing import Optional

import numpy as np

from ..cache.buffer import DataCache
from ..config import SimConfig
from ..errors import ConfigError, SimulationError
from ..ftl.base import BaseFTL
from ..metrics.latency import LatencyRecorder
from ..metrics.report import SimulationReport
from ..metrics.sketch import LogHistogram
from ..metrics.series import CounterSeries, Snapshot
from ..metrics.timeline import RequestLog
from ..obs import Observability
from ..obs.events import (
    BufferLookup,
    HazardStall,
    RequestArrive,
    RequestComplete,
    RequestPhases,
)
from ..traces.model import OP_READ, OP_TRIM, OP_WRITE, Trace
from .oracle import SectorOracle


#: progress-line refresh interval in wall-clock seconds
_PROGRESS_EVERY_S = 0.5


def _print_progress(
    name: str,
    done: int,
    total: int,
    elapsed: float,
    *,
    final: bool = False,
    prev_width: int = 0,
) -> int:
    """Throttled replay progress on stderr (stdout stays machine-
    readable): requests/s, % of trace, and an ETA from the current rate.

    Returns the width of the line just written; callers thread it back
    as ``prev_width`` so a shrinking line (rate/ETA losing digits) is
    padded with spaces instead of leaving stale characters after the
    carriage return.  A mid-run ``rate == 0`` (clock granularity, or a
    first request still aging the device) renders the ETA as ``?``
    rather than dividing by zero or claiming completion.
    """
    rate = done / elapsed if elapsed > 0 else 0.0
    pct = 100.0 * done / total if total else 100.0
    if rate > 0:
        eta = f"{(total - done) / rate:6.1f}s"
    elif done >= total:
        eta = f"{0.0:6.1f}s"
    else:
        eta = "     ?s"
    line = (
        f"[{name}] {done}/{total} ({pct:5.1f}%) "
        f"{rate:8.0f} req/s  ETA {eta}"
    )
    pad = prev_width - len(line)
    sys.stderr.write("\r" + line + (" " * pad if pad > 0 else ""))
    if final:
        sys.stderr.write("\n")
    sys.stderr.flush()
    return len(line)


class Simulator:
    """Runs block traces against one FTL instance."""

    def __init__(self, ftl: BaseFTL, sim_cfg: SimConfig | None = None):
        self.ftl = ftl
        self.cfg = ftl.cfg
        self.sim_cfg = sim_cfg if sim_cfg is not None else SimConfig()
        self.sim_cfg.validate()
        self.spp = self.cfg.sectors_per_page
        # per-request constant, hoisted out of process()
        self._cache_ms = self.cfg.timing.cache_access_ms
        cache_pages = self.cfg.write_buffer_bytes // self.cfg.page_size_bytes
        self.cache: Optional[DataCache] = (
            DataCache(cache_pages, self.spp) if cache_pages > 0 else None
        )
        self.oracle: Optional[SectorOracle] = (
            SectorOracle() if self.sim_cfg.check_oracle else None
        )
        if self.oracle is not None:
            # the oracle needs stamps stored in page metadata
            ftl.track_payload = True
        self.recorder = LatencyRecorder(enabled=self.sim_cfg.record_latencies)
        #: Fig. 4(c): flash writes induced per request class
        self.flush_writes = {"across": 0, "normal": 0}
        self.flush_sectors = {"across": 0, "normal": 0}
        self.trim_count = 0
        #: completion times of recently serviced requests; only the
        #: in-flight gauge needs them, so the window is bounded instead
        #: of growing with the trace.  The window must cover the host
        #: queue depth, otherwise the gauge undercounts whenever more
        #: than 128 requests overlap.
        qd = self.sim_cfg.queue_depth
        self._completions: deque[float] = deque(
            maxlen=128 if qd is None else max(128, qd)
        )
        # qos_streams needs the per-request rows even when the caller
        # did not ask for the full log explicitly
        self.request_log: Optional[RequestLog] = (
            RequestLog()
            if self.sim_cfg.record_requests or self.sim_cfg.qos_streams
            else None
        )
        #: metric-over-time snapshots (SimConfig.snapshot_every)
        self.series: Optional[CounterSeries] = (
            CounterSeries() if self.sim_cfg.snapshot_every > 0 else None
        )
        self._aged = False
        #: observability facade (SimConfig.observability); None when
        #: disabled, so every hot-path hook is a single `is None` branch
        self.obs: Optional[Observability] = None
        self._bus = None
        #: latency-attribution recorder (observability.attribution);
        #: None on the fast path like the bus
        self._attr = None
        self._next_rid = 0
        self._now = 0.0
        #: event-driven frontend scheduler (SimConfig.frontend); bound
        #: during _run_frontend, None on the legacy sequential path
        self._frontend = None
        #: vector read-run kernel (SimConfig.batch); bound during
        #: _run_batch when the global eligibility screens pass.  Its
        #: statistics stay Simulator attributes — report extras feed
        #: pinned digests and must not change shape with batch mode.
        self._batch_kernel = None
        if self.sim_cfg.observability.enabled:
            self.obs = Observability(self.sim_cfg.observability)
            self._bus = self.obs.bus
            self._attr = self.obs.attribution
            self.obs.bind(
                timeline=ftl.service.timeline,
                array=ftl.service.array,
                ftl=ftl,
                inflight_fn=self._inflight,
            )
            self._attach_obs()
        #: fault injector (SimConfig.faults); installed on the flash
        #: service so every timed op consults it — stays None (the
        #: fault-free fast path) unless the config block enables it
        self.faults = None
        if self.sim_cfg.faults.enabled:
            if not ftl.uses_generic_gc:
                raise ConfigError(
                    "fault injection requires a scheme using the generic "
                    "garbage collector (bad-block retirement rides its "
                    f"relocation path); scheme {ftl.name!r} manages "
                    "blocks itself"
                )
            from ..faults import FaultInjector

            self.faults = FaultInjector(
                self.cfg, self.sim_cfg.faults, ftl.service.array
            )
            ftl.service.faults = self.faults
        #: runtime invariant checker (SimConfig.check); stays None — the
        #: fast path — unless the config block enables it
        self.checker = None
        #: running digest of oracle-verified read contents, fed into the
        #: differential-replay comparison (repro.check); needs both the
        #: checker and the oracle
        self._read_digest = None
        if self.sim_cfg.check.enabled:
            from ..check.invariants import InvariantChecker

            self.checker = InvariantChecker(ftl, self.sim_cfg.check)
            if self.oracle is not None:
                import hashlib

                self._read_digest = hashlib.sha256()

    # ------------------------------------------------------------------
    # observability plumbing
    # ------------------------------------------------------------------
    def _attach_obs(self) -> None:
        """Install the event bus on every instrumented component."""
        self.ftl.service.obs = self._bus
        self.ftl.service.attr = self._attr
        if self.cache is not None:
            self.cache.obs = self._bus

    def _detach_obs(self) -> None:
        """Silence the bus (device aging must not flood the trace)."""
        self.ftl.service.obs = None
        self.ftl.service.attr = None
        if self.cache is not None:
            self.cache.obs = None

    def _update_read_digest(self, offset: int, size: int, found) -> None:
        """Fold one oracle-verified read into the running content
        digest: (extent, then each found sector's version stamp in
        sector order).  Any two runs replaying the same trace — across
        schemes, with or without the write buffer — must produce the
        same digest, because the oracle pins every returned stamp."""
        h = self._read_digest
        h.update(b"r%d:%d" % (offset, size))
        if found:
            for sec in sorted(found):
                h.update(b"|%d=%d" % (sec, found[sec]))

    def _inflight(self) -> int:
        """Requests issued but not yet complete at the current sim time
        (bounded scan: good enough for a sampled gauge).

        ``self._now`` is advanced to the sampling timestamp before
        every ``obs.maybe_sample`` call — sampling happens at request
        *completion* time, so comparing against the service start time
        would count the just-finished request (and any other request
        completing inside its service window) as still outstanding.
        In frontend mode the scheduler tracks the in-flight set
        exactly.
        """
        if self._frontend is not None:
            return self._frontend.inflight_count()
        now = self._now
        return sum(1 for c in self._completions if c > now)

    # ------------------------------------------------------------------
    # device aging (paper §4.1)
    # ------------------------------------------------------------------
    def age_device(self) -> None:
        """Pre-condition the flash (paper §4.1: the device is aged so
        90% of capacity has been used, 39.8% valid after warming up).

        ``aging_style="aligned"``: random full-page writes hit the
        ``aged_valid``/``aged_used`` fractions exactly.
        ``aging_style="vdi"``: replay a synthetic VDI write stream (like
        the paper's warm-up trace), which also pre-fragments sub-page
        mapping tables and seeds across-page areas.
        """
        used = self.sim_cfg.aged_used
        if used <= 0.0 or self._aged:
            self._aged = True
            return
        self.ftl.aging = True
        if self._bus is not None:
            self._detach_obs()
        try:
            if self.sim_cfg.aging_style == "vdi":
                self._age_vdi(used)
            else:
                self._age_aligned(used, self.sim_cfg.aged_valid)
        finally:
            self.ftl.aging = False
            if self._bus is not None:
                self._attach_obs()
        self._aged = True

    def _age_aligned(self, used: float, valid: float) -> None:
        rng = np.random.default_rng(self.sim_cfg.seed)
        total_pages = self.ftl.geom.num_pages
        logical_pages = self.ftl.logical_pages
        n_valid = min(int(valid * total_pages), logical_pages)
        n_total = int(used * total_pages)
        victims = rng.permutation(logical_pages)[:n_valid]
        spp = self.spp
        write = self.ftl.write
        for lpn in victims.tolist():
            write(lpn * spp, spp, 0.0, None)
        n_over = max(0, n_total - n_valid)
        if n_over and n_valid:
            over = rng.choice(victims, size=n_over, replace=True)
            for lpn in over.tolist():
                write(lpn * spp, spp, 0.0, None)

    def age_with_trace(self, trace: Trace) -> None:
        """Pre-condition by replaying a user-supplied trace's writes
        untimed — the paper's §4.1 warm-up with the actual
        additional-02...LUN6 file, for users who have it."""
        if self._aged:
            return
        self.ftl.aging = True
        if self._bus is not None:
            self._detach_obs()
        try:
            limit = self.ftl.logical_pages * self.spp
            write = self.ftl.write
            for op, offset, size, _t in trace:
                if op != OP_WRITE:
                    continue
                end = min(offset + size, limit)
                if end > offset >= 0:
                    write(offset, end - offset, 0.0, None)
        finally:
            self.ftl.aging = False
            if self._bus is not None:
                self._attach_obs()
        self._aged = True

    def _age_vdi(self, used: float) -> None:
        """Replay synthetic VDI writes until ``used`` of the physical
        pages have been programmed (GC may run; erased space counts as
        used work done, mirroring a real warm-up replay)."""
        from ..metrics.counters import OpKind
        from ..traces.model import OP_WRITE as _W
        from ..traces.synthetic import SyntheticSpec, generate_trace

        target = int(used * self.ftl.geom.num_pages)
        counters = self.ftl.counters
        chunk = max(2_000, target // 8)
        seed = self.sim_cfg.seed
        footprint = int(self.ftl.logical_pages * self.spp * 0.85)
        # The warm-up stream is LUN6-like in write sizes and alignment
        # (sub-page writes fragment region tables, like the paper's
        # warm-up replay), but its across-page component is scaled down
        # so the density of leftover areas matches the paper's full-size
        # device (~100k areas over 16.7M pages, i.e. <1% of pages —
        # naively replaying the full ratio on a 64x smaller device would
        # leave every third page shadowed by a stale area and flood the
        # measured run with one-time collision rollbacks).
        batch_cfg = self.sim_cfg.batch
        use_run = batch_cfg.enabled and batch_cfg.aging
        limit = self.ftl.logical_pages * self.spp
        while counters.writes[OpKind.AGING] < target:
            spec = SyntheticSpec(
                name="aging",
                requests=chunk,
                write_ratio=1.0,
                across_ratio=0.003,
                site_reuse=0.8,
                small_unaligned=0.45,
                mean_write_kb=7.6,
                footprint_sectors=footprint,
                seed=seed,
            )
            seed += 1
            trace = generate_trace(spec)
            if use_run:
                # batch aging: clamp/filter the write stream vectorised
                # and hand the whole chunk to the scheme's fused
                # write_run kernel (bit-identical to the loop below —
                # it stops on the same target check after each request)
                w = trace.ops == _W
                offs = trace.offsets[w]
                ends = np.minimum(offs + trace.sizes[w], limit)
                keep = ends > offs
                self.ftl.write_run(
                    offs[keep].tolist(),
                    (ends - offs)[keep].tolist(),
                    target,
                )
                continue
            write = self.ftl.write
            for op, offset, size, _t in trace:
                if op != _W:
                    continue
                end = min(offset + size, limit)
                if end <= offset:
                    continue
                write(offset, end - offset, 0.0, None)
                if counters.writes[OpKind.AGING] >= target:
                    break

    # ------------------------------------------------------------------
    # single request
    # ------------------------------------------------------------------
    def process(
        self,
        op: int,
        offset: int,
        size: int,
        arrival: float,
        start: float | None = None,
    ) -> float:
        """Service one request; returns its latency in ms.

        ``start`` (>= ``arrival``) is when the device begins servicing —
        later than arrival when a host queue-depth limit applies; the
        latency always counts from ``arrival``.
        """
        if size <= 0:
            raise SimulationError(f"request size must be positive, got {size}")
        if offset < 0 or offset + size > self.ftl.logical_pages * self.spp:
            raise SimulationError(
                f"request [{offset}, {offset + size}) outside logical space"
            )
        if start is None or start < arrival:
            start = arrival
        # inlined is_across_page (size already validated positive above)
        spp = self.spp
        across = size <= spp and (offset + size - 1) // spp == offset // spp + 1
        counters = self.ftl.counters
        writes_before = counters._measured_writes
        bus = self._bus
        rid = -1
        if bus is not None:
            rid = self._next_rid
            self._next_rid += 1
            self._now = start
            bus.now = start
            bus.current_request = rid
            bus.emit(RequestArrive(arrival, rid, op, offset, size, across))
        attr = self._attr
        if attr is not None:
            attr.begin(arrival, start)

        if op == OP_TRIM:
            if attr is not None:
                # any flash work a trim triggers (across-area rollback)
                # is non-gating: the trim completes at DRAM speed
                attr.suspend()
                try:
                    finish = self.ftl.trim(offset, size, start)
                finally:
                    attr.resume()
            else:
                finish = self.ftl.trim(offset, size, start)
            if self.cache is not None:
                self.cache.discard(offset, size)
            if self.oracle is not None:
                self.oracle.trim(offset, size)
            self.trim_count += 1
            self._completions.append(finish)
            latency = finish - arrival
            # TRIMs are metadata-only and excluded from the latency
            # recorder's four read/write buckets, but the request log
            # keeps its one-row-per-serviced-request contract (flush=0:
            # a trim never induces flash programs)
            if self.request_log is not None:
                self.request_log.append(arrival, op, across, latency, 0, offset)
            phases = None
            if attr is not None:
                attr.advance("cache", finish)
                phases = attr.complete("trim", latency)
                if self.checker is not None:
                    self.checker.check_attribution(phases, latency, rid)
            if bus is not None:
                # advance the clock to the completion/sampling
                # timestamp: the in-flight gauge compares against
                # self._now, and sampling at `finish` while the clock
                # still reads `start` would count every request
                # completing inside [start, finish] as outstanding
                self._now = finish
                bus.now = finish
                if phases:
                    bus.emit(RequestPhases(
                        finish, rid, tuple(sorted(phases.items()))
                    ))
                bus.emit(RequestComplete(finish, rid, latency))
                self.obs.maybe_sample(finish)
            return latency

        if op == OP_WRITE:
            stamps = (
                self.oracle.stamp_write(offset, size) if self.oracle else None
            )
            finish = self.ftl.write(offset, size, start, stamps)
            if self.cache is not None:
                self.cache.put(offset, size, stamps)
                t = start + self._cache_ms
                if t > finish:
                    finish = t
                if attr is not None:
                    attr.advance("cache", t)
        else:
            if self.cache is not None and self.cache.full_hit(offset, size):
                counters.cache_hits += 1
                if bus is not None:
                    bus.emit(BufferLookup(start, rid, True))
                finish = start + self._cache_ms
                if attr is not None:
                    attr.advance("cache", finish)
                found = self.cache.get_stamps(offset, size) if self.oracle else None
            else:
                if bus is not None and self.cache is not None:
                    bus.emit(BufferLookup(start, rid, False))
                finish, found = self.ftl.read(offset, size, start)
                if self.cache is not None:
                    self.cache.put_found(offset, size, found)
            if self.oracle is not None:
                self.oracle.verify(offset, size, found)
                if self._read_digest is not None:
                    self._update_read_digest(offset, size, found)
        self._completions.append(finish)

        latency = finish - arrival
        self.recorder.record(op == OP_WRITE, across, latency, size)
        induced = counters._measured_writes - writes_before
        if op == OP_WRITE:
            cls = "across" if across else "normal"
            self.flush_writes[cls] += induced
            self.flush_sectors[cls] += size
        if self.request_log is not None:
            self.request_log.append(
                arrival, op, across, latency, induced, offset
            )
        phases = None
        if attr is not None:
            cls = ("write_" if op == OP_WRITE else "read_") + (
                "across" if across else "normal"
            )
            phases = attr.complete(cls, latency)
            if self.checker is not None:
                self.checker.check_attribution(phases, latency, rid)
        if bus is not None:
            # same clock advance as the trim branch: sample at the
            # completion timestamp, not the stale service-start time
            self._now = finish
            bus.now = finish
            if phases:
                bus.emit(RequestPhases(
                    finish, rid, tuple(sorted(phases.items()))
                ))
            bus.emit(RequestComplete(finish, rid, latency))
            self.obs.maybe_sample(finish)
        return latency

    # ------------------------------------------------------------------
    # legacy sequential replay loop
    # ------------------------------------------------------------------
    def _run_legacy(self, trace: Trace) -> float:
        """Service the trace one request at a time (the pinned-digest
        replay model); returns the last arrival timestamp."""
        process = self.process
        checker = self.checker
        qd = self.sim_cfg.queue_depth
        completions = self._completions
        #: completion times of the at-most-qd outstanding requests; a
        #: slot frees when the *earliest-finishing* one completes (NCQ
        #: semantics), not the oldest-submitted (FIFO would mis-time
        #: every replay where a later short request finishes first).
        #: Metadata-only TRIMs bypass the queue entirely: they complete
        #: at DRAM speed without holding a NAND slot, so they neither
        #: wait for a slot nor gate the admission of later requests.
        outstanding: list[float] = []
        progress = self.sim_cfg.progress
        last = 0.0
        n = len(trace)
        loop_t0 = _time.perf_counter()
        next_prog = loop_t0 + _PROGRESS_EVERY_S
        prog_width = 0
        for i, (op, offset, size, ts) in enumerate(
            zip(
                trace.ops.tolist(),
                trace.offsets.tolist(),
                trace.sizes.tolist(),
                trace.times.tolist(),
            )
        ):
            start = None
            takes_slot = op != OP_TRIM
            if takes_slot and qd is not None and len(outstanding) >= qd:
                # the device accepts this request only once the
                # earliest-finishing outstanding one has completed
                start = max(ts, heapq.heappop(outstanding))
            process(op, offset, size, ts, start)
            if takes_slot and qd is not None:
                heapq.heappush(outstanding, completions[-1])
            last = ts
            if checker is not None:
                checker.maybe_check(i + 1)
            if (
                self.series is not None
                and (i + 1) % self.sim_cfg.snapshot_every == 0
            ):
                self.series.append(
                    Snapshot.capture(i + 1, ts, self.ftl.counters)
                )
            if progress:
                wall = _time.perf_counter()
                if wall >= next_prog:
                    prog_width = _print_progress(
                        trace.name, i + 1, n, wall - loop_t0,
                        prev_width=prog_width,
                    )
                    next_prog = wall + _PROGRESS_EVERY_S
        if progress:
            _print_progress(
                trace.name, n, n, _time.perf_counter() - loop_t0,
                final=True, prev_width=prog_width,
            )
        return last

    # ------------------------------------------------------------------
    # batched columnar replay loop (SimConfig.batch)
    # ------------------------------------------------------------------
    def _run_batch(self, trace: Trace) -> float:
        """Replay through the batch execution layer: decode the trace
        into columnar segments, absorb hazard-free runs of eligible
        reads into the vector kernel, and service everything else —
        writes, TRIMs, screened-out reads — through the scalar
        :meth:`process` after flushing the pending run.

        The request *semantics* are the legacy loop's: one request at a
        time in trace order, same counters, same latencies, same
        digests.  Only the execution strategy changes — that is the
        batch layer's whole contract, and the ``batch``
        differential-replay leg (``repro check --batch``) plus the
        golden-hotpath fixture pin it.
        """
        from ..traces.columnar import decode_segments
        from .kernels import BatchReadKernel

        process = self.process
        checker = self.checker
        qd = self.sim_cfg.queue_depth
        completions = self._completions
        outstanding: list[float] = []
        kernel = BatchReadKernel.build(self)
        self._batch_kernel = kernel
        progress = self.sim_cfg.progress
        snap_every = (
            self.sim_cfg.snapshot_every if self.series is not None else 0
        )
        last = 0.0
        n = len(trace)
        i = 0
        loop_t0 = _time.perf_counter()
        next_prog = loop_t0 + _PROGRESS_EVERY_S
        prog_width = 0
        for seg in decode_segments(
            trace, max_batch=self.sim_cfg.batch.max_batch, spp=self.spp
        ):
            ops = seg.ops.tolist()
            offsets = seg.offsets.tolist()
            sizes = seg.sizes.tolist()
            times = seg.times.tolist()
            if kernel is not None:
                kernel.begin_segment(seg)
            for k in range(len(ops)):
                op = ops[k]
                ts = times[k]
                if not (
                    kernel is not None
                    and op == OP_READ
                    and kernel.try_read(k, offsets[k], sizes[k], ts, i)
                ):
                    if kernel is not None:
                        kernel.flush()
                    start = None
                    takes_slot = op != OP_TRIM
                    if takes_slot and qd is not None and len(outstanding) >= qd:
                        start = max(ts, heapq.heappop(outstanding))
                    process(op, offsets[k], sizes[k], ts, start)
                    if takes_slot and qd is not None:
                        heapq.heappush(outstanding, completions[-1])
                    if checker is not None:
                        checker.maybe_check(i + 1)
                last = ts
                i += 1
                if snap_every and i % snap_every == 0:
                    if kernel is not None:
                        kernel.flush()
                    self.series.append(
                        Snapshot.capture(i, ts, self.ftl.counters)
                    )
                if progress:
                    wall = _time.perf_counter()
                    if wall >= next_prog:
                        # completed *requests*, not batches: absorbed-
                        # but-unflushed reads are still in flight
                        done = i - (kernel.pending() if kernel else 0)
                        prog_width = _print_progress(
                            trace.name, done, n, wall - loop_t0,
                            prev_width=prog_width,
                        )
                        next_prog = wall + _PROGRESS_EVERY_S
        if kernel is not None:
            kernel.flush()
        if progress:
            _print_progress(
                trace.name, n, n, _time.perf_counter() - loop_t0,
                final=True, prev_width=prog_width,
            )
        return last

    # ------------------------------------------------------------------
    # discrete-event frontend replay loop (SimConfig.frontend)
    # ------------------------------------------------------------------
    def _run_frontend(self, trace: Trace) -> float:
        """Replay through the event heap: requests arrive, wait out
        LBA-overlap hazards in the frontend scheduler, issue through
        per-chip command queues and complete when the timing model
        says so.  Returns the last arrival timestamp.

        Ordering contract: oracle stamps/snapshots are taken at
        *arrival* (trace order) and reads fold into the content digest
        in arrival order, so the digest is invariant across queue
        depths, chip budgets and schemes — the frontend's hazard rules
        must reproduce arrival semantics, and the oracle proves it.
        """
        from .events import EV_ARRIVE, EV_COMPLETE, EventHeap
        from .frontend import FrontendScheduler
        from .nand_sched import NandScheduler

        fe_cfg = self.sim_cfg.frontend
        bus = self._bus
        heap = EventHeap()
        self._fe_heap = heap

        def push_issue(req, now: float) -> None:
            from .events import EV_ISSUE

            heap.push(now, EV_ISSUE, req)

        nand = NandScheduler(
            self.cfg.num_chips,
            per_chip_depth=fe_cfg.per_chip_depth,
            read_priority=fe_cfg.read_priority,
            issue=push_issue,
        )
        fe = FrontendScheduler(
            queue_depth=self.sim_cfg.queue_depth,
            window=fe_cfg.window,
            nand=nand,
            predict_chip=self._fe_predict_chip,
            probe_cache=self._fe_probe_cache,
            issue=push_issue,
            on_stall=self._fe_stall if bus is not None else None,
            checker=self.checker,
            batch=self.sim_cfg.batch.enabled,
        )
        self._frontend = fe
        #: out-of-order completions buffered until every earlier-arrived
        #: read has folded into the digest
        self._fe_pending_reads = {}
        self._fe_next_read = 0
        self._fe_read_count = 0

        times = trace.times.tolist()
        ops = trace.ops.tolist()
        offsets = trace.offsets.tolist()
        sizes = trace.sizes.tolist()
        n = len(times)
        last = 0.0
        completed = 0
        checker = self.checker
        progress = self.sim_cfg.progress
        loop_t0 = _time.perf_counter()
        next_prog = loop_t0 + _PROGRESS_EVERY_S
        prog_width = 0
        if n:
            heap.push(times[0], EV_ARRIVE, 0)
        while heap:
            t, kind, payload = heap.pop()
            self._now = t
            if bus is not None:
                bus.now = t
            if kind == EV_COMPLETE:
                self._fe_complete(payload, t)
                fe.on_complete(payload, t)
                completed += 1
                if checker is not None:
                    checker.maybe_check(completed)
                if (
                    self.series is not None
                    and completed % self.sim_cfg.snapshot_every == 0
                ):
                    self.series.append(
                        Snapshot.capture(completed, t, self.ftl.counters)
                    )
                if progress:
                    wall = _time.perf_counter()
                    if wall >= next_prog:
                        prog_width = _print_progress(
                            trace.name, completed, n, wall - loop_t0,
                            prev_width=prog_width,
                        )
                        next_prog = wall + _PROGRESS_EVERY_S
            elif kind == EV_ARRIVE:
                i = payload
                last = times[i]
                if i + 1 < n:
                    # arrivals stream from the (time-sorted) trace one
                    # at a time, keeping the heap small
                    heap.push(times[i + 1], EV_ARRIVE, i + 1)
                fe.add(
                    self._fe_arrive(ops[i], offsets[i], sizes[i], times[i])
                )
            else:  # EV_ISSUE
                self._fe_issue(payload, t)
            fe.dispatch(t)
        if fe.waiting or fe.inflight or self._fe_pending_reads:
            raise SimulationError(
                f"frontend drained with {len(fe.waiting)} waiting / "
                f"{len(fe.inflight)} in-flight request(s) and "
                f"{len(self._fe_pending_reads)} unfolded read(s)"
            )
        if progress:
            _print_progress(
                trace.name, n, n, _time.perf_counter() - loop_t0,
                final=True, prev_width=prog_width,
            )
        return last

    def _fe_arrive(self, op: int, offset: int, size: int, ts: float):
        """Build the per-request state at its arrival event: validate
        the extent, assign oracle stamps (writes) or snapshot expected
        versions (reads) in trace order, and announce it on the bus."""
        from .frontend import Request

        if size <= 0:
            raise SimulationError(f"request size must be positive, got {size}")
        if offset < 0 or offset + size > self.ftl.logical_pages * self.spp:
            raise SimulationError(
                f"request [{offset}, {offset + size}) outside logical space"
            )
        spp = self.spp
        across = (
            size <= spp and (offset + size - 1) // spp == offset // spp + 1
        )
        rid = self._next_rid
        self._next_rid += 1
        req = Request(rid, op, offset, size, ts, across)
        oracle = self.oracle
        if oracle is not None:
            if op == OP_WRITE:
                req.stamps = oracle.stamp_write(offset, size)
            elif op == OP_TRIM:
                oracle.trim(offset, size)
            else:
                req.expect = oracle.snapshot(offset, size)
        if op == OP_READ:
            req.read_index = self._fe_read_count
            self._fe_read_count += 1
        if self._bus is not None:
            self._bus.emit(
                RequestArrive(ts, rid, op, offset, size, across)
            )
        return req

    def _fe_predict_chip(self, req) -> int:
        """Predict which chip a NAND-bound request touches first (the
        chip-queue assignment; a heuristic, see
        :mod:`repro.sim.nand_sched`): mapped reads go to their first
        LPN's current chip, everything else hashes the LPN across
        chips."""
        lpn = req.offset // self.spp
        if req.op == OP_READ:
            ppn = self.ftl._pmt[lpn]
            if ppn >= 0:
                return self.ftl.geom.chip_of_ppn(ppn)
        return lpn % self.cfg.num_chips

    def _fe_probe_cache(self, req, now: float) -> bool:
        """One-time DRAM-cache lookup for a hazard-clear read.

        Probe-once is sound for hits (a hit is served immediately) and
        a deliberate simplification for misses: a WAR hazard prevents
        any overlapping *write* from issuing before this read, so the
        only way the extent could become cached before issue is via a
        concurrent overlapping read's fill — that read then goes to
        flash anyway, which is timing-pessimistic but never stale.
        """
        cache = self.cache
        if cache is None:
            return False
        hit = cache.full_hit(req.offset, req.size)
        if hit:
            self.ftl.counters.cache_hits += 1
        if self._bus is not None:
            self._bus.emit(BufferLookup(now, req.rid, hit))
        return hit

    def _fe_stall(self, req, blocker, now: float) -> None:
        """Publish the first hazard stall of a request on the bus."""
        if req.op == OP_READ:
            kind = "raw"
        elif blocker.op == OP_READ:
            kind = "war"
        else:
            kind = "waw"
        self._bus.emit(HazardStall(now, req.rid, blocker.rid, kind))

    def _fe_issue(self, req, now: float) -> None:
        """Service a released request through the (synchronous) FTL
        timing model and schedule its completion event.

        The attribution ledger opens and closes inside this one event
        — every gating flash operation of the request resolves
        synchronously here — so the single-request frontier recorder
        keeps working with many requests in flight.
        """
        op = req.op
        bus = self._bus
        if bus is not None:
            bus.current_request = req.rid
        attr = self._attr
        if attr is not None:
            attr.begin(req.arrival, now)
        counters = self.ftl.counters
        writes_before = counters._measured_writes
        cache = self.cache
        if op == OP_TRIM:
            if attr is not None:
                # flash work a trim triggers (across-area rollback) is
                # non-gating: the trim completes at DRAM speed
                attr.suspend()
                try:
                    finish = self.ftl.trim(req.offset, req.size, now)
                finally:
                    attr.resume()
            else:
                finish = self.ftl.trim(req.offset, req.size, now)
            if cache is not None:
                cache.discard(req.offset, req.size)
            if attr is not None:
                attr.advance("cache", finish)
        elif op == OP_WRITE:
            finish = self.ftl.write(req.offset, req.size, now, req.stamps)
            if cache is not None:
                cache.put(req.offset, req.size, req.stamps)
                t = now + self._cache_ms
                if t > finish:
                    finish = t
                if attr is not None:
                    attr.advance("cache", t)
        elif req.cache_hit:
            finish = now + self._cache_ms
            if attr is not None:
                attr.advance("cache", finish)
            req.found = (
                cache.get_stamps(req.offset, req.size)
                if self.oracle is not None
                else None
            )
        else:
            finish, found = self.ftl.read(req.offset, req.size, now)
            if cache is not None:
                cache.put_found(req.offset, req.size, found)
            req.found = found
        req.induced = counters._measured_writes - writes_before
        req.issue_t = now
        req.finish = finish
        if attr is not None:
            latency = finish - req.arrival
            if op == OP_TRIM:
                cls = "trim"
            else:
                cls = ("write_" if op == OP_WRITE else "read_") + (
                    "across" if req.across else "normal"
                )
            req.phases = attr.complete(cls, latency)
            if self.checker is not None:
                self.checker.check_attribution(req.phases, latency, req.rid)
        from .events import EV_COMPLETE

        self._fe_heap.push(finish, EV_COMPLETE, req)

    def _fe_complete(self, req, now: float) -> None:
        """Account a completed request: latency buckets, flush/TRIM
        counters, request log, oracle verification against the
        arrival snapshot, and arrival-order digest folding."""
        op = req.op
        finish = req.finish
        latency = finish - req.arrival
        self._completions.append(finish)
        if op == OP_TRIM:
            self.trim_count += 1
            if self.request_log is not None:
                self.request_log.append(
                    req.arrival, op, req.across, latency, 0, req.offset
                )
        else:
            self.recorder.record(op == OP_WRITE, req.across, latency, req.size)
            if op == OP_WRITE:
                cls = "across" if req.across else "normal"
                self.flush_writes[cls] += req.induced
                self.flush_sectors[cls] += req.size
            if self.request_log is not None:
                self.request_log.append(
                    req.arrival, op, req.across, latency, req.induced,
                    req.offset,
                )
            if op == OP_READ and self.oracle is not None:
                self.oracle.verify_expected(
                    req.offset, req.size, req.found, req.expect
                )
                if self._read_digest is not None:
                    # completions may run out of arrival order; the
                    # digest must not, or it would differ across queue
                    # depths — buffer and fold in read-arrival order
                    pend = self._fe_pending_reads
                    pend[req.read_index] = (req.offset, req.size, req.found)
                    nxt = self._fe_next_read
                    while nxt in pend:
                        self._update_read_digest(*pend.pop(nxt))
                        nxt += 1
                    self._fe_next_read = nxt
        bus = self._bus
        if bus is not None:
            if req.phases:
                bus.emit(RequestPhases(
                    finish, req.rid, tuple(sorted(req.phases.items()))
                ))
            bus.emit(RequestComplete(finish, req.rid, latency))
            self.obs.maybe_sample(finish)

    # ------------------------------------------------------------------
    def _streams_summary(self) -> Optional[dict]:
        """Per-stream QoS rollup of the request log
        (``SimConfig.qos_streams``).

        Streams partition the LBA space at the configured sector
        boundaries; every logged request lands in exactly one stream by
        its start offset.  Only occupied streams appear, keyed by their
        index as a string (JSON round-trip safe).
        """
        boundaries = self.sim_cfg.qos_streams
        if not boundaries or self.request_log is None:
            return None
        log = self.request_log
        streams: dict[str, dict] = {}
        out = {"boundaries": [int(b) for b in boundaries], "streams": streams}
        if len(log) == 0:
            return out
        idx = np.searchsorted(
            np.asarray(boundaries, dtype=np.int64), log.offset, side="right"
        )
        ops = log.op
        lat = log.latency
        for i in np.unique(idx):
            mask = idx == i
            hist = LogHistogram()
            hist.extend(float(v) for v in lat[mask])
            streams[str(int(i))] = {
                "requests": int(mask.sum()),
                "reads": int((ops[mask] == OP_READ).sum()),
                "writes": int((ops[mask] == OP_WRITE).sum()),
                "trims": int((ops[mask] == OP_TRIM).sum()),
                "hist": hist.to_dict(),
            }
        return out

    # ------------------------------------------------------------------
    # full trace
    # ------------------------------------------------------------------
    def run(self, trace: Trace) -> SimulationReport:
        """Age (if configured), replay the whole trace, flush metadata,
        and assemble the report.

        Two replay loops share everything else: the legacy sequential
        loop (default; bit-identical to all pinned golden/bench
        digests) and the discrete-event frontend
        (``SimConfig.frontend.enabled``) that overlaps in-flight
        requests under hazard ordering (:mod:`repro.sim.frontend`).
        """
        t0 = _time.perf_counter()
        self.age_device()
        if self.sim_cfg.frontend.enabled:
            last = self._run_frontend(trace)
        elif self.sim_cfg.batch.enabled:
            last = self._run_batch(trace)
        else:
            last = self._run_legacy(trace)
        self.ftl.flush_metadata(last)
        if self.checker is not None:
            # unconditional end-of-run sweep (after the metadata flush,
            # so dirty translation pages are accounted on flash too)
            self.checker.check_now()
        if self.obs is not None:
            self.obs.finish(last)

        extra = dict(self.ftl.stats())
        extra["flush_writes_across"] = self.flush_writes["across"]
        extra["flush_writes_normal"] = self.flush_writes["normal"]
        extra["flush_sectors_across"] = self.flush_sectors["across"]
        extra["flush_sectors_normal"] = self.flush_sectors["normal"]
        extra["trim_count"] = self.trim_count
        if self.series is not None:
            self.series.append(
                Snapshot.capture(len(trace), last, self.ftl.counters)
            )
            extra.update(
                {f"series_{k}": v for k, v in self.series.summary().items()}
            )
        if self.cache is not None:
            extra["cache_entries"] = len(self.cache)
        if self.oracle is not None:
            extra["oracle_reads_verified"] = self.oracle.reads_verified
        if self.obs is not None:
            extra["obs_events"] = self._bus.events_emitted
            if self.obs.recorder is not None:
                extra["obs_spans"] = len(self.obs.recorder)
        if self.faults is not None:
            extra["fault_draws"] = self.faults.draws
            extra["retired_blocks"] = self.ftl.service.array.total_bad_blocks
        if self.checker is not None:
            extra["check_sweeps"] = self.checker.sweeps
            if self._read_digest is not None:
                extra["check_read_digest"] = self._read_digest.hexdigest()
        if self._frontend is not None:
            extra["frontend_hazard_stalls"] = self._frontend.hazard_stalls
            extra["frontend_cache_bypass"] = self._frontend.cache_bypass
            extra["frontend_reordered"] = self._frontend.nand.reordered
        if self.sim_cfg.record_wear:
            from ..flash.wear import wear_stats

            ws = wear_stats(self.ftl.service.array)
            extra["wear_total_erases"] = ws.total_erases
            extra["wear_mean"] = ws.mean
            extra["wear_std"] = ws.std
            extra["wear_max"] = ws.max
            extra["wear_gini"] = ws.gini
            extra["wear_imbalance"] = ws.imbalance
        return SimulationReport(
            scheme=self.ftl.name,
            trace_name=trace.name,
            requests=len(trace),
            counters=self.ftl.counters,
            latency=self.recorder,
            extra=extra,
            mapping_table_bytes=self.ftl.mapping_table_bytes(),
            wall_seconds=_time.perf_counter() - t0,
            attribution=(
                self._attr.summary() if self._attr is not None else None
            ),
            streams=self._streams_summary(),
        )
