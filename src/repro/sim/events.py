"""Time-ordered event heap for the discrete-event frontend.

The event-driven replay loop (:meth:`repro.sim.engine.Simulator.run`
with ``SimConfig.frontend.enabled``) advances simulated time by popping
events from a single binary heap.  Three event kinds cover the request
lifecycle:

``ARRIVE``
    the host submitted a request (trace timestamp); the frontend
    scheduler takes custody of it.
``ISSUE``
    the frontend/NAND schedulers released the request to the FTL; the
    engine services it synchronously and learns its completion time.
``COMPLETE``
    the request's slowest sub-operation landed; accounting runs and
    the NCQ slot / chip budget it held are released.

Ordering is total and deterministic: events sort by ``(time, kind
priority, sequence)``.  At equal timestamps completions run before
arrivals (a freed NCQ slot is visible to a request arriving at the
same instant) and arrivals before issues (an issue decided while
processing time ``t`` happens after every external event at ``t``);
the monotone sequence number breaks the remaining ties in push order,
so replays are reproducible across runs and worker processes.
"""

from __future__ import annotations

import heapq

#: event-kind identifiers double as same-timestamp sort priorities
EV_COMPLETE = 0
EV_ARRIVE = 1
EV_ISSUE = 2

EVENT_KINDS = ("complete", "arrive", "issue")
"""Human-readable names indexed by the ``EV_*`` identifiers."""


class EventHeap:
    """Deterministic time-ordered queue of ``(time, kind, payload)``.

    A thin wrapper over :mod:`heapq` that owns the tie-breaking rule;
    the payload is opaque to the heap (the engine stores its per-request
    state object there).
    """

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, object]] = []
        self._seq = 0

    def push(self, t: float, kind: int, payload) -> None:
        """Schedule ``payload`` for time ``t``."""
        self._seq += 1
        heapq.heappush(self._heap, (t, kind, self._seq, payload))

    def pop(self) -> tuple[float, int, object]:
        """Remove and return the earliest ``(time, kind, payload)``."""
        t, kind, _seq, payload = heapq.heappop(self._heap)
        return t, kind, payload

    def peek_time(self) -> float | None:
        """Timestamp of the earliest event (None when empty)."""
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
