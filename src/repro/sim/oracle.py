"""Sector-version oracle.

Ground truth for data correctness: every written sector gets a fresh
monotone version stamp; the stamps travel through the FTL inside page
metadata, survive merges, rollbacks and GC migrations, and every read
must return exactly the newest stamp for each sector it covers.  Any
divergence raises :class:`OracleMismatch` with a precise description —
this is the contract all three schemes are tested against.
"""

from __future__ import annotations

from ..errors import ReproError


class OracleMismatch(ReproError):
    """An FTL returned stale, foreign or missing data."""


class SectorOracle:
    """Monotone version stamps per absolute sector."""

    def __init__(self):
        self._versions: dict[int, int] = {}
        self._counter = 0
        self.writes_stamped = 0
        self.reads_verified = 0

    def stamp_write(self, offset: int, size: int) -> dict[int, int]:
        """Assign fresh stamps to ``[offset, offset+size)``; returns the
        stamps dict handed to the FTL write path."""
        self._counter += 1
        v = self._counter
        stamps = {}
        for sec in range(offset, offset + size):
            self._versions[sec] = v
            stamps[sec] = v
        self.writes_stamped += 1
        return stamps

    def trim(self, offset: int, size: int) -> None:
        """Forget stamps for a trimmed extent: subsequent reads must
        return nothing for these sectors."""
        for sec in range(offset, offset + size):
            self._versions.pop(sec, None)

    def snapshot(self, offset: int, size: int) -> dict[int, int]:
        """Current versions of ``[offset, offset+size)`` — the stamps a
        read arriving *now* must observe.  The event-driven frontend
        snapshots every read at arrival and verifies the completion
        against the snapshot (:meth:`verify_expected`), so hazard-
        ordered out-of-order execution is held to arrival semantics."""
        versions = self._versions
        return {
            sec: versions[sec]
            for sec in range(offset, offset + size)
            if sec in versions
        }

    def verify(self, offset: int, size: int, found: dict | None) -> None:
        """Check a read result against the *current* ground truth (the
        sequential replay loop verifies at service time)."""
        self.verify_expected(offset, size, found, self._versions)

    def verify_expected(
        self, offset: int, size: int, found: dict | None, expected: dict
    ) -> None:
        """Check a read result against an explicit version map (a
        :meth:`snapshot`, or the live table for :meth:`verify`)."""
        found = found or {}
        for sec in range(offset, offset + size):
            expected_v = expected.get(sec)
            got = found.get(sec)
            if expected_v is None:
                if got is not None:
                    raise OracleMismatch(
                        f"sector {sec}: never written but read returned "
                        f"stamp {got}"
                    )
            elif got != expected_v:
                raise OracleMismatch(
                    f"sector {sec}: expected stamp {expected_v}, got {got}"
                )
        self.reads_verified += 1

    def written_sectors(self) -> int:
        """Number of distinct sectors currently holding live data."""
        return len(self._versions)
