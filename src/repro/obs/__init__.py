"""Structured observability for the simulation pipeline.

This package is the instrumentation substrate of the repository: a
typed :class:`~repro.obs.events.EventBus` every simulator layer
publishes to (:mod:`.events`), a span recorder that turns the event
stream into per-request traces exportable to the Chrome trace viewer
(:mod:`.trace`), tick-driven time-series samplers for chip utilisation
and queue/occupancy gauges (:mod:`.samplers`), and Prometheus/JSON
exporters (:mod:`.export`).

Everything is **off by default**: the instrumented hot paths hold an
``obs`` reference that stays ``None`` unless
``SimConfig.observability.enabled`` is set, so a normal run pays one
branch per hook.  See ``docs/observability.md`` for the event taxonomy
and artifact formats, and ``repro trace --help`` for the CLI that
replays a workload with tracing on.

:class:`Observability` is the facade the engine owns: it builds the
bus, recorder and samplers from the config block and knows how to dump
the artifacts at end of run.
"""

from __future__ import annotations

import json as _json
from pathlib import Path

from .attribution import AttributionRecorder, PHASES, REQUEST_CLASSES
from .events import (
    BadBlockRetired,
    BufferEvict,
    BufferLookup,
    CMTEvent,
    DECISION_PATHS,
    Event,
    EventBus,
    FlashOp,
    FTLDecision,
    GCEvent,
    GCStall,
    GcPolicyDecision,
    HazardStall,
    MediaFault,
    ReadRetry,
    RequestArrive,
    RequestComplete,
    RequestPhases,
)
from .export import (
    attribution_prometheus_text,
    json_snapshot,
    prometheus_text,
    write_json_snapshot,
    write_prometheus,
)
from .samplers import ChipUtilizationSampler, GaugeSampler, SamplerSet
from .trace import TraceRecorder, load_chrome

__all__ = [
    "AttributionRecorder",
    "BadBlockRetired",
    "BufferEvict",
    "BufferLookup",
    "CMTEvent",
    "ChipUtilizationSampler",
    "DECISION_PATHS",
    "Event",
    "EventBus",
    "FTLDecision",
    "FlashOp",
    "GCEvent",
    "GCStall",
    "GaugeSampler",
    "GcPolicyDecision",
    "HazardStall",
    "MediaFault",
    "Observability",
    "PHASES",
    "REQUEST_CLASSES",
    "ReadRetry",
    "RequestArrive",
    "RequestComplete",
    "RequestPhases",
    "SamplerSet",
    "TraceRecorder",
    "attribution_prometheus_text",
    "json_snapshot",
    "load_chrome",
    "prometheus_text",
    "write_json_snapshot",
    "write_prometheus",
]


class Observability:
    """Facade tying bus, recorder and samplers to one simulation.

    Built by the engine from ``SimConfig.observability``; components
    reach the bus through the references the engine installs
    (``FlashService.obs``, ``DataCache.obs``), so nothing here imports
    simulator code — the dependency points one way.
    """

    def __init__(self, config):
        config.validate()
        self.config = config
        self.bus = EventBus()
        self.recorder: TraceRecorder | None = (
            TraceRecorder(self.bus) if config.trace else None
        )
        self.samplers: SamplerSet | None = (
            SamplerSet(config.sample_interval_ms)
            if config.sample_interval_ms > 0
            else None
        )
        self.attribution: AttributionRecorder | None = (
            AttributionRecorder() if config.attribution else None
        )

    # ------------------------------------------------------------------
    def bind(self, *, timeline=None, array=None, ftl=None, inflight_fn=None):
        """Install the standard samplers against live components.

        Called by the engine once the device exists.  ``inflight_fn``
        is a zero-arg callable returning the current outstanding
        request count (the engine provides it).
        """
        if self.samplers is None:
            return self
        if timeline is not None:
            self.samplers.add(ChipUtilizationSampler(timeline))
        if inflight_fn is not None:
            self.samplers.add(GaugeSampler("queue_depth", inflight_fn))
        if array is not None:
            self.samplers.add(
                GaugeSampler("free_blocks", array.total_free_blocks)
            )
        if ftl is not None:
            amt = getattr(ftl, "amt", None)
            if amt is not None:
                self.samplers.add(
                    GaugeSampler("amt_occupancy", lambda: len(amt))
                )
        return self

    def maybe_sample(self, now: float) -> None:
        if self.samplers is not None:
            self.samplers.maybe_sample(now)

    def finish(self, now: float) -> None:
        """End-of-run hook: take a final sample so every series has at
        least one point even on very short traces."""
        if self.samplers is not None:
            self.samplers.force_sample(now)

    # ------------------------------------------------------------------
    def write_artifacts(self, outdir, counters, extra=None) -> dict[str, str]:
        """Dump every configured artifact under ``outdir``.

        Returns ``{artifact kind: written path}``; kinds are
        ``chrome_trace``, ``spans_jsonl``, ``prometheus``,
        ``snapshot_json`` and ``attribution_json`` (the first two only
        when tracing was on, the last only with attribution on — the
        Prometheus file then also carries the per-phase histogram
        families).
        """
        outdir = Path(outdir)
        outdir.mkdir(parents=True, exist_ok=True)
        paths: dict[str, str] = {}
        if self.recorder is not None:
            chrome = outdir / "trace.json"
            self.recorder.write_chrome(chrome)
            paths["chrome_trace"] = str(chrome)
            jsonl = outdir / "spans.jsonl"
            self.recorder.write_jsonl(jsonl)
            paths["spans_jsonl"] = str(jsonl)
        prom = outdir / "metrics.prom"
        write_prometheus(prom, counters, self.samplers)
        if self.attribution is not None:
            with open(prom, "a") as fh:
                fh.write(attribution_prometheus_text(self.attribution))
        paths["prometheus"] = str(prom)
        snap = outdir / "snapshot.json"
        write_json_snapshot(snap, counters, self.samplers, extra)
        paths["snapshot_json"] = str(snap)
        if self.attribution is not None:
            attr_path = outdir / "attribution.json"
            with open(attr_path, "w") as fh:
                _json.dump(self.attribution.summary(), fh, indent=1)
            paths["attribution_json"] = str(attr_path)
        return paths
