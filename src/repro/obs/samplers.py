"""Time-series samplers polled on a simulated-time tick.

Counters answer "how much in total"; these samplers answer "when".
Each sampler captures one signal as a ``(t, value)`` series on a
configurable simulated-time interval
(``SimConfig.observability.sample_interval_ms``):

* :class:`ChipUtilizationSampler` — per-chip busy fraction within each
  tick window (from the :class:`~repro.flash.timing.ChipTimeline` busy
  accounting), the signal that shows GC monopolising a chip.
* :class:`GaugeSampler` — any scalar probe: queue depth, free blocks,
  AMT occupancy, mapping-cache residency...

The engine drives :meth:`SamplerSet.maybe_sample` once per serviced
request; sampling happens only when simulated time crossed the next
tick boundary, so the cost is one comparison per request plus the
probes on tick.
"""

from __future__ import annotations

from typing import Callable

import numpy as np


class GaugeSampler:
    """Samples ``fn()`` (a scalar) on every tick."""

    def __init__(self, name: str, fn: Callable[[], float]):
        self.name = name
        self._fn = fn
        self.times: list[float] = []
        self.values: list[float] = []

    def sample(self, now: float) -> None:
        """Record one (t, fn()) point."""
        self.times.append(now)
        self.values.append(float(self._fn()))

    def latest(self) -> float | None:
        """Most recent sampled value (None before the first tick)."""
        return self.values[-1] if self.values else None

    def series(self) -> dict:
        """Export the full series as ``{"t_ms": [...], "values": [...]}``."""
        return {"t_ms": list(self.times), "values": list(self.values)}


class ChipUtilizationSampler:
    """Per-chip busy fraction within each sampling window.

    Utilisation of chip ``c`` over window ``[t0, t1]`` is the busy-time
    the timeline accumulated for ``c`` in that window divided by the
    window length — 1.0 means the chip never idled.
    """

    name = "chip_utilization"

    def __init__(self, timeline):
        self.timeline = timeline
        self._last_busy = timeline.busy_time.copy()
        self._last_t: float | None = None
        self.times: list[float] = []
        #: one per-chip utilisation vector per tick
        self.utilization: list[list[float]] = []

    def sample(self, now: float) -> None:
        """Record the per-chip busy fraction since the previous tick."""
        busy = self.timeline.busy_time
        if self._last_t is None or now <= self._last_t:
            util = np.zeros(len(busy))
        else:
            window = now - self._last_t
            util = np.clip((busy - self._last_busy) / window, 0.0, 1.0)
        self._last_busy = busy.copy()
        self._last_t = now
        self.times.append(now)
        self.utilization.append([float(u) for u in util])

    def latest(self) -> list[float] | None:
        """Most recent per-chip utilisation vector (None before the
        first tick)."""
        return self.utilization[-1] if self.utilization else None

    def mean_utilization(self) -> list[float]:
        """Average utilisation per chip across all windows."""
        if not self.utilization:
            return []
        return [float(v) for v in np.mean(self.utilization, axis=0)]

    def series(self) -> dict:
        """Export times, per-tick per-chip vectors and per-chip means."""
        return {
            "t_ms": list(self.times),
            "per_chip": [list(row) for row in self.utilization],
            "mean_per_chip": self.mean_utilization(),
        }


class SamplerSet:
    """A group of samplers sharing one simulated-time tick."""

    def __init__(self, interval_ms: float):
        if interval_ms <= 0:
            raise ValueError("interval_ms must be positive")
        self.interval_ms = interval_ms
        self._next_tick = interval_ms
        self.samplers: list = []

    def add(self, sampler) -> None:
        """Register a sampler (anything with ``sample(now)``)."""
        self.samplers.append(sampler)

    def maybe_sample(self, now: float) -> bool:
        """Sample every sampler if ``now`` crossed the next tick; the
        tick then advances past ``now`` (sparse traces do not generate
        catch-up samples for empty windows)."""
        if now < self._next_tick:
            return False
        for s in self.samplers:
            s.sample(now)
        ticks = int((now - self._next_tick) // self.interval_ms) + 1
        self._next_tick += ticks * self.interval_ms
        return True

    def force_sample(self, now: float) -> None:
        """Unconditional end-of-run sample so short traces still get
        at least one point per series."""
        for s in self.samplers:
            s.sample(now)

    def series(self) -> dict[str, dict]:
        """``{sampler name: series dict}`` for export."""
        return {s.name: s.series() for s in self.samplers}

    def latest_gauges(self) -> dict[str, float]:
        """Latest scalar value of every gauge sampler (exporters)."""
        out: dict[str, float] = {}
        for s in self.samplers:
            if isinstance(s, GaugeSampler):
                v = s.latest()
                if v is not None:
                    out[s.name] = v
        return out
