"""Per-request critical-path latency attribution.

:class:`AttributionRecorder` decomposes every host request's latency
into named phases (the paper's Fig. 4 motivation study asks *where* an
across-page request's extra latency goes):

=================  ====================================================
``queue``          NCQ host-queue wait (device accepted the request
                   after its arrival)
``cache``          DRAM write-buffer / metadata service time
``map_read``       mapping-translation flash reads (CMT misses)
``flash_read``     data-page flash reads on the critical path
``update_read``    RMW old-data reads (paper's update reads)
``merged_read``    across-FTL merged-read extra page reads
``flash_program``  page program cell time
``bus_xfer``       channel data-transfer time (``timing.transfer_ms``)
``media_retry``    read-retry / reprogram penalties (:mod:`repro.faults`)
``gc_stall``       waiting on a chip occupied by background work (GC
                   migrations/erases, dirty-CMT write-back fetches)
``chip_wait``      waiting on a chip occupied by other host requests
=================  ====================================================

The decomposition is a **frontier ledger**: a request's critical-path
frontier starts at its service ``start`` and every *gating* flash
operation (one whose completion folds into the request finish time)
advances it.  Chip wait before an operation begins is split against the
recorded end of background work on that chip (``gc_stall`` vs
``chip_wait``); the operation's own timeline segments (cell time, bus
transfer, retry penalties) are then credited to their phases for
whatever portion extends past the frontier.  Operations that finish
behind the frontier — parallel sub-requests off the critical path —
contribute nothing, which is exactly the paper's completion rule
(a request completes when its *slowest* sub-request does).

Because the frontier only ever advances to recorded completion times
and the engine folds the same times into the request finish, the
recorded phases sum **exactly** to the recorded request latency.  That
conservation law is enforced per-request by
:meth:`repro.check.invariants.InvariantChecker.check_attribution`
(tolerance 1e-9 ms) and doubles as a tripwire for un-instrumented
gating operations.

Per ``request class x phase`` durations additionally stream into
bounded-memory :class:`~repro.metrics.sketch.LogHistogram` sketches, so
p50/p95/p99/p99.9 per phase stay available on million-request runs
without retaining samples.

Everything here is **off by default** — the flash service holds an
``attr`` reference that stays ``None`` unless
``SimConfig.observability.attribution`` is set, so normal runs pay one
``is None`` branch per operation.
"""

from __future__ import annotations

from ..metrics.sketch import LogHistogram

#: closed phase vocabulary (stacked-bar ordering: service phases first,
#: waits last)
PHASES = (
    "queue",
    "cache",
    "map_read",
    "flash_read",
    "update_read",
    "merged_read",
    "flash_program",
    "bus_xfer",
    "media_retry",
    "gc_stall",
    "chip_wait",
)

#: request classes attribution aggregates over (the engine's Fig. 4
#: across/normal split, per direction, plus trims)
REQUEST_CLASSES = (
    "read_normal",
    "read_across",
    "write_normal",
    "write_across",
    "trim",
)


class AttributionRecorder:
    """Critical-path phase ledger for the request currently in service.

    The engine calls :meth:`begin`/:meth:`complete` around each request;
    :class:`~repro.flash.service.FlashService` calls :meth:`record` for
    every timed flash operation; FTL layers bracket non-gating work
    (GC, log-block merges, dirty CMT fetches) with
    :meth:`suspend`/:meth:`resume` and tag re-align overhead reads by
    setting :attr:`read_label`.
    """

    def __init__(self, min_value: float = 1e-4, growth: float = 1.04):
        #: phase accumulator of the in-flight request (None = no request)
        self._acc: dict | None = None
        #: critical-path frontier of the in-flight request (ms)
        self._frontier = 0.0
        #: suspend depth: >0 means ops are background (non-gating)
        self._suspend = 0
        #: chip -> latest recorded end of background work on it
        self._bg_busy: dict[int, float] = {}
        #: label override for the next data reads ("update_read" /
        #: "merged_read"); None = plain "flash_read"
        self.read_label: str | None = None
        #: (request class, phase) -> latency sketch; phase "total" holds
        #: the end-to-end request latency
        self.sketches: dict[tuple[str, str], LogHistogram] = {}
        #: per-class completed-request counts
        self.class_counts: dict[str, int] = {}
        #: per-class x phase summed milliseconds (breakdown tables)
        self.phase_ms: dict[str, dict[str, float]] = {}
        self._hist_args = (min_value, growth)

    # ------------------------------------------------------------------
    # request lifecycle (engine)
    # ------------------------------------------------------------------
    def begin(self, arrival: float, start: float) -> None:
        """Open the ledger for a request accepted at ``start``."""
        acc: dict[str, float] = {}
        if start > arrival:
            acc["queue"] = start - arrival
        self._acc = acc
        self._frontier = start
        self.read_label = None

    def advance(self, phase: str, end: float) -> None:
        """Credit ``phase`` with frontier time up to ``end`` (DRAM-side
        gates the flash service never sees: cache folds, trim finishes)."""
        acc = self._acc
        if acc is None:
            return
        if end > self._frontier:
            acc[phase] = acc.get(phase, 0.0) + (end - self._frontier)
            self._frontier = end

    def complete(self, cls: str, latency: float) -> dict[str, float]:
        """Close the ledger: fold phases into the per-class sketches and
        return the phase dict (the conservation-check input)."""
        acc = self._acc if self._acc is not None else {}
        self._acc = None
        self.read_label = None
        self.class_counts[cls] = self.class_counts.get(cls, 0) + 1
        totals = self.phase_ms.setdefault(cls, {})
        sketches = self.sketches
        for phase, ms in acc.items():
            totals[phase] = totals.get(phase, 0.0) + ms
            key = (cls, phase)
            h = sketches.get(key)
            if h is None:
                h = sketches[key] = LogHistogram(*self._hist_args)
            h.add(ms)
        key = (cls, "total")
        h = sketches.get(key)
        if h is None:
            h = sketches[key] = LogHistogram(*self._hist_args)
        h.add(latency)
        return acc

    # ------------------------------------------------------------------
    # background bracketing (GC, merges, dirty CMT fetches, trim)
    # ------------------------------------------------------------------
    def suspend(self) -> None:
        """Ops until :meth:`resume` are background: they never advance
        the frontier, only mark their chips as busy with background
        work (subsequent waits on those chips count as ``gc_stall``)."""
        self._suspend += 1

    def resume(self) -> None:
        """Re-enter normal recording after :meth:`suspend`."""
        self._suspend -= 1

    def note_background(self, chip: int, end: float) -> None:
        """Record background occupancy of ``chip`` until ``end``
        (erases are issued inside suspend brackets but also arrive here
        directly, so the attribution of later waits never depends on
        bracket placement around the erase itself)."""
        if end > self._bg_busy.get(chip, 0.0):
            self._bg_busy[chip] = end

    # ------------------------------------------------------------------
    # flash operations (FlashService)
    # ------------------------------------------------------------------
    def record(
        self,
        chip: int,
        issue: float,
        wait_end: float,
        segs: tuple,
    ) -> None:
        """Fold one timed flash operation into the ledger.

        ``issue`` is when the FTL issued the op, ``wait_end`` when it
        started occupying its first resource, and ``segs`` the op's
        timeline as ascending ``(phase, end_ms)`` pairs.  Only the
        portion past the current frontier lands in the ledger, so
        off-critical-path parallel sub-requests cost nothing.
        """
        if self._suspend:
            end = segs[-1][1]
            if end > self._bg_busy.get(chip, 0.0):
                self._bg_busy[chip] = end
            return
        acc = self._acc
        if acc is None:
            # op outside any request (end-of-run metadata flush)
            return
        f = self._frontier
        if wait_end > f:
            w0 = f if f > issue else issue
            bg = self._bg_busy.get(chip, 0.0)
            if bg > w0:
                g1 = bg if bg < wait_end else wait_end
                acc["gc_stall"] = acc.get("gc_stall", 0.0) + (g1 - w0)
                w0 = g1
            if wait_end > w0:
                acc["chip_wait"] = acc.get("chip_wait", 0.0) + (wait_end - w0)
            f = wait_end
        prev = wait_end
        for phase, end in segs:
            if end > f:
                s0 = f if f > prev else prev
                acc[phase] = acc.get(phase, 0.0) + (end - s0)
                f = end
            prev = end
        self._frontier = f

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def quantiles(
        self, qs=(0.5, 0.95, 0.99, 0.999)
    ) -> dict[str, dict[str, dict[str, float]]]:
        """``{class: {phase: {"p50": ..., "p99.9": ...}}}``."""
        out: dict[str, dict[str, dict[str, float]]] = {}
        for (cls, phase), h in sorted(self.sketches.items()):
            out.setdefault(cls, {})[phase] = h.quantiles(qs)
        return out

    def summary(self) -> dict:
        """JSON-serialisable aggregate for
        :attr:`~repro.metrics.report.SimulationReport.attribution`."""
        return {
            "requests": dict(sorted(self.class_counts.items())),
            "phase_ms": {
                cls: {p: totals[p] for p in sorted(totals)}
                for cls, totals in sorted(self.phase_ms.items())
            },
            "quantiles": self.quantiles(),
            "sketches": {
                f"{cls}/{phase}": h.to_dict()
                for (cls, phase), h in sorted(self.sketches.items())
            },
        }

    @staticmethod
    def mean_phase_breakdown(summary: dict) -> dict[str, dict[str, float]]:
        """Per-class *mean* ms per phase from a :meth:`summary` dict
        (the ``repro profile`` breakdown-table input)."""
        out: dict[str, dict[str, float]] = {}
        requests = summary.get("requests", {})
        for cls, totals in summary.get("phase_ms", {}).items():
            n = requests.get(cls, 0)
            if not n:
                continue
            out[cls] = {p: ms / n for p, ms in totals.items()}
        return out
