"""Typed simulation events and the near-zero-overhead event bus.

Every layer of the simulator can publish structured events describing
what it just did — request lifecycle, FTL path decisions, flash
commands, GC activity, mapping-cache behaviour — and any number of
consumers (the span recorder of :mod:`.trace`, the samplers of
:mod:`.samplers`, ad-hoc analysis callbacks) subscribe to the ones they
care about.

The bus is **disabled by default** and costs the hot paths exactly one
attribute load and one branch when off: instrumented components hold an
``obs`` reference that is ``None`` unless observability was requested
(``SimConfig.observability.enabled``), so the instrumentation pattern
everywhere is::

    obs = self.obs              # or self.service.obs
    if obs is not None:
        obs.emit(FlashOp(...))

Event timestamps are *simulated* milliseconds (the same clock the
engine and chip timelines use).  Components that have no clock of their
own (the write buffer) stamp events with :attr:`EventBus.now`, which
the engine advances once per request.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


# ----------------------------------------------------------------------
# event types
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class Event:
    """Base class: every event carries its simulated time in ms."""

    t: float


@dataclass(frozen=True, slots=True)
class RequestArrive(Event):
    """A host request entered the device."""

    rid: int
    op: int          # traces.model OP_READ / OP_WRITE / OP_TRIM
    offset: int      # sectors
    size: int        # sectors
    across: bool     # paper's across-page request class


@dataclass(frozen=True, slots=True)
class RequestComplete(Event):
    """A host request finished (t is the completion time)."""

    rid: int
    latency: float   # ms, counted from arrival


@dataclass(frozen=True, slots=True)
class RequestPhases(Event):
    """Critical-path latency attribution of a completed request.

    Emitted just before :class:`RequestComplete` when
    ``SimConfig.observability.attribution`` is on.  ``phases`` is a
    tuple of ``(phase name, milliseconds)`` pairs (sorted by name) from
    the :data:`repro.obs.attribution.PHASES` vocabulary; the values sum
    to the request latency (the conservation law
    :meth:`repro.check.invariants.InvariantChecker.check_attribution`
    enforces).
    """

    rid: int
    phases: tuple


@dataclass(frozen=True, slots=True)
class HazardStall(Event):
    """The event-driven frontend held a request back behind an
    LBA-overlap hazard (:mod:`repro.sim.frontend`).

    Emitted once per stalled request, at the first dispatch scan that
    found it blocked; ``blocker`` is the rid of the conflicting
    waiting/in-flight request it must order behind.  ``kind`` names the
    hazard class: ``raw`` (read-after-write), ``waw``
    (write-after-write) or ``war`` (write-after-read); TRIMs count as
    writes.
    """

    rid: int
    blocker: int
    kind: str


@dataclass(frozen=True, slots=True)
class BufferLookup(Event):
    """Write-buffer (DRAM data cache) read lookup: hit or miss."""

    rid: int
    hit: bool


@dataclass(frozen=True, slots=True)
class BufferEvict(Event):
    """The write buffer evicted an LPN (LRU overflow)."""

    lpn: int


@dataclass(frozen=True, slots=True)
class FTLDecision(Event):
    """Which servicing path the FTL chose for (a piece of) a request.

    ``path`` is one of the :data:`DECISION_PATHS` identifiers: the
    across-page vocabulary of paper §3.3 (``direct`` / ``amerge`` /
    ``arollback`` / ``direct_read`` / ``merged_read``) plus the baseline
    page-mapped paths (``page_write`` / ``rmw`` / ``page_read``).
    """

    rid: int
    path: str
    lpn: int


#: the closed vocabulary of FTLDecision.path
DECISION_PATHS = (
    "direct",        # across-page write re-aligned onto a fresh page
    "amerge",        # overlapping update merged into the live area
    "arollback",     # area folded back into the normal pages
    "direct_read",   # read served entirely from across areas
    "merged_read",   # read combined area + normal pages
    "page_write",    # plain page-mapped write, no old data retained
    "rmw",           # page-mapped write that read-modify-wrote
    "page_read",     # plain page-mapped read
)


@dataclass(frozen=True, slots=True)
class FlashOp(Event):
    """One flash command: issue time is ``t``, completion is ``finish``.

    Covers both ends of the command lifecycle in a single event because
    the timing model resolves the completion synchronously at issue.
    ``rid`` attributes the command to the host request being serviced
    (-1 when none, e.g. end-of-run metadata flush).
    """

    rid: int
    op: str          # "read" | "program" | "erase"
    kind: str        # OpKind value: data / map / gc / aging
    chip: int
    finish: float    # ms; == t for untimed (background/aging) commands
    ppn: int         # physical page, or block id for erases


@dataclass(frozen=True, slots=True)
class GCEvent(Event):
    """Garbage-collection progress (victim selection granularity).

    Migration reads/programs and the erase itself surface as
    :class:`FlashOp` events with ``kind == "gc"`` / ``op == "erase"``;
    this event marks the victim decision that caused them.
    """

    plane: int
    block: int
    valid_pages: int   # pages that must migrate before the erase


@dataclass(frozen=True, slots=True)
class GCStall(Event):
    """GC found no victim that would free space: the plane is wedged
    below its restore threshold (starvation precursor)."""

    plane: int
    free_blocks: int


@dataclass(frozen=True, slots=True)
class GcPolicyDecision(Event):
    """A non-trivial scheduling decision by the active GC policy.

    ``action``: ``slice_erase`` (partial GC finished a victim) |
    ``defer`` (partial GC left valid pages for a later slice) |
    ``urgent`` (partial policy fell back to the full restore loop;
    ``block`` is -1) | ``wear_migrate`` (wear levelling migrated a cold
    block).  ``pages`` counts the valid pages relocated by the decision.
    """

    plane: int
    policy: str
    action: str
    block: int
    pages: int


@dataclass(frozen=True, slots=True)
class ReadRetry(Event):
    """A page read needed retry steps to correct raw bit errors
    (:mod:`repro.faults`); ``uncorrectable`` when even the full retry
    table left more errors than the ECC budget."""

    rid: int
    ppn: int
    steps: int
    uncorrectable: bool


@dataclass(frozen=True, slots=True)
class MediaFault(Event):
    """A program or erase operation reported failure status.

    ``kind``: ``program`` (absorbed by in-place reprogram attempts) |
    ``erase`` (retires the block).  ``target`` is the PPN for program
    faults and the block id for erase faults.
    """

    rid: int
    kind: str
    target: int


@dataclass(frozen=True, slots=True)
class BadBlockRetired(Event):
    """A block left service permanently (bad-block retirement).

    ``relocated_pages`` counts the valid pages moved off it before
    retirement (the remapping traffic); over-provisioning shrinks by
    one block.
    """

    block: int
    plane: int
    relocated_pages: int


@dataclass(frozen=True, slots=True)
class CMTEvent(Event):
    """Mapping-cache (CMT) activity for one translation table.

    ``kind``: ``hit`` | ``miss`` | ``evict`` (clean drop) |
    ``spill`` (dirty translation page written back to flash).
    """

    table: int
    kind: str
    key: int     # entry key for hit/miss, tvpn for evict/spill


# ----------------------------------------------------------------------
# the bus
# ----------------------------------------------------------------------
Subscriber = Callable[[Event], None]


class EventBus:
    """Synchronous publish/subscribe dispatch for simulation events.

    Subscribers registered for a concrete event type run before
    wildcard subscribers; within each group, dispatch follows
    subscription order.  ``emit`` is synchronous — handlers must be
    cheap, or subscribe to few event types.
    """

    __slots__ = ("now", "current_request", "_subs", "_any", "events_emitted")

    def __init__(self) -> None:
        #: simulated clock for clock-less publishers (engine-advanced)
        self.now: float = 0.0
        #: rid of the request currently being serviced (-1 = none);
        #: lets component-level events attribute themselves to requests
        self.current_request: int = -1
        self._subs: dict[type, list[Subscriber]] = {}
        self._any: list[Subscriber] = []
        self.events_emitted: int = 0

    def subscribe(self, etype: type | None, fn: Subscriber) -> None:
        """Register ``fn`` for events of ``etype`` (None = all events)."""
        if etype is None:
            self._any.append(fn)
        else:
            self._subs.setdefault(etype, []).append(fn)

    def emit(self, event: Event) -> None:
        """Deliver ``event`` to its type's subscribers, then wildcards."""
        self.events_emitted += 1
        subs = self._subs.get(type(event))
        if subs:
            for fn in subs:
                fn(event)
        for fn in self._any:
            fn(event)
