"""Span assembly and trace export (Chrome trace viewer + JSONL).

:class:`TraceRecorder` subscribes to the event bus and folds the flat
event stream into **per-request spans**: one record per host request
carrying its class, the FTL paths it took, the write-buffer outcome and
every flash command issued on its behalf (including GC work it
triggered).  The result can be exported two ways:

* ``write_chrome(path)`` — the Chrome trace-viewer / Perfetto JSON
  format (open ``chrome://tracing`` or https://ui.perfetto.dev and load
  the file).  Requests render as slices on a small set of lanes and
  every flash command renders on its chip's row, so chip contention and
  GC interference are directly visible.
* ``write_jsonl(path)`` — one JSON span per line for programmatic
  analysis (pandas ``read_json(lines=True)`` etc.).

Chrome-trace timestamps are microseconds; simulated time here is
milliseconds, so everything is scaled by 1000.
"""

from __future__ import annotations

import json
from typing import Optional

from .attribution import PHASES
from .events import (
    BufferLookup,
    EventBus,
    FlashOp,
    FTLDecision,
    GCEvent,
    GCStall,
    RequestArrive,
    RequestComplete,
    RequestPhases,
)

#: number of parallel display lanes for request slices (requests whose
#: service windows overlap land on different lanes round-robin)
REQUEST_LANES = 8

_OP_NAMES = {0: "read", 1: "write", 2: "trim"}


class TraceRecorder:
    """Turns bus events into per-request spans."""

    def __init__(self, bus: EventBus):
        self.bus = bus
        #: rid -> open span dict (arrival seen, completion pending)
        self._open: dict[int, dict] = {}
        #: finished spans in completion order
        self.spans: list[dict] = []
        #: events that happen outside any request (metadata flush, GC
        #: stalls) — kept for the chrome export's chip rows
        self.orphan_flash: list[FlashOp] = []
        self.gc_events: list[GCEvent] = []
        self.gc_stalls: list[GCStall] = []
        bus.subscribe(RequestArrive, self._on_arrive)
        bus.subscribe(RequestComplete, self._on_complete)
        bus.subscribe(BufferLookup, self._on_buffer)
        bus.subscribe(FTLDecision, self._on_decision)
        bus.subscribe(FlashOp, self._on_flash)
        bus.subscribe(GCEvent, self._on_gc)
        bus.subscribe(GCStall, self._on_gc_stall)
        bus.subscribe(RequestPhases, self._on_phases)

    # -- event handlers --------------------------------------------------
    def _on_arrive(self, ev: RequestArrive) -> None:
        self._open[ev.rid] = {
            "rid": ev.rid,
            "op": _OP_NAMES.get(ev.op, str(ev.op)),
            "offset": ev.offset,
            "size": ev.size,
            "across": ev.across,
            "arrival_ms": ev.t,
            "finish_ms": None,
            "latency_ms": None,
            "buffer": None,
            "paths": [],
            "flash_ops": [],
            "gc_victims": 0,
            "phases": None,
        }

    def _on_complete(self, ev: RequestComplete) -> None:
        span = self._open.pop(ev.rid, None)
        if span is None:
            return
        span["finish_ms"] = ev.t
        span["latency_ms"] = ev.latency
        self.spans.append(span)

    def _on_buffer(self, ev: BufferLookup) -> None:
        span = self._open.get(ev.rid)
        if span is not None:
            span["buffer"] = "hit" if ev.hit else "miss"

    def _on_decision(self, ev: FTLDecision) -> None:
        span = self._open.get(ev.rid)
        if span is not None:
            span["paths"].append(ev.path)

    def _on_flash(self, ev: FlashOp) -> None:
        rec = {
            "op": ev.op,
            "kind": ev.kind,
            "chip": ev.chip,
            "start_ms": ev.t,
            "finish_ms": ev.finish,
            "ppn": ev.ppn,
        }
        span = self._open.get(ev.rid)
        if span is not None:
            span["flash_ops"].append(rec)
        else:
            self.orphan_flash.append(ev)

    def _on_gc(self, ev: GCEvent) -> None:
        self.gc_events.append(ev)
        span = self._open.get(self.bus.current_request)
        if span is not None:
            span["gc_victims"] += 1

    def _on_gc_stall(self, ev: GCStall) -> None:
        self.gc_stalls.append(ev)

    def _on_phases(self, ev: RequestPhases) -> None:
        span = self._open.get(ev.rid)
        if span is not None:
            span["phases"] = {name: ms for name, ms in ev.phases}

    # -- exports ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self.spans)

    def to_chrome(self) -> dict:
        """The Chrome trace-viewer JSON object (``traceEvents`` list).

        Metadata records lead: process names plus a ``thread_name`` for
        every request lane and every chip row that carries events.  The
        timed events that follow are sorted by timestamp (the validity
        contract the Chrome-trace test pins).  Spans carrying
        attribution phases (``observability.attribution``) additionally
        render each phase as a nested sub-slice on the request's lane,
        so the viewer shows *where* each request's latency went.
        """
        meta: list[dict] = [
            {"ph": "M", "pid": 1, "name": "process_name",
             "args": {"name": "requests"}},
            {"ph": "M", "pid": 2, "name": "process_name",
             "args": {"name": "flash chips"}},
        ]
        for lane in range(REQUEST_LANES):
            meta.append({
                "ph": "M", "pid": 1, "tid": lane, "name": "thread_name",
                "args": {"name": f"lane {lane}"},
            })
        chips: set[int] = set()
        timed: list[dict] = []
        lane_free_until = [float("-inf")] * REQUEST_LANES
        for span in self.spans:
            start = span["arrival_ms"]
            dur = max(0.0, (span["finish_ms"] or start) - start)
            lane = 0
            for j in range(REQUEST_LANES):
                if lane_free_until[j] <= start:
                    lane = j
                    break
            else:
                lane = min(
                    range(REQUEST_LANES), key=lambda j: lane_free_until[j]
                )
            lane_free_until[lane] = start + dur
            name = span["op"]
            if span["across"]:
                name += " (across)"
            timed.append({
                "name": name,
                "ph": "X",
                "pid": 1,
                "tid": lane,
                "ts": start * 1000.0,
                "dur": dur * 1000.0,
                "args": {
                    "rid": span["rid"],
                    "offset": span["offset"],
                    "size": span["size"],
                    "paths": span["paths"],
                    "buffer": span["buffer"],
                    "flash_ops": len(span["flash_ops"]),
                    "gc_victims": span["gc_victims"],
                },
            })
            if span["phases"]:
                # sequential phase sub-slices: a latency decomposition
                # laid end-to-end (phases sum to the span duration),
                # not a reconstruction of when each phase ran
                t0 = start
                for phase in PHASES:
                    ms = span["phases"].get(phase, 0.0)
                    if ms <= 0.0:
                        continue
                    timed.append({
                        "name": f"phase:{phase}",
                        "ph": "X",
                        "pid": 1,
                        "tid": lane,
                        "ts": t0 * 1000.0,
                        "dur": ms * 1000.0,
                        "args": {"rid": span["rid"]},
                    })
                    t0 += ms
            for fo in span["flash_ops"]:
                chips.add(fo["chip"])
                timed.append(_chrome_flash(fo, span["rid"]))
        for ev in self.orphan_flash:
            chips.add(ev.chip)
            timed.append(_chrome_flash({
                "op": ev.op, "kind": ev.kind, "chip": ev.chip,
                "start_ms": ev.t, "finish_ms": ev.finish, "ppn": ev.ppn,
            }, -1))
        for ev in self.gc_stalls:
            timed.append({
                "name": "GC stall",
                "ph": "i",
                "s": "g",
                "pid": 2,
                "tid": 0,
                "ts": ev.t * 1000.0,
                "args": {"plane": ev.plane, "free_blocks": ev.free_blocks},
            })
        for chip in sorted(chips):
            meta.append({
                "ph": "M", "pid": 2, "tid": chip, "name": "thread_name",
                "args": {"name": f"chip {chip}"},
            })
        timed.sort(key=lambda e: e["ts"])
        return {"traceEvents": meta + timed, "displayTimeUnit": "ms"}

    def write_chrome(self, path) -> None:
        """Write :meth:`to_chrome` as JSON to ``path``."""
        with open(path, "w") as fh:
            json.dump(self.to_chrome(), fh)

    def write_jsonl(self, path) -> None:
        """Write one span JSON object per line to ``path``."""
        with open(path, "w") as fh:
            for span in self.spans:
                fh.write(json.dumps(span) + "\n")

    def path_histogram(self) -> dict[str, int]:
        """How many spans took each FTL path (a span may take several)."""
        hist: dict[str, int] = {}
        for span in self.spans:
            for p in span["paths"]:
                hist[p] = hist.get(p, 0) + 1
        return hist


def _chrome_flash(fo: dict, rid: int) -> dict:
    dur = max(0.0, fo["finish_ms"] - fo["start_ms"])
    return {
        "name": f"{fo['op']}:{fo['kind']}",
        "ph": "X",
        "pid": 2,
        "tid": fo["chip"],
        "ts": fo["start_ms"] * 1000.0,
        "dur": dur * 1000.0,
        "args": {"ppn": fo["ppn"], "rid": rid},
    }


def load_chrome(path) -> Optional[dict]:
    """Read back a Chrome trace file (round-trip helper for tests)."""
    with open(path) as fh:
        return json.load(fh)
