"""Metric exporters: Prometheus text exposition and JSON snapshots.

``prometheus_text`` renders :class:`~repro.metrics.counters.FlashOpCounters`
(plus optional sampler gauges and per-chip utilisation) in the
Prometheus text exposition format, so a run's final state — or a
long-lived service wrapping the simulator — can be scraped or diffed
with standard tooling.  ``attribution_prometheus_text`` renders the
latency-attribution sketches (:mod:`repro.obs.attribution`) as native
Prometheus histogram families.  ``json_snapshot`` captures the same
data as a plain JSON-serialisable dict including the full sampler time
series.

Exposition-format contract (the lint test pins it): every metric family
gets exactly one ``# HELP`` and one ``# TYPE`` line, emitted before its
first sample; label values are escaped per the spec (backslash, quote,
newline).  All metric names carry the ``repro_`` prefix; counters end
in ``_total`` per Prometheus naming conventions.
"""

from __future__ import annotations

import json

from ..metrics.counters import FlashOpCounters, OpKind

_HELP = {
    "repro_flash_reads_total": "Flash page reads by cause",
    "repro_flash_writes_total": "Flash page programs by cause",
    "repro_flash_erases_total": "Block erases (measured run)",
    "repro_dram_accesses_total": "DRAM mapping-structure touches",
    "repro_cache_hits_total": "Write-buffer read hits served from DRAM",
    "repro_update_reads_total": "RMW-induced flash reads",
    "repro_merged_reads_total": "Across-FTL merged-read extra page reads",
    "repro_gc_stalls_total": "GC passes that found no space-freeing victim",
    # media reliability (repro.faults; all zero with injection off)
    "repro_read_retries_total": "Read-retry steps walked past the ECC budget",
    "repro_uncorrectable_reads_total":
        "Reads whose errors survived the whole retry table",
    "repro_program_fails_total": "Program-status failures (reprogram pulses)",
    "repro_erase_fails_total": "Erase-status failures (block retired)",
    "repro_bad_blocks_total": "Blocks retired as bad",
    "repro_fault_relocations_total":
        "Valid pages relocated off retiring blocks",
}

#: HELP text for the sampler-derived gauge families (anything not
#: listed falls back to a generic line so every family still gets one)
_GAUGE_HELP = {
    "repro_queue_depth": "Outstanding host requests at the last sample",
    "repro_free_blocks": "Erased blocks across all planes",
    "repro_amt_occupancy": "Live across-area mapping-table entries",
    "repro_chip_utilization": "Per-chip busy fraction since start of run",
}


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels(labels: dict | None) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape(str(v))}"' for k, v in labels.items()
    )
    return "{" + inner + "}"


class _Exposition:
    """Line builder enforcing one HELP/TYPE pair per metric family."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self._families: set[str] = set()

    def family(self, name: str, mtype: str, help_text: str) -> None:
        if name in self._families:
            return
        self._families.add(name)
        self.lines.append(f"# HELP {name} {help_text}")
        self.lines.append(f"# TYPE {name} {mtype}")

    def sample(self, name: str, labels: dict | None, value) -> None:
        self.lines.append(f"{name}{_labels(labels)} {value}")

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


def prometheus_text(
    counters: FlashOpCounters,
    samplers=None,
    extra_gauges: dict[str, float] | None = None,
) -> str:
    """Render counters (and optional sampler state) as Prometheus text.

    ``samplers`` is a :class:`~repro.obs.samplers.SamplerSet` (or None);
    its gauge samplers export their latest value and any chip-utilisation
    sampler exports one ``repro_chip_utilization`` gauge per chip.
    """
    exp = _Exposition()

    def counter(name: str, value: int, labels: dict | None = None) -> None:
        exp.family(name, "counter", _HELP.get(name, name))
        exp.sample(name, labels, value)

    for kind in OpKind:
        counter("repro_flash_reads_total", counters.reads[kind],
                {"kind": kind.value})
    for kind in OpKind:
        counter("repro_flash_writes_total", counters.writes[kind],
                {"kind": kind.value})
    counter("repro_flash_erases_total", counters.erases)
    counter("repro_dram_accesses_total", counters.dram_accesses)
    counter("repro_cache_hits_total", counters.cache_hits)
    counter("repro_update_reads_total", counters.update_reads)
    counter("repro_merged_reads_total", counters.merged_reads)
    counter("repro_gc_stalls_total", counters.gc_stalls)
    counter("repro_read_retries_total", counters.read_retries)
    counter("repro_uncorrectable_reads_total", counters.uncorrectable_reads)
    counter("repro_program_fails_total", counters.program_fails)
    counter("repro_erase_fails_total", counters.erase_fails)
    counter("repro_bad_blocks_total", counters.bad_blocks)
    counter("repro_fault_relocations_total", counters.fault_relocations)

    gauges: dict[str, float] = {}
    chip_util = None
    if samplers is not None:
        gauges.update(samplers.latest_gauges())
        for s in samplers.samplers:
            if getattr(s, "name", "") == "chip_utilization":
                chip_util = s
    if extra_gauges:
        gauges.update(extra_gauges)
    for name, value in sorted(gauges.items()):
        metric = f"repro_{name}"
        exp.family(
            metric, "gauge",
            _GAUGE_HELP.get(metric, f"Sampled gauge {name}"),
        )
        exp.sample(metric, None, value)
    if chip_util is not None and chip_util.latest() is not None:
        exp.family(
            "repro_chip_utilization", "gauge",
            _GAUGE_HELP["repro_chip_utilization"],
        )
        for chip, util in enumerate(chip_util.latest()):
            exp.sample("repro_chip_utilization", {"chip": chip}, util)
    return exp.text()


def attribution_prometheus_text(recorder) -> str:
    """Render an :class:`~repro.obs.attribution.AttributionRecorder`'s
    sketches as Prometheus *histogram* families.

    One family, ``repro_request_phase_latency_ms``, labelled by request
    ``class`` and ``phase`` (the pseudo-phase ``total`` carries the
    end-to-end request latency); cumulative ``_bucket`` samples use the
    sketches' logarithmic upper bounds, terminated by ``+Inf``, plus
    the conventional ``_sum`` and ``_count``.  Request counts per class
    export as ``repro_requests_total``.
    """
    exp = _Exposition()
    name = "repro_request_phase_latency_ms"
    exp.family(
        name, "histogram",
        "Critical-path latency attribution by request class and phase",
    )
    for (cls, phase), hist in sorted(recorder.sketches.items()):
        base = {"class": cls, "phase": phase}
        cum = 0
        for _lo, hi, count in hist.bucket_bounds():
            cum += count
            exp.sample(
                f"{name}_bucket", {**base, "le": f"{hi:.6g}"}, cum
            )
        exp.sample(f"{name}_bucket", {**base, "le": "+Inf"}, hist.count)
        exp.sample(f"{name}_sum", base, hist.total)
        exp.sample(f"{name}_count", base, hist.count)
    exp.family(
        "repro_requests_total", "counter",
        "Completed host requests by attribution class",
    )
    for cls, n in sorted(recorder.class_counts.items()):
        exp.sample("repro_requests_total", {"class": cls}, n)
    return exp.text()


#: `extra` value types json_snapshot accepts as-is; numpy scalars are
#: converted via .item() first, everything else must survive json.dumps
_EXTRA_TYPES = (int, float, str, bool, type(None), list, dict)


def json_snapshot(
    counters: FlashOpCounters,
    samplers=None,
    extra: dict | None = None,
) -> dict:
    """JSON-serialisable snapshot: counters + full sampler series.

    ``extra`` values must be JSON-serialisable: ``int``, ``float``,
    ``str``, ``bool``, ``None``, or ``list``/``dict`` compositions of
    those.  Numpy scalars are converted via their ``.item()`` method.
    Anything else raises :class:`TypeError` naming the offending key —
    silently dropping a value would corrupt archived snapshots.
    """
    snap: dict = {"counters": counters.snapshot()}
    if samplers is not None:
        snap["series"] = samplers.series()
    if extra:
        cleaned = {}
        for k, v in extra.items():
            item = getattr(v, "item", None)
            if item is not None and not isinstance(v, _EXTRA_TYPES):
                # numpy scalar (np.int64 etc.): unwrap to the Python
                # type; a multi-element ndarray raises here and falls
                # through to the TypeError below
                try:
                    v = item()
                except (TypeError, ValueError):
                    pass
            if isinstance(v, (list, dict)):
                try:
                    json.dumps(v)
                except (TypeError, ValueError) as exc:
                    raise TypeError(
                        f"json_snapshot extra[{k!r}] is not "
                        f"JSON-serialisable: {exc}"
                    ) from exc
            elif not isinstance(v, _EXTRA_TYPES):
                raise TypeError(
                    f"json_snapshot extra[{k!r}] has unsupported type "
                    f"{type(v).__name__}; accepted: int, float, str, "
                    f"bool, None, list, dict (numpy scalars are "
                    f"unwrapped automatically)"
                )
            cleaned[k] = v
        snap["extra"] = cleaned
    return snap


def write_prometheus(path, counters, samplers=None, extra_gauges=None) -> None:
    """Write :func:`prometheus_text` output to ``path``."""
    with open(path, "w") as fh:
        fh.write(prometheus_text(counters, samplers, extra_gauges))


def write_json_snapshot(path, counters, samplers=None, extra=None) -> None:
    """Write :func:`json_snapshot` output to ``path`` as JSON."""
    with open(path, "w") as fh:
        json.dump(json_snapshot(counters, samplers, extra), fh, indent=1)


_SERVE_HELP = {
    "requests_total": "HTTP simulation requests handled",
    "sweeps_total": "Sweep-kind requests handled",
    "fleets_total": "Fleet-kind requests handled",
    "errors_total": "Requests rejected with an error response",
    "runs_executed_total": "Simulations actually executed",
    "runs_cached_total": "Runs answered from the result store",
    "runs_failed_total": "Runs that raised in a worker",
    "hits_total": "Result-store lookups that found a report",
    "misses_total": "Result-store lookups that found nothing",
    "puts_total": "Reports persisted to the result store",
    "coalesced_total": "Runs served after awaiting an in-flight twin",
}


def stats_prometheus_text(stats: dict) -> str:
    """Render :meth:`repro.fleet.service.FleetService.stats` output
    (``{"service": {...}, "store": {...}}``) for ``GET /metrics``.

    Same exposition contract as :func:`prometheus_text`: ``repro_``
    prefix, counters end in ``_total``, one HELP/TYPE pair per family.
    The store's ``inflight`` count is the one gauge.
    """
    exp = _Exposition()
    for k, v in stats.get("service", {}).items():
        name = f"repro_serve_{k}"
        exp.family(name, "counter", _SERVE_HELP.get(k, k))
        exp.sample(name, None, v)
    for k, v in stats.get("store", {}).items():
        if k == "inflight":
            name = "repro_store_inflight"
            exp.family(name, "gauge", "Run keys currently being simulated")
        else:
            name = f"repro_store_{k}_total"
            exp.family(
                name, "counter", _SERVE_HELP.get(f"{k}_total", k)
            )
        exp.sample(name, None, v)
    return exp.text()
