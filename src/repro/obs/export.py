"""Metric exporters: Prometheus text exposition and JSON snapshots.

``prometheus_text`` renders :class:`~repro.metrics.counters.FlashOpCounters`
(plus optional sampler gauges and per-chip utilisation) in the
Prometheus text exposition format, so a run's final state — or a
long-lived service wrapping the simulator — can be scraped or diffed
with standard tooling.  ``json_snapshot`` captures the same data as a
plain JSON-serialisable dict including the full sampler time series.

All metric names carry the ``repro_`` prefix; counters end in
``_total`` per Prometheus naming conventions.
"""

from __future__ import annotations

import json

from ..metrics.counters import FlashOpCounters, OpKind

_HELP = {
    "repro_flash_reads_total": "Flash page reads by cause",
    "repro_flash_writes_total": "Flash page programs by cause",
    "repro_flash_erases_total": "Block erases (measured run)",
    "repro_dram_accesses_total": "DRAM mapping-structure touches",
    "repro_cache_hits_total": "Write-buffer read hits served from DRAM",
    "repro_update_reads_total": "RMW-induced flash reads",
    "repro_merged_reads_total": "Across-FTL merged-read extra page reads",
    "repro_gc_stalls_total": "GC passes that found no space-freeing victim",
}


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def prometheus_text(
    counters: FlashOpCounters,
    samplers=None,
    extra_gauges: dict[str, float] | None = None,
) -> str:
    """Render counters (and optional sampler state) as Prometheus text.

    ``samplers`` is a :class:`~repro.obs.samplers.SamplerSet` (or None);
    its gauge samplers export their latest value and any chip-utilisation
    sampler exports one ``repro_chip_utilization`` gauge per chip.
    """
    lines: list[str] = []

    def counter(name: str, value: int, labels: dict | None = None) -> None:
        if _HELP.get(name):
            help_line = f"# HELP {name} {_HELP[name]}"
            if help_line not in lines:
                lines.append(help_line)
                lines.append(f"# TYPE {name} counter")
        label = ""
        if labels:
            inner = ",".join(
                f'{k}="{_escape(str(v))}"' for k, v in labels.items()
            )
            label = "{" + inner + "}"
        lines.append(f"{name}{label} {value}")

    for kind in OpKind:
        counter("repro_flash_reads_total", counters.reads[kind],
                {"kind": kind.value})
    for kind in OpKind:
        counter("repro_flash_writes_total", counters.writes[kind],
                {"kind": kind.value})
    counter("repro_flash_erases_total", counters.erases)
    counter("repro_dram_accesses_total", counters.dram_accesses)
    counter("repro_cache_hits_total", counters.cache_hits)
    counter("repro_update_reads_total", counters.update_reads)
    counter("repro_merged_reads_total", counters.merged_reads)
    counter("repro_gc_stalls_total", counters.gc_stalls)

    gauges: dict[str, float] = {}
    chip_util = None
    if samplers is not None:
        gauges.update(samplers.latest_gauges())
        for s in samplers.samplers:
            if getattr(s, "name", "") == "chip_utilization":
                chip_util = s
    if extra_gauges:
        gauges.update(extra_gauges)
    for name, value in sorted(gauges.items()):
        metric = f"repro_{name}"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value}")
    if chip_util is not None and chip_util.latest() is not None:
        lines.append("# TYPE repro_chip_utilization gauge")
        for chip, util in enumerate(chip_util.latest()):
            lines.append(f'repro_chip_utilization{{chip="{chip}"}} {util}')
    return "\n".join(lines) + "\n"


def json_snapshot(
    counters: FlashOpCounters,
    samplers=None,
    extra: dict | None = None,
) -> dict:
    """JSON-serialisable snapshot: counters + full sampler series."""
    snap: dict = {"counters": counters.snapshot()}
    if samplers is not None:
        snap["series"] = samplers.series()
    if extra:
        snap["extra"] = {
            k: v
            for k, v in extra.items()
            if isinstance(v, (int, float, str, bool, list, dict))
        }
    return snap


def write_prometheus(path, counters, samplers=None, extra_gauges=None) -> None:
    """Write :func:`prometheus_text` output to ``path``."""
    with open(path, "w") as fh:
        fh.write(prometheus_text(counters, samplers, extra_gauges))


def write_json_snapshot(path, counters, samplers=None, extra=None) -> None:
    """Write :func:`json_snapshot` output to ``path`` as JSON."""
    with open(path, "w") as fh:
        json.dump(json_snapshot(counters, samplers, extra), fh, indent=1)
