#!/usr/bin/env python
"""Benchmark-regression gate, CI entry point.

Thin wrapper over :mod:`repro.experiments.benchgate` so CI (and
developers without an installed package) can run the gate straight from
a checkout:

    PYTHONPATH=src python scripts/bench_gate.py --check

Writes ``BENCH_<git rev>.json`` (override with ``--out``) and, with
``--check``, exits nonzero when simulation output drifts at all or
normalized throughput regresses beyond the gate tolerance versus the
committed ``BENCH_baseline.json``.  The same logic is exposed as
``repro bench``.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.benchgate import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
