"""Table 2 — specifications of the six calibrated LUN workloads."""

from repro.experiments import figures as F
from repro.traces.stats import characterize
from repro.units import KIB
from conftest import publish


def test_table2_trace_specs(ctx, results_dir, benchmark):
    result = benchmark.pedantic(lambda: F.table2(ctx), rounds=1, iterations=1)
    publish(results_dir, "table2", result.rendered)
    # calibration: every generated trace matches its published row
    from repro.experiments.workloads import TABLE2_SPECS

    for row in TABLE2_SPECS:
        st = characterize(ctx.lun_trace(row.name), 8 * KIB)
        assert abs(st.write_ratio - row.write_ratio) < 0.03, row.name
        assert abs(st.across_ratio - row.across_ratio) < 0.03, row.name
        assert abs(st.mean_write_kb - row.mean_write_kb) < 1.5, row.name
