"""Ablation: AMerge vs always-rollback in Across-FTL.

DESIGN.md §5.2 — the paper's Fig. 8a shows only ~3.9% of areas ever
roll back, i.e. the AMerge path preserves most of the re-alignment
benefit.  With AMerge disabled every overlapping update rolls the area
back to normal pages, so flash writes and rollback counts must rise.
"""

from repro.metrics.report import render_table
from conftest import publish


def test_ablation_amerge(ctx, results_dir, benchmark):
    def run():
        rows = {}
        for name in ctx.lun_names():
            on = ctx.run(name, "across")
            off = ctx.run(name, "across", amerge_enabled=False)
            rows[name] = [
                on.extra["across_rollbacks"],
                off.extra["across_rollbacks"],
                on.counters.total_writes,
                off.counters.total_writes,
                on.total_io_ms / max(off.total_io_ms, 1e-9),
            ]
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    rendered = render_table(
        "Ablation — Across-FTL with AMerge on/off (off = always rollback)",
        ["rollbacks_on", "rollbacks_off", "writes_on", "writes_off",
         "io_on/io_off"],
        rows,
    )
    publish(results_dir, "ablation_amerge", rendered)
    for name, (rb_on, rb_off, w_on, w_off, io_ratio) in rows.items():
        assert rb_off > rb_on, name        # every overlap now rolls back
        assert w_off >= w_on, name         # rollback costs extra programs
