"""Ablation: hot/cold write-stream separation (library extension).

GC-migrated pages are colder than fresh user data; giving them their
own active blocks avoids mixing lifetimes in one erase block.  This
sweep quantifies the migration/erase effect for the baseline FTL and
Across-FTL on lun1, and shows Across-FTL's advantage persists with the
extension enabled.
"""

from repro.experiments.runner import run_trace
from repro.metrics.report import render_table
from conftest import publish


def test_ablation_streams(ctx, results_dir, benchmark):
    name = ctx.lun_names()[0]

    def run():
        trace = ctx.lun_trace(name)
        rows = {}
        for separated in (False, True):
            cfg = ctx.cfg.replace(hot_cold_separation=separated)
            f = run_trace("ftl", trace, cfg, ctx.sim_cfg)
            a = run_trace("across", trace, cfg, ctx.sim_cfg)
            rows["separated" if separated else "shared"] = [
                f.extra["gc_migrated_pages"],
                f.erase_count,
                a.erase_count,
                a.erase_count / max(1, f.erase_count),
                a.total_io_ms / max(1e-9, f.total_io_ms),
            ]
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    rendered = render_table(
        f"Ablation — hot/cold stream separation ({name})",
        ["ftl_migrated", "ftl_erases", "across_erases",
         "across/ftl_erases", "across/ftl_io"],
        rows,
    )
    publish(results_dir, "ablation_streams", rendered)
    for label, (_, _, _, erase_ratio, io_ratio) in rows.items():
        # the ablation's claim is about erase counts; latency on a
        # single trace is only sanity-checked (burst-window noise)
        assert erase_ratio < 1.1, label
        assert io_ratio < 1.3, label
