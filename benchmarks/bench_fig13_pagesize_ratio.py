"""Fig. 13 — across-page access ratio under 4/8/16 KiB flash pages.

Paper: the ratio keeps decreasing as pages grow, because a larger page
holds more data and refrains from across-page access.
"""

from repro.experiments import figures as F
from conftest import publish


def test_fig13_pagesize_ratio(ctx, results_dir, benchmark):
    result = benchmark.pedantic(lambda: F.fig13(ctx), rounds=1, iterations=1)
    publish(results_dir, "fig13", result.rendered)
    for name, (r4, r8, r16) in result.series.items():
        assert r4 > r8 > r16, name
        assert r16 > 0.0, name  # across access never fully disappears
