"""Fig. 8 — across-page access statistics under Across-FTL.

Paper averages: 3.9% of areas ever roll back; only 8.9% of across
writes are Unprofitable-AMerge; merged reads cause 0.12% of reads.
"""

from repro.experiments import figures as F
from conftest import publish


def test_fig08_across_stats(ctx, results_dir, benchmark):
    result = benchmark.pedantic(lambda: F.fig8(ctx), rounds=1, iterations=1)
    publish(results_dir, "fig08", result.rendered)
    # shape assertions: rollbacks and unprofitable merges are the
    # minority; most across writes keep their I/O benefit
    _, rollback = result.paper_vs_measured["rollback ratio"]
    _, unprofitable = result.paper_vs_measured["unprofitable share"]
    _, merged = result.paper_vs_measured["merged read share"]
    assert rollback < 0.25
    assert unprofitable < 0.30
    assert merged < 0.05
