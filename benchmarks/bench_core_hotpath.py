"""Microbenchmarks of the simulation-core hot paths (pytest-benchmark).

Each bench times one inner-loop primitive of the replay pipeline on a
tiny device — write servicing, read servicing, GC pressure, and the
Across-FTL AMerge/ARollback paths — so a hot-path regression is
attributable to a specific layer instead of showing up only as a slower
end-to-end replay.  The end-to-end contract itself (throughput and
bit-identical output) is enforced separately by ``scripts/bench_gate.py``
against ``BENCH_baseline.json``.

Run with:

    PYTHONPATH=src python -m pytest benchmarks/bench_core_hotpath.py \
        --benchmark-only -q
"""

from __future__ import annotations

import pytest

from repro.config import SimConfig, SSDConfig
from repro.flash.service import FlashService
from repro.ftl import make_ftl
from repro.sim.engine import Simulator
from repro.traces.model import OP_READ, OP_WRITE


def _sim(scheme: str) -> Simulator:
    cfg = SSDConfig.tiny()
    ftl = make_ftl(scheme, FlashService(cfg))
    return Simulator(ftl, SimConfig())


def _prefill(sim: Simulator, pages: int = 256) -> None:
    """Map a working set so reads/updates hit real pages."""
    spp = sim.spp
    for lpn in range(pages):
        sim.process(OP_WRITE, lpn * spp, spp, float(lpn))


# ----------------------------------------------------------------------
# write / read service paths
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scheme", ["ftl", "mrsm", "across"])
def test_write_path(benchmark, scheme):
    """Aligned-page update writes through the full request path."""
    sim = _sim(scheme)
    _prefill(sim)
    spp = sim.spp
    state = {"i": 0}

    def one_write():
        i = state["i"]
        state["i"] = i + 1
        sim.process(OP_WRITE, (i % 256) * spp, spp, 1000.0 + i)

    benchmark(one_write)


@pytest.mark.parametrize("scheme", ["ftl", "mrsm", "across"])
def test_read_path(benchmark, scheme):
    """Single-page reads of a mapped working set (cache misses and
    hits both occur, as in a replay)."""
    sim = _sim(scheme)
    _prefill(sim)
    spp = sim.spp
    state = {"i": 0}

    def one_read():
        i = state["i"]
        state["i"] = i + 1
        sim.process(OP_READ, (i * 7 % 256) * spp, spp, 2000.0 + i)

    benchmark(one_read)


# ----------------------------------------------------------------------
# GC pressure
# ----------------------------------------------------------------------
def test_gc_churn(benchmark):
    """Overwrite churn on a small footprint: every program runs the GC
    check and collections fire regularly."""
    sim = _sim("ftl")
    spp = sim.spp
    footprint = int(sim.ftl.logical_pages * 0.95)
    # churn the footprint until the collector has fired at least once,
    # so the benchmarked steady state includes real GC pressure
    i = 0
    while sim.ftl.gc.collections == 0:
        sim.process(OP_WRITE, (i % footprint) * spp, spp, float(i))
        i += 1
    state = {"i": i}

    def churn():
        i = state["i"]
        state["i"] = i + 1
        sim.process(OP_WRITE, (i % footprint) * spp, spp, 3000.0 + i)

    benchmark(churn)
    assert sim.ftl.gc.collections > 0


# ----------------------------------------------------------------------
# Across-FTL decision paths
# ----------------------------------------------------------------------
def test_across_amerge(benchmark):
    """Repeated across-page updates of the same site: after the first
    direct write every update takes the AMerge path."""
    sim = _sim("across")
    spp = sim.spp
    half = spp // 2
    sim.process(OP_WRITE, half, spp, 0.0)  # create the area
    state = {"i": 0}

    def amerge():
        i = state["i"]
        state["i"] = i + 1
        sim.process(OP_WRITE, half, spp, 10.0 + i)

    benchmark(amerge)
    stats = sim.ftl.across_stats
    assert stats.profitable_amerge + stats.unprofitable_amerge > 0


def test_across_arollback(benchmark):
    """Across write then a conflicting aligned overwrite: each pair
    creates an area and rolls it back."""
    sim = _sim("across")
    spp = sim.spp
    half = spp // 2
    state = {"i": 0}

    def make_and_rollback():
        i = state["i"]
        state["i"] = i + 1
        base = (i % 64) * 2 * spp
        sim.process(OP_WRITE, base + half, spp, 20.0 + i)   # across area
        sim.process(OP_WRITE, base, 2 * spp, 21.0 + i)      # forces rollback

    benchmark(make_and_rollback)
    assert sim.ftl.across_stats.rollbacks > 0
