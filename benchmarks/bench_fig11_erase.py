"""Fig. 11 — normalised erase counts (SSD lifetime indicator).

Paper: Across-FTL erases 13.3% fewer blocks than FTL and 24.6% fewer
than MRSM; MRSM is the worst because its sub-page mapping keeps pages
alive longer and spills translation pages to flash.
"""

from repro.experiments import figures as F
from repro.metrics.report import geomean
from conftest import publish


def test_fig11_erase(ctx, results_dir, benchmark):
    result = benchmark.pedantic(lambda: F.fig11(ctx), rounds=1, iterations=1)
    publish(results_dir, "fig11", result.rendered)

    rows = result.series
    across = geomean([rows[n]["across"] for n in rows])
    mrsm = geomean([rows[n]["mrsm"] for n in rows])
    assert across < 1.0          # beats the baseline
    assert across < mrsm         # and beats MRSM
    assert mrsm > 1.0            # MRSM erases the most
    for n in rows:
        assert rows[n]["across"] <= rows[n]["mrsm"], n
