"""Ablation: GC victim-selection policy.

DESIGN.md §5 extension — the paper (and SSDsim) use greedy selection;
this sweep shows how cost-benefit and wear-aware selection trade erase
count against wear evenness under the same lun1 workload, and that
Across-FTL's advantage is not an artifact of the greedy policy.
"""

from repro.ftl.gc import GC_POLICIES
from repro.metrics.report import render_table
from conftest import publish


def test_ablation_gc_policy(ctx, results_dir, benchmark):
    name = ctx.lun_names()[0]

    def run():
        rows = {}
        for policy in GC_POLICIES:
            page = ctx.cfg.page_size_bytes
            key_cfg = ctx.cfg.replace(gc_policy=policy)
            from repro.experiments.runner import run_trace

            trace = ctx.lun_trace(name)
            f = run_trace("ftl", trace, key_cfg, ctx.sim_cfg)
            a = run_trace("across", trace, key_cfg, ctx.sim_cfg)
            rows[policy] = [
                f.erase_count,
                a.erase_count,
                a.erase_count / max(1, f.erase_count),
                a.total_io_ms / max(1e-9, f.total_io_ms),
            ]
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    rendered = render_table(
        f"Ablation — GC policy sweep ({name}); across/ftl ratios",
        ["ftl_erases", "across_erases", "erase_ratio", "io_ratio"],
        rows,
    )
    publish(results_dir, "ablation_gc_policy", rendered)
    for policy, (_, _, erase_ratio, io_ratio) in rows.items():
        # Across-FTL keeps its advantage under every GC policy.  This
        # is a single-trace comparison, so the latency bound is the
        # burst-window noise envelope, not a strict win (the 6-trace
        # geomean in bench_fig09 carries the strict claim).
        assert erase_ratio < 1.05, policy
        assert io_ratio < 1.08, policy
