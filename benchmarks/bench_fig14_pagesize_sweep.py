"""Fig. 14 — I/O time and erase count for 4/8/16 KiB pages, 3 schemes.

Paper: Across-FTL outperforms FTL and MRSM at every page size, and the
improvement does not fade as the page grows (it tracks the across-page
ratio of Fig. 13).

This is the heaviest bench: it adds the 4 KiB and 16 KiB sweeps
(2 x 6 traces x 3 schemes) on top of the shared 8 KiB sweep.
"""

from repro.experiments import figures as F
from repro.metrics.report import geomean
from conftest import publish


def test_fig14_pagesize_sweep(ctx, results_dir, benchmark):
    result = benchmark.pedantic(lambda: F.fig14(ctx), rounds=1, iterations=1)
    publish(results_dir, "fig14", result.rendered)

    for label, d in result.series.items():
        io = d["io"]
        er = d["erase"]
        io_across = geomean([io[n]["across"] for n in io])
        io_mrsm = geomean([io[n]["mrsm"] for n in io])
        er_across = geomean([er[n]["across"] for n in er])
        # Across-FTL wins on I/O time and erases at every page size; at
        # 4 KiB our synthetic workloads leave it a thinner margin than
        # the paper's traces (see EXPERIMENTS.md), so the latency bound
        # there is parity-within-noise rather than a strict win.
        bound = 1.05 if label == "4KB" else 1.0
        assert io_across < bound, label
        assert io_across < io_mrsm, label
        assert er_across < 1.05, label
