"""Ablation: read-modify-write in the baseline FTL.

DESIGN.md §5.1 — RMW is the main source of the baseline's
update-induced reads (the ones Across-FTL removes, §4.2.2).  Disabling
RMW (which sacrifices data retention, so it is only a counter study)
must drive update reads to zero while leaving programs untouched.
"""

from repro.metrics.report import render_table
from conftest import publish


def test_ablation_rmw(ctx, results_dir, benchmark):
    def run():
        rows = {}
        for name in ctx.lun_names():
            on = ctx.run(name, "ftl")
            off = ctx.run(name, "ftl", rmw_enabled=False)
            rows[name] = [
                on.counters.update_reads,
                off.counters.update_reads,
                on.counters.total_reads,
                off.counters.total_reads,
            ]
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    rendered = render_table(
        "Ablation — baseline FTL with read-modify-write on/off",
        ["update_reads_on", "update_reads_off", "reads_on", "reads_off"],
        rows,
        float_fmt="{:.0f}",
    )
    publish(results_dir, "ablation_rmw", rendered)
    for name, (on_upd, off_upd, on_reads, off_reads) in rows.items():
        assert off_upd == 0, name
        assert on_upd > 0, name
        assert off_reads < on_reads, name
