"""Fig. 9 — normalised read/write/overall I/O response time.

Paper: Across-FTL cuts write time by 8.9% vs FTL and 3.7% vs MRSM;
read time by >5% vs both; overall I/O latency by 4.6%-11.6%.  MRSM is
the slowest reader (mapping-table thrashing) but edges the baseline on
writes (no read-modify-write).
"""

from repro.experiments import figures as F
from repro.metrics.report import geomean
from conftest import publish


def test_fig09_response_time(ctx, results_dir, benchmark):
    result = benchmark.pedantic(lambda: F.fig9(ctx), rounds=1, iterations=1)
    publish(results_dir, "fig09", result.rendered)

    io = result.series["io"]
    write = result.series["write"]
    read = result.series["read"]
    io_across = geomean([io[n]["across"] for n in io])
    io_mrsm = geomean([io[n]["mrsm"] for n in io])
    wr_across = geomean([write[n]["across"] for n in write])
    rd_mrsm = geomean([read[n]["mrsm"] for n in read])
    # who wins: Across-FTL on every latency metric in aggregate.  A
    # single trace's total I/O time is dominated by a handful of burst
    # windows at this scale and wobbles a few percent around its mean,
    # so per-trace bounds are sanity checks, not strict orderings.
    assert io_across < 0.97
    assert io_across < io_mrsm
    assert wr_across < 1.0
    for n in io:
        assert io[n]["across"] < io[n]["ftl"] * 1.08, n
    # MRSM pays for its mapping structure on reads
    assert rd_mrsm > 1.0
