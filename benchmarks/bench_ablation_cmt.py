"""Ablation: DRAM mapping-cache budget sensitivity.

DESIGN.md §5.3 — the paper attributes MRSM's losses to its mapping
table exceeding DRAM (42.1% residency at Table 1 settings).  Sweeping
the budget shows MRSM's flash map traffic collapsing once the table
fits, while Across-FTL barely notices the budget at all.
"""

from repro.metrics.report import render_table
from conftest import publish

# budgets as fractions of the baseline table's entry count
BUDGETS = (0.25, 0.5, 1.0, 4.0)


def test_ablation_cmt(ctx, results_dir, benchmark):
    name = ctx.lun_names()[0]  # lun1 is enough for a sensitivity sweep

    def run():
        base_entries = ctx.cfg.logical_pages
        rows = {}
        for frac in BUDGETS:
            entries = max(1024, int(base_entries * frac))
            m = ctx.run(name, "mrsm", mapping_cache_entries=entries)
            a = ctx.run(name, "across", mapping_cache_entries=entries)
            rows[f"budget {frac:g}x"] = [
                m.counters.map_write_share(),
                m.counters.map_read_share(),
                m.mean_read_ms,
                a.counters.map_write_share(),
                a.mean_read_ms,
            ]
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    rendered = render_table(
        f"Ablation — mapping-cache budget sweep ({name})",
        ["mrsm_mapW%", "mrsm_mapR%", "mrsm_rd_ms", "across_mapW%",
         "across_rd_ms"],
        rows,
        float_fmt="{:.4f}",
    )
    publish(results_dir, "ablation_cmt", rendered)

    labels = list(rows)
    smallest, largest = rows[labels[0]], rows[labels[-1]]
    # MRSM is budget-sensitive: map traffic shrinks with more DRAM
    assert largest[0] < smallest[0]
    assert largest[1] < smallest[1]
    for label in labels:
        # at every budget Across-FTL spills less than MRSM ...
        assert rows[label][3] < rows[label][0], label
    # ... and at the Table 1 budget (1x = the baseline table fits) its
    # map share is negligible while MRSM still thrashes (paper Fig. 10)
    at_1x = rows["budget 1x"]
    assert at_1x[3] < 0.02
    assert at_1x[0] > 0.05
