"""Extra (beyond the paper): the full FTL zoo on one VDI workload.

Adds the hybrid log-block scheme (BAST) to the paper's three — the
historical context for why page-granularity mapping won, and how much
further across-page re-alignment pushes past it.  BAST pays for
unaligned/across traffic with merges (extra programs + erases) while
holding a mapping table two orders of magnitude smaller.
"""

from repro.experiments.runner import run_trace
from repro.metrics.report import render_table
from conftest import publish

ZOO = ("bast", "fast", "ftl", "mrsm", "across")


def test_extra_scheme_zoo(ctx, results_dir, benchmark):
    name = ctx.lun_names()[0]

    def run():
        trace = ctx.lun_trace(name)
        rows = {}
        for scheme in ZOO:
            rep = (
                ctx.run(name, scheme)
                if scheme in ("ftl", "mrsm", "across")
                else run_trace(scheme, trace, ctx.cfg, ctx.sim_cfg)
            )
            rows[scheme] = [
                rep.mean_write_ms,
                rep.counters.total_writes,
                rep.erase_count,
                rep.mapping_table_bytes / 1024,
            ]
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    rendered = render_table(
        f"Extra — FTL zoo on {name} (block-mapped vs page-mapped vs re-aligned)",
        ["write ms", "flash writes", "erases", "table KiB"],
        rows,
    )
    publish(results_dir, "extra_scheme_zoo", rendered)
    # the historical ordering: block mapping erases most, re-alignment least
    assert rows["bast"][2] > rows["ftl"][2]
    assert rows["fast"][2] > rows["ftl"][2]
    assert rows["across"][2] <= rows["ftl"][2]
    # ... and the table-size ordering is the inverse
    assert rows["bast"][3] < rows["ftl"][3] < rows["mrsm"][3]
    assert rows["fast"][3] < rows["ftl"][3]
