"""Fig. 4 — motivation study: per-sector latency and flush count of
across-page vs normal requests under the baseline FTL.

Paper averages: across-page reads cost 1.61x, writes 1.49x, and flush
operations 2.69x their normal counterparts per sector.
"""

from repro.experiments import figures as F
from conftest import publish


def test_fig04_motivation(ctx, results_dir, benchmark):
    result = benchmark.pedantic(lambda: F.fig4(ctx), rounds=1, iterations=1)
    publish(results_dir, "fig04", result.rendered)
    # shape: across-page requests are strictly more expensive per sector
    assert float(result.paper_vs_measured["read ratio"][1]) > 1.0
    assert float(result.paper_vs_measured["write ratio"][1]) > 1.0
    assert float(result.paper_vs_measured["flush ratio"][1]) > 1.5
