"""Fig. 10 — normalised flash write/read counts with the Map/Data split.

Paper: Across-FTL performs 15.9%/30.9% fewer flash writes than FTL/MRSM
and 9.7%/16.1% fewer reads; mapping-table traffic is 36.9% of MRSM's
writes and 34.4% of its reads vs 2.6%/0.74% for Across-FTL; Across-FTL
removes 62.2% of the update-induced reads of the baseline.
"""

from repro.config import SCHEMES
from repro.experiments import figures as F
from repro.metrics.report import geomean
from conftest import publish


def test_fig10_flash_ops(ctx, results_dir, benchmark):
    result = benchmark.pedantic(lambda: F.fig10(ctx), rounds=1, iterations=1)
    publish(results_dir, "fig10", result.rendered)

    w = result.series["writes"]
    r = result.series["reads"]
    i_across = SCHEMES.index("across")
    i_mrsm = SCHEMES.index("mrsm")
    # Across-FTL issues the fewest flash writes on every trace
    for n in w:
        assert w[n][i_across] < 1.0, n
        assert w[n][i_across] < w[n][i_mrsm], n
    gw_across = geomean([w[n][i_across] for n in w])
    gr_across = geomean([r[n][i_across] for n in r])
    assert gw_across < 0.97  # a real reduction, not noise
    assert gr_across < 1.0
    # MRSM's map traffic dominates its overhead
    for key in ("mrsm map write share",):
        pass  # shares are asserted via the reports below
    for n in w:
        rep_m = ctx.run(n, "mrsm")
        rep_a = ctx.run(n, "across")
        assert rep_m.counters.map_write_share() > rep_a.counters.map_write_share()
        assert rep_m.counters.map_read_share() > rep_a.counters.map_read_share()
        # update-induced reads: across removes a large part of FTL's
        rep_f = ctx.run(n, "ftl")
        assert rep_a.counters.update_reads < rep_f.counters.update_reads
