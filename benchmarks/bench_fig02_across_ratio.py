"""Fig. 2 — across-page access ratio over a 61-trace VDI collection.

Paper: replaying the systor17-additional-01 folder (61 traces) at 8 KiB
pages shows a significant across-page share, roughly 0.05-0.35.
"""

from repro.experiments import figures as F
from conftest import publish


def test_fig02_across_ratio(ctx, results_dir, benchmark):
    result = benchmark.pedantic(
        lambda: F.fig2(ctx, count=61), rounds=1, iterations=1
    )
    publish(results_dir, "fig02", result.rendered)
    ratios = result.series["ratios"]
    # the paper's claim: across-page access is common, not rare
    assert sum(r > 0.05 for r in ratios) > len(ratios) * 0.5
    assert max(ratios) > 0.2
