"""Shared state for the figure-reproduction benchmarks.

One :class:`ExperimentContext` is built per pytest session and shared by
every bench file, so the 6-trace x 3-scheme sweep at 8 KiB (behind
Figs. 4, 8, 9, 10, 11, 12) simulates exactly once.  Each bench prints
the reproduced figure and appends it to ``benchmarks/results/`` so
EXPERIMENTS.md can be refreshed from a single run.

Environment knobs:

* ``REPRO_BENCH_SCALE`` — fraction of the paper's per-trace request
  counts to replay (default 0.03, i.e. ~19k-26k requests per trace).
* ``REPRO_BENCH_FULL=1`` — use the full Table 1 device geometry instead
  of the scaled bench device (slow; hours).
* ``REPRO_BENCH_JOBS`` — worker processes for the sweep fan-out
  (default 1 = serial in-process; results are identical either way).
* ``REPRO_BENCH_STORE`` — directory of a persistent result store;
  completed runs are reused across bench sessions, so re-running the
  figure benchmarks after an interrupt only simulates the missing
  points.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.config import SimConfig, SSDConfig
from repro.experiments.parallel import ResultStore
from repro.experiments.runner import ExperimentContext

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "0.03"))
    if os.environ.get("REPRO_BENCH_FULL") == "1":
        cfg = SSDConfig.paper_table1()
    else:
        cfg = SSDConfig.bench_default()
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    store_dir = os.environ.get("REPRO_BENCH_STORE")
    return ExperimentContext(
        cfg=cfg,
        sim_cfg=SimConfig(
            aged_used=0.90, aged_valid=0.398, aging_style="vdi"
        ),
        scale=scale,
        jobs=jobs,
        store=ResultStore(store_dir) if store_dir else None,
    )


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def publish(results_dir: Path, name: str, rendered: str) -> None:
    """Print the reproduced figure and persist it under results/."""
    print()
    print(rendered)
    (results_dir / f"{name}.txt").write_text(rendered + "\n")
