"""Fig. 12 — mapping-table space and DRAM-access overhead.

Paper: Across-FTL's table is 1.4x the baseline's (widened entries plus
the AMT), MRSM's is 2.4x (sub-page entries); MRSM performs ~32.6x the
DRAM accesses (tree lookups) while Across-FTL stays within 1.1% of the
baseline.
"""

from repro.config import SCHEMES
from repro.experiments import figures as F
from repro.metrics.report import geomean
from conftest import publish


def test_fig12_overhead(ctx, results_dir, benchmark):
    result = benchmark.pedantic(lambda: F.fig12(ctx), rounds=1, iterations=1)
    publish(results_dir, "fig12", result.rendered)

    sizes = result.series["size_mib"]
    dram = result.series["dram"]
    i_f, i_m, i_a = (SCHEMES.index(s) for s in ("ftl", "mrsm", "across"))
    for n in sizes:
        assert sizes[n][i_a] > sizes[n][i_f], n      # across > ftl
        assert sizes[n][i_m] > sizes[n][i_a], n      # mrsm largest
    dram_mrsm = geomean([dram[n][i_m] for n in dram])
    dram_across = geomean([dram[n][i_a] for n in dram])
    assert dram_mrsm > 5.0       # an order-of-magnitude-ish blowup
    assert dram_across < 1.5     # across stays near the baseline
