"""DRAM mapping cache and translation-page traffic (repro.ftl.mapping_cache)."""

import pytest

from repro.config import SSDConfig
from repro.flash.service import FlashService
from repro.ftl.mapping_cache import MappingCache


class Harness:
    """Records translation-page I/O without a full FTL."""

    def __init__(self, svc):
        self.svc = svc
        self.programs: list[int] = []
        self.reads: list[int] = []

    def program(self, tvpn, now, timed):
        self.programs.append(tvpn)
        return now + 2.0

    def read(self, tvpn, now, timed):
        self.reads.append(tvpn)
        return now + 0.075


@pytest.fixture
def harness():
    svc = FlashService(SSDConfig.tiny())
    return svc, Harness(svc)


def make_cache(svc, h, capacity_entries, epp=4, touches_fn=None):
    return MappingCache(
        svc,
        entries_per_page=epp,
        capacity_entries=capacity_entries,
        program_map_page=h.program,
        read_map_page=h.read,
        touches_fn=touches_fn,
    )


class TestUnlimited:
    def test_never_misses(self, harness):
        svc, h = harness
        c = make_cache(svc, h, None)
        for k in range(100):
            assert c.access(k, 1.0, dirty=True) == 1.0
        assert c.misses == 0
        assert not h.programs and not h.reads

    def test_counts_dram(self, harness):
        svc, h = harness
        c = make_cache(svc, h, None)
        c.access(0, 0.0, dirty=False)
        assert svc.counters.dram_accesses == 1

    def test_residency_one(self, harness):
        svc, h = harness
        c = make_cache(svc, h, None)
        assert c.residency(10_000) == 1.0


class TestLimited:
    def test_hit_after_insert(self, harness):
        svc, h = harness
        c = make_cache(svc, h, capacity_entries=8)  # 2 pages of 4 entries
        c.access(0, 0.0, dirty=False)
        c.access(1, 0.0, dirty=False)  # same tvpn
        assert c.hits == 1 and c.misses == 1

    def test_cold_miss_reads_nothing(self, harness):
        svc, h = harness
        c = make_cache(svc, h, capacity_entries=8)
        t = c.access(0, 1.0, dirty=False)
        assert t == 1.0  # no flash copy yet: nothing to fetch
        assert not h.reads

    def test_dirty_eviction_writes_back(self, harness):
        svc, h = harness
        c = make_cache(svc, h, capacity_entries=8)
        c.access(0, 0.0, dirty=True)   # tvpn 0 dirty
        c.access(4, 0.0, dirty=False)  # tvpn 1
        c.access(8, 0.0, dirty=False)  # tvpn 2 -> evict tvpn 0
        assert h.programs == [0]
        assert c.evictions == 1

    def test_clean_eviction_free(self, harness):
        svc, h = harness
        c = make_cache(svc, h, capacity_entries=8)
        c.access(0, 0.0, dirty=False)
        c.access(4, 0.0, dirty=False)
        c.access(8, 0.0, dirty=False)
        assert not h.programs

    def test_miss_after_eviction_fetches(self, harness):
        svc, h = harness
        c = make_cache(svc, h, capacity_entries=8)
        c.access(0, 0.0, dirty=True)
        c.access(4, 0.0, dirty=False)
        c.access(8, 0.0, dirty=False)  # evicts dirty tvpn 0 -> on flash
        t = c.access(0, 5.0, dirty=False)  # read lookup: blocks
        assert h.reads == [0]
        assert t == pytest.approx(5.075)

    def test_write_lookup_miss_does_not_block(self, harness):
        svc, h = harness
        c = make_cache(svc, h, capacity_entries=8)
        c.access(0, 0.0, dirty=True)
        c.access(4, 0.0, dirty=False)
        c.access(8, 0.0, dirty=False)  # evict tvpn 0
        t = c.access(0, 5.0, dirty=True)  # dirty (write) lookup: async
        assert h.reads == [0]  # fetch still happens (occupies chip)
        assert t == 5.0        # ... but does not gate the request

    def test_lru_order(self, harness):
        svc, h = harness
        c = make_cache(svc, h, capacity_entries=8)
        c.access(0, 0.0, dirty=True)   # tvpn 0
        c.access(4, 0.0, dirty=True)   # tvpn 1
        c.access(0, 0.0, dirty=False)  # touch tvpn 0 (now MRU)
        c.access(8, 0.0, dirty=False)  # evicts tvpn 1, not 0
        assert h.programs == [1]

    def test_dirty_bit_sticky_until_writeback(self, harness):
        svc, h = harness
        c = make_cache(svc, h, capacity_entries=8)
        c.access(0, 0.0, dirty=True)
        c.access(1, 0.0, dirty=False)  # clean access must not clear dirty
        c.access(4, 0.0, dirty=False)
        c.access(8, 0.0, dirty=False)  # eviction of tvpn 0
        assert h.programs == [0]


class TestFlush:
    def test_flush_writes_dirty_only(self, harness):
        svc, h = harness
        c = make_cache(svc, h, capacity_entries=8)
        c.access(0, 0.0, dirty=True)
        c.access(4, 0.0, dirty=False)
        c.flush(0.0)
        assert h.programs == [0]

    def test_flush_idempotent(self, harness):
        svc, h = harness
        c = make_cache(svc, h, capacity_entries=8)
        c.access(0, 0.0, dirty=True)
        c.flush(0.0)
        c.flush(0.0)
        assert h.programs == [0]


class TestMisc:
    def test_touches_fn(self, harness):
        svc, h = harness
        c = make_cache(svc, h, capacity_entries=8, touches_fn=lambda: 5)
        c.access(0, 0.0, dirty=False)
        assert svc.counters.dram_accesses == 5

    def test_residency_partial(self, harness):
        svc, h = harness
        c = make_cache(svc, h, capacity_entries=8)
        assert c.residency(16) == pytest.approx(0.5)

    def test_bad_epp(self, harness):
        svc, h = harness
        with pytest.raises(ValueError):
            make_cache(svc, h, None, epp=0)
