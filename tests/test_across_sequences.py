"""Long-running Across-FTL interaction sequences: chains of merges,
rollbacks, re-creation, interleavings with normal traffic — the states
a single-step test cannot reach."""

import pytest

from conftest import build_ftl


def stamps_for(offset, size, v):
    return {s: v for s in range(offset, offset + size)}


@pytest.fixture
def ftl_pair(tiny_cfg):
    return build_ftl("across", tiny_cfg)


class TestMergeChains:
    def test_repeated_overwrites_keep_one_area(self, ftl_pair):
        svc, ftl = ftl_pair
        for v in range(20):
            ftl.write(2056, 12, 0.0, stamps_for(2056, 12, v))
        assert len(ftl.amt) == 1
        assert ftl.amt.total_created == 1
        assert ftl.across_stats.profitable_amerge == 19
        _, found = ftl.read(2056, 12, 0.0)
        assert all(v == 19 for v in found.values())
        ftl.check_invariants()

    def test_growing_merge_chain_until_rollback(self, ftl_pair):
        svc, ftl = ftl_pair
        # area starts tiny at the boundary and grows by one sector per
        # write until the union no longer fits one page
        ftl.write(2063, 2, 0.0, stamps_for(2063, 2, 0))
        merges = 0
        v = 1
        lo, hi = 2063, 2065
        while len(ftl.amt) == 1 and v < 20:
            lo -= 1
            hi += 1
            ftl.write(lo, hi - lo, 0.0, stamps_for(lo, hi - lo, v))
            v += 1
        assert ftl.across_stats.rollbacks == 1  # eventually exceeded
        _, found = ftl.read(lo, hi - lo, 0.0)
        assert all(val == v - 1 for val in found.values())
        ftl.check_invariants()

    def test_edge_union_exactly_one_page_merges(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(2056, 12, 0.0, stamps_for(2056, 12, 1))
        # union 2054..2070 is exactly 16 sectors: still an AMerge
        ftl.write(2054, 16, 0.0, stamps_for(2054, 16, 2))
        assert len(ftl.amt) == 1
        assert ftl.across_stats.profitable_amerge == 1
        entry = next(ftl.amt.entries())
        assert (entry.start, entry.size) == (2054, 16)

    def test_area_recreated_after_rollback(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(2056, 12, 0.0, stamps_for(2056, 12, 1))
        ftl.write(2060, 16, 0.0, stamps_for(2060, 16, 2))  # union 20 > 16
        assert len(ftl.amt) == 0
        assert ftl.across_stats.rollbacks == 1
        ftl.write(2058, 8, 0.0, stamps_for(2058, 8, 3))    # fresh area
        assert len(ftl.amt) == 1
        assert ftl.amt.total_created == 2
        _, found = ftl.read(2056, 20, 0.0)
        for s in range(2056, 2058):
            assert found[s] == 1
        for s in range(2058, 2066):
            assert found[s] == 3
        for s in range(2066, 2076):
            assert found[s] == 2
        ftl.check_invariants()


class TestManyAreas:
    def test_disjoint_areas_coexist(self, ftl_pair):
        svc, ftl = ftl_pair
        offs = []
        for i in range(1, 30, 2):  # boundaries 2 pages apart: no conflicts
            off = i * 16 - 3
            ftl.write(off, 6, 0.0, stamps_for(off, 6, i))
            offs.append((off, i))
        assert len(ftl.amt) == 15
        for off, v in offs:
            _, found = ftl.read(off, 6, 0.0)
            assert all(x == v for x in found.values()), off
        ftl.check_invariants()

    def test_adjacent_boundary_conflict_chain(self, ftl_pair):
        svc, ftl = ftl_pair
        # areas on (0,1), then (1,2) evicts it, then (2,3) evicts that
        ftl.write(13, 6, 0.0, stamps_for(13, 6, 1))    # lpns (0,1)
        ftl.write(29, 6, 0.0, stamps_for(29, 6, 2))    # lpns (1,2)
        ftl.write(45, 6, 0.0, stamps_for(45, 6, 3))    # lpns (2,3)
        assert len(ftl.amt) == 1
        assert ftl.across_stats.rollbacks == 2
        _, found = ftl.read(13, 38, 0.0)
        assert all(found[s] == 1 for s in range(13, 19))
        assert all(found[s] == 2 for s in range(29, 35))
        assert all(found[s] == 3 for s in range(45, 51))
        ftl.check_invariants()


class TestInterleavings:
    def test_normal_traffic_around_area(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(2056, 12, 0.0, stamps_for(2056, 12, 1))
        # non-overlapping sub-page updates on both lpns of the area
        for v in range(2, 12):
            ftl.write(2048, 6, 0.0, stamps_for(2048, 6, v))
            ftl.write(2070, 8, 0.0, stamps_for(2070, 8, v + 100))
        assert len(ftl.amt) == 1  # untouched the whole time
        _, found = ftl.read(2048, 32, 0.0)
        assert all(found[s] == 11 for s in range(2048, 2054))
        assert all(found[s] == 1 for s in range(2056, 2068))
        assert all(found[s] == 111 for s in range(2070, 2078))
        ftl.check_invariants()

    def test_full_page_pair_overwrite_clears_area(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(2056, 12, 0.0, stamps_for(2056, 12, 1))
        ftl.write(2048, 32, 0.0, stamps_for(2048, 32, 2))  # both pages
        assert len(ftl.amt) == 0
        _, found = ftl.read(2048, 32, 0.0)
        assert all(v == 2 for v in found.values())
        # the across page must be physically invalid (reclaimable)
        ftl.check_invariants()
        svc.array.check_invariants()

    def test_write_size_exactly_page_at_boundary(self, ftl_pair):
        svc, ftl = ftl_pair
        # size == spp spanning two pages is still across (paper Fig. 1)
        ftl.write(2056, 16, 0.0, stamps_for(2056, 16, 5))
        assert ftl.across_stats.direct_writes == 1
        assert next(ftl.amt.entries()).size == 16
        _, found = ftl.read(2056, 16, 0.0)
        assert all(v == 5 for v in found.values())

    def test_two_sector_area_minimum(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(2063, 2, 0.0, stamps_for(2063, 2, 9))
        entry = next(ftl.amt.entries())
        assert entry.size == 2
        _, found = ftl.read(2063, 2, 0.0)
        assert found == {2063: 9, 2064: 9}


class TestStatsConsistency:
    def test_counts_add_up(self, ftl_pair):
        svc, ftl = ftl_pair
        import numpy as np

        rng = np.random.default_rng(11)
        for i in range(400):
            b = int(rng.integers(1, 200)) * 16
            left = int(rng.integers(1, 8))
            right = int(rng.integers(1, 8))
            ftl.write(b - left, left + right, 0.0)
        st = ftl.across_stats
        # every across write is exactly one of the three classes
        assert st.across_writes == (
            st.direct_writes + st.profitable_amerge + st.unprofitable_amerge
        )
        # every direct write created an area
        assert ftl.amt.total_created == st.direct_writes
        # live areas = created - rolled back (trim not used here)
        assert len(ftl.amt) == ftl.amt.total_created - st.rollbacks
        ftl.check_invariants()
