"""Dynamic page allocation (repro.ftl.allocator)."""

import pytest

from repro.config import SSDConfig
from repro.errors import OutOfSpaceError
from repro.flash.service import FlashService
from repro.ftl.allocator import WriteAllocator


@pytest.fixture
def setup():
    svc = FlashService(SSDConfig.tiny())
    return svc, WriteAllocator(svc)


class TestRoundRobin:
    def test_stripes_over_chips_first(self, setup):
        """Consecutive allocations must hit a different chip each time
        (channel-first striping) so sub-requests overlap."""
        svc, alloc = setup
        chips = []
        planes = set()
        for _ in range(svc.num_planes):
            ppn = alloc.allocate()
            svc.array.program(ppn, None)
            chips.append(svc.geom.chip_of_ppn(ppn))
            planes.add(svc.geom.plane_of_ppn(ppn))
        n_chips = svc.geom.num_chips
        # first num_chips allocations each land on a distinct chip
        assert sorted(chips[:n_chips]) == list(range(n_chips))
        # and a full cycle covers every plane exactly once
        assert planes == set(range(svc.num_planes))

    def test_fills_block_sequentially(self, setup):
        svc, alloc = setup
        ppns = []
        for _ in range(3):
            ppn = alloc.allocate_in_plane(0)
            svc.array.program(ppn, None)
            ppns.append(ppn)
        assert ppns == [ppns[0], ppns[0] + 1, ppns[0] + 2]

    def test_moves_to_next_block_when_full(self, setup):
        svc, alloc = setup
        ppb = svc.geom.pages_per_block
        first_block = None
        for i in range(ppb + 1):
            ppn = alloc.allocate_in_plane(0)
            svc.array.program(ppn, None)
            if i == 0:
                first_block = svc.geom.block_of_ppn(ppn)
        assert svc.geom.block_of_ppn(ppn) != first_block

    def test_next_plane_tracks_cursor(self, setup):
        svc, alloc = setup
        first = alloc.next_plane()
        ppn = alloc.allocate()
        svc.array.program(ppn, None)
        second = alloc.next_plane()
        assert svc.geom.plane_of_ppn(ppn) == first
        # the next target sits on a different chip (channel-first)
        assert svc.geom.chip_of_plane(second) != svc.geom.chip_of_plane(first)


class TestExhaustion:
    def test_plane_exhaustion_returns_none(self, setup):
        svc, alloc = setup
        # drain plane 0's pool entirely
        while svc.array.free_block_count(0):
            svc.array.pop_free_block(0)
        assert alloc.allocate_in_plane(0) is None

    def test_allocate_skips_exhausted_plane(self, setup):
        svc, alloc = setup
        while svc.array.free_block_count(0):
            svc.array.pop_free_block(0)
        ppn = alloc.allocate()
        assert svc.geom.plane_of_ppn(ppn) != 0

    def test_total_exhaustion_raises(self, setup):
        svc, alloc = setup
        for plane in range(svc.num_planes):
            while svc.array.free_block_count(plane):
                svc.array.pop_free_block(plane)
        with pytest.raises(OutOfSpaceError):
            alloc.allocate()


class TestActiveBlocks:
    def test_active_tracked(self, setup):
        svc, alloc = setup
        ppn = alloc.allocate_in_plane(0)
        svc.array.program(ppn, None)
        blk = svc.geom.block_of_ppn(ppn)
        assert blk in alloc.active_blocks()
        assert alloc.is_active(blk)

    def test_full_block_leaves_active_set(self, setup):
        svc, alloc = setup
        ppb = svc.geom.pages_per_block
        blk = None
        for _ in range(ppb):
            ppn = alloc.allocate_in_plane(0)
            svc.array.program(ppn, None)
            blk = svc.geom.block_of_ppn(ppn)
        # allocating once more rotates to a fresh block
        ppn = alloc.allocate_in_plane(0)
        svc.array.program(ppn, None)
        assert not alloc.is_active(blk)
