"""Across-FTL write routines: direct write, AMerge, ARollback (paper §3.3.1)."""

import pytest

from conftest import build_ftl


@pytest.fixture
def ftl_pair(tiny_cfg):
    return build_ftl("across", tiny_cfg)


def stamps_for(offset, size, v):
    return {s: v for s in range(offset, offset + size)}


class TestDirectWrite:
    """Paper Fig. 6 left: first across-page write creates an area."""

    def test_single_program(self, ftl_pair):
        svc, ftl = ftl_pair
        # write(1028K, 6K) with 8K pages = sectors 2056..2068
        ftl.write(2056, 12, 0.0, stamps_for(2056, 12, 1))
        assert svc.counters.data_writes == 1  # one page, not two
        assert ftl.across_stats.direct_writes == 1

    def test_amt_entry_created(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(2056, 12, 0.0)
        assert len(ftl.amt) == 1
        entry = next(ftl.amt.entries())
        assert entry.start == 2056 and entry.size == 12
        assert entry.lpns == (128, 129)

    def test_aidx_set_on_both_lpns(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(2056, 12, 0.0)
        entry = next(ftl.amt.entries())
        assert ftl.aidx_of_lpn[128] == entry.aidx
        assert ftl.aidx_of_lpn[129] == entry.aidx

    def test_shadowing_of_normal_pages(self, ftl_pair):
        svc, ftl = ftl_pair
        # pre-existing normal data on both pages
        ftl.write(2048, 16, 0.0, stamps_for(2048, 16, 1))
        ftl.write(2064, 16, 0.0, stamps_for(2064, 16, 2))
        ftl.write(2056, 12, 0.0, stamps_for(2056, 12, 3))
        # PMT masks exclude the shadowed sectors
        assert int(ftl.pmt_mask[128]) & 0xFF00 == 0
        assert int(ftl.pmt_mask[129]) & 0x000F == 0
        _, found = ftl.read(2048, 32, 0.0)
        for s in range(2048, 2056):
            assert found[s] == 1
        for s in range(2056, 2068):
            assert found[s] == 3
        for s in range(2068, 2080):
            assert found[s] == 2

    def test_fully_shadowed_page_invalidated(self, ftl_pair):
        svc, ftl = ftl_pair
        # the only written sectors of both pages lie inside the area
        ftl.write(2060, 4, 0.0, stamps_for(2060, 4, 1))   # tail of lpn 128
        ftl.write(2064, 2, 0.0, stamps_for(2064, 2, 2))   # head of lpn 129
        ftl.write(2058, 10, 0.0, stamps_for(2058, 10, 3))  # across, covers both
        assert ftl.pmt[128] == -1 and ftl.pmt[129] == -1
        _, found = ftl.read(2058, 10, 0.0)
        assert all(v == 3 for v in found.values())

    def test_invariants(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(2056, 12, 0.0)
        ftl.check_invariants()


class TestAMerge:
    """Paper Fig. 6 middle: overlapping update, union fits a page."""

    def test_profitable_amerge(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(2056, 12, 0.0, stamps_for(2056, 12, 1))  # area 2056..2068
        # across update 2060..2072: union 2056..2072 = 16 <= spp
        ftl.write(2060, 12, 0.0, stamps_for(2060, 12, 2))
        assert ftl.across_stats.profitable_amerge == 1
        assert ftl.across_stats.rollbacks == 0
        entry = next(ftl.amt.entries())
        assert entry.start == 2056 and entry.size == 16

    def test_amerge_data_correct(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(2056, 12, 0.0, stamps_for(2056, 12, 1))
        ftl.write(2060, 12, 0.0, stamps_for(2060, 12, 2))
        _, found = ftl.read(2056, 16, 0.0)
        for s in range(2056, 2060):
            assert found[s] == 1
        for s in range(2060, 2072):
            assert found[s] == 2

    def test_amerge_reads_old_area_once(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(2056, 12, 0.0)
        before = svc.counters.data_reads
        ftl.write(2060, 12, 0.0)
        assert svc.counters.data_reads - before == 1

    def test_contained_overwrite_no_read(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(2056, 12, 0.0, stamps_for(2056, 12, 1))
        before = svc.counters.data_reads
        # full overwrite of the area: nothing old needs reading
        ftl.write(2056, 12, 0.0, stamps_for(2056, 12, 2))
        assert svc.counters.data_reads - before == 0
        assert ftl.across_stats.profitable_amerge == 1

    def test_old_area_page_invalidated(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(2056, 12, 0.0)
        old_appn = next(ftl.amt.entries()).appn
        ftl.write(2060, 12, 0.0)
        assert not svc.array.is_valid(old_appn)
        assert next(ftl.amt.entries()).appn != old_appn

    def test_unprofitable_amerge(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(2056, 12, 0.0, stamps_for(2056, 12, 1))
        # non-across sub-page update overlapping the area's lpn-128 part
        ftl.write(2058, 4, 0.0, stamps_for(2058, 4, 2))
        assert ftl.across_stats.unprofitable_amerge == 1
        _, found = ftl.read(2056, 12, 0.0)
        assert found[2056] == 1 and found[2058] == 2 and found[2062] == 1

    def test_amerge_disabled_forces_rollback(self, tiny_cfg):
        svc, ftl = build_ftl("across", tiny_cfg, amerge_enabled=False)
        ftl.write(2056, 12, 0.0, stamps_for(2056, 12, 1))
        ftl.write(2060, 12, 0.0, stamps_for(2060, 12, 2))
        assert ftl.across_stats.profitable_amerge == 0
        assert ftl.across_stats.rollbacks == 1
        _, found = ftl.read(2056, 16, 0.0)
        assert found[2056] == 1 and found[2071] == 2

    def test_invariants_after_merge(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(2056, 12, 0.0)
        ftl.write(2060, 12, 0.0)
        ftl.check_invariants()


class TestARollback:
    """Paper Fig. 6 right: union exceeds a page -> fold back to normal."""

    def test_rollback_triggered(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(2056, 12, 0.0, stamps_for(2056, 12, 1))  # area 2056..2068
        # across update 2060..2076: union 2056..2076 = 20 > 16 -> rollback
        ftl.write(2060, 16, 0.0, stamps_for(2060, 16, 2))
        assert ftl.across_stats.rollbacks == 1
        assert len(ftl.amt) == 0
        assert 128 not in ftl.aidx_of_lpn and 129 not in ftl.aidx_of_lpn

    def test_rollback_data_correct(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(2048, 16, 0.0, stamps_for(2048, 16, 1))  # normal lpn 128
        ftl.write(2056, 12, 0.0, stamps_for(2056, 12, 2))  # area
        ftl.write(2060, 16, 0.0, stamps_for(2060, 16, 3))  # rollback trigger
        _, found = ftl.read(2048, 32, 0.0)
        for s in range(2048, 2056):
            assert found[s] == 1, s
        for s in range(2056, 2060):
            assert found[s] == 2, s
        for s in range(2060, 2076):
            assert found[s] == 3, s

    def test_rollback_writes_both_pages_normally(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(2056, 12, 0.0)
        before = svc.counters.data_writes
        ftl.write(2060, 16, 0.0)
        assert svc.counters.data_writes - before == 2  # one per LPN
        assert svc.array.is_valid(int(ftl.pmt[128]))
        assert svc.array.is_valid(int(ftl.pmt[129]))

    def test_rollback_from_single_page_update(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(2062, 4, 0.0, stamps_for(2062, 4, 1))  # area 2062..2066
        # full-page write over lpn 128: union spans the whole page 128
        # plus the area's tail in 129 -> exceeds one page -> rollback
        ftl.write(2048, 16, 0.0, stamps_for(2048, 16, 2))
        assert ftl.across_stats.rollbacks == 1
        _, found = ftl.read(2048, 32, 0.0)
        for s in range(2048, 2064):
            assert found[s] == 2, s
        for s in range(2064, 2066):
            assert found[s] == 1, s

    def test_conflicting_neighbor_area_rolled_back(self, ftl_pair):
        svc, ftl = ftl_pair
        # area A on lpns (128, 129)
        ftl.write(2056, 12, 0.0, stamps_for(2056, 12, 1))
        # new across write on lpns (129, 130): conflicts with A via 129
        ftl.write(2072, 12, 0.0, stamps_for(2072, 12, 2))
        assert ftl.across_stats.rollbacks == 1       # A rolled back
        assert ftl.across_stats.direct_writes == 2   # new area created
        assert len(ftl.amt) == 1
        entry = next(ftl.amt.entries())
        assert entry.lpns == (129, 130)
        _, found = ftl.read(2056, 28, 0.0)
        for s in range(2056, 2068):
            assert found[s] == 1, s
        for s in range(2072, 2084):
            assert found[s] == 2, s

    def test_invariants_after_rollback(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(2056, 12, 0.0)
        ftl.write(2060, 16, 0.0)
        ftl.check_invariants()


class TestNonAcrossPaths:
    def test_aligned_write_untouched_by_across_logic(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(0, 16, 0.0, stamps_for(0, 16, 1))
        assert ftl.across_stats.across_writes == 0
        assert len(ftl.amt) == 0

    def test_non_overlapping_update_keeps_area(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(2060, 6, 0.0, stamps_for(2060, 6, 1))  # area 2060..2066
        # sub-page write on lpn 128 NOT overlapping the area
        ftl.write(2048, 4, 0.0, stamps_for(2048, 4, 2))
        assert len(ftl.amt) == 1  # area survives
        assert ftl.across_stats.unprofitable_amerge == 0
        _, found = ftl.read(2048, 20, 0.0)
        assert found[2048] == 2 and found[2060] == 1

    def test_large_write_over_area_rolls_back(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(2060, 6, 0.0, stamps_for(2060, 6, 1))
        # 3-page aligned write covering both lpns of the area
        ftl.write(2048, 48, 0.0, stamps_for(2048, 48, 2))
        assert len(ftl.amt) == 0
        _, found = ftl.read(2048, 48, 0.0)
        assert all(v == 2 for v in found.values())

    def test_mapping_table_grows_with_amt(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(0, 16, 0.0)
        base = ftl.mapping_table_bytes()
        ftl.write(2056, 12, 0.0)
        assert ftl.mapping_table_bytes() > base


class TestStats:
    def test_rollback_ratio(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(2056, 12, 0.0)
        ftl.write(2060, 16, 0.0)  # rollback
        s = ftl.stats()
        assert s["across_rollbacks"] == 1
        assert s["across_rollback_ratio"] == pytest.approx(1.0)

    def test_distribution(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(2056, 12, 0.0)
        ftl.write(2056, 12, 0.0)  # profitable amerge
        ftl.write(2058, 2, 0.0)   # unprofitable amerge
        d = ftl.across_stats.distribution()
        assert d["direct"] == pytest.approx(1 / 3)
        assert d["profitable"] == pytest.approx(1 / 3)
        assert d["unprofitable"] == pytest.approx(1 / 3)
