"""EXPERIMENTS.md generator (repro.experiments.summary)."""

import pytest

from repro.config import SimConfig, SSDConfig
from repro.experiments.runner import ExperimentContext
from repro.experiments.summary import headline_table, render_experiments_md


@pytest.fixture(scope="module")
def ctx():
    cfg = SSDConfig(
        channels=2,
        chips_per_channel=2,
        dies_per_chip=1,
        planes_per_die=2,
        blocks_per_plane=32,
        pages_per_block=16,
        page_size_bytes=8 * 1024,
        write_buffer_bytes=512 * 1024,
    )
    return ExperimentContext(
        cfg=cfg,
        sim_cfg=SimConfig(aged_used=0.5, aged_valid=0.3),
        scale=0.002,
    )


def test_render_selected_figures(ctx):
    md = render_experiments_md(ctx, figures=["table2", "fig13"])
    assert "# Paper vs measured" in md
    assert "### table2" in md and "### fig13" in md
    assert "| Experiment | Quantity | Paper | Measured |" in md
    assert "lun1" in md


def test_headline_table_collects_scalars(ctx):
    from repro.experiments import figures as F

    results = {"fig13": F.fig13(ctx)}
    table = headline_table(results)
    assert "monotone decreasing" in table
    assert table.count("|") >= 12
