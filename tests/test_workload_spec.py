"""Declarative workload compiler (repro.traces.workload_spec)."""

import json

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.traces.model import OP_READ, OP_TRIM, OP_WRITE
from repro.traces.stats import across_page_ratio
from repro.traces.workload_spec import (
    WorkloadSpec,
    compile_workload,
    validate_spec,
)

FOOTPRINT = 256 * 1024  # sectors


def doc(**kw):
    base = {
        "name": "t",
        "requests": 2_000,
        "seed": 3,
        "phases": [
            {"weight": 1, "pattern": "random", "op": "write",
             "size_kb": [4, 8]},
        ],
    }
    base.update(kw)
    return base


class TestParsing:
    def test_from_dict(self):
        spec = validate_spec(doc())
        assert spec.name == "t" and len(spec.phases) == 1

    def test_from_json(self):
        spec = WorkloadSpec.from_json(json.dumps(doc()))
        assert spec.requests == 2_000

    def test_missing_phases(self):
        with pytest.raises(ConfigError):
            validate_spec({"name": "x"})

    def test_bad_pattern(self):
        with pytest.raises(ConfigError):
            validate_spec(doc(phases=[{"pattern": "zigzag"}]))

    def test_bad_op(self):
        with pytest.raises(ConfigError):
            validate_spec(doc(phases=[{"op": "append"}]))

    def test_bad_region(self):
        with pytest.raises(ConfigError):
            validate_spec(doc(phases=[{"region": [0.7, 0.2]}]))

    def test_bad_weight(self):
        with pytest.raises(ConfigError):
            validate_spec(doc(phases=[{"weight": 0}]))


class TestCompilation:
    def test_basic_compile(self):
        t = compile_workload(doc(), FOOTPRINT)
        assert len(t) == 2_000
        assert (t.ops == OP_WRITE).all()
        assert int((t.offsets + t.sizes).max()) <= FOOTPRINT

    def test_deterministic(self):
        a = compile_workload(doc(), FOOTPRINT)
        b = compile_workload(doc(), FOOTPRINT)
        assert np.array_equal(a.offsets, b.offsets)

    def test_mixed_ops(self):
        d = doc(phases=[
            {"weight": 1, "op": "write"},
            {"weight": 1, "op": "read"},
            {"weight": 1, "op": "trim"},
        ])
        t = compile_workload(d, FOOTPRINT)
        kinds = set(t.ops.tolist())
        assert kinds == {OP_READ, OP_WRITE, OP_TRIM}

    def test_sequential_phase_walks(self):
        d = doc(phases=[{"pattern": "sequential", "size_kb": [8],
                         "region": [0.0, 0.25]}])
        t = compile_workload(d, FOOTPRINT)
        deltas = np.diff(t.offsets)
        # mostly forward steps of the request size (wraps rarely)
        assert (deltas == 16).mean() > 0.9
        assert t.offsets.max() < FOOTPRINT * 0.25

    def test_boundary_phase_is_across(self):
        d = doc(phases=[{"pattern": "boundary", "size_kb": [2, 4, 6]}])
        t = compile_workload(d, FOOTPRINT)
        assert across_page_ratio(t, 8192) > 0.9

    def test_region_respected(self):
        d = doc(phases=[{"pattern": "random", "region": [0.5, 0.6]}])
        t = compile_workload(d, FOOTPRINT)
        assert t.offsets.min() >= FOOTPRINT * 0.5 - 16
        assert (t.offsets + t.sizes).max() <= FOOTPRINT * 0.6 + 16

    def test_hotspot_is_skewed(self):
        d = doc(
            requests=4_000,
            phases=[{"pattern": "hotspot", "zones": 16, "zipf_s": 1.4}],
        )
        t = compile_workload(d, FOOTPRINT)
        zone = t.offsets // (FOOTPRINT // 16)
        counts = np.bincount(zone.astype(int), minlength=16)
        assert counts.max() > 3 * np.median(counts[counts > 0])

    def test_alignment(self):
        d = doc(phases=[{"pattern": "random", "align_kb": 8, "size_kb": [8]}])
        t = compile_workload(d, FOOTPRINT)
        assert (t.offsets % 16 == 0).all()

    def test_tiny_footprint_rejected(self):
        with pytest.raises(ConfigError):
            compile_workload(doc(), 100)


class TestEndToEnd:
    def test_compiled_workload_simulates(self, tiny_cfg):
        from repro import SimConfig, run_trace

        d = doc(
            requests=600,
            phases=[
                {"weight": 2, "op": "write", "pattern": "hotspot"},
                {"weight": 1, "op": "write", "pattern": "boundary",
                 "size_kb": [2, 4]},
                {"weight": 1, "op": "read", "pattern": "random"},
            ],
        )
        t = compile_workload(d, int(tiny_cfg.logical_sectors * 0.6))
        rep = run_trace("across", t, tiny_cfg, SimConfig(check_oracle=True))
        assert rep.requests == 600
        assert rep.extra["across_direct_writes"] > 0
