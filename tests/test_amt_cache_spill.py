"""AMT mapping-cache spill behaviour (the source of Across-FTL's small
Map flash traffic — paper Fig. 10's 2.6%/0.74% shares).

An AMT translation page holds page_size/16 = 512 entries, so spill
requires the live-area index space to exceed one translation page while
the DRAM budget holds only one — hence the 600-area workloads here.
"""


from conftest import build_ftl

N_AREAS = 600  # spans two AMT translation pages (512 entries each)


def make_areas(ftl, n=N_AREAS):
    """Create ``n`` disjoint across areas at boundaries 1, 3, 5, ..."""
    for i in range(n):
        b = (2 * i + 1) * 16
        ftl.write(b - 3, 6, 0.0)


class TestAMTSpill:
    def test_tiny_amt_cache_produces_map_traffic(self, tiny_cfg):
        svc, ftl = build_ftl("across", tiny_cfg, amt_cache_entries=512)
        make_areas(ftl)
        assert ftl.amt.index_space > 512  # needs 2 translation pages
        # re-touch the oldest areas: their AMT page was evicted dirty
        for i in range(40):
            b = (2 * i + 1) * 16
            ftl.write(b - 3, 6, 0.0)
        assert svc.counters.map_writes > 0

    def test_large_amt_cache_no_traffic(self, tiny_cfg):
        svc, ftl = build_ftl("across", tiny_cfg, amt_cache_entries=100_000)
        make_areas(ftl)
        for i in range(40):
            ftl.write((2 * i + 1) * 16 - 3, 6, 0.0)
        assert svc.counters.map_writes == 0

    def test_unlimited_amt_cache(self, tiny_cfg):
        svc, ftl = build_ftl("across", tiny_cfg, amt_cache_entries=None)
        make_areas(ftl, 100)
        assert svc.counters.map_writes == 0
        assert ftl._amt_cache.misses == 0

    def test_spill_read_blocks(self, tiny_cfg):
        svc, ftl = build_ftl("across", tiny_cfg, amt_cache_entries=512)
        make_areas(ftl)
        # reading area 0's data needs its evicted-and-flushed AMT page
        # back from flash, which gates the read
        before = svc.counters.map_reads
        t, _ = ftl.read(1 * 16 - 3, 6, 10_000.0)
        if svc.counters.map_reads > before:
            assert t > 10_000.0 + ftl.cfg.timing.read_ms - 1e-9

    def test_stats_expose_amt_cache(self, tiny_cfg):
        svc, ftl = build_ftl("across", tiny_cfg, amt_cache_entries=512)
        make_areas(ftl)
        s = ftl.stats()
        assert s["amt_cache_misses"] > 0
        assert s["amt_live"] == len(ftl.amt) == N_AREAS
        assert s["amt_peak_live"] == N_AREAS
