"""Command-line interface (repro.cli)."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.traces.model import OP_WRITE, Trace
from repro.traces.systor import save_systor


@pytest.fixture
def trace_file(tmp_path):
    rng = np.random.default_rng(3)
    n = 400
    t = Trace(
        "clitrace",
        np.sort(rng.uniform(0, 4000, n)),
        rng.integers(0, 2, n).astype(np.uint8),
        (rng.integers(0, 4000, n) * 4).astype(np.int64),
        rng.integers(1, 32, n).astype(np.int64),
    )
    p = tmp_path / "cli.csv"
    save_systor(t, p)
    return p


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scheme", "bogus"])

    def test_figures_accepts_names(self):
        args = build_parser().parse_args(["figures", "fig13", "table2"])
        assert args.names == ["fig13", "table2"]


class TestCharacterize:
    def test_on_file(self, trace_file, capsys):
        assert main(["characterize", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "across R" in out and "cli" in out

    def test_synthetic_default(self, capsys):
        assert main(["characterize", "--scale", "0.001"]) == 0
        out = capsys.readouterr().out
        assert "lun1" in out and "lun6" in out


class TestRunAndCompare:
    def test_run_on_file(self, trace_file, capsys):
        rc = main([
            "run", "--scheme", "across", "--trace", str(trace_file),
            "--aged-used", "0", "--aged-valid", "0",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "across on" in out
        assert "erases" in out

    def test_compare_on_file(self, trace_file, capsys):
        rc = main([
            "compare", "--trace", str(trace_file),
            "--aged-used", "0", "--aged-valid", "0",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        for scheme in ("ftl", "mrsm", "across"):
            assert scheme in out

    def test_unknown_lun(self):
        with pytest.raises(SystemExit):
            main(["run", "--lun", "lun99", "--aged-used", "0",
                  "--aged-valid", "0"])

    def test_run_on_workload_spec(self, tmp_path, capsys):
        import json

        spec = {
            "name": "cli-workload",
            "requests": 300,
            "phases": [
                {"weight": 1, "op": "write", "pattern": "boundary",
                 "size_kb": [2, 4]},
                {"weight": 2, "op": "write", "pattern": "random"},
            ],
        }
        p = tmp_path / "w.json"
        p.write_text(json.dumps(spec))
        rc = main([
            "run", "--scheme", "across", "--workload", str(p),
            "--aged-used", "0", "--aged-valid", "0",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "across on cli-workload" in out


class TestLint:
    def test_lint_clean_file(self, trace_file, capsys):
        rc = main(["lint", str(trace_file)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "across-ratio" in out

    def test_lint_exit_code_on_error(self, tmp_path, capsys):
        import numpy as np

        from repro.traces.model import OP_WRITE, Trace
        from repro.traces.systor import save_systor

        t = Trace(
            "bad",
            np.array([0.0]),
            np.array([OP_WRITE], np.uint8),
            np.array([10**12], np.int64),  # far outside any device
            np.array([8], np.int64),
        )
        p = tmp_path / "bad.csv"
        save_systor(t, p)
        rc = main(["lint", str(p), "--check-range"])
        assert rc == 1
        assert "out-of-range" in capsys.readouterr().out


class TestFigures:
    def test_unknown_figure(self):
        with pytest.raises(SystemExit):
            main(["figures", "fig99"])

    def test_summary_parser(self):
        args = build_parser().parse_args(["summary", "fig13", "--scale", "0.001"])
        assert args.names == ["fig13"]

    def test_report_parser(self):
        args = build_parser().parse_args(["report", "--out", "x.html"])
        assert args.out == "x.html"

    @pytest.mark.slow
    def test_fig13_to_dir(self, tmp_path, capsys):
        rc = main([
            "figures", "fig13", "--scale", "0.001",
            "--out", str(tmp_path / "figs"),
            "--aged-used", "0", "--aged-valid", "0",
        ])
        assert rc == 0
        assert (tmp_path / "figs" / "fig13.txt").exists()


class TestTrace:
    def test_trace_parser_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.scheme == "across"
        assert args.out == "obs-out"
        assert args.sample_interval_ms == 10.0

    def test_trace_writes_artifacts(self, trace_file, tmp_path, capsys):
        out = tmp_path / "obs"
        rc = main([
            "trace", "--trace", str(trace_file), "--out", str(out),
            "--aged-used", "0", "--aged-valid", "0",
            "--sample-interval-ms", "5",
        ])
        assert rc == 0
        stdout = capsys.readouterr().out
        assert "trace.json" in stdout

        # valid Chrome-trace JSON with request slices and chip rows
        import json

        doc = json.loads((out / "trace.json").read_text())
        evs = doc["traceEvents"]
        assert any(e["ph"] == "X" and e["pid"] == 1 for e in evs)
        assert any(e["ph"] == "X" and e["pid"] == 2 for e in evs)

        # one span per request in the JSONL
        spans = (out / "spans.jsonl").read_text().splitlines()
        assert len(spans) == 400

        # Prometheus snapshot with the counter families
        prom = (out / "metrics.prom").read_text()
        assert "repro_flash_reads_total" in prom
        assert "repro_chip_utilization{chip=" in prom

        # per-chip utilisation series in the JSON snapshot
        snap = json.loads((out / "snapshot.json").read_text())
        series = snap["series"]["chip_utilization"]
        assert len(series["t_ms"]) >= 1
        n_chips = len(series["mean_per_chip"])
        assert n_chips >= 1
        assert all(len(row) == n_chips for row in series["per_chip"])
        assert all(0.0 <= u <= 1.0 for row in series["per_chip"] for u in row)

    def test_progress_flag_writes_stderr(self, trace_file, capsys):
        rc = main([
            "run", "--scheme", "ftl", "--trace", str(trace_file),
            "--aged-used", "0", "--aged-valid", "0", "--progress",
        ])
        assert rc == 0
        err = capsys.readouterr().err
        assert "req/s" in err and "100.0%" in err
