"""Command-line interface (repro.cli)."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.traces.model import OP_READ, OP_WRITE, Trace
from repro.traces.systor import save_systor


@pytest.fixture
def trace_file(tmp_path):
    rng = np.random.default_rng(3)
    n = 400
    t = Trace(
        "clitrace",
        np.sort(rng.uniform(0, 4000, n)),
        rng.integers(0, 2, n).astype(np.uint8),
        (rng.integers(0, 4000, n) * 4).astype(np.int64),
        rng.integers(1, 32, n).astype(np.int64),
    )
    p = tmp_path / "cli.csv"
    save_systor(t, p)
    return p


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scheme", "bogus"])

    def test_figures_accepts_names(self):
        args = build_parser().parse_args(["figures", "fig13", "table2"])
        assert args.names == ["fig13", "table2"]


class TestCharacterize:
    def test_on_file(self, trace_file, capsys):
        assert main(["characterize", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "across R" in out and "cli" in out

    def test_synthetic_default(self, capsys):
        assert main(["characterize", "--scale", "0.001"]) == 0
        out = capsys.readouterr().out
        assert "lun1" in out and "lun6" in out


class TestRunAndCompare:
    def test_run_on_file(self, trace_file, capsys):
        rc = main([
            "run", "--scheme", "across", "--trace", str(trace_file),
            "--aged-used", "0", "--aged-valid", "0",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "across on" in out
        assert "erases" in out

    def test_compare_on_file(self, trace_file, capsys):
        rc = main([
            "compare", "--trace", str(trace_file),
            "--aged-used", "0", "--aged-valid", "0",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        for scheme in ("ftl", "mrsm", "across"):
            assert scheme in out

    def test_unknown_lun(self):
        with pytest.raises(SystemExit):
            main(["run", "--lun", "lun99", "--aged-used", "0",
                  "--aged-valid", "0"])

    def test_run_on_workload_spec(self, tmp_path, capsys):
        import json

        spec = {
            "name": "cli-workload",
            "requests": 300,
            "phases": [
                {"weight": 1, "op": "write", "pattern": "boundary",
                 "size_kb": [2, 4]},
                {"weight": 2, "op": "write", "pattern": "random"},
            ],
        }
        p = tmp_path / "w.json"
        p.write_text(json.dumps(spec))
        rc = main([
            "run", "--scheme", "across", "--workload", str(p),
            "--aged-used", "0", "--aged-valid", "0",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "across on cli-workload" in out


class TestLint:
    def test_lint_clean_file(self, trace_file, capsys):
        rc = main(["lint", str(trace_file)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "across-ratio" in out

    def test_lint_exit_code_on_error(self, tmp_path, capsys):
        import numpy as np

        from repro.traces.model import OP_WRITE, Trace
        from repro.traces.systor import save_systor

        t = Trace(
            "bad",
            np.array([0.0]),
            np.array([OP_WRITE], np.uint8),
            np.array([10**12], np.int64),  # far outside any device
            np.array([8], np.int64),
        )
        p = tmp_path / "bad.csv"
        save_systor(t, p)
        rc = main(["lint", str(p), "--check-range"])
        assert rc == 1
        assert "out-of-range" in capsys.readouterr().out


class TestFigures:
    def test_unknown_figure(self):
        with pytest.raises(SystemExit):
            main(["figures", "fig99"])

    def test_summary_parser(self):
        args = build_parser().parse_args(["summary", "fig13", "--scale", "0.001"])
        assert args.names == ["fig13"]

    def test_report_parser(self):
        args = build_parser().parse_args(["report", "--out", "x.html"])
        assert args.out == "x.html"

    @pytest.mark.slow
    def test_fig13_to_dir(self, tmp_path, capsys):
        rc = main([
            "figures", "fig13", "--scale", "0.001",
            "--out", str(tmp_path / "figs"),
            "--aged-used", "0", "--aged-valid", "0",
        ])
        assert rc == 0
        assert (tmp_path / "figs" / "fig13.txt").exists()
