"""Stateful (rule-based) property testing of the FTL schemes.

Hypothesis drives an arbitrary interleaving of writes, reads, trims,
forced GC and invariant checks against a per-sector reference model.
Unlike the list-of-ops property tests, the machine can shrink a failing
interleaving to a minimal reproducing sequence of API calls.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.config import SSDConfig
from repro.flash.service import FlashService
from repro.ftl import make_ftl

CFG = SSDConfig(
    channels=2,
    chips_per_channel=1,
    dies_per_chip=1,
    planes_per_die=2,
    blocks_per_plane=10,
    pages_per_block=8,
    page_size_bytes=8 * 1024,
    write_buffer_bytes=0,
)
SPP = CFG.sectors_per_page
MAX_SECTOR = CFG.logical_pages * SPP

offsets = st.integers(0, MAX_SECTOR - 2)
sizes = st.integers(1, 3 * SPP)
boundaries = st.integers(1, MAX_SECTOR // SPP - 1)
halves = st.integers(1, SPP - 1)


class FTLMachine(RuleBasedStateMachine):
    scheme = "across"

    @initialize()
    def setup(self):
        self.service = FlashService(CFG)
        self.ftl = make_ftl(self.scheme, self.service, track_payload=True)
        self.model: dict[int, int] = {}
        self.version = 0
        self.ops = 0

    def _write(self, offset: int, size: int):
        size = max(1, min(size, MAX_SECTOR - offset))
        self.version += 1
        stamps = {}
        for s in range(offset, offset + size):
            stamps[s] = self.version
            self.model[s] = self.version
        self.ftl.write(offset, size, 0.0, stamps)
        self.ops += 1

    @rule(offset=offsets, size=sizes)
    def write_extent(self, offset, size):
        self._write(offset, size)

    @rule(b=boundaries, left=halves, right=halves)
    def write_across(self, b, left, right):
        boundary = b * SPP
        start = max(0, boundary - left)
        size = min(left + right, SPP, MAX_SECTOR - start)
        self._write(start, max(1, size))

    @rule(offset=offsets, size=sizes)
    def trim_extent(self, offset, size):
        size = max(1, min(size, MAX_SECTOR - offset))
        self.ftl.trim(offset, size, 0.0)
        for s in range(offset, offset + size):
            self.model.pop(s, None)
        self.ops += 1

    @rule(offset=offsets, size=sizes)
    def read_and_verify(self, offset, size):
        size = max(1, min(size, MAX_SECTOR - offset))
        _, found = self.ftl.read(offset, size, 0.0)
        for s in range(offset, offset + size):
            assert found.get(s) == self.model.get(s), s

    @precondition(
        lambda self: self.ops > 5 and getattr(self.ftl, "uses_generic_gc", True)
    )
    @rule()
    def force_gc(self):
        for plane in range(self.service.num_planes):
            self.ftl.gc.collect_once(plane, 0.0)

    @invariant()
    def structures_consistent(self):
        if getattr(self, "ftl", None) is None:
            return
        self.ftl.check_invariants()
        self.service.array.check_invariants()


class AcrossMachine(FTLMachine):
    scheme = "across"


class PageMapMachine(FTLMachine):
    scheme = "ftl"


class MRSMMachine(FTLMachine):
    scheme = "mrsm"


class BASTMachine(FTLMachine):
    """BAST reclaims space through merges, not the generic GC — the
    force_gc rule is a no-op for it, everything else applies."""

    scheme = "bast"


class FASTMachine(FTLMachine):
    """FAST shares its log pool across logical blocks; merges replace
    the generic GC, like BAST."""

    scheme = "fast"


TestAcrossStateful = AcrossMachine.TestCase
TestAcrossStateful.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestPageMapStateful = PageMapMachine.TestCase
TestPageMapStateful.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)
TestMRSMStateful = MRSMMachine.TestCase
TestMRSMStateful.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)
TestBASTStateful = BASTMachine.TestCase
TestBASTStateful.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)
TestFASTStateful = FASTMachine.TestCase
TestFASTStateful.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)
