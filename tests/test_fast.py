"""FAST fully-associative log-block FTL (library extension)."""

import numpy as np
import pytest

from repro.errors import ConfigError, MappingError
from repro.flash.service import FlashService
from repro.ftl.fast import FASTFTL
from conftest import build_ftl


def stamps_for(offset, size, v):
    return {s: v for s in range(offset, offset + size)}


@pytest.fixture
def ftl_pair(tiny_cfg):
    return build_ftl("fast", tiny_cfg, log_blocks=4)


class TestBasics:
    def test_factory(self, tiny_cfg):
        svc, ftl = build_ftl("fast", tiny_cfg)
        assert ftl.name == "fast"

    def test_min_log_blocks(self, tiny_cfg):
        with pytest.raises(ConfigError):
            FASTFTL(FlashService(tiny_cfg), log_blocks=1)

    def test_writes_share_one_log_block(self, ftl_pair):
        svc, ftl = ftl_pair
        # pages from DIFFERENT logical blocks land in the same log block
        ftl.write(0, 16, 0.0, stamps_for(0, 16, 1))
        far = 5 * ftl.ppb * ftl.spp
        ftl.write(far, 16, 0.0, stamps_for(far, 16, 2))
        assert len(ftl.log_blocks) == 1
        lbns = next(iter(ftl.log_blocks.values()))
        assert lbns == {0, 5}

    def test_read_back(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(0, 16, 0.0, stamps_for(0, 16, 1))
        ftl.write(4, 4, 1.0, stamps_for(4, 4, 2))
        _, found = ftl.read(0, 16, 2.0)
        assert found[0] == 1 and found[5] == 2 and found[12] == 1
        ftl.check_invariants()


class TestMergeStorm:
    def test_log_retirement_merges_all_touched_lbns(self, tiny_cfg):
        svc, ftl = build_ftl("fast", tiny_cfg, log_blocks=2)
        spp, ppb = ftl.spp, ftl.ppb
        # scatter single-page updates over many logical blocks so the
        # shared log fills with a mix — the retirement merge storm
        versions = {}
        for i in range(3 * ppb):
            lbn = i % 7
            lpn = lbn * ppb + (i % ppb)
            versions[lpn] = i
            ftl.write(lpn * spp, spp, 0.0,
                      stamps_for(lpn * spp, spp, i))
        assert ftl.log_retirements >= 1
        assert ftl.full_merges >= 1
        for lpn, v in versions.items():
            _, found = ftl.read(lpn * spp, spp, 0.0)
            assert all(x == v for x in found.values()), lpn
        ftl.check_invariants()
        svc.array.check_invariants()

    def test_erases_counted(self, tiny_cfg):
        svc, ftl = build_ftl("fast", tiny_cfg, log_blocks=2)
        spp, ppb = ftl.spp, ftl.ppb
        for i in range(4 * ppb):
            ftl.write(((i * 3) % (5 * ppb)) * spp, spp, 0.0)
        assert svc.counters.erases > 0

    def test_sequential_whole_block_roundtrip(self, ftl_pair):
        svc, ftl = ftl_pair
        spp, ppb = ftl.spp, ftl.ppb
        for off in range(ppb):
            ftl.write(off * spp, spp, 0.0, stamps_for(off * spp, spp, off))
        # force merges by overflowing the pool with other blocks
        for lbn in range(1, 8):
            ftl.write(lbn * ppb * spp, spp, 0.0,
                      stamps_for(lbn * ppb * spp, spp, 100 + lbn))
        for off in range(ppb):
            _, found = ftl.read(off * spp, spp, 0.0)
            assert all(x == off for x in found.values()), off
        ftl.check_invariants()


class TestOracleWorkload:
    def test_random_workload_correct(self, tiny_cfg):
        svc, ftl = build_ftl("fast", tiny_cfg, log_blocks=6)
        rng = np.random.default_rng(9)
        spp = ftl.spp
        max_page = 150
        versions = {}
        v = 0
        for _ in range(500):
            kind = rng.integers(3)
            if kind == 0:
                b = int(rng.integers(1, max_page)) * spp
                off = b - int(rng.integers(1, 4))
                size = (b - off) + int(rng.integers(1, 4))
            elif kind == 1:
                p = int(rng.integers(max_page))
                size = int(rng.integers(1, spp))
                off = p * spp + int(rng.integers(0, spp - size + 1))
            else:
                p = int(rng.integers(max_page - 3))
                off, size = p * spp, int(rng.integers(1, 2 * spp))
            v += 1
            st = stamps_for(off, size, v)
            versions.update(st)
            ftl.write(off, size, 0.0, st)
        for sec, expect in list(versions.items())[::5]:
            _, found = ftl.read(sec, 1, 0.0)
            assert found.get(sec) == expect, sec
        ftl.check_invariants()
        svc.array.check_invariants()

    def test_trim(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(0, 16, 0.0, stamps_for(0, 16, 1))
        ftl.trim(0, 16, 1.0)
        _, found = ftl.read(0, 16, 2.0)
        assert found == {}

    def test_rebuild_unsupported(self, ftl_pair):
        svc, ftl = ftl_pair
        with pytest.raises(MappingError):
            ftl.rebuild_from_flash()


class TestVsBAST:
    def test_fast_beats_bast_on_scattered_updates(self, tiny_cfg):
        """FAST's raison d'etre: scattered single-page updates thrash
        BAST's per-block logs but share FAST's pool."""

        def run(scheme):
            svc, ftl = build_ftl(scheme, tiny_cfg, log_blocks=4)
            spp, ppb = ftl.spp, ftl.ppb
            for i in range(2 * ppb):
                lbn = i % 12
                ftl.write((lbn * ppb) * spp, spp, 0.0)
            return svc.counters.erases, svc.counters.total_writes

        bast_erases, bast_writes = run("bast")
        fast_erases, fast_writes = run("fast")
        assert fast_erases <= bast_erases
        assert fast_writes <= bast_writes
