"""Numeric consistency of figure functions against the raw reports."""

import pytest

from repro.config import SCHEMES, SimConfig, SSDConfig
from repro.experiments import figures as F
from repro.experiments.runner import ExperimentContext


@pytest.fixture(scope="module")
def ctx():
    cfg = SSDConfig(
        channels=2,
        chips_per_channel=2,
        dies_per_chip=1,
        planes_per_die=2,
        blocks_per_plane=32,
        pages_per_block=16,
        page_size_bytes=8 * 1024,
        write_buffer_bytes=512 * 1024,
    )
    return ExperimentContext(
        cfg=cfg,
        sim_cfg=SimConfig(aged_used=0.5, aged_valid=0.3),
        scale=0.002,
    )


def test_fig9_matches_raw_reports(ctx):
    rows = F.fig9(ctx).series["io"]
    for name in ctx.lun_names():
        base = ctx.run(name, "ftl").total_io_ms
        for s in SCHEMES:
            expect = ctx.run(name, s).total_io_ms / base
            assert rows[name][s] == pytest.approx(expect)


def test_fig11_matches_raw_reports(ctx):
    rows = F.fig11(ctx).series
    for name in ctx.lun_names():
        base = ctx.run(name, "ftl").erase_count
        for s in SCHEMES:
            got = rows[name][s]
            if base:
                assert got == pytest.approx(
                    ctx.run(name, s).erase_count / base
                )


def test_fig10_split_sums(ctx):
    """Map + Data + GC shares of any report cover all flash writes."""
    for name in ctx.lun_names():
        for s in SCHEMES:
            c = ctx.run(name, s).counters
            assert (
                c.data_writes + c.map_writes + c.gc_writes == c.total_writes
            ), (name, s)
            assert (
                c.data_reads + c.map_reads + c.gc_reads == c.total_reads
            ), (name, s)


def test_fig8_classes_partition_across_writes(ctx):
    for name in ctx.lun_names():
        e = ctx.run(name, "across").extra
        total = (
            e["across_direct_writes"]
            + e["across_profitable_amerge"]
            + e["across_unprofitable_amerge"]
        )
        assert total >= e["across_direct_writes"] > 0
        # rollback ratio uses measured-run area creations
        assert 0 <= e["across_rollback_ratio"] <= 1.0


def test_fig13_equals_stats_module(ctx):
    from repro.traces.stats import across_page_ratio

    rows = F.fig13(ctx).series
    for name in ctx.lun_names():
        trace = ctx.lun_trace(name)
        expect = [
            across_page_ratio(trace, p) for p in (4096, 8192, 16384)
        ]
        assert rows[name] == pytest.approx(expect)


def test_paper_vs_measured_fields_populated(ctx):
    for fig_fn in (F.fig8, F.fig9, F.fig11, F.fig12):
        result = fig_fn(ctx)
        assert result.paper_vs_measured, result.figure
        for quantity, pair in result.paper_vs_measured.items():
            assert len(pair) == 2, (result.figure, quantity)
