"""Hot/cold write-stream separation in the allocator."""


from repro.flash.service import FlashService
from repro.ftl.allocator import STREAM_GC, STREAM_USER, WriteAllocator
from repro.ftl.pagemap import PageMapFTL


class TestAllocatorStreams:
    def test_shared_by_default(self, tiny_cfg):
        svc = FlashService(tiny_cfg)
        alloc = WriteAllocator(svc)
        a = alloc.allocate_in_plane(0, STREAM_USER)
        svc.array.program(a, None)
        b = alloc.allocate_in_plane(0, STREAM_GC)
        # same active block: GC stream aliases the user stream
        assert svc.geom.block_of_ppn(a) == svc.geom.block_of_ppn(b)

    def test_separated_streams_use_distinct_blocks(self, tiny_cfg):
        svc = FlashService(tiny_cfg)
        alloc = WriteAllocator(svc, separate_streams=True)
        a = alloc.allocate_in_plane(0, STREAM_USER)
        svc.array.program(a, None)
        b = alloc.allocate_in_plane(0, STREAM_GC)
        svc.array.program(b, None)
        assert svc.geom.block_of_ppn(a) != svc.geom.block_of_ppn(b)

    def test_both_streams_excluded_from_gc(self, tiny_cfg):
        svc = FlashService(tiny_cfg)
        alloc = WriteAllocator(svc, separate_streams=True)
        a = alloc.allocate_in_plane(0, STREAM_USER)
        svc.array.program(a, None)
        b = alloc.allocate_in_plane(0, STREAM_GC)
        svc.array.program(b, None)
        blocks = alloc.active_blocks()
        assert svc.geom.block_of_ppn(a) in blocks
        assert svc.geom.block_of_ppn(b) in blocks
        assert alloc.is_active(svc.geom.block_of_ppn(b))


class TestEndToEnd:
    def test_separation_survives_gc_pressure(self, micro_cfg):
        cfg = micro_cfg.replace(hot_cold_separation=True)
        svc = FlashService(cfg)
        ftl = PageMapFTL(svc, track_payload=True)
        spp = ftl.spp
        hot = max(4, ftl.logical_pages // 8)
        version = {}
        for i in range(3 * svc.geom.num_pages):
            lpn = i % hot
            version[lpn] = i
            ftl.write(lpn * spp, spp, 0.0,
                      {s: i for s in range(lpn * spp, (lpn + 1) * spp)})
        assert svc.counters.erases > 0
        ftl.check_invariants()
        svc.array.check_invariants()
        for lpn, v in version.items():
            _, found = ftl.read(lpn * spp, spp, 0.0)
            assert all(found[s] == v for s in range(lpn * spp, (lpn + 1) * spp))

    def test_separation_reduces_migration_on_hot_cold_mix(self, micro_cfg):
        """With a static cold region and a hot overwrite region, stream
        separation must not migrate more than the shared allocator."""

        def run(separated: bool) -> int:
            cfg = micro_cfg.replace(hot_cold_separation=separated)
            svc = FlashService(cfg)
            ftl = PageMapFTL(svc)
            spp = ftl.spp
            n = ftl.logical_pages
            cold = n // 2
            for lpn in range(cold):  # cold data written once
                ftl.write(lpn * spp, spp, 0.0)
            hot = max(2, n // 16)
            for i in range(3 * svc.geom.num_pages):
                ftl.write((cold + i % hot) * spp, spp, 0.0)
            return ftl.gc.migrated_pages

        assert run(True) <= run(False) * 1.05
