"""Baseline page-mapping FTL: RMW, invalidation, masks, reads."""

import pytest

from conftest import build_ftl


@pytest.fixture
def ftl_pair(tiny_cfg):
    return build_ftl("ftl", tiny_cfg)


def stamps_for(offset, size, v):
    return {s: v for s in range(offset, offset + size)}


class TestBasicWrite:
    def test_full_page_write_one_program(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(0, 16, 0.0, stamps_for(0, 16, 1))
        assert svc.counters.data_writes == 1
        assert svc.counters.data_reads == 0

    def test_across_page_write_two_programs(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(8, 16, 0.0, stamps_for(8, 16, 1))
        assert svc.counters.data_writes == 2  # the across-page penalty

    def test_multi_page_write(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(0, 48, 0.0, stamps_for(0, 48, 1))
        assert svc.counters.data_writes == 3

    def test_sub_page_write_no_read_when_fresh(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(4, 4, 0.0, stamps_for(4, 4, 1))
        assert svc.counters.data_writes == 1
        assert svc.counters.data_reads == 0
        assert svc.counters.update_reads == 0


class TestRMW:
    def test_partial_update_reads_old_page(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(0, 16, 0.0, stamps_for(0, 16, 1))
        ftl.write(4, 4, 0.0, stamps_for(4, 4, 2))
        assert svc.counters.update_reads == 1
        assert svc.counters.data_reads == 1

    def test_full_overwrite_skips_read(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(0, 16, 0.0, stamps_for(0, 16, 1))
        ftl.write(0, 16, 0.0, stamps_for(0, 16, 2))
        assert svc.counters.update_reads == 0

    def test_rmw_preserves_other_sectors(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(0, 16, 0.0, stamps_for(0, 16, 1))
        ftl.write(4, 4, 0.0, stamps_for(4, 4, 2))
        _, found = ftl.read(0, 16, 0.0)
        assert found[0] == 1 and found[3] == 1
        assert found[4] == 2 and found[7] == 2
        assert found[8] == 1 and found[15] == 1

    def test_old_page_invalidated(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(0, 16, 0.0, stamps_for(0, 16, 1))
        old_ppn = int(ftl.pmt[0])
        ftl.write(0, 16, 0.0, stamps_for(0, 16, 2))
        assert not svc.array.is_valid(old_ppn)
        assert int(ftl.pmt[0]) != old_ppn

    def test_rmw_disabled_ablation(self, tiny_cfg):
        svc, ftl = build_ftl("ftl", tiny_cfg, rmw_enabled=False)
        ftl.write(0, 16, 0.0, stamps_for(0, 16, 1))
        ftl.write(4, 4, 0.0, stamps_for(4, 4, 2))
        assert svc.counters.update_reads == 0


class TestRead:
    def test_read_unwritten_no_flash_op(self, ftl_pair):
        svc, ftl = ftl_pair
        t, found = ftl.read(0, 16, 3.0)
        assert t == 3.0
        assert found == {}
        assert svc.counters.data_reads == 0

    def test_read_one_page(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(0, 16, 0.0, stamps_for(0, 16, 1))
        svc.counters.reads[list(svc.counters.reads)[0]]  # no-op touch
        _, found = ftl.read(2, 6, 0.0)
        assert len(found) == 6
        assert svc.counters.data_reads == 1

    def test_across_read_two_pages(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(0, 32, 0.0, stamps_for(0, 32, 1))
        before = svc.counters.data_reads
        ftl.read(8, 16, 0.0)
        assert svc.counters.data_reads - before == 2  # across-page read cost

    def test_read_partial_written(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(0, 4, 0.0, stamps_for(0, 4, 1))
        _, found = ftl.read(0, 16, 0.0)
        assert set(found) == {0, 1, 2, 3}


class TestMappingTable:
    def test_table_bytes_demand_allocated(self, ftl_pair):
        svc, ftl = ftl_pair
        assert ftl.mapping_table_bytes() == 0
        ftl.write(0, 16, 0.0)
        assert ftl.mapping_table_bytes() == 8
        ftl.write(8, 16, 0.0)  # touches lpn 0 and 1
        assert ftl.mapping_table_bytes() == 16

    def test_stats_keys(self, ftl_pair):
        _, ftl = ftl_pair
        s = ftl.stats()
        assert "gc_collections" in s and "pmt_cache_hits" in s

    def test_invariants_after_workload(self, ftl_pair):
        svc, ftl = ftl_pair
        for i in range(50):
            ftl.write((i * 7) % 200, 5 + (i % 20), 0.0)
        ftl.check_invariants()
        svc.array.check_invariants()

    def test_dram_accesses_counted(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(0, 16, 0.0)
        assert svc.counters.dram_accesses == 1
        ftl.read(0, 16, 0.0)
        assert svc.counters.dram_accesses == 2


class TestLatencies:
    def test_write_latency_is_program(self, ftl_pair):
        svc, ftl = ftl_pair
        t = ftl.write(0, 16, 10.0)
        assert t == pytest.approx(12.0)

    def test_rmw_serializes_read_then_program(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(0, 16, 0.0)
        t = ftl.write(4, 4, 100.0)
        assert t == pytest.approx(100.075 + 2.0)

    def test_read_latency(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(0, 16, 0.0)
        t, _ = ftl.read(0, 8, 50.0)
        assert t == pytest.approx(50.075)
