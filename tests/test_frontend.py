"""Event-driven frontend: hazard ordering, NCQ slots, per-chip
schedulers, and the arrival-semantics data contract."""

import numpy as np
import pytest

from repro.check import differential_replay
from repro.config import FrontendConfig, SCHEMES, SimConfig, SSDConfig
from repro.errors import ConfigError
from repro.flash.service import FlashService
from repro.ftl import make_ftl
from repro.sim.engine import Simulator
from repro.sim.events import EV_ARRIVE, EV_COMPLETE, EV_ISSUE, EventHeap
from repro.sim.frontend import FrontendScheduler, Request
from repro.sim.nand_sched import NandScheduler
from repro.traces.model import OP_READ, OP_TRIM, OP_WRITE, Trace
from repro.traces.synthetic import SyntheticSpec, generate_trace
from repro.units import MIB


# ----------------------------------------------------------------------
# config block
# ----------------------------------------------------------------------
class TestFrontendConfig:
    def test_disabled_by_default(self):
        cfg = SimConfig()
        assert not cfg.frontend.enabled
        cfg.validate()

    def test_validation(self):
        with pytest.raises(ConfigError):
            FrontendConfig(window=0).validate()
        with pytest.raises(ConfigError):
            FrontendConfig(per_chip_depth=0).validate()

    def test_replace_frontend(self):
        cfg = SimConfig().replace_frontend(enabled=True, window=8)
        assert cfg.frontend.enabled and cfg.frontend.window == 8
        assert not SimConfig().frontend.enabled


# ----------------------------------------------------------------------
# event heap ordering
# ----------------------------------------------------------------------
class TestEventHeap:
    def test_time_ordering(self):
        h = EventHeap()
        h.push(2.0, EV_ARRIVE, "b")
        h.push(1.0, EV_ARRIVE, "a")
        assert h.peek_time() == 1.0
        assert h.pop() == (1.0, EV_ARRIVE, "a")
        assert h.pop() == (2.0, EV_ARRIVE, "b")
        assert not h

    def test_kind_priority_at_equal_time(self):
        # completions before arrivals before issues at the same instant
        h = EventHeap()
        h.push(5.0, EV_ISSUE, "i")
        h.push(5.0, EV_ARRIVE, "a")
        h.push(5.0, EV_COMPLETE, "c")
        assert [h.pop()[2] for _ in range(3)] == ["c", "a", "i"]

    def test_push_order_breaks_remaining_ties(self):
        h = EventHeap()
        for name in ("x", "y", "z"):
            h.push(1.0, EV_ARRIVE, name)
        assert [h.pop()[2] for _ in range(3)] == ["x", "y", "z"]


# ----------------------------------------------------------------------
# scheduler unit tests
# ----------------------------------------------------------------------
def make_scheduler(issued, *, queue_depth=None, window=64, cache_hit=False,
                   num_chips=4, per_chip_depth=8):
    """A FrontendScheduler whose issue path just records rids."""
    sink = lambda req, now: issued.append(req.rid)  # noqa: E731
    nand = NandScheduler(
        num_chips, per_chip_depth=per_chip_depth, issue=sink
    )
    return FrontendScheduler(
        queue_depth=queue_depth,
        window=window,
        nand=nand,
        predict_chip=lambda req: 0,
        probe_cache=lambda req, now: cache_hit,
        issue=sink,
    )


def req(rid, op, offset, size, arrival=0.0):
    return Request(rid, op, offset, size, arrival, False)


class TestHazardOrdering:
    def test_waw_blocks_overlapping_write(self):
        issued = []
        fe = make_scheduler(issued)
        w0 = req(0, OP_WRITE, 0, 16)
        w1 = req(1, OP_WRITE, 8, 16)  # overlaps [8, 16)
        fe.add(w0)
        fe.add(w1)
        fe.dispatch(0.0)
        assert issued == [0]
        assert fe.hazard_stalls == 1
        fe.on_complete(w0, 1.0)
        fe.dispatch(1.0)
        assert issued == [0, 1]

    def test_raw_blocks_read_behind_write(self):
        issued = []
        fe = make_scheduler(issued)
        w0 = req(0, OP_WRITE, 100, 8)
        r1 = req(1, OP_READ, 104, 8)
        fe.add(w0)
        fe.add(r1)
        fe.dispatch(0.0)
        assert issued == [0]
        fe.on_complete(w0, 1.0)
        fe.dispatch(1.0)
        assert issued == [0, 1]

    def test_war_blocks_write_behind_read(self):
        issued = []
        fe = make_scheduler(issued)
        r0 = req(0, OP_READ, 100, 8)
        w1 = req(1, OP_WRITE, 100, 8)
        fe.add(r0)
        fe.add(w1)
        fe.dispatch(0.0)
        assert issued == [0]
        fe.on_complete(r0, 1.0)
        fe.dispatch(1.0)
        assert issued == [0, 1]

    def test_trim_counts_as_write_both_ways(self):
        issued = []
        fe = make_scheduler(issued)
        t0 = req(0, OP_TRIM, 0, 32)
        r1 = req(1, OP_READ, 16, 4)   # RAW vs the trim
        t2 = req(2, OP_TRIM, 16, 4)   # WAR vs the read (transitively)
        for r in (t0, r1, t2):
            fe.add(r)
        fe.dispatch(0.0)
        assert issued == [0]
        fe.on_complete(t0, 1.0)
        fe.dispatch(1.0)
        assert issued == [0, 1]
        fe.on_complete(r1, 2.0)
        fe.dispatch(2.0)
        assert issued == [0, 1, 2]

    def test_reads_never_conflict(self):
        issued = []
        fe = make_scheduler(issued)
        fe.add(req(0, OP_READ, 0, 16))
        fe.add(req(1, OP_READ, 0, 16))
        fe.dispatch(0.0)
        assert issued == [0, 1]
        assert fe.hazard_stalls == 0

    def test_nonconflicting_request_overtakes_stalled_one(self):
        issued = []
        fe = make_scheduler(issued)
        w0 = req(0, OP_WRITE, 0, 16)
        w1 = req(1, OP_WRITE, 0, 16)    # WAW-stalled behind w0
        w2 = req(2, OP_WRITE, 1000, 16)  # independent extent
        for r in (w0, w1, w2):
            fe.add(r)
        fe.dispatch(0.0)
        assert issued == [0, 2]

    def test_transitive_order_through_held_requests(self):
        # w1 stalls behind w0; w2 overlaps w1 (but not w0) and must
        # not overtake it — arrival order within a conflict chain
        issued = []
        fe = make_scheduler(issued)
        w0 = req(0, OP_WRITE, 0, 16)
        w1 = req(1, OP_WRITE, 8, 16)
        w2 = req(2, OP_WRITE, 20, 8)  # overlaps w1's [8, 24) only
        for r in (w0, w1, w2):
            fe.add(r)
        fe.dispatch(0.0)
        assert issued == [0]
        fe.on_complete(w0, 1.0)
        fe.dispatch(1.0)
        assert issued == [0, 1]

    def test_window_bounds_the_scan(self):
        issued = []
        fe = make_scheduler(issued, window=2)
        fe.add(req(0, OP_WRITE, 0, 8))
        fe.add(req(1, OP_WRITE, 0, 8))    # stalled, scanned
        fe.add(req(2, OP_WRITE, 100, 8))  # beyond the window
        fe.dispatch(0.0)
        assert issued == [0]


class TestNCQSlots:
    def test_queue_depth_caps_nand_bound_requests(self):
        issued = []
        fe = make_scheduler(issued, queue_depth=2)
        for i in range(4):
            fe.add(req(i, OP_WRITE, 100 * i, 8))
        fe.dispatch(0.0)
        assert issued == [0, 1]
        assert fe.slots_used == 2

    def test_trim_bypasses_the_nand_queue(self):
        issued = []
        fe = make_scheduler(issued, queue_depth=1)
        w0 = req(0, OP_WRITE, 0, 8)
        t1 = req(1, OP_TRIM, 1000, 8)
        fe.add(w0)
        fe.add(t1)
        fe.dispatch(0.0)
        # the trim issues despite the single NCQ slot being held
        assert issued == [0, 1]
        assert fe.slots_used == 1
        assert not t1.holds_slot

    def test_cache_hit_read_bypasses_the_nand_queue(self):
        issued = []
        fe = make_scheduler(issued, queue_depth=1, cache_hit=True)
        fe.add(req(0, OP_WRITE, 0, 8))
        fe.add(req(1, OP_READ, 1000, 8))
        fe.dispatch(0.0)
        assert issued == [0, 1]
        assert fe.cache_bypass == 1

    def test_slot_frees_on_completion(self):
        issued = []
        fe = make_scheduler(issued, queue_depth=1)
        w0 = req(0, OP_WRITE, 0, 8)
        w1 = req(1, OP_WRITE, 100, 8)
        fe.add(w0)
        fe.add(w1)
        fe.dispatch(0.0)
        assert issued == [0]
        fe.on_complete(w0, 1.0)
        fe.dispatch(1.0)
        assert issued == [0, 1]
        assert fe.slots_used == 1


class TestNandScheduler:
    def test_per_chip_depth_queues_excess(self):
        issued = []
        nand = NandScheduler(2, per_chip_depth=1,
                             issue=lambda r, t: issued.append(r.rid))
        a, b, c = (req(i, OP_WRITE, 0, 8) for i in range(3))
        a.chip = b.chip = 0
        c.chip = 1
        nand.submit(a, 0.0)
        nand.submit(b, 0.0)  # chip 0 busy -> queued
        nand.submit(c, 0.0)  # chip 1 idle -> issues
        assert issued == [0, 2]
        assert nand.queued() == 1
        nand.on_complete(a, 1.0)
        assert issued == [0, 2, 1]

    def test_read_priority_pulls_read_ahead(self):
        issued = []
        nand = NandScheduler(1, per_chip_depth=1, read_priority=True,
                             issue=lambda r, t: issued.append(r.rid))
        w0, w1 = req(0, OP_WRITE, 0, 8), req(1, OP_WRITE, 16, 8)
        r2 = req(2, OP_READ, 32, 8)
        for r in (w0, w1, r2):
            r.chip = 0
            nand.submit(r, 0.0)
        assert issued == [0]
        nand.on_complete(w0, 1.0)
        # the queued read overtakes the older queued write
        assert issued == [0, 2]
        assert nand.reordered == 1

    def test_fifo_without_read_priority(self):
        issued = []
        nand = NandScheduler(1, per_chip_depth=1, read_priority=False,
                             issue=lambda r, t: issued.append(r.rid))
        w0, w1 = req(0, OP_WRITE, 0, 8), req(1, OP_WRITE, 16, 8)
        r2 = req(2, OP_READ, 32, 8)
        for r in (w0, w1, r2):
            r.chip = 0
            nand.submit(r, 0.0)
        nand.on_complete(w0, 1.0)
        assert issued == [0, 1]
        assert nand.reordered == 0


# ----------------------------------------------------------------------
# end-to-end: engine with the frontend on
# ----------------------------------------------------------------------
def fe_sim_cfg(**kw):
    base = dict(check_oracle=True, frontend=FrontendConfig(enabled=True))
    base.update(kw)
    return SimConfig(**base)


def mixed_trace(n=300, seed=11, footprint=4000):
    rng = np.random.default_rng(seed)
    ops = rng.choice(
        [OP_WRITE, OP_READ, OP_TRIM], size=n, p=[0.5, 0.45, 0.05]
    ).astype(np.uint8)
    offsets = rng.integers(0, footprint, n).astype(np.int64)
    sizes = rng.integers(1, 32, n).astype(np.int64)
    times = np.sort(rng.uniform(0, 50, n))
    return Trace("mixed", times, ops, offsets, sizes)


class TestFrontendEngine:
    def run(self, sim_cfg, trace=None, scheme="across"):
        svc = FlashService(SSDConfig.tiny())
        sim = Simulator(make_ftl(scheme, svc), sim_cfg)
        report = sim.run(trace if trace is not None else mixed_trace())
        return sim, report

    def test_oracle_verifies_every_read(self):
        sim, report = self.run(fe_sim_cfg(queue_depth=8))
        assert report.extra["oracle_reads_verified"] > 0
        assert "frontend_hazard_stalls" in report.extra

    def test_all_requests_accounted(self):
        trace = mixed_trace()
        _, report = self.run(fe_sim_cfg(), trace)
        n_trims = int((trace.ops == OP_TRIM).sum())
        assert report.extra["trim_count"] == n_trims
        counted = sum(
            s.count for s in report.latency.summaries().values()
        )
        assert counted == len(trace) - n_trims

    def test_digest_matches_sequential_replay(self):
        checked = fe_sim_cfg(queue_depth=16).replace_check(
            enabled=True, every=100
        )
        _, fe_report = self.run(checked)
        seq = checked.replace_frontend(enabled=False)
        _, seq_report = self.run(seq)
        assert (
            fe_report.extra["check_read_digest"]
            == seq_report.extra["check_read_digest"]
        )

    def test_deterministic_across_runs(self):
        from repro.experiments.benchgate import report_digest

        cfg = fe_sim_cfg(queue_depth=8)
        _, a = self.run(cfg)
        _, b = self.run(cfg)
        assert report_digest(a) == report_digest(b)

    def test_trim_completes_at_dram_speed_under_full_queue(self):
        # a slow big write holds the single NCQ slot; the trim neither
        # waits for the slot nor holds one
        ssd = SSDConfig.tiny()
        trace = Trace(
            "trimq",
            np.zeros(3),
            np.array([OP_WRITE, OP_TRIM, OP_WRITE], dtype=np.uint8),
            np.array([0, 5000 * 16, 6000 * 16], dtype=np.int64),
            np.array([512, 16, 16], dtype=np.int64),
        )
        svc = FlashService(ssd)
        sim = Simulator(
            make_ftl("ftl", svc),
            fe_sim_cfg(queue_depth=1, record_requests=True),
        )
        sim.run(trace)
        log = sim.request_log
        # rows land in completion order under the frontend; select by op
        trim_lat = log.latency[log.op == OP_TRIM]
        write_lat = np.sort(log.latency[log.op == OP_WRITE])
        assert trim_lat[0] == pytest.approx(ssd.timing.cache_access_ms)
        # the second write did wait for the big write's NCQ slot
        assert write_lat[0] > trim_lat[0]

    def test_hazard_stall_events_emitted(self):
        from repro.config import ObservabilityConfig
        from repro.obs.events import HazardStall

        svc = FlashService(SSDConfig.tiny())
        sim = Simulator(
            make_ftl("ftl", svc),
            fe_sim_cfg(
                observability=ObservabilityConfig(enabled=True),
            ),
        )
        stalls = []
        sim._bus.subscribe(HazardStall, stalls.append)
        trace = Trace(
            "waw",
            np.zeros(2),
            np.full(2, OP_WRITE, dtype=np.uint8),
            np.array([0, 8], dtype=np.int64),
            np.array([16, 16], dtype=np.int64),
        )
        sim.run(trace)
        assert len(stalls) == 1
        assert stalls[0].kind == "waw"
        assert (stalls[0].rid, stalls[0].blocker) == (1, 0)

    def test_hazard_invariant_checked_under_fuzzlike_load(self):
        checked = fe_sim_cfg(queue_depth=4).replace_check(
            enabled=True, every=64
        )
        _, report = self.run(checked, mixed_trace(400, seed=5))
        assert report.extra["check_sweeps"] > 0


class TestFrontendDifferential:
    @pytest.fixture(scope="class")
    def small_trace(self):
        cfg = SSDConfig.tiny()
        spec = SyntheticSpec(
            "fe-diff",
            250,
            0.6,
            0.25,
            9.0,
            footprint_sectors=int(cfg.logical_sectors * 0.6),
            seed=23,
        )
        return generate_trace(spec)

    def test_digests_agree_across_queue_depths(self, small_trace):
        cfg = SSDConfig.tiny().replace(write_buffer_bytes=2 * MIB)
        res = differential_replay(
            small_trace,
            cfg,
            SimConfig(),
            schemes=("across",),
            every=100,
            compare_cache=False,
            compare_jobs=False,
            frontend=True,
            qd_sweep=(1, 8, 32),
        )
        assert res.ok, res.summary()

    def test_frontend_divergence_detected(self, small_trace, monkeypatch):
        import repro.check.differential as diff
        from repro.experiments.runner import run_trace

        def skewed(scheme, trace, cfg, sim_cfg=None, **kw):
            report = run_trace(scheme, trace, cfg, sim_cfg, **kw)
            if sim_cfg is not None and sim_cfg.frontend.enabled:
                report.extra["check_read_digest"] = "deadbeef" * 8
            return report

        monkeypatch.setattr(
            "repro.experiments.runner.run_trace", skewed
        )
        cfg = SSDConfig.tiny().replace(write_buffer_bytes=2 * MIB)
        res = diff.differential_replay(
            small_trace,
            cfg,
            SimConfig(),
            schemes=("ftl",),
            every=100,
            compare_cache=False,
            compare_jobs=False,
            frontend=True,
        )
        assert not res.ok
        assert any(f.kind == "frontend-divergence" for f in res.failures)


class TestFrontendJobsDeterminism:
    def test_jobs_1_vs_4_bit_identical(self):
        from repro.experiments.benchgate import report_digest
        from repro.experiments.parallel import RunSpec, execute_runs
        from repro.experiments.runner import run_trace

        cfg = SSDConfig.tiny().replace(write_buffer_bytes=2 * MIB)
        trace = mixed_trace(200, seed=3)
        sim_cfg = fe_sim_cfg(queue_depth=8)
        specs = [RunSpec.make(s, trace, cfg, sim_cfg) for s in SCHEMES]
        pooled = execute_runs(specs, jobs=4)
        for scheme, pooled_report in zip(SCHEMES, pooled.reports):
            serial = run_trace(scheme, trace, cfg, sim_cfg)
            assert report_digest(serial) == report_digest(pooled_report)
