"""Exception hierarchy and doctest execution."""

import doctest

import pytest

import repro.units
from repro.errors import (
    ConfigError,
    FlashProtocolError,
    GeometryError,
    MappingError,
    OutOfSpaceError,
    ReproError,
    SimulationError,
    TraceFormatError,
)
from repro.sim.oracle import OracleMismatch


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigError,
            GeometryError,
            FlashProtocolError,
            OutOfSpaceError,
            MappingError,
            TraceFormatError,
            SimulationError,
            OracleMismatch,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_catching_base_does_not_hide_programming_errors(self):
        with pytest.raises(TypeError):
            try:
                raise TypeError("not ours")
            except ReproError:  # pragma: no cover - must not trigger
                pytest.fail("ReproError must not catch TypeError")


def test_units_doctests():
    results = doctest.testmod(repro.units)
    assert results.failed == 0
    assert results.attempted >= 4  # the examples actually ran
