"""DRAM data cache (repro.cache.buffer)."""

import pytest

from repro.cache.buffer import DataCache


@pytest.fixture
def cache():
    return DataCache(capacity_pages=4, spp=16)


def stamps_for(offset, size, v):
    return {s: v for s in range(offset, offset + size)}


class TestPutAndHit:
    def test_full_hit_after_put(self, cache):
        cache.put(0, 16, stamps_for(0, 16, 1))
        assert cache.full_hit(0, 16)
        assert cache.full_hit(4, 8)

    def test_miss_when_uncached(self, cache):
        assert not cache.full_hit(0, 4)

    def test_partial_coverage_is_miss(self, cache):
        cache.put(0, 8, stamps_for(0, 8, 1))
        assert not cache.full_hit(0, 16)
        assert cache.full_hit(0, 8)

    def test_across_page_extent(self, cache):
        cache.put(8, 16, stamps_for(8, 16, 1))
        assert cache.full_hit(8, 16)
        assert cache.full_hit(12, 8)
        assert not cache.full_hit(0, 8)

    def test_stamps_returned(self, cache):
        cache.put(0, 16, stamps_for(0, 16, 7))
        got = cache.get_stamps(4, 4)
        assert got == {4: 7, 5: 7, 6: 7, 7: 7}

    def test_newer_write_overwrites_stamps(self, cache):
        cache.put(0, 16, stamps_for(0, 16, 1))
        cache.put(4, 4, stamps_for(4, 4, 2))
        got = cache.get_stamps(0, 16)
        assert got[4] == 2 and got[0] == 1

    def test_none_stamps_supported(self, cache):
        cache.put(0, 16, None)
        assert cache.full_hit(0, 16)
        assert cache.get_stamps(0, 16) == {}


class TestEviction:
    def test_lru_eviction(self, cache):
        for lpn in range(5):  # capacity 4
            cache.put(lpn * 16, 16, None)
        assert not cache.full_hit(0, 16)   # LPN 0 evicted
        assert cache.full_hit(4 * 16, 16)

    def test_touch_refreshes_lru(self, cache):
        for lpn in range(4):
            cache.put(lpn * 16, 16, None)
        cache.get_stamps(0, 16)      # touch LPN 0
        cache.put(4 * 16, 16, None)  # evicts LPN 1, not 0
        assert cache.full_hit(0, 16)
        assert not cache.full_hit(16, 16)

    def test_read_hit_refreshes_lru(self, cache):
        """A full_hit read served from DRAM must keep its pages hot even
        when the oracle is off (get_stamps never runs then); previously
        hot read-only pages were evicted as if cold."""
        for lpn in range(4):
            cache.put(lpn * 16, 16, None)
        assert cache.full_hit(0, 16)     # DRAM read hit, no get_stamps
        cache.put(4 * 16, 16, None)      # evicts LPN 1, not the hot LPN 0
        assert cache.full_hit(0, 16)
        assert not cache.full_hit(16, 16)

    def test_repeated_read_only_reuse_survives_streaming(self, cache):
        """Read-only reuse: a page that is read on every step must
        survive a stream of one-shot fills overflowing the cache."""
        cache.put(0, 16, None)
        for lpn in range(1, 12):
            assert cache.full_hit(0, 16)          # hot read-only page
            cache.put(lpn * 16, 16, None)         # streaming fill
        assert cache.full_hit(0, 16)

    def test_eviction_counted(self, cache):
        for lpn in range(6):
            cache.put(lpn * 16, 16, None)
        assert cache.evictions == 2
        assert len(cache) == 4


class TestPutFound:
    """Read-allocation caches only sectors the flash read returned.

    Regression: ``put_found`` marked the *whole requested extent*
    cached, inventing DRAM copies of unwritten/trimmed sectors — a
    later read of such an extent then "hit" and skipped flash.
    """

    def test_unreturned_sectors_stay_uncached(self, cache):
        # the read asked for [0, 16) but flash only held [0, 8)
        cache.put_found(0, 16, stamps_for(0, 8, 1))
        assert not cache.full_hit(0, 16)
        assert cache.full_hit(0, 8)

    def test_empty_result_caches_nothing(self, cache):
        cache.put_found(0, 16, {})
        assert len(cache) == 0
        assert not cache.full_hit(0, 16)

    def test_none_falls_back_to_full_extent(self, cache):
        # payload tracking off: the service path reports nothing about
        # per-sector validity, so the legacy allocation is kept
        cache.put_found(0, 16, None)
        assert cache.full_hit(0, 16)

    def test_sparse_result_caches_each_run(self, cache):
        found = {**stamps_for(2, 3, 1), **stamps_for(10, 4, 2)}
        cache.put_found(0, 16, found)
        assert cache.full_hit(2, 3)
        assert cache.full_hit(10, 4)
        assert not cache.full_hit(5, 5)   # the gap stays uncached
        assert cache.get_stamps(2, 3) == stamps_for(2, 3, 1)

    def test_out_of_extent_sectors_ignored(self, cache):
        found = stamps_for(0, 32, 1)  # wider than the request
        cache.put_found(8, 8, found)
        assert cache.full_hit(8, 8)
        assert not cache.full_hit(0, 8)
        assert not cache.full_hit(16, 8)


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        DataCache(0, 16)
