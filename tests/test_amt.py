"""Across-page mapping table bookkeeping (repro.core.amt)."""

import pytest

from repro.core.amt import AcrossMappingTable
from repro.errors import MappingError


@pytest.fixture
def amt():
    return AcrossMappingTable()


class TestCreate:
    def test_create_returns_entry(self, amt):
        e = amt.create(10, 168, 12, 500)
        assert e.lpn0 == 10 and e.start == 168 and e.size == 12
        assert e.appn == 500
        assert e.end == 180
        assert e.lpns == (10, 11)

    def test_indices_dense(self, amt):
        a = amt.create(0, 8, 4, 1)
        b = amt.create(2, 40, 4, 2)
        assert {a.aidx, b.aidx} == {0, 1}

    def test_total_created_counts(self, amt):
        amt.create(0, 8, 4, 1)
        amt.create(2, 40, 4, 2)
        amt.release(0)
        amt.create(4, 72, 4, 3)
        assert amt.total_created == 3

    def test_peak_live(self, amt):
        amt.create(0, 8, 4, 1)
        amt.create(2, 40, 4, 2)
        amt.release(0)
        assert amt.peak_live == 2


class TestRelease:
    def test_release_then_reuse_index(self, amt):
        a = amt.create(0, 8, 4, 1)
        amt.release(a.aidx)
        b = amt.create(2, 40, 4, 2)
        assert b.aidx == a.aidx  # recycled
        assert amt.index_space == 1

    def test_double_release_rejected(self, amt):
        a = amt.create(0, 8, 4, 1)
        amt.release(a.aidx)
        with pytest.raises(MappingError):
            amt.release(a.aidx)

    def test_get_released_rejected(self, amt):
        a = amt.create(0, 8, 4, 1)
        amt.release(a.aidx)
        with pytest.raises(MappingError):
            amt.get(a.aidx)


class TestLookup:
    def test_get(self, amt):
        a = amt.create(5, 88, 6, 9)
        assert amt.get(a.aidx) is a

    def test_contains(self, amt):
        a = amt.create(5, 88, 6, 9)
        assert a.aidx in amt
        assert 99 not in amt

    def test_len_and_iter(self, amt):
        amt.create(0, 8, 4, 1)
        amt.create(2, 40, 4, 2)
        assert len(amt) == 2
        assert len(list(amt.entries())) == 2
