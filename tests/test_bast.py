"""BAST hybrid log-block FTL (library extension)."""

import numpy as np
import pytest

from repro.errors import ConfigError, MappingError
from repro.flash.service import FlashService
from repro.ftl.bast import BASTFTL
from conftest import build_ftl


def stamps_for(offset, size, v):
    return {s: v for s in range(offset, offset + size)}


@pytest.fixture
def ftl_pair(tiny_cfg):
    return build_ftl("bast", tiny_cfg)


class TestBasics:
    def test_constructible_via_factory(self, tiny_cfg):
        svc, ftl = build_ftl("bast", tiny_cfg)
        assert ftl.name == "bast"

    def test_needs_log_blocks(self, tiny_cfg):
        svc = FlashService(tiny_cfg)
        with pytest.raises(ConfigError):
            BASTFTL(svc, log_blocks=1)

    def test_write_goes_to_log_block(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(0, 16, 0.0, stamps_for(0, 16, 1))
        assert len(ftl.logs) == 1
        assert svc.counters.data_writes == 1
        assert ftl.block_map[0] == -1  # no data block until a merge

    def test_read_back(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(0, 16, 0.0, stamps_for(0, 16, 1))
        _, found = ftl.read(0, 16, 1.0)
        assert all(found[s] == 1 for s in range(16))

    def test_partial_write_rmw(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(0, 16, 0.0, stamps_for(0, 16, 1))
        ftl.write(4, 4, 1.0, stamps_for(4, 4, 2))
        assert svc.counters.update_reads == 1
        _, found = ftl.read(0, 16, 2.0)
        assert found[0] == 1 and found[5] == 2 and found[12] == 1

    def test_across_page_write_two_programs(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(8, 16, 0.0, stamps_for(8, 16, 1))
        assert svc.counters.data_writes == 2  # block mapping can't help

    def test_read_unwritten(self, ftl_pair):
        svc, ftl = ftl_pair
        t, found = ftl.read(512, 16, 5.0)
        assert found == {} and t == 5.0


class TestMerges:
    def test_log_overflow_triggers_merge(self, ftl_pair):
        svc, ftl = ftl_pair
        ppb = ftl.ppb
        spp = ftl.spp
        # overwrite one page repeatedly to fill its log block
        for v in range(ppb + 1):
            ftl.write(0, spp, 0.0, stamps_for(0, spp, v))
        assert ftl.full_merges >= 1
        assert svc.counters.erases >= 1
        assert ftl.block_map[0] >= 0
        _, found = ftl.read(0, spp, 0.0)
        assert all(x == ppb for x in found.values())

    def test_switch_merge_on_sequential_fill(self, ftl_pair):
        svc, ftl = ftl_pair
        ppb = ftl.ppb
        spp = ftl.spp
        # write every page of logical block 0 exactly once, in order,
        # then one more write to trigger the (switch) merge
        for off in range(ppb):
            ftl.write(off * spp, spp, 0.0, stamps_for(off * spp, spp, off))
        ftl.write(0, spp, 0.0, stamps_for(0, spp, 99))
        assert ftl.switch_merges == 1
        assert ftl.full_merges == 0
        _, found = ftl.read(0, spp, 0.0)
        assert all(x == 99 for x in found.values())
        _, found = ftl.read(spp, spp, 0.0)
        assert all(x == 1 for x in found.values())

    def test_log_pool_eviction(self, tiny_cfg):
        svc, ftl = build_ftl("bast", tiny_cfg, log_blocks=4)
        spp = ftl.spp
        ppb = ftl.ppb
        # touch more logical blocks than there are log blocks
        for lbn in range(8):
            ftl.write(lbn * ppb * spp, spp, 0.0,
                      stamps_for(lbn * ppb * spp, spp, lbn))
        assert len(ftl.logs) <= 4
        # every block's data is still readable (merged or logged)
        for lbn in range(8):
            _, found = ftl.read(lbn * ppb * spp, spp, 0.0)
            assert all(x == lbn for x in found.values()), lbn

    def test_data_block_holes_handled(self, ftl_pair):
        svc, ftl = ftl_pair
        ppb = ftl.ppb
        spp = ftl.spp
        # write only offsets 3 and 7, then force a merge via overwrites
        ftl.write(3 * spp, spp, 0.0, stamps_for(3 * spp, spp, 1))
        ftl.write(7 * spp, spp, 0.0, stamps_for(7 * spp, spp, 2))
        for v in range(ppb):
            ftl.write(3 * spp, spp, 0.0, stamps_for(3 * spp, spp, 10 + v))
        assert ftl.full_merges >= 1
        _, found = ftl.read(3 * spp, spp, 0.0)
        assert all(x == 10 + ppb - 2 or x >= 10 for x in found.values())
        _, found = ftl.read(7 * spp, spp, 0.0)
        assert all(x == 2 for x in found.values())
        ftl.check_invariants()
        svc.array.check_invariants()


class TestOracleWorkload:
    def test_random_workload_correct(self, tiny_cfg):
        svc, ftl = build_ftl("bast", tiny_cfg, log_blocks=8)
        rng = np.random.default_rng(4)
        spp = ftl.spp
        max_page = 200
        versions = {}
        v = 0
        for _ in range(500):
            kind = rng.integers(3)
            if kind == 0:
                b = int(rng.integers(1, max_page)) * spp
                off = b - int(rng.integers(1, 4))
                size = (b - off) + int(rng.integers(1, 4))
            elif kind == 1:
                p = int(rng.integers(max_page))
                size = int(rng.integers(1, spp))
                off = p * spp + int(rng.integers(0, spp - size + 1))
            else:
                p = int(rng.integers(max_page - 3))
                off, size = p * spp, int(rng.integers(1, 2 * spp))
            v += 1
            st = stamps_for(off, size, v)
            versions.update(st)
            ftl.write(off, size, 0.0, st)
        for sec, expect in list(versions.items())[::7]:
            _, found = ftl.read(sec, 1, 0.0)
            assert found.get(sec) == expect, sec
        ftl.check_invariants()
        svc.array.check_invariants()

    def test_trim(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(0, 16, 0.0, stamps_for(0, 16, 1))
        ftl.trim(0, 16, 1.0)
        _, found = ftl.read(0, 16, 2.0)
        assert found == {}

    def test_rebuild_unsupported(self, ftl_pair):
        svc, ftl = ftl_pair
        with pytest.raises(MappingError):
            ftl.rebuild_from_flash()


class TestComparison:
    def test_bast_pays_for_across_heavy_traffic(self, tiny_cfg):
        """The motivating comparison: on an across-page-heavy workload
        BAST burns far more erases than any page-mapped scheme."""
        from repro import SimConfig, SyntheticSpec, generate_trace, run_trace

        spec = SyntheticSpec(
            "hybrid",
            2_500,
            write_ratio=0.8,
            across_ratio=0.3,
            mean_write_kb=8.0,
            footprint_sectors=int(tiny_cfg.logical_sectors * 0.5),
            seed=6,
        )
        trace = generate_trace(spec)
        bast = run_trace("bast", trace, tiny_cfg, SimConfig(check_oracle=True))
        ftl = run_trace("ftl", trace, tiny_cfg, SimConfig(check_oracle=True))
        assert bast.erase_count > ftl.erase_count
        assert bast.counters.total_writes > ftl.counters.total_writes
        # ... while its mapping table is far smaller
        assert bast.mapping_table_bytes < ftl.mapping_table_bytes
