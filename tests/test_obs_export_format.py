"""Prometheus text-exposition lint, exporters under fault injection,
and end-to-end Chrome-trace validity (ISSUE 6 satellite coverage)."""

import json

import pytest

from repro.config import FaultConfig, SimConfig, SSDConfig
from repro.flash.service import FlashService
from repro.ftl import make_ftl
from repro.metrics.counters import FlashOpCounters, OpKind
from repro.obs.export import (
    _escape,
    _labels,
    attribution_prometheus_text,
    json_snapshot,
    prometheus_text,
)
from repro.sim.engine import Simulator
from repro.traces.synthetic import SyntheticSpec, VDIWorkloadGenerator


def lint_exposition(text: str) -> list[str]:
    """Problems against the Prometheus text exposition format (empty =
    clean): every sampled family has exactly one HELP and one TYPE line
    emitted before its first sample; label values carry no raw ``"`` or
    newline; histogram samples only under histogram-typed families."""
    problems: list[str] = []
    help_seen: dict[str, int] = {}
    type_seen: dict[str, str] = {}
    sampled_before_meta: set[str] = set()

    def family_of(sample_name: str) -> str:
        for suffix in ("_bucket", "_sum", "_count"):
            if sample_name.endswith(suffix):
                base = sample_name[: -len(suffix)]
                if type_seen.get(base) == "histogram":
                    return base
        return sample_name

    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            name = line.split()[2]
            help_seen[name] = help_seen.get(name, 0) + 1
            if help_seen[name] > 1:
                problems.append(f"duplicate HELP for {name}")
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            name, mtype = parts[2], parts[3]
            if name in type_seen:
                problems.append(f"duplicate TYPE for {name}")
            if mtype not in ("counter", "gauge", "histogram", "summary"):
                problems.append(f"bad TYPE {mtype} for {name}")
            type_seen[name] = mtype
            continue
        if line.startswith("#"):
            continue
        sample_name = line.split("{")[0].split()[0]
        fam = family_of(sample_name)
        if fam not in help_seen or fam not in type_seen:
            sampled_before_meta.add(fam)
        if "{" in line:
            label_blob = line[line.index("{") + 1: line.rindex("}")]
            body = label_blob
            for escaped in ('\\\\', '\\"', "\\n"):
                body = body.replace(escaped, "")
            # after removing escapes, quotes only delimit values
            if body.count('"') % 2:
                problems.append(f"unbalanced quotes in {line!r}")
    for fam in sampled_before_meta:
        problems.append(f"family {fam} sampled without HELP/TYPE")
    return problems


def _counters():
    c = FlashOpCounters()
    c.count_read(OpKind.DATA, 10)
    c.count_write(OpKind.MAP, 2)
    c.count_erase()
    return c


class TestExpositionLint:
    def test_counter_text_is_clean(self):
        assert lint_exposition(prometheus_text(_counters())) == []

    def test_gauges_and_chip_labels_are_clean(self):
        import numpy as np

        from repro.obs.samplers import (
            ChipUtilizationSampler,
            GaugeSampler,
            SamplerSet,
        )

        class _TL:
            busy_time = np.array([3.0, 0.0])

        ss = SamplerSet(10.0)
        cu = ChipUtilizationSampler(_TL())
        cu.sample(0.0)
        cu.sample(10.0)
        ss.add(cu)
        ss.add(GaugeSampler("queue_depth", lambda: 4))
        ss.force_sample(10.0)
        text = prometheus_text(_counters(), ss)
        assert lint_exposition(text) == []
        # every gauge family carries a HELP line
        for line in text.splitlines():
            if "# TYPE" in line and line.endswith("gauge"):
                name = line.split()[2]
                assert f"# HELP {name} " in text, name

    def test_fault_counter_families_present(self):
        text = prometheus_text(_counters())
        for fam in (
            "repro_read_retries_total",
            "repro_uncorrectable_reads_total",
            "repro_program_fails_total",
            "repro_erase_fails_total",
            "repro_bad_blocks_total",
            "repro_fault_relocations_total",
        ):
            assert f"# TYPE {fam} counter" in text
            assert f"\n{fam} 0" in text

    def test_attribution_histograms_are_clean(self):
        from repro.obs.attribution import AttributionRecorder

        r = AttributionRecorder()
        for lat in (0.05, 0.2, 1.0):
            r.begin(0.0, 0.0)
            r.record(0, 0.0, 0.0, (("flash_read", lat),))
            r.complete("read_normal", lat)
        text = attribution_prometheus_text(r)
        assert lint_exposition(text) == []
        assert "# TYPE repro_request_phase_latency_ms histogram" in text
        assert 'le="+Inf"' in text
        assert 'repro_requests_total{class="read_normal"} 3' in text

    def test_label_values_escaped(self):
        assert _escape('a"b\nc\\d') == 'a\\"b\\nc\\\\d'
        rendered = _labels({"chip": 'we"ird\nname'})
        assert '\\"' in rendered and "\\n" in rendered
        assert lint_exposition(f"# HELP m x\n# TYPE m gauge\nm{rendered} 1\n") == []


class TestExportersUnderFaults:
    @pytest.fixture(scope="class")
    def faulty_run(self):
        cfg = SSDConfig.tiny()
        spec = SyntheticSpec(
            "faulty", 1_500, 0.6, 0.25, 9.0,
            footprint_sectors=int(cfg.logical_sectors * 0.6), seed=77,
        )
        trace = VDIWorkloadGenerator(spec).generate()
        sim_cfg = SimConfig(faults=FaultConfig.stress()).replace_observability(
            enabled=True, trace=True, sample_interval_ms=50.0,
        )
        service = FlashService(cfg)
        sim = Simulator(make_ftl("ftl", service), sim_cfg)
        events = []
        sim.obs.bus.subscribe(None, events.append)
        rep = sim.run(trace)
        return sim, rep, events

    def test_fault_events_on_the_bus(self, faulty_run):
        from repro.obs.events import BadBlockRetired, MediaFault, ReadRetry

        _sim, rep, events = faulty_run
        kinds = {type(e) for e in events}
        assert rep.counters.read_retries > 0
        assert ReadRetry in kinds
        assert MediaFault in kinds
        if rep.counters.bad_blocks:
            assert BadBlockRetired in kinds

    def test_fault_counters_in_prometheus_text(self, faulty_run):
        sim, rep, _events = faulty_run
        text = prometheus_text(rep.counters, sim.obs.samplers)
        assert lint_exposition(text) == []
        c = rep.counters
        assert f"repro_read_retries_total {c.read_retries}" in text
        assert (
            f"repro_uncorrectable_reads_total {c.uncorrectable_reads}" in text
        )
        assert f"repro_program_fails_total {c.program_fails}" in text
        assert f"repro_erase_fails_total {c.erase_fails}" in text
        assert f"repro_bad_blocks_total {c.bad_blocks}" in text
        assert f"repro_fault_relocations_total {c.fault_relocations}" in text

    def test_fault_counters_in_json_snapshot(self, faulty_run):
        sim, rep, _events = faulty_run
        snap = json_snapshot(rep.counters, sim.obs.samplers)
        json.dumps(snap)
        for key in (
            "read_retries", "uncorrectable_reads", "program_fails",
            "erase_fails", "bad_blocks", "fault_relocations",
        ):
            assert snap["counters"][key] == getattr(rep.counters, key)


class TestChromeTraceValidity:
    @pytest.fixture(scope="class")
    def chrome_doc(self, tmp_path_factory):
        cfg = SSDConfig.tiny()
        spec = SyntheticSpec(
            "chrometrace", 400, 0.6, 0.25, 8.0,
            footprint_sectors=cfg.logical_sectors // 2, seed=9,
        )
        trace = VDIWorkloadGenerator(spec).generate()
        sim_cfg = SimConfig().replace_observability(
            enabled=True, trace=True, attribution=True,
        )
        service = FlashService(cfg)
        sim = Simulator(make_ftl("across", service), sim_cfg)
        sim.run(trace)
        path = tmp_path_factory.mktemp("chrome") / "trace.json"
        sim.obs.recorder.write_chrome(path)
        return json.loads(path.read_text())

    def test_loads_as_json_with_trace_events(self, chrome_doc):
        assert isinstance(chrome_doc["traceEvents"], list)
        assert chrome_doc["displayTimeUnit"] == "ms"

    def test_timed_events_time_sorted(self, chrome_doc):
        ts = [
            e["ts"] for e in chrome_doc["traceEvents"]
            if e.get("ph") != "M"
        ]
        assert ts == sorted(ts)

    def test_pid_and_tid_name_metadata_present(self, chrome_doc):
        meta = [e for e in chrome_doc["traceEvents"] if e.get("ph") == "M"]
        proc = {
            e["pid"]: e["args"]["name"]
            for e in meta if e["name"] == "process_name"
        }
        assert proc == {1: "requests", 2: "flash chips"}
        threads = [e for e in meta if e["name"] == "thread_name"]
        lanes = {e["tid"] for e in threads if e["pid"] == 1}
        chips = {e["tid"] for e in threads if e["pid"] == 2}
        assert lanes  # request lanes named
        used_chip_rows = {
            e["tid"] for e in chrome_doc["traceEvents"]
            if e.get("ph") == "X" and e.get("pid") == 2
        }
        assert used_chip_rows <= chips

    def test_phase_subslices_fit_inside_their_request(self, chrome_doc):
        spans = {}
        for e in chrome_doc["traceEvents"]:
            if e.get("ph") == "X" and e.get("pid") == 1 \
                    and not e["name"].startswith("phase:"):
                spans[e["args"]["rid"]] = e
        phase_events = [
            e for e in chrome_doc["traceEvents"]
            if e.get("ph") == "X" and e["name"].startswith("phase:")
        ]
        assert phase_events
        for e in phase_events:
            parent = spans[e["args"]["rid"]]
            assert e["tid"] == parent["tid"]
            assert e["ts"] >= parent["ts"] - 1e-6
            assert (
                e["ts"] + e["dur"]
                <= parent["ts"] + parent["dur"] + 1e-6
            )
