"""Trace shrinking & counterexample persistence (repro.check.shrink)."""

import numpy as np
import pytest

from repro.check import (
    dump_counterexample,
    load_counterexample,
    replay_counterexample,
    shrink_trace,
)
from repro.check.differential import ReplayFailure, checked_sim_cfg
from repro.check.shrink import (
    FORMAT_VERSION,
    cfg_from_dict,
    sim_cfg_from_dict,
    trace_subset,
)
from repro.config import SimConfig, SSDConfig
from repro.traces.model import OP_READ, OP_WRITE, Trace


def make_trace(n=50):
    return Trace(
        "shrinkme",
        np.arange(n, dtype=np.float64),
        np.full(n, OP_WRITE, dtype=np.uint8),
        (np.arange(n, dtype=np.int64) * 16),
        np.full(n, 16, dtype=np.int64),
    )


class TestTraceSubset:
    def test_keeps_selected_rows(self):
        t = make_trace(10)
        sub = trace_subset(t, [0, 3, 7])
        assert len(sub) == 3
        assert sub.offsets.tolist() == [0, 48, 112]
        assert sub.times.tolist() == [0.0, 3.0, 7.0]
        assert sub.name == t.name


class TestShrinkTrace:
    def test_shrinks_to_single_culprit(self):
        t = make_trace(50)
        culprit = 160  # offset of request #10

        def fails(candidate):
            return bool((candidate.offsets == culprit).any())

        shrunk = shrink_trace(t, fails)
        assert len(shrunk) == 1
        assert shrunk.offsets[0] == culprit

    def test_shrinks_interacting_pair(self):
        t = make_trace(60)

        def fails(candidate):
            offs = set(candidate.offsets.tolist())
            return 32 in offs and 640 in offs

        shrunk = shrink_trace(t, fails)
        assert fails(shrunk)
        assert len(shrunk) <= 4

    def test_budget_bounds_probes(self):
        t = make_trace(200)
        calls = 0

        def fails(candidate):
            nonlocal calls
            calls += 1
            return bool((candidate.offsets == 16).any())

        shrink_trace(t, fails, max_probes=10)
        assert calls <= 10

    def test_single_request_trace_untouched(self):
        t = make_trace(1)
        assert shrink_trace(t, lambda c: True) is t

    def test_never_failing_returns_full_trace(self):
        t = make_trace(20)
        shrunk = shrink_trace(t, lambda c: False)
        assert len(shrunk) == 20


class TestConfigRoundTrip:
    def test_ssd_config(self):
        import dataclasses

        cfg = SSDConfig.tiny().replace(write_buffer_bytes=1 << 20)
        back = cfg_from_dict(dataclasses.asdict(cfg))
        assert back == cfg

    def test_sim_config(self):
        import dataclasses

        cfg = checked_sim_cfg(SimConfig(seed=7, aged_used=0.5,
                                        aged_valid=0.2), every=32)
        back = sim_cfg_from_dict(dataclasses.asdict(cfg))
        assert back == cfg
        assert back.check.enabled and back.check.every == 32

    def test_sim_config_without_check_block(self):
        import dataclasses

        doc = dataclasses.asdict(SimConfig())
        doc.pop("check")  # older dump pre-dating CheckConfig
        back = sim_cfg_from_dict(doc)
        assert not back.check.enabled


class TestCounterexampleFiles:
    def test_round_trip(self, tmp_path):
        trace = make_trace(7)
        trace.ops[3] = OP_READ
        cfg = SSDConfig.tiny()
        sim_cfg = checked_sim_cfg(every=64)
        path = dump_counterexample(
            tmp_path / "ce.json",
            trace=trace,
            cfg=cfg,
            sim_cfg=sim_cfg,
            failures=[ReplayFailure("oracle", "ftl", "boom")],
            schemes=("ftl", "across"),
            seed=123,
        )
        t2, cfg2, sim2, doc = load_counterexample(path)
        assert cfg2 == cfg and sim2 == sim_cfg
        assert np.array_equal(t2.ops, trace.ops)
        assert np.array_equal(t2.offsets, trace.offsets)
        assert np.array_equal(t2.sizes, trace.sizes)
        assert np.array_equal(t2.times, trace.times)
        assert doc["seed"] == 123
        assert doc["schemes"] == ["ftl", "across"]
        assert doc["failures"][0]["kind"] == "oracle"
        assert str(path) in doc["repro_command"]

    def test_version_check(self, tmp_path):
        import json

        trace = make_trace(2)
        path = dump_counterexample(
            tmp_path / "ce.json",
            trace=trace,
            cfg=SSDConfig.tiny(),
            sim_cfg=SimConfig(),
            failures=[],
        )
        doc = json.loads(path.read_text())
        assert doc["version"] == FORMAT_VERSION
        doc["version"] = FORMAT_VERSION + 1
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="unsupported"):
            load_counterexample(path)

    def test_replay_healthy_dump_passes(self, tmp_path):
        # a "counterexample" whose trace is actually fine replays clean
        trace = make_trace(30)
        path = dump_counterexample(
            tmp_path / "ok.json",
            trace=trace,
            cfg=SSDConfig.tiny(),
            sim_cfg=SimConfig(),
            failures=[ReplayFailure("error", None, "was flaky")],
            schemes=("ftl", "mrsm"),
        )
        res = replay_counterexample(path)
        assert res.ok, res.summary()
        assert set(res.read_digests) == {"ftl", "mrsm"}
