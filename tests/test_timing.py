"""Chip timeline contention model (repro.flash.timing)."""

import pytest

from repro.config import TimingConfig
from repro.errors import SimulationError
from repro.flash.timing import ChipTimeline


@pytest.fixture
def tl():
    return ChipTimeline(4, TimingConfig())


class TestOccupancy:
    def test_idle_chip_starts_immediately(self, tl):
        assert tl.read(0, 10.0) == pytest.approx(10.075)

    def test_busy_chip_queues(self, tl):
        t1 = tl.program(0, 0.0)
        assert t1 == pytest.approx(2.0)
        t2 = tl.program(0, 0.5)  # issued while busy
        assert t2 == pytest.approx(4.0)

    def test_different_chips_overlap(self, tl):
        a = tl.program(0, 0.0)
        b = tl.program(1, 0.0)
        assert a == pytest.approx(2.0)
        assert b == pytest.approx(2.0)

    def test_erase_duration(self, tl):
        assert tl.erase(2, 0.0) == pytest.approx(3.5)

    def test_late_arrival_after_idle(self, tl):
        tl.program(0, 0.0)
        # arrives long after the chip freed up
        assert tl.read(0, 100.0) == pytest.approx(100.075)

    def test_next_free(self, tl):
        tl.program(0, 0.0)
        assert tl.next_free(0, 0.5) == pytest.approx(2.0)
        assert tl.next_free(0, 5.0) == pytest.approx(5.0)


class TestAccounting:
    def test_busy_time_accumulates(self, tl):
        tl.program(0, 0.0)
        tl.read(0, 0.0)
        assert tl.busy_time[0] == pytest.approx(2.075)
        assert tl.op_count[0] == 2

    def test_utilization(self, tl):
        tl.program(0, 0.0)
        u = tl.utilization(4.0)
        assert u[0] == pytest.approx(0.5)
        assert u[1] == 0.0

    def test_utilization_capped(self, tl):
        tl.program(0, 0.0)
        assert tl.utilization(1.0)[0] == 1.0

    def test_zero_horizon(self, tl):
        assert (tl.utilization(0.0) == 0).all()


def test_requires_chips():
    with pytest.raises(SimulationError):
        ChipTimeline(0, TimingConfig())
