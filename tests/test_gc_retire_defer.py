"""Deferral paths of GarbageCollector._drain_retirements.

A block queued on ``service.retire_pending`` must not be retired while
it is still an active write frontier or not yet fully written — it is
left queued and picked up once sealed, with its valid data (including
across-page areas) relocated intact.
"""

import numpy as np

from repro.flash.service import FlashService
from repro.ftl import make_ftl


def stamps_for(offset, size, v):
    return {s: v for s in range(offset, offset + size)}


def fill_until_sealed(ftl, svc, block, *, start_lpn, ppb):
    """Write guard pages until ``block`` is fully written, stopping
    before any further allocation clears it from the active list."""
    guard = 0
    spp = ftl.spp
    while svc.array.write_ptr[block] < ppb:
        lpn = start_lpn + guard
        ftl.write(lpn * spp, spp, 0.0, stamps_for(lpn * spp, spp, 7))
        guard += 1
        assert guard < 10_000
    return start_lpn + guard


class TestFrontierDeferral:
    def test_unsealed_frontier_stays_queued(self, micro_cfg):
        svc = FlashService(micro_cfg)
        ftl = make_ftl("ftl", svc, track_payload=True)
        spp = ftl.spp
        ftl.write(0, spp, 0.0, stamps_for(0, spp, 1))
        block = int(ftl.pmt[0]) // micro_cfg.pages_per_block
        plane = svc.geom.plane_of_block(block)
        assert block in ftl.allocator.active_in_plane(plane)
        assert svc.array.write_ptr[block] < micro_cfg.pages_per_block

        svc.retire_pending.add(block)
        ftl.gc._drain_retirements(1.0)
        # both deferral conditions hold: nothing happens yet
        assert block in svc.retire_pending
        assert not svc.array.is_bad[block]
        assert svc.array.is_valid(int(ftl.pmt[0]))

    def test_sealed_but_still_active_stays_queued(self, micro_cfg):
        svc = FlashService(micro_cfg)
        ftl = make_ftl("ftl", svc, track_payload=True)
        spp = ftl.spp
        ppb = micro_cfg.pages_per_block
        ftl.write(0, spp, 0.0, stamps_for(0, spp, 1))
        block = int(ftl.pmt[0]) // ppb
        plane = svc.geom.plane_of_block(block)
        fill_until_sealed(ftl, svc, block, start_lpn=10, ppb=ppb)
        # fully written, but the allocator has not moved on yet: the
        # block is cleared from the active list only by the *next*
        # allocation in its plane
        assert svc.array.write_ptr[block] == ppb
        assert block in ftl.allocator.active_in_plane(plane)

        svc.retire_pending.add(block)
        ftl.gc._drain_retirements(1.0)
        assert block in svc.retire_pending
        assert not svc.array.is_bad[block]

    def test_retired_once_sealed_and_released(self, micro_cfg):
        svc = FlashService(micro_cfg)
        ftl = make_ftl("ftl", svc, track_payload=True)
        spp = ftl.spp
        ppb = micro_cfg.pages_per_block
        ftl.write(0, spp, 0.0, stamps_for(0, spp, 1))
        block = int(ftl.pmt[0]) // ppb
        plane = svc.geom.plane_of_block(block)
        svc.retire_pending.add(block)
        next_lpn = fill_until_sealed(ftl, svc, block, start_lpn=10, ppb=ppb)

        # keep writing: the next allocation in this plane releases the
        # frontier, after which the per-write drain retires the block
        guard = 0
        while not svc.array.is_bad[block]:
            lpn = next_lpn + guard
            ftl.write(lpn * spp, spp, 0.0, stamps_for(lpn * spp, spp, 9))
            guard += 1
            assert guard < 10_000
        assert block not in svc.retire_pending
        assert block not in ftl.allocator.active_in_plane(plane)
        assert svc.counters.bad_blocks == 1
        # every page the block held was relocated, nothing lost
        _, found = ftl.read(0, spp, 5.0)
        assert found == stamps_for(0, spp, 1)
        ftl.check_invariants()
        svc.array.check_invariants()

    def test_across_area_data_survives_deferred_retirement(self, micro_cfg):
        svc = FlashService(micro_cfg)
        ftl = make_ftl("across", svc, track_payload=True)
        spp = ftl.spp
        ppb = micro_cfg.pages_per_block
        # an across-page write: lands in an AMT-managed area page
        offset = 2 * spp + spp // 2
        size = spp // 2 + 2
        ftl.write(offset, size, 0.0, stamps_for(offset, size, 909))
        entry = next(ftl.amt.entries())
        block = entry.appn // ppb
        plane = svc.geom.plane_of_block(block)

        svc.retire_pending.add(block)
        ftl.gc._drain_retirements(0.5)
        assert block in svc.retire_pending  # frontier: deferred

        next_lpn = fill_until_sealed(ftl, svc, block, start_lpn=20, ppb=ppb)
        guard = 0
        while not svc.array.is_bad[block]:
            lpn = next_lpn + guard
            ftl.write(lpn * spp, spp, 0.0, stamps_for(lpn * spp, spp, 3))
            guard += 1
            assert guard < 10_000
        # the area moved off the retired block and kept every sector
        moved = next(
            e for e in ftl.amt.entries() if e.aidx == entry.aidx
        )
        assert moved.appn // ppb != block
        _, found = ftl.read(offset, size, 9.0)
        assert found == stamps_for(offset, size, 909)
        ftl.check_invariants()
        svc.array.check_invariants()

    def test_already_bad_block_dropped_from_queue(self, micro_cfg):
        svc = FlashService(micro_cfg)
        ftl = make_ftl("ftl", svc, track_payload=True)
        block = int(np.nonzero(svc.array.write_ptr == 0)[0][0])
        svc.array.is_bad[block] = True  # retired through another path
        svc.retire_pending.add(block)
        ftl.gc._drain_retirements(1.0)
        assert block not in svc.retire_pending
