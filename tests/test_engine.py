"""Simulation engine: request processing, classification, aging, cache."""

import numpy as np
import pytest

from repro.config import SimConfig, SSDConfig
from repro.errors import SimulationError
from repro.flash.service import FlashService
from repro.ftl import make_ftl
from repro.sim.engine import Simulator
from repro.traces.model import OP_READ, OP_WRITE, Trace


def make_sim(cfg=None, sim_cfg=None, scheme="ftl"):
    cfg = cfg or SSDConfig.tiny()
    svc = FlashService(cfg)
    ftl = make_ftl(scheme, svc)
    return Simulator(ftl, sim_cfg)


class TestProcess:
    def test_write_then_read_latency(self):
        sim = make_sim()
        lw = sim.process(OP_WRITE, 0, 16, 0.0)
        assert lw == pytest.approx(2.0)
        lr = sim.process(OP_READ, 0, 16, 10.0)
        assert lr == pytest.approx(0.075)

    def test_rejects_bad_size(self):
        sim = make_sim()
        with pytest.raises(SimulationError):
            sim.process(OP_WRITE, 0, 0, 0.0)

    def test_rejects_out_of_space(self):
        sim = make_sim()
        limit = sim.ftl.logical_pages * sim.spp
        with pytest.raises(SimulationError):
            sim.process(OP_WRITE, limit - 4, 8, 0.0)

    def test_across_classification(self):
        sim = make_sim()
        sim.process(OP_WRITE, 8, 16, 0.0)   # across
        sim.process(OP_WRITE, 0, 16, 0.0)   # normal
        rec = sim.recorder
        assert rec.summary(rec.WRITE_ACROSS).count == 1
        assert rec.summary(rec.WRITE_NORMAL).count == 1

    def test_flush_attribution(self):
        sim = make_sim()
        sim.process(OP_WRITE, 8, 16, 0.0)   # across: two programs (baseline)
        sim.process(OP_WRITE, 0, 16, 0.0)   # normal: one program
        assert sim.flush_writes["across"] == 2
        assert sim.flush_writes["normal"] == 1
        assert sim.flush_sectors["across"] == 16


class TestDataCache:
    def test_read_hit_served_from_dram(self):
        cfg = SSDConfig.tiny().replace(write_buffer_bytes=1024 * 1024)
        sim = make_sim(cfg)
        sim.process(OP_WRITE, 0, 16, 0.0)
        lat = sim.process(OP_READ, 0, 16, 10.0)
        assert lat == pytest.approx(cfg.timing.cache_access_ms)
        assert sim.ftl.counters.cache_hits == 1
        assert sim.ftl.counters.data_reads == 0

    def test_read_allocate(self):
        cfg = SSDConfig.tiny().replace(write_buffer_bytes=1024 * 1024)
        sim = make_sim(cfg)
        sim.process(OP_WRITE, 0, 16, 0.0)
        # evict by writing many other pages
        for lpn in range(1, 200):
            sim.process(OP_WRITE, lpn * 16, 16, 0.0)
        first = sim.process(OP_READ, 0, 16, 1e6)
        second = sim.process(OP_READ, 0, 16, 2e6)
        assert first > second  # second read hits the cache

    def test_oracle_with_cache(self):
        cfg = SSDConfig.tiny().replace(write_buffer_bytes=1024 * 1024)
        sim = make_sim(cfg, SimConfig(check_oracle=True))
        sim.process(OP_WRITE, 0, 16, 0.0)
        sim.process(OP_READ, 0, 16, 1.0)    # cache hit, verified
        sim.process(OP_WRITE, 4, 4, 2.0)    # overwrite through cache
        sim.process(OP_READ, 0, 16, 3.0)    # must see the new stamps
        assert sim.oracle.reads_verified == 2


class TestAging:
    def test_aging_fractions(self):
        cfg = SSDConfig.tiny()
        sim = make_sim(cfg, SimConfig(aged_used=0.5, aged_valid=0.3))
        sim.age_device()
        arr = sim.ftl.service.array
        used_pages = cfg.num_pages - sum(
            arr.free_block_count(p) for p in range(cfg.num_planes)
        ) * cfg.pages_per_block
        assert used_pages >= int(0.45 * cfg.num_pages)
        valid_frac = arr.total_valid_pages / cfg.num_pages
        assert valid_frac == pytest.approx(0.3, abs=0.05)

    def test_aging_excluded_from_counters(self):
        sim = make_sim(SSDConfig.tiny(), SimConfig(aged_used=0.4, aged_valid=0.2))
        sim.age_device()
        c = sim.ftl.counters
        assert c.total_writes == 0
        assert c.erases == 0

    def test_aging_idempotent(self):
        sim = make_sim(SSDConfig.tiny(), SimConfig(aged_used=0.3, aged_valid=0.2))
        sim.age_device()
        before = sim.ftl.counters.writes.copy()
        sim.age_device()
        assert sim.ftl.counters.writes == before

    def test_aging_leaves_chips_idle(self):
        sim = make_sim(SSDConfig.tiny(), SimConfig(aged_used=0.3, aged_valid=0.2))
        sim.age_device()
        assert (sim.ftl.service.timeline.busy_until == 0).all()


class TestRun:
    def _trace(self, n=50):
        rng = np.random.default_rng(5)
        ops = rng.integers(0, 2, n).astype(np.uint8)
        offsets = rng.integers(0, 500, n) * 4
        sizes = rng.integers(1, 32, n)
        times = np.sort(rng.uniform(0, 1000, n))
        return Trace("t", times, ops, offsets, sizes)

    def test_run_produces_report(self):
        sim = make_sim()
        rep = sim.run(self._trace())
        assert rep.requests == 50
        assert rep.scheme == "ftl"
        assert rep.trace_name == "t"
        assert rep.latency.request_count == 50
        assert rep.mapping_table_bytes > 0
        assert rep.wall_seconds > 0

    def test_run_with_oracle_all_schemes(self):
        for scheme in ("ftl", "mrsm", "across"):
            sim = make_sim(scheme=scheme, sim_cfg=SimConfig(check_oracle=True))
            rep = sim.run(self._trace(120))
            assert rep.extra["oracle_reads_verified"] > 0

    def test_report_metric_lookup(self):
        sim = make_sim()
        rep = sim.run(self._trace())
        assert rep.metric("flash_writes") == rep.counters.total_writes
        assert rep.metric("gc_collections") == rep.extra["gc_collections"]
        with pytest.raises(KeyError):
            rep.metric("nope")


class TestPrintProgress:
    """The stderr progress line: width padding and ETA guards."""

    def test_shrinking_line_padded_to_previous_width(self, capsys):
        from repro.sim.engine import _print_progress

        # huge rate overflows its 8-char field -> a wide first line
        w1 = _print_progress("t", 999999, 1000000, 1e-6)
        w2 = _print_progress("t", 10, 1000000, 10.0, prev_width=w1)
        err = capsys.readouterr().err
        second = err.rsplit("\r", 1)[1]
        # the narrower second line is space-padded so no characters of
        # the first line survive after the carriage return
        assert w2 < w1
        assert len(second) == w1

    def test_zero_rate_renders_unknown_eta(self, capsys):
        from repro.sim.engine import _print_progress

        _print_progress("t", 0, 100, 0.0)
        err = capsys.readouterr().err
        assert "?s" in err
        assert "inf" not in err and "nan" not in err

    def test_final_line_shows_zero_eta(self, capsys):
        from repro.sim.engine import _print_progress

        _print_progress("t", 100, 100, 0.0, final=True)
        err = capsys.readouterr().err
        assert "?s" not in err
        assert err.endswith("\n")
