"""Log-bucketed latency sketches (repro.metrics.sketch)."""

import numpy as np
import pytest

from repro.metrics.sketch import LogHistogram


def _filled(values, **kw):
    h = LogHistogram(**kw)
    for v in values:
        h.add(v)
    return h


class TestAccounting:
    def test_count_and_total(self):
        h = _filled([0.5, 1.0, 2.0])
        assert h.count == 3
        assert h.total == pytest.approx(3.5)

    def test_zero_and_negative_go_to_zero_bucket(self):
        h = _filled([0.0, -1.0, 1e-9, 0.5])
        assert h.count == 4
        assert h.zero_count == 3
        assert h.total == pytest.approx(0.5 + 1e-9)

    def test_weighted_add(self):
        h = LogHistogram()
        h.add(2.0, n=5)
        assert h.count == 5
        assert h.total == pytest.approx(10.0)


class TestQuantiles:
    def test_empty_returns_zero(self):
        assert LogHistogram().quantile(0.99) == 0.0

    def test_relative_error_bound(self):
        """Every quantile is within the bucket's geometric half-width
        (sqrt(growth) - 1 relative) of the exact value."""
        rng = np.random.default_rng(7)
        values = rng.lognormal(mean=0.0, sigma=1.5, size=5_000)
        h = _filled(values)
        bound = np.sqrt(h.growth) - 1.0
        for q in (0.5, 0.9, 0.99, 0.999):
            exact = float(np.quantile(values, q))
            est = h.quantile(q)
            assert abs(est - exact) / exact <= bound + 1e-9, (q, est, exact)

    def test_named_quantiles(self):
        h = _filled([1.0] * 100)
        qs = h.quantiles()
        assert set(qs) == {"p50", "p95", "p99", "p99.9"}
        for v in qs.values():
            assert v == pytest.approx(1.0, rel=0.05)

    def test_all_zero_samples(self):
        h = _filled([0.0] * 10)
        assert h.quantile(0.99) == 0.0


class TestSerialisation:
    def test_round_trip(self):
        h = _filled([0.0, 0.3, 5.0, 700.0, 700.0])
        h2 = LogHistogram.from_dict(h.to_dict())
        assert h2 == h
        assert h2.quantile(0.5) == h.quantile(0.5)

    def test_dict_is_json_safe(self):
        import json

        d = _filled([0.1, 2.0]).to_dict()
        json.loads(json.dumps(d))

    def test_merge_equals_union(self):
        rng = np.random.default_rng(3)
        a_vals = rng.exponential(2.0, 500)
        b_vals = rng.exponential(0.5, 300)
        a = _filled(a_vals)
        a.merge(_filled(b_vals))
        both = _filled(np.concatenate([a_vals, b_vals]))
        assert a == both


class TestBucketBounds:
    def test_counts_sum_and_bounds_enclose(self):
        values = [0.0, 0.2, 0.2, 3.0, 50.0]
        h = _filled(values)
        bounds = h.bucket_bounds()
        assert sum(c for _, _, c in bounds) == h.count
        # first entry is the zero bucket
        lo0, hi0, c0 = bounds[0]
        assert lo0 == 0.0 and c0 == h.zero_count
        for lo, hi, _c in bounds[1:]:
            assert 0.0 < lo < hi

    def test_bounds_ascend(self):
        h = _filled([0.1, 1.0, 10.0, 100.0])
        his = [hi for _, hi, _ in h.bucket_bounds()]
        assert his == sorted(his)
