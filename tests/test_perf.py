"""Throughput guardrails: the simulator must stay fast enough that the
full benchmark sweep remains a minutes-scale job.

Bounds are deliberately loose (5-10x headroom) so they only trip on
genuine algorithmic regressions — e.g. something turning O(pages
touched) into O(device size) per request.
"""

import time

import pytest

from repro.config import SimConfig, SSDConfig
from repro.experiments.runner import run_trace
from repro.traces.synthetic import SyntheticSpec, generate_trace


@pytest.mark.slow
@pytest.mark.parametrize("scheme", ["ftl", "across"])
def test_replay_throughput(scheme):
    cfg = SSDConfig.bench_default()
    spec = SyntheticSpec(
        "perf",
        8_000,
        0.6,
        0.25,
        9.0,
        footprint_sectors=int(cfg.logical_sectors * 0.5),
        seed=1,
    )
    trace = generate_trace(spec)
    t0 = time.perf_counter()
    rep = run_trace(scheme, trace, cfg)  # no aging: measure the replay
    dt = time.perf_counter() - t0
    rate = len(trace) / dt
    assert rate > 4_000, f"{scheme}: {rate:.0f} requests/s"


@pytest.mark.slow
def test_aging_throughput():
    cfg = SSDConfig.bench_default()
    from repro.flash.service import FlashService
    from repro.ftl import make_ftl
    from repro.sim.engine import Simulator

    svc = FlashService(cfg)
    sim = Simulator(
        make_ftl("ftl", svc), SimConfig(aged_used=0.5, aged_valid=0.3)
    )
    t0 = time.perf_counter()
    sim.age_device()
    dt = time.perf_counter() - t0
    pages = int(0.5 * cfg.num_pages)
    assert pages / dt > 10_000, f"{pages / dt:.0f} aging pages/s"


def test_request_cost_scales_with_extent_not_device():
    """A one-sector request must not scan device-sized structures."""
    small = SSDConfig.tiny()
    large = SSDConfig.bench_default()
    times = {}
    for name, cfg in (("small", small), ("large", large)):
        rep_cfg = cfg.replace(write_buffer_bytes=0)
        from repro.flash.service import FlashService
        from repro.ftl import make_ftl

        svc = FlashService(rep_cfg)
        ftl = make_ftl("across", svc)
        t0 = time.perf_counter()
        for i in range(2_000):
            ftl.write((i % 500) * 16, 4, 0.0)
        times[name] = time.perf_counter() - t0
    # a 250x larger device may cost more (bigger numpy arrays to touch)
    # but must stay within a small constant factor
    assert times["large"] < times["small"] * 5 + 0.5, times
