"""TRIM/discard support in all three schemes, the engine, cache, oracle."""

import pytest

from repro.config import SimConfig, SSDConfig
from repro.flash.service import FlashService
from repro.ftl import make_ftl
from repro.sim.engine import Simulator
from repro.traces.model import OP_READ, OP_TRIM, OP_WRITE
from conftest import build_ftl


def stamps_for(offset, size, v):
    return {s: v for s in range(offset, offset + size)}


class TestPageMapTrim:
    def test_full_page_trim_invalidates(self, tiny_cfg):
        svc, ftl = build_ftl("ftl", tiny_cfg)
        ftl.write(0, 16, 0.0, stamps_for(0, 16, 1))
        ppn = int(ftl.pmt[0])
        ftl.trim(0, 16, 1.0)
        assert not svc.array.is_valid(ppn)
        assert ftl.pmt[0] == -1
        _, found = ftl.read(0, 16, 2.0)
        assert found == {}

    def test_partial_trim_keeps_page(self, tiny_cfg):
        svc, ftl = build_ftl("ftl", tiny_cfg)
        ftl.write(0, 16, 0.0, stamps_for(0, 16, 1))
        ftl.trim(0, 8, 1.0)
        assert svc.array.is_valid(int(ftl.pmt[0]))
        _, found = ftl.read(0, 16, 2.0)
        assert set(found) == set(range(8, 16))

    def test_trim_unwritten_noop(self, tiny_cfg):
        svc, ftl = build_ftl("ftl", tiny_cfg)
        t = ftl.trim(100, 32, 5.0)
        assert t == pytest.approx(5.001)

    def test_trim_then_rewrite_no_rmw(self, tiny_cfg):
        svc, ftl = build_ftl("ftl", tiny_cfg)
        ftl.write(0, 16, 0.0, stamps_for(0, 16, 1))
        ftl.trim(0, 16, 1.0)
        before = svc.counters.update_reads
        ftl.write(0, 4, 2.0, stamps_for(0, 4, 2))  # fresh page: no RMW
        assert svc.counters.update_reads == before


class TestAcrossTrim:
    def test_full_area_trim_releases(self, tiny_cfg):
        svc, ftl = build_ftl("across", tiny_cfg)
        ftl.write(2056, 12, 0.0, stamps_for(2056, 12, 1))
        appn = next(ftl.amt.entries()).appn
        ftl.trim(2056, 12, 1.0)
        assert len(ftl.amt) == 0
        assert not svc.array.is_valid(appn)
        assert 128 not in ftl.aidx_of_lpn
        _, found = ftl.read(2048, 32, 2.0)
        assert found == {}
        ftl.check_invariants()

    def test_wider_trim_covers_area(self, tiny_cfg):
        svc, ftl = build_ftl("across", tiny_cfg)
        ftl.write(2056, 12, 0.0, stamps_for(2056, 12, 1))
        ftl.trim(2048, 32, 1.0)  # both full pages
        assert len(ftl.amt) == 0
        ftl.check_invariants()

    def test_partial_area_trim_preserves_survivors(self, tiny_cfg):
        svc, ftl = build_ftl("across", tiny_cfg)
        ftl.write(2056, 12, 0.0, stamps_for(2056, 12, 1))  # area 2056..2068
        ftl.trim(2056, 4, 1.0)  # drop the first 4 sectors only
        assert len(ftl.amt) == 0  # area rolled back
        _, found = ftl.read(2048, 32, 2.0)
        assert set(found) == set(range(2060, 2068))
        assert all(v == 1 for v in found.values())
        ftl.check_invariants()

    def test_trim_normal_data_keeps_area(self, tiny_cfg):
        svc, ftl = build_ftl("across", tiny_cfg)
        ftl.write(2048, 4, 0.0, stamps_for(2048, 4, 1))   # normal head
        ftl.write(2056, 12, 0.0, stamps_for(2056, 12, 2))  # area
        ftl.trim(2048, 4, 1.0)
        assert len(ftl.amt) == 1
        _, found = ftl.read(2048, 32, 2.0)
        assert set(found) == set(range(2056, 2068))
        ftl.check_invariants()


class TestMRSMTrim:
    def test_region_trim_kills_slot(self, tiny_cfg):
        svc, ftl = build_ftl("mrsm", tiny_cfg)
        ftl.write(0, 16, 0.0, stamps_for(0, 16, 1))
        ppn = ftl.region_map[0][0]
        ftl.trim(0, 16, 1.0)
        assert not svc.array.is_valid(ppn)
        assert not ftl.region_map
        _, found = ftl.read(0, 16, 2.0)
        assert found == {}
        ftl.check_invariants()

    def test_partial_region_trim(self, tiny_cfg):
        svc, ftl = build_ftl("mrsm", tiny_cfg)
        ftl.write(0, 16, 0.0, stamps_for(0, 16, 1))
        ftl.trim(0, 2, 1.0)  # half of region 0
        assert 0 in ftl.region_map
        _, found = ftl.read(0, 4, 2.0)
        assert set(found) == {2, 3}
        ftl.check_invariants()


class TestEngineTrim:
    def test_trim_through_engine_with_oracle(self):
        cfg = SSDConfig.tiny().replace(write_buffer_bytes=1024 * 1024)
        svc = FlashService(cfg)
        ftl = make_ftl("across", svc)
        sim = Simulator(ftl, SimConfig(check_oracle=True))
        sim.process(OP_WRITE, 2056, 12, 0.0)
        sim.process(OP_READ, 2056, 12, 1.0)
        sim.process(OP_TRIM, 2056, 12, 2.0)
        sim.process(OP_READ, 2056, 12, 3.0)  # oracle expects nothing now
        assert sim.trim_count == 1
        assert sim.oracle.reads_verified == 2

    def test_trim_invalidates_cached_copy(self):
        cfg = SSDConfig.tiny().replace(write_buffer_bytes=1024 * 1024)
        svc = FlashService(cfg)
        ftl = make_ftl("ftl", svc)
        sim = Simulator(ftl, SimConfig(check_oracle=True))
        sim.process(OP_WRITE, 0, 16, 0.0)
        sim.process(OP_TRIM, 0, 16, 1.0)
        # a cache hit returning stale data would fail oracle.verify
        sim.process(OP_READ, 0, 16, 2.0)

    def test_trim_frees_space_for_gc(self, micro_cfg):
        svc = FlashService(micro_cfg)
        ftl = make_ftl("ftl", svc)
        sim = Simulator(ftl)
        spp = ftl.spp
        n = ftl.logical_pages // 2
        for lpn in range(n):
            sim.process(OP_WRITE, lpn * spp, spp, 0.0)
        sim.process(OP_TRIM, 0, n * spp // 2, 1.0)
        # rewriting trimmed space must not raise OutOfSpace
        for lpn in range(n // 2):
            sim.process(OP_WRITE, lpn * spp, spp, 2.0)


class TestTrimRequestLog:
    """Regression: TRIMs used to be dropped from the per-request log,
    breaking the one-row-per-serviced-request contract."""

    def run_mixed(self, cfg, scheme="ftl"):
        svc = FlashService(cfg)
        sim = Simulator(
            make_ftl(scheme, svc), SimConfig(record_requests=True)
        )
        sim.process(OP_WRITE, 0, 16, 0.0)
        sim.process(OP_TRIM, 0, 8, 1.0)
        sim.process(OP_READ, 8, 8, 2.0)
        sim.process(OP_TRIM, 100, 32, 3.0)
        return sim

    def test_one_row_per_request(self, tiny_cfg):
        sim = self.run_mixed(tiny_cfg)
        log = sim.request_log
        assert len(log) == 4
        assert log.op.tolist() == [OP_WRITE, OP_TRIM, OP_READ, OP_TRIM]

    def test_trim_rows_carry_no_flush(self, tiny_cfg):
        log = self.run_mixed(tiny_cfg).request_log
        trims = log.op == OP_TRIM
        assert trims.sum() == 2
        assert (log.flush[trims] == 0).all()
        assert (log.latency[trims] >= 0).all()
        assert log.time[trims].tolist() == [1.0, 3.0]

    def test_recorder_still_excludes_trims(self, tiny_cfg):
        sim = self.run_mixed(tiny_cfg)
        # the four Fig. 4 buckets stay read/write only
        assert sim.recorder.request_count == 2
        assert sim.trim_count == 2

    def test_trim_rows_in_full_run(self, tiny_cfg):
        import numpy as np
        from repro.traces.model import Trace

        n = 30
        ops = np.full(n, OP_WRITE, dtype=np.uint8)
        ops[1::3] = OP_TRIM
        trace = Trace(
            "trimmy",
            np.arange(n, dtype=np.float64),
            ops,
            (np.arange(n, dtype=np.int64) % 8) * 16,
            np.full(n, 16, dtype=np.int64),
        )
        svc = FlashService(tiny_cfg)
        sim = Simulator(make_ftl("across", svc),
                        SimConfig(record_requests=True))
        rep = sim.run(trace)
        assert len(sim.request_log) == n
        assert rep.extra["trim_count"] == int((ops == OP_TRIM).sum())
